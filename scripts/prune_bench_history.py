#!/usr/bin/env python3
"""Prune ``results/bench_meta.json`` trajectories in place.

``append_bench_history`` caps each key's history at its own limit (200
entries), but a long-lived checkout still accumulates noise: abandoned
experiment runs, dozens of identical-commit entries from local loops.
This script trims every key's history to the newest ``--keep`` entries
(optionally collapsing runs of consecutive same-commit entries to their
last run first) and rewrites ``latest`` to match, so the perf-trend
dashboard (``repro perf trend``) stays focused on recent movement.

Usage::

    python scripts/prune_bench_history.py [--meta results/bench_meta.json]
        [--keep 50] [--collapse-commits] [--dry-run]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_META = REPO_ROOT / "results" / "bench_meta.json"


def collapse_commits(history: list[dict]) -> list[dict]:
    """Keep only the last entry of each run of consecutive same-commit
    entries (entries without a commit stamp are always kept)."""
    out: list[dict] = []
    for entry in history:
        commit = entry.get("commit")
        if (out and commit is not None
                and out[-1].get("commit") == commit):
            out[-1] = entry
        else:
            out.append(entry)
    return out


def prune(meta: dict, keep: int, collapse: bool) -> tuple[dict, int]:
    """Trimmed copy of ``meta`` plus the number of entries dropped."""
    dropped = 0
    out: dict = {}
    for key, slot in meta.items():
        if not isinstance(slot, dict):
            out[key] = slot
            continue
        if isinstance(slot.get("history"), list):
            history = [e for e in slot["history"] if isinstance(e, dict)]
        else:
            history = [slot]  # legacy flat entry
        before = len(history)
        if collapse:
            history = collapse_commits(history)
        history = history[-keep:]
        dropped += before - len(history)
        if history:
            out[key] = {"latest": history[-1], "history": history}
    return out, dropped


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--meta", default=str(DEFAULT_META), metavar="PATH",
                        help=f"bench-meta file (default {DEFAULT_META})")
    parser.add_argument("--keep", type=int, default=50, metavar="N",
                        help="newest entries to keep per key (default 50)")
    parser.add_argument("--collapse-commits", action="store_true",
                        help="first collapse consecutive same-commit entries "
                             "to their last run")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be dropped without writing")
    args = parser.parse_args(argv)
    if args.keep < 1:
        parser.error("--keep must be >= 1")

    path = Path(args.meta)
    try:
        meta = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"prune_bench_history: cannot read {path}: {exc}",
              file=sys.stderr)
        return 2
    if not isinstance(meta, dict):
        print(f"prune_bench_history: {path} is not a JSON object",
              file=sys.stderr)
        return 2

    pruned, dropped = prune(meta, args.keep, args.collapse_commits)
    for key in sorted(pruned):
        slot = pruned[key]
        if isinstance(slot, dict) and "history" in slot:
            print(f"  {key}: {len(slot['history'])} entr"
                  f"{'y' if len(slot['history']) == 1 else 'ies'} kept")
    print(f"{dropped} entr{'y' if dropped == 1 else 'ies'} dropped"
          f"{' (dry run, nothing written)' if args.dry_run else ''}")
    if not args.dry_run and dropped:
        path.write_text(json.dumps(pruned, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
