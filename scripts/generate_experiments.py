#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from saved benchmark results.

Reads ``results-full/*.json`` (written by
``REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only``), re-evaluates
every figure's shape claims, and writes the paper-vs-measured record.

Usage:  python scripts/generate_experiments.py [results_dir] [out.md]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import FigureData, render_table
from repro.core import (
    check_figure6,
    check_figure7a,
    check_figure7b,
    check_figure7c,
    check_figure8,
    check_figure9,
    check_odf_sweep,
)

#: figure id -> (title, paper-side description, checker)
CATALOG = [
    ("fig6a", "Fig. 6a — baseline optimizations, weak scaling",
     "Charm-H with the §III-C optimizations (one host sync/iter, split "
     "high-priority copy streams) beats the original implementation at "
     "every node count; the paper plots both at ODF 4, 1536³/node.",
     check_figure6),
    ("fig6b", "Fig. 6b — baseline optimizations, strong scaling",
     "Same comparison on the fixed 3072³ grid.",
     check_figure6),
    ("fig7a", "Fig. 7a — weak scaling, 1536³ per node",
     "Halos up to ~9 MB put GPU-aware communication on UCX's pipelined "
     "host-staging path: Charm-D degrades vs Charm-H from 2 nodes, MPI-D "
     "vs MPI-H from 8; Charm++ curves stay flatter than MPI from "
     "overdecomposition-driven overlap (best ODF = 4, up to 64% over "
     "ODF 1).",
     check_figure7a),
    ("fig7b", "Fig. 7b — weak scaling, 192³ per node",
     "96 KB halos ride GPUDirect: GPU-aware wins for both models; "
     "overdecomposition only adds overhead (ODF 1 best); Charm++ "
     "per-message costs are visible at this granularity.",
     check_figure7b),
    ("fig7c", "Fig. 7c — strong scaling, 3072³ grid",
     "Charm-H already beats both MPI versions from overlap alone; Charm-D "
     "combines overlap with GPU-aware transfers, overtakes everything once "
     "halos drop under the pipeline threshold, sustains a higher best-ODF "
     "to larger node counts than Charm-H, and reaches sub-millisecond "
     "iterations at 512 nodes.",
     check_figure7c),
    ("fig8", "Fig. 8 — kernel fusion (768³ strong scaling, Charm-D)",
     "Fusion pays once launches dominate: nothing until ~16 nodes at "
     "ODF 1, then C > B > A > baseline; ~20% (ODF 1) and ~51% (ODF 8) at "
     "the paper's 128 nodes.",
     check_figure8),
    ("fig9", "Fig. 9 — CUDA Graphs speedup (768³ strong scaling, Charm-D)",
     "Graphs barely move ODF 1 (little CPU to save), reach ~1.5x at ODF 8 "
     "without fusion, and lose their edge as fusion removes the launches "
     "they would amortize.",
     check_figure9),
    ("odf_sweep_1536", "§IV-B — ODF sweep at 1536³ per node",
     "ODF 4 best for Charm-H ('a good balance between overlap and "
     "overheads'); higher ODF eventually hurts.",
     lambda fig: check_odf_sweep(fig, {"charm-h": (2, 4, 8),
                                       "charm-d": (2, 4, 8, 16)})),
    ("odf_sweep_192", "§IV-B — ODF sweep at 192³ per node",
     "ODF 1 best for both Charm++ versions: at tiny granularity runtime "
     "overheads outweigh any overlap.",
     lambda fig: check_odf_sweep(fig, {"charm-h": (1,), "charm-d": (1,)})),
    ("comm_apis", "§II-B — communication mechanisms microbenchmark",
     "The Channel API exists because the GPU Messaging API pays a "
     "post-entry-method scheduling round trip per receive.",
     None),
    ("ablation_pipeline", "Model ablation — pipeline threshold",
     "(not a paper figure) removing the pipelined-host-staging fallback "
     "removes the Fig. 7a inversion: attribution check for the mechanism.",
     None),
    ("ablation_launch", "Model ablation — launch overhead",
     "(not a paper figure) 10x cheaper launches erase the fusion gains: "
     "attribution check for Figs. 8/9.",
     None),
    ("ablation_stacking", "Model ablation — pipeline concurrency stacking",
     "(not a paper figure) the optional stacking knob measured at protocol "
     "level; ships disabled (see DESIGN.md §9).",
     None),
]


def main() -> int:
    results = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results-full")
    out = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("EXPERIMENTS.md")
    parts = [HEADER]
    n_claims = n_pass = 0
    for fig_id, title, paper_side, checker in CATALOG:
        path = results / f"{fig_id}.json"
        parts.append(f"## {title}\n")
        parts.append(f"**Paper:** {paper_side}\n")
        if not path.exists():
            parts.append("*(no saved results — run the benchmark suite first)*\n")
            continue
        fig = FigureData.load_json(path)
        parts.append("**Measured** (time/iter in seconds unless the ylabel "
                     f"says otherwise; ylabel: {fig.ylabel}):\n")
        parts.append("```")
        parts.append(render_table(fig))
        parts.append("```\n")
        if checker is not None:
            claims = checker(fig)
            n_claims += len(claims)
            n_pass += sum(c.ok for c in claims)
            parts.append("**Shape claims:**\n")
            for c in claims:
                parts.append(f"- {'✅' if c.ok else '❌'} {c.name}"
                             + (f" — {c.detail}" if c.detail else ""))
            parts.append("")
        for note in fig.notes:
            parts.append(f"> note: {note}")
        parts.append("")
    parts.append(FOOTER.format(n_pass=n_pass, n_claims=n_claims))
    out.write_text("\n".join(parts))
    print(f"wrote {out} ({n_pass}/{n_claims} claims pass)")
    return 0 if n_pass == n_claims else 1


HEADER = """\
# EXPERIMENTS — paper vs. measured

This file records, for **every figure in the paper's evaluation (§IV)**,
what the paper reports and what this reproduction measures on its simulated
Summit (full node ladders; regenerate with
`REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only` followed by
`python scripts/generate_experiments.py`).

Absolute numbers are *not* expected to match — the substrate is a
calibrated simulator, not the authors' 4608-node machine.  What must match
are the paper's qualitative claims: who wins, where curves cross, which
way gaps trend.  Each figure below therefore carries machine-checked
**shape claims** (the same checks gate `pytest benchmarks/`).

Two systematic deviations are documented in DESIGN.md §9: (1) the paper's
"Charm D-vs-H gap larger than MPI's" ordering only emerges from ~64 nodes
in our model (below that, MPI's fully-exposed communication makes its gap
temporarily larger); (2) regime onsets (fusion payoff, ODF crossovers)
arrive at smaller node counts than on Summit because the model lacks
Summit's noise floor.
"""

FOOTER = """\
---

**Summary: {n_pass}/{n_claims} machine-checked shape claims pass.**

Reproduction inventory (DESIGN.md has the full mapping):

| paper element | reproduction |
|---|---|
| Summit hardware | `repro.hardware` discrete-event model (specs in `hardware/specs.py`) |
| Charm++ runtime + HAPI + Channel/GPU-Messaging APIs | `repro.runtime` |
| UCX protocol stack | `repro.comm` |
| IBM Spectrum MPI baseline | `repro.mpi` |
| Jacobi3D (4 versions, fusion A/B/C, CUDA Graphs, legacy baseline) | `repro.apps.jacobi3d` |
| Nsight-style profiling | `repro.sim.tracing` (+ Perfetto export) |
| future work / motivations: AMPI, load balancing, fault tolerance | `repro.ampi`, `runtime/balancer.py`, `runtime/checkpoint.py` |
"""


if __name__ == "__main__":
    raise SystemExit(main())
