#!/usr/bin/env python3
"""Quickstart: run GPU-aware asynchronous-task Jacobi3D on a simulated cluster.

Runs the paper's proxy app (Charm++-style chares + Channel API) in
*functional* mode — every stencil point is really computed with NumPy — and
verifies the distributed result is bit-identical to a serial solve, then
reports the modeled performance.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro.apps import AppContext, Jacobi3DConfig, run_jacobi3d
from repro.kernels import reference_solve


def main() -> None:
    config = Jacobi3DConfig(
        version="charm-d",        # Charm++ + GPU-aware Channel API
        nodes=2,                  # two Summit-like nodes (6 GPUs each)
        grid=(96, 96, 96),        # global grid (functional mode => keep small)
        odf=2,                    # 2 chares per GPU: overdecomposition
        iterations=20,
        warmup=2,
        data_mode="functional",   # real NumPy blocks, not just a timing model
    )
    print(f"Running {config.version} on {config.nodes} nodes "
          f"({config.n_pes()} GPUs, {config.n_blocks()} chares), "
          f"grid {config.grid}, {config.total_iterations} iterations...")
    result = run_jacobi3d(config)

    # --- numerics: distributed == serial, exactly -------------------------
    geometry = AppContext(config).geometry
    distributed = result.assemble_grid(geometry)
    serial = reference_solve(config.grid, config.total_iterations)[1:-1, 1:-1, 1:-1]
    exact = np.array_equal(distributed, serial)
    print(f"bit-identical to the serial reference: {exact}")
    if not exact:
        raise SystemExit("numerical mismatch — this is a bug")

    # --- modeled performance ----------------------------------------------
    print(f"\n{result.summary()}")
    print(f"  time/iteration : {result.time_per_iteration * 1e6:9.1f} us")
    print(f"  GPU utilization: {result.gpu_utilization * 100:9.1f} %")
    print(f"  comp-comm overlap: {result.overlap_s * 1e6:7.1f} us of GPU time")
    print(f"  messages sent  : {result.messages_sent:9d} "
          f"({result.bytes_sent / 2**20:.1f} MiB)")
    print(f"  protocols      : "
          + ", ".join(f"{p.value}={n}" for p, n in sorted(
              result.protocol_counts.items(), key=lambda kv: kv[0].value)))


if __name__ == "__main__":
    main()
