#!/usr/bin/env python3
"""Solve a heat problem to convergence with asynchronous tasks + reductions.

Unlike the fixed-iteration proxy benchmarks, a real application iterates
*until converged*.  This example writes a custom chare directly against the
runtime's public API: blocks exchange halos through the Channel API, update
with real NumPy stencils, and every ``CHECK_EVERY`` iterations join an
``allreduce`` on the residual to decide — collectively — whether to stop.

Usage:  python examples/heat_until_converged.py
"""

import numpy as np

from repro.apps import BlockGeometry
from repro.hardware import Cluster, MachineSpec
from repro.kernels import (
    FACES,
    alloc_block,
    apply_boundary,
    hot_top_boundary,
    jacobi_update,
    opposite,
    pack_face,
    unpack_face,
    update_work,
    pack_work,
    unpack_work,
)
from repro.runtime import Chare, CharmRuntime
from repro.sim import Engine

GRID = (48, 48, 48)
TOLERANCE = 2e-4
CHECK_EVERY = 10
MAX_ITERS = 2000


class HeatBlock(Chare):
    """A block of the heat equation, iterating until global convergence."""

    geometry: BlockGeometry = None  # set before array creation
    finished = {}

    def init(self):
        geo = self.geometry
        self.dims = geo.block_dims(self.index)
        self.neighbors = geo.neighbors(self.index)
        self.u = alloc_block(self.dims)
        apply_boundary(self.u, hot_top_boundary, geo.grid,
                       offset=geo.block_offset(self.index))
        self.out = self.u.copy()
        self.comm_stream = self.gpu.create_stream(priority=0)
        self.update_stream = self.gpu.create_stream(priority=10)
        self.gpu.malloc(2 * 8 * int(np.prod(self.dims)))

    def run(self, msg):
        geo = self.geometry
        update = update_work(self.dims)
        it = 0
        prev_update = None
        while True:
            # Pack and exchange halos (device buffers over the Channel API).
            deps = [prev_update] if prev_update else []
            packed = {}
            for face, nbr in self.neighbors.items():
                op = yield self.launch(
                    self.comm_stream, pack_work(geo.face_cells(self.index, face)),
                    wait=deps)
                packed[face] = pack_face(self.u, face)
            for face, nbr in self.neighbors.items():
                ch = self.channel_to(nbr)
                size = 8 * geo.face_cells(self.index, face)
                ch.send(size, mailbox="evt", ref=it, payload=packed[face],
                        note=("sent", face))
                ch.recv(size, mailbox="evt", ref=it, note=("recv", face))
            unpack_events = []
            for _ in range(2 * len(self.neighbors)):
                m = yield self.when("evt", ref=it)
                (kind, face), halo = m.payload
                if kind == "recv":
                    unpack_face(self.u, face, halo)
                    op = yield self.launch(
                        self.comm_stream,
                        unpack_work(geo.face_cells(self.index, face)))
                    unpack_events.append(op.done)
            # Jacobi update (model + real numerics).
            op = yield self.launch(self.update_stream, update, wait=unpack_events)
            prev_update = op.done
            jacobi_update(self.u, self.out)
            local_residual = float(
                np.max(np.abs(self.out[1:-1, 1:-1, 1:-1] - self.u[1:-1, 1:-1, 1:-1])))
            self.u, self.out = self.out, self.u
            it += 1
            # Collective convergence check (a real allreduce with messages).
            if it % CHECK_EVERY == 0 or it >= MAX_ITERS:
                worst = yield from self.allreduce(local_residual, op="max")
                if worst < TOLERANCE or it >= MAX_ITERS:
                    HeatBlock.finished[self.index] = (it, worst)
                    return


def main() -> None:
    engine = Engine()
    cluster = Cluster(engine, MachineSpec.summit(), 1)
    runtime = CharmRuntime(cluster)
    geometry = BlockGeometry.auto(cluster.n_pes * 2, GRID)  # ODF 2

    HeatBlock.geometry = geometry
    HeatBlock.finished = {}
    blocks = runtime.create_array(HeatBlock, shape=geometry.shape)
    print(f"Solving heat equation on {GRID} with {len(blocks)} chares "
          f"({cluster.n_pes} GPUs, ODF 2), tolerance {TOLERANCE}...")
    blocks.broadcast("run")
    runtime.run()

    iters, residual = next(iter(HeatBlock.finished.values()))
    assert all(v == (iters, residual) for v in HeatBlock.finished.values())
    print(f"converged after {iters} iterations "
          f"(max residual {residual:.2e} < {TOLERANCE})")
    print(f"simulated wall time: {engine.now * 1e3:.2f} ms "
          f"({engine.now / iters * 1e6:.1f} us/iteration)")
    mid = blocks.element(tuple(s // 2 for s in geometry.shape))
    print(f"sample temperature at domain centre: {mid.u[1:-1, 1:-1, 1:-1].mean():.4f}")


if __name__ == "__main__":
    main()
