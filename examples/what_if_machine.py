#!/usr/bin/env python3
"""What-if studies: re-run the paper on machines that don't exist.

The whole machine model is a frozen spec, so counterfactuals are one-liner
edits.  Three questions the paper raises but cannot answer on Summit:

1. What if UCX never fell back to pipelined host staging (a perfect
   GPUDirect for any size)?  -> the Fig. 7a inversion disappears.
2. What if kernel launches were 10x cheaper?  -> fusion stops mattering.
3. What if the network were 4x slower?  -> overlap pays at even smaller
   problem sizes.

Usage:  python examples/what_if_machine.py
"""

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.hardware import GiB, MachineSpec


def per_iter(machine, version, grid, nodes=4, odf=1, **kw) -> float:
    cfg = Jacobi3DConfig(version=version, nodes=nodes, grid=grid, odf=odf,
                         machine=machine, iterations=5, warmup=1, **kw)
    return run_jacobi3d(cfg).time_per_iteration


def main() -> None:
    summit = MachineSpec.summit()
    big = (1536, 3072, 3072)  # 1536^3/node on 4 nodes

    print("1) Remove the pipelined-host-staging fallback (GPUDirect for all sizes)")
    dreamy = summit.with_ucx(device_pipeline_threshold=1 * GiB)
    for machine, name in ((summit, "summit"), (dreamy, "no-pipeline-fallback")):
        h = per_iter(machine, "charm-h", big, odf=4)
        d = per_iter(machine, "charm-d", big, odf=4)
        verdict = "GPU-aware LOSES" if d > h else "GPU-aware WINS"
        print(f"   {name:24s}: charm-h {h*1e3:7.3f} ms, charm-d {d*1e3:7.3f} ms -> {verdict}")

    print("\n2) Make kernel launches 10x cheaper (ODF-8, 768^3 strong scaling)")
    cheap = summit.with_gpu(kernel_launch_cpu_s=0.65e-6, kernel_launch_device_s=0.25e-6)
    for machine, name in ((summit, "summit"), (cheap, "cheap-launches")):
        base = per_iter(machine, "charm-d", (768, 768, 768), nodes=16, odf=8)
        fused = per_iter(machine, "charm-d", (768, 768, 768), nodes=16, odf=8, fusion="C")
        print(f"   {name:24s}: baseline {base*1e6:7.1f} us, fusion-C {fused*1e6:7.1f} us "
              f"-> fusion buys {base/fused:.2f}x")

    print("\n3) Cut network bandwidth 4x (192^3/node weak scaling, where overlap")
    print("   normally does NOT pay)")
    slow = summit.with_nic(injection_bandwidth=23e9 / 4)
    small = (192, 384, 384)
    for machine, name in ((summit, "summit"), (slow, "quarter-bandwidth")):
        odf1 = per_iter(machine, "charm-d", small, odf=1)
        odf4 = per_iter(machine, "charm-d", small, odf=4)
        verdict = "overdecomposition WINS" if odf4 < odf1 else "ODF-1 stays best"
        print(f"   {name:24s}: ODF-1 {odf1*1e6:7.1f} us, ODF-4 {odf4*1e6:7.1f} us "
              f"-> {verdict}")


if __name__ == "__main__":
    main()
