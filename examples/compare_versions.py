#!/usr/bin/env python3
"""The paper in miniature: compare MPI-H / MPI-D / Charm-H / Charm-D.

Reproduces the §IV-B story on a reduced ladder:

* large problem (1536³/node): overdecomposition wins, GPU-aware *loses*
  (pipelined host staging for multi-MB halos);
* small problem (192³/node): GPU-aware wins, overdecomposition loses.

Usage:  python examples/compare_versions.py [--nodes 1 2 4 8]
"""

import argparse

from repro.analysis import render_figure
from repro.core import (
    check_figure7a,
    check_figure7b,
    figure7a,
    figure7b,
    odf_sweep,
    render_claims,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 8],
                        help="weak-scaling node ladder (powers of two)")
    args = parser.parse_args()

    print("=" * 72)
    print("Large problem: 1536^3 per node (halos up to ~9 MB)")
    print("=" * 72)
    fig_a = figure7a(nodes=args.nodes, progress=lambda s: print("  " + s))
    print()
    print(render_figure(fig_a))
    print(render_claims(check_figure7a(fig_a)))

    print()
    print("=" * 72)
    print("Small problem: 192^3 per node (halos up to 96 KB)")
    print("=" * 72)
    fig_b = figure7b(nodes=args.nodes, progress=lambda s: print("  " + s))
    print()
    print(render_figure(fig_b))
    print(render_claims(check_figure7b(fig_b)))

    print()
    print("=" * 72)
    print("Overdecomposition sweep at the largest ladder point")
    print("=" * 72)
    sweep = odf_sweep(base=(1536, 1536, 1536), nodes=max(args.nodes),
                      odfs=(1, 2, 4, 8))
    print(render_figure(sweep, plot=False))


if __name__ == "__main__":
    main()
