#!/usr/bin/env python3
"""Fault tolerance: checkpoint, lose a node, restart — and lose no physics.

Overdecomposition decouples chares from PEs, so after a node failure the
*same* 24 blocks simply restart on the surviving node at twice the ODF.
Double in-memory checkpointing (each PE's chares mirrored on a buddy node)
guarantees a live copy of every block after any single-node failure.

The kicker is the last line: the restarted computation is bit-identical to
an uninterrupted serial solve of all 12 iterations.

Usage:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.apps import AppContext, Jacobi3DConfig, run_jacobi3d
from repro.hardware import Cluster, MachineSpec
from repro.kernels import reference_solve
from repro.runtime import CharmRuntime, restore_array, take_checkpoint
from repro.apps.jacobi3d.charm_app import make_block_class

GRID = (48, 48, 48)
PHASE_ITERS = 6


def main() -> None:
    machine = MachineSpec.summit()

    # ---- phase 1: 2 nodes, ODF 2 (24 chares on 12 GPUs) -------------------
    cfg1 = Jacobi3DConfig(version="charm-d", nodes=2, grid=GRID, odf=2,
                          iterations=PHASE_ITERS, warmup=0,
                          data_mode="functional", machine=machine)
    print(f"phase 1: {cfg1.n_blocks()} chares on {cfg1.n_pes()} GPUs "
          f"(2 nodes, ODF {cfg1.odf}), {PHASE_ITERS} iterations")
    res1 = run_jacobi3d(cfg1)
    print(f"  done at t={res1.total_time * 1e3:.2f} ms simulated")

    # ---- checkpoint with modeled buddy-copy cost ---------------------------
    # (demonstrated on a fresh runtime holding the same states: run_jacobi3d
    # returns block interiors; the runtime-level API prices the buddy copies)
    engine_cost = _checkpoint_cost_demo(cfg1, res1)
    print(f"  checkpoint: double in-memory, buddy copies cost "
          f"{engine_cost * 1e3:.3f} ms of network time")

    # ---- failure + restart on the surviving node ---------------------------
    print("\nnode 1 FAILS.")
    cfg2 = Jacobi3DConfig(version="charm-d", nodes=1, grid=GRID, odf=4,
                          iterations=PHASE_ITERS, warmup=0,
                          data_mode="functional", machine=machine)
    assert cfg2.n_blocks() == cfg1.n_blocks()
    print(f"phase 2: restart the same {cfg2.n_blocks()} chares on "
          f"{cfg2.n_pes()} GPUs (1 node, ODF {cfg2.odf}), "
          f"{PHASE_ITERS} more iterations")
    res2 = run_jacobi3d(cfg2, initial_state=res1.blocks)
    print(f"  done at t={res2.total_time * 1e3:.2f} ms simulated "
          f"({res2.time_per_iteration * 1e6:.1f} us/iter on half the GPUs)")

    # ---- the proof ----------------------------------------------------------
    final = res2.assemble_grid(AppContext(cfg2).geometry)
    ref = reference_solve(GRID, 2 * PHASE_ITERS)[1:-1, 1:-1, 1:-1]
    exact = np.array_equal(final, ref)
    print(f"\nrestarted result bit-identical to an uninterrupted "
          f"{2 * PHASE_ITERS}-iteration solve: {exact}")
    if not exact:
        raise SystemExit("numerical mismatch after restart — bug")


def _checkpoint_cost_demo(cfg, res) -> float:
    """Price the buddy-copy traffic of a checkpoint of this state using the
    runtime-level API on a fresh quiesced runtime."""
    from repro.runtime import Chare
    from repro.sim import Engine

    engine = Engine()
    cluster = Cluster(engine, cfg.machine, cfg.nodes)
    runtime = CharmRuntime(cluster)
    blocks = res.blocks

    class Holder(Chare):
        def pup(self):
            return {"interior": blocks[self.index]}

        def unpup(self, state):
            pass

    geo = AppContext(cfg).geometry
    array = runtime.create_array(Holder, shape=geo.shape)
    ckpt = take_checkpoint(runtime, array)
    # Round-trip sanity: the checkpoint must survive either single failure.
    assert ckpt.survives([0]) and ckpt.survives([1])
    restore_array(array, ckpt, failed_nodes=[1])
    return ckpt.cost_seconds


if __name__ == "__main__":
    main()
