#!/usr/bin/env python3
"""Dynamic load balancing — the adaptivity overdecomposition pays for.

A Jacobi-like computation with a *hotspot*: blocks near one corner of the
domain carry 6x the work (think adaptive refinement or embedded chemistry).
With one block per GPU there is nothing the runtime can do; with ODF 4 the
runtime can measure per-chare load and migrate chares (GreedyLB) so every
GPU carries a similar total.

Usage:  python examples/load_balancing.py
"""

from repro.apps import BlockGeometry
from repro.hardware import Cluster, MachineSpec
from repro.kernels import pack_work, unpack_work, update_work
from repro.runtime import Chare, CharmRuntime, LoadRecorder, apply_rebalance, greedy_map
from repro.sim import Engine

NODES = 2
ODF = 4
GRID = (768, 768, 768)
ITERATIONS = 8
HOT_FACTOR = 6.0


def hot_weight(index, shape) -> float:
    """Blocks in the low corner (an eighth of the domain) are hot."""
    hot = all(i < max(1, s // 2) for i, s in zip(index, shape))
    return HOT_FACTOR if hot else 1.0


class HotspotBlock(Chare):
    geometry: BlockGeometry = None

    def init(self):
        geo = self.geometry
        self.dims = geo.block_dims(self.index)
        self.neighbors = geo.neighbors(self.index)
        self.weight = hot_weight(self.index, geo.shape)
        base = update_work(self.dims)
        self.update_k = type(base)(bytes_moved=base.bytes_moved * self.weight,
                                   flops=base.flops * self.weight,
                                   efficiency=base.efficiency)
        self._make_streams()

    def _make_streams(self):
        self.comm_stream = self.gpu.create_stream(priority=0)
        self.update_stream = self.gpu.create_stream(priority=10)

    def on_migrate(self):
        self._make_streams()  # device state lives on the new GPU now

    def run(self, msg):
        geo = self.geometry
        prev = None
        spent = 0.0
        for it in range(ITERATIONS):
            deps = [prev] if prev else []
            packs = []
            for face, nbr in self.neighbors.items():
                op = yield self.launch(
                    self.comm_stream, pack_work(geo.face_cells(self.index, face)),
                    wait=deps)
                packs.append(op.done)
            if packs:
                yield self.wait_all(packs)
            for face, nbr in self.neighbors.items():
                ch = self.channel_to(nbr)
                size = 8 * geo.face_cells(self.index, face)
                ch.send(size, mailbox="evt", ref=it, note=("s", face))
                ch.recv(size, mailbox="evt", ref=it, note=("r", face))
            unpacks = []
            for _ in range(2 * len(self.neighbors)):
                m = yield self.when("evt", ref=it)
                (kind, face), _ = m.payload
                if kind == "r":
                    op = yield self.launch(
                        self.comm_stream,
                        unpack_work(geo.face_cells(self.index, face)))
                    unpacks.append(op.done)
            op = yield self.launch(self.update_stream, self.update_k, wait=unpacks)
            prev = op.done
            spent += self.update_k.duration(self.gpu.spec, self.gpu.link)
        yield self.wait(prev)
        self.notify("load", seconds=spent)


def phase(runtime, blocks) -> float:
    t0 = runtime.engine.now
    blocks.broadcast("run")
    runtime.run()
    return runtime.engine.now - t0


def main() -> None:
    engine = Engine()
    cluster = Cluster(engine, MachineSpec.summit(), NODES)
    runtime = CharmRuntime(cluster)
    recorder = LoadRecorder()
    runtime.observe(recorder.on_event)

    geometry = BlockGeometry.auto(cluster.n_pes * ODF, GRID)
    HotspotBlock.geometry = geometry
    blocks = runtime.create_array(HotspotBlock, shape=geometry.shape)
    hot = sum(1 for idx in geometry.indices()
              if hot_weight(idx, geometry.shape) > 1)
    print(f"{len(blocks)} chares on {cluster.n_pes} GPUs (ODF {ODF}); "
          f"{hot} hot chares at {HOT_FACTOR:.0f}x cost\n")

    before = phase(runtime, blocks)
    imb = recorder.imbalance(blocks.mapping, cluster.n_pes)
    print(f"phase 1 (block map):   {before * 1e3:8.2f} ms   "
          f"load imbalance {imb:.2f}x")

    stats = apply_rebalance(runtime, blocks, greedy_map(recorder.loads, cluster.n_pes),
                            state_bytes=lambda c: 8 * c.dims[0] * c.dims[1] * c.dims[2])
    print(f"GreedyLB migration:    {stats.moves} chares, "
          f"{stats.bytes_moved / 2**20:.0f} MiB, "
          f"{stats.migration_seconds * 1e3:.2f} ms")

    recorder.reset()
    after = phase(runtime, blocks)
    imb2 = recorder.imbalance(blocks.mapping, cluster.n_pes)
    print(f"phase 2 (rebalanced):  {after * 1e3:8.2f} ms   "
          f"load imbalance {imb2:.2f}x")
    speedup = before / after
    print(f"\nspeedup from load balancing: {speedup:.2f}x "
          f"(migration paid back in "
          f"{stats.migration_seconds / max(1e-12, (before - after)) * ITERATIONS:.1f} "
          f"iterations)")


if __name__ == "__main__":
    main()
