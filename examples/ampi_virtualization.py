#!/usr/bin/env python3
"""AMPI: the same MPI program, virtualized — overlap without code changes.

The paper leaves Adaptive MPI as future work (§II-A); this example explores
it.  One rank program (post receives, pack, send, wait, update — classic
bulk-synchronous MPI) runs twice:

* under :class:`repro.mpi.MpiWorld` — one rank per GPU, blocking waits spin
  the core;
* under :class:`repro.ampi.AmpiWorld` with a virtualization ratio of 4 —
  the *identical* ``main()`` runs as chares, so a rank blocked in
  ``MPI_Waitall`` yields its PE and other virtual ranks keep the GPU fed.

Virtualization helps twice here: blocked waits overlap with other virtual
ranks' compute, and the smaller per-rank blocks push halo messages below
the UCX pipeline threshold, onto the fast GPUDirect path.

Usage:  python examples/ampi_virtualization.py
"""

from repro.ampi import AmpiProcess, AmpiWorld
from repro.apps import BlockGeometry
from repro.hardware import Cluster, MachineSpec
from repro.kernels import opposite, pack_work, unpack_work, update_work
from repro.mpi import MpiProcess, MpiWorld
from repro.runtime import linearize
from repro.sim import Engine

NODES = 2
GRID = (768, 768, 1536)
ITERATIONS = 5


class JacobiRankProgram:
    """Rank logic shared verbatim between MPI and AMPI (a mixin)."""

    geometry: BlockGeometry = None

    def main(self, msg=None):
        geo = self.geometry
        shape = geo.shape
        px, py, pz = shape
        x, rem = divmod(self.rank, py * pz)
        y, z = divmod(rem, pz)
        index = (x, y, z)
        dims = geo.block_dims(index)
        neighbors = geo.neighbors(index)
        comm = self.gpu.create_stream(priority=0)
        upd_stream = self.gpu.create_stream(priority=10)
        update = update_work(dims)
        prev = None
        for it in range(ITERATIONS):
            recvs = []
            for face, nbr in neighbors.items():
                size = 8 * geo.face_cells(index, face)
                recvs.append((yield self.irecv(linearize(nbr, shape), size,
                                               tag=(it, face), device=True)))
            deps = [prev] if prev else []
            packs = []
            for face in neighbors:
                op = yield self.launch(comm, pack_work(geo.face_cells(index, face)),
                                       wait=deps)
                packs.append(op.done)
            if packs:
                yield self.sync(self.world.engine.all_of(packs))
            sends = []
            for face, nbr in neighbors.items():
                size = 8 * geo.face_cells(index, face)
                sends.append((yield self.isend(linearize(nbr, shape), size,
                                               tag=(it, opposite(face)), device=True)))
            yield self.waitall(recvs + sends)
            unpacks = []
            for face in neighbors:
                op = yield self.launch(comm, unpack_work(geo.face_cells(index, face)))
                unpacks.append(op.done)
            op = yield self.launch(upd_stream, update, wait=unpacks)
            prev = op.done
            yield self.sync(prev)


class PlainRank(JacobiRankProgram, MpiProcess):
    pass


class VirtualRank(JacobiRankProgram, AmpiProcess):
    pass


def main() -> None:
    # Plain MPI: 12 ranks on 12 GPUs.
    eng1 = Engine()
    c1 = Cluster(eng1, MachineSpec.summit(), NODES)
    JacobiRankProgram.geometry = BlockGeometry.auto(c1.n_pes, GRID)
    w1 = MpiWorld(c1)
    w1.launch(PlainRank)
    w1.run()
    mpi_time = eng1.now
    mpi_busy = sum(pe.busy.busy_seconds() for pe in c1.all_pes())

    # AMPI: 48 virtual ranks on the same 12 GPUs (ratio 4).
    eng2 = Engine()
    c2 = Cluster(eng2, MachineSpec.summit(), NODES)
    JacobiRankProgram.geometry = BlockGeometry.auto(c2.n_pes * 4, GRID)
    w2 = AmpiWorld(c2, vranks=c2.n_pes * 4)
    w2.launch(VirtualRank)
    w2.run()
    ampi_time = eng2.now

    print(f"identical rank program, {ITERATIONS} Jacobi iterations on "
          f"{NODES} nodes ({c1.n_pes} GPUs):\n")
    print(f"  MPI   (1 rank/GPU):          {mpi_time * 1e3:8.2f} ms  "
          f"(CPU cores busy {mpi_busy * 1e3:.1f} ms — spinning in waits)")
    print(f"  AMPI  (4 virtual ranks/GPU): {ampi_time * 1e3:8.2f} ms  "
          f"(ratio {w2.virtualization_ratio:.0f}x)")
    print(f"\n  speedup from virtualization-driven overlap: "
          f"{mpi_time / ampi_time:.2f}x")


if __name__ == "__main__":
    main()
