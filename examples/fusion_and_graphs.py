#!/usr/bin/env python3
"""Fighting fine-grained overheads: kernel fusion and CUDA Graphs.

Strong-scales a small 768³ grid (the paper's §III-D workload) and shows:

* fusion strategies A/B/C cutting launch overheads — modest at ODF 1,
  dramatic at ODF 8 where launches saturate the host core;
* CUDA Graphs amortizing launch CPU time, with benefit that *shrinks* as
  fusion removes the launches graphs would have amortized.

Usage:  python examples/fusion_and_graphs.py [--nodes 1 4 16]
"""

import argparse

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.kernels import FusionStrategy, kernel_launches_per_iteration


def run(nodes: int, odf: int, fusion, graphs: bool) -> float:
    cfg = Jacobi3DConfig(
        version="charm-d", nodes=nodes, grid=(768, 768, 768), odf=odf,
        fusion=fusion, cuda_graphs=graphs, iterations=6, warmup=1,
    )
    return run_jacobi3d(cfg).time_per_iteration


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+", default=[1, 4, 16])
    args = parser.parse_args()

    print("Kernel launches per iteration (interior block):")
    for strat in FusionStrategy:
        print(f"  {strat.value:8s} -> {kernel_launches_per_iteration(strat, 6):2d} launches")

    for odf in (1, 8):
        print(f"\n=== ODF {odf}: time per iteration (us) ===")
        header = f"{'nodes':>6} | " + " | ".join(
            f"{s.value:>8}" for s in FusionStrategy) + " |   graphs | graphs+C"
        print(header)
        print("-" * len(header))
        for n in args.nodes:
            cells = [f"{run(n, odf, s, False) * 1e6:8.1f}" for s in FusionStrategy]
            g = run(n, odf, FusionStrategy.NONE, True) * 1e6
            gc = run(n, odf, FusionStrategy.C, True) * 1e6
            print(f"{n:>6} | " + " | ".join(cells) + f" | {g:8.1f} | {gc:8.1f}")

    print("\nReading the table: at ODF 8 the per-PE launch load is 8x higher, "
          "so fusion-C and CUDA Graphs recover most of the lost time; "
          "combining them leaves graphs little left to amortize.")


if __name__ == "__main__":
    main()
