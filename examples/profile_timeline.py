#!/usr/bin/env python3
"""Export a Perfetto/Chrome timeline of a Jacobi3D run.

The paper used NVIDIA Nsight Systems to discover the stream-concurrency
optimization (§III-C) and the UCX protocol switch (§IV-B).  The simulator's
tracer plays that role: this script runs two chares' worth of Jacobi3D and
writes every GPU operation and network transfer as a timeline you can open
at https://ui.perfetto.dev.

Usage:  python examples/profile_timeline.py [out.trace.json]
"""

import json
import sys

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.hardware import MachineSpec
from repro.sim import Tracer, to_chrome_trace


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "jacobi3d.trace.json"
    tracer = Tracer(categories=["gpu.", "net.", "ucx."])
    config = Jacobi3DConfig(
        version="charm-d",
        nodes=2,
        grid=(768, 768, 1536),
        odf=2,
        iterations=3,
        warmup=1,
        machine=MachineSpec.small_debug(),
    )
    result = run_jacobi3d(config, tracer=tracer)
    events = to_chrome_trace(tracer)
    with open(out_path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)

    kinds = {}
    for ev in events:
        kinds[ev["cat"]] = kinds.get(ev["cat"], 0) + 1
    print(result.summary())
    print(f"wrote {len(events)} timeline events to {out_path}:")
    for cat, n in sorted(kinds.items()):
        print(f"  {cat:16s} {n:6d}")
    print("open it at https://ui.perfetto.dev (or chrome://tracing)")


if __name__ == "__main__":
    main()
