"""Figure 8: kernel-fusion strategies A/B/C on GPU-aware Charm++ Jacobi3D,
768³ strong scaling at ODF 1 and ODF 8.

Fusion attacks kernel-launch overhead; its gains grow with scale (smaller
kernels) and with overdecomposition (more of them): strategy C reaches
~20 % at ODF-1 and ~50 % at ODF-8 in the paper.
"""

from conftest import ladder, report

from repro.core import check_figure8, figure8


def test_fig8_kernel_fusion(benchmark, progress, runner):
    fig = benchmark.pedantic(
        lambda: figure8(nodes=ladder("fig8"), progress=progress, runner=runner),
        rounds=1, iterations=1,
    )
    report(fig, check_figure8(fig), runner=runner)
