"""Figure 6: Charm-H before/after the baseline optimizations (§III-C).

Regenerates both panels: weak scaling at 1536³/node and strong scaling of
the 3072³ grid, ODF 4, host-staging communication.
"""

from conftest import ladder, report

from repro.core import check_figure6, figure6


def test_fig6a_weak_baseline_optimizations(benchmark, progress, runner):
    fig = benchmark.pedantic(
        lambda: figure6(mode="weak", nodes=ladder("fig6"), progress=progress,
                        runner=runner),
        rounds=1, iterations=1,
    )
    report(fig, check_figure6(fig), runner=runner)


def test_fig6b_strong_baseline_optimizations(benchmark, progress, runner):
    fig = benchmark.pedantic(
        lambda: figure6(mode="strong", nodes=ladder("fig6b"), progress=progress,
                        runner=runner),
        rounds=1, iterations=1,
    )
    report(fig, check_figure6(fig), runner=runner)
