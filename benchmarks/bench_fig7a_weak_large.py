"""Figure 7a: weak scaling at 1536³ per node (up to ~9 MB halos).

The headline inversion: GPU-aware communication (pipelined host staging for
large device buffers) *degrades* performance versus host staging, from
2 nodes for Charm++ and 8 nodes for MPI, while overdecomposition-driven
overlap keeps the Charm++ curves flatter than MPI's.
"""

from conftest import ladder, report

from repro.core import check_figure7a, figure7a


def test_fig7a_weak_scaling_large_problem(benchmark, progress, runner):
    fig = benchmark.pedantic(
        lambda: figure7a(nodes=ladder("fig7a"), progress=progress, runner=runner),
        rounds=1, iterations=1,
    )
    report(fig, check_figure7a(fig), runner=runner)
