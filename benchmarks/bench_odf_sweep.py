"""§IV-B ODF sweeps: the overdecomposition sweet spot depends on problem
size — ODF ~4 for the 1536³/node problem (overlap pays), ODF 1 for the
192³/node problem (runtime overheads dominate at tiny grain)."""

from conftest import report

from repro.core import check_odf_sweep, odf_sweep


def test_odf_sweep_large_problem(benchmark, progress, runner):
    fig = benchmark.pedantic(
        lambda: odf_sweep(base=(1536, 1536, 1536), nodes=8,
                          odfs=(1, 2, 4, 8, 16), progress=progress, runner=runner),
        rounds=1, iterations=1,
    )
    fig.figure_id = "odf_sweep_1536"
    report(fig, check_odf_sweep(fig, {"charm-h": (2, 4, 8), "charm-d": (2, 4, 8, 16)}),
           runner=runner)


def test_odf_sweep_small_problem(benchmark, progress, runner):
    fig = benchmark.pedantic(
        lambda: odf_sweep(base=(192, 192, 192), nodes=8,
                          odfs=(1, 2, 4, 8), progress=progress, runner=runner),
        rounds=1, iterations=1,
    )
    fig.figure_id = "odf_sweep_192"
    report(fig, check_odf_sweep(fig, {"charm-h": (1,), "charm-d": (1,)}),
           runner=runner)
