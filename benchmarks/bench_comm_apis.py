"""Charm++ communication mechanisms (§II-B): entry messages vs the GPU
Messaging API vs the Channel API, across message sizes.

The Channel API exists because the GPU Messaging API pays a post-entry-
method round trip on every receive; both are compared here under identical
ping-ack methodology.
"""

from conftest import report

from repro.core import Claim, comm_api_comparison
from repro.hardware import KiB, MiB


def test_comm_api_latency_comparison(benchmark):
    fig = benchmark.pedantic(
        lambda: comm_api_comparison(sizes=(1 * KiB, 8 * KiB, 64 * KiB,
                                           512 * KiB, 4 * MiB)),
        rounds=1, iterations=1,
    )
    ch, gm = fig.series["channel"], fig.series["gpu_messaging"]
    claims = [
        Claim(
            "Channel API beats GPU Messaging API at every size",
            all(ch.y_at(x) < gm.y_at(x) for x in ch.xs()),
        ),
        Claim(
            # Not strictly monotone: the eager->GPUDirect protocol switch
            # makes 64 KiB device messages cheaper than eager-staged 1 KiB.
            "large messages cost more than small ones (per series)",
            all(s.ys()[-1] > s.ys()[0] for s in fig.series.values()),
        ),
    ]
    report(fig, claims)
