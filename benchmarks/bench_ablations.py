"""Ablations of the model's design choices (DESIGN.md §5 knobs).

Not a paper figure — these justify the calibration by showing each
mechanism carries its observed effect:

* the UCX device-pipeline threshold *causes* the Fig. 7a inversion
  (raise it to infinity and GPU-aware wins);
* kernel-launch overhead *causes* the fusion gains of Fig. 8
  (make launches cheap and fusion stops paying);
* the pipeline-concurrency penalty (OFF by default) widens the Fig. 7a
  gap but corrupts Fig. 7c's ODF preference — why it ships disabled.
"""

from conftest import make_runner, report

from repro.analysis import FigureData
from repro.apps import Jacobi3DConfig
from repro.core import Claim
from repro.hardware import GiB, MachineSpec

#: Ablations run point-by-point (machine variants interleaved), so they
#: share one module-level runner: the cache makes re-runs instant, and the
#: ablated machines hash to distinct keys (the full MachineSpec is part of
#: the cache identity).
_RUNNER = make_runner()


def _per_iter(machine, **kw):
    kw.setdefault("iterations", 5)
    kw.setdefault("warmup", 1)
    config = Jacobi3DConfig(machine=machine, **kw)
    return _RUNNER.run_configs([config])[0].time_per_iteration


def test_pipeline_threshold_causes_fig7a_inversion(benchmark):
    summit = MachineSpec.summit()
    no_pipeline = summit.with_ucx(device_pipeline_threshold=1 * GiB)
    grid = (3072, 3072, 3072)

    def run():
        fig = FigureData("ablation_pipeline", "Pipeline-threshold ablation (8 nodes, 1536^3/node)",
                         "machine", "time/iter (s)")
        for name, machine in (("summit", summit), ("no-pipeline", no_pipeline)):
            h = _per_iter(machine, version="charm-h", nodes=8, grid=grid, odf=4)
            d = _per_iter(machine, version="charm-d", nodes=8, grid=grid, odf=4)
            fig.new_series(f"{name} charm-h").add(8, h)
            fig.new_series(f"{name} charm-d").add(8, d)
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    claims = [
        Claim("with pipelined staging, GPU-aware loses",
              fig.series["summit charm-d"].y_at(8) > fig.series["summit charm-h"].y_at(8)),
        Claim("without the pipeline fallback, GPU-aware wins",
              fig.series["no-pipeline charm-d"].y_at(8)
              < fig.series["no-pipeline charm-h"].y_at(8)),
    ]
    report(fig, claims)


def test_launch_overhead_causes_fusion_gains(benchmark):
    summit = MachineSpec.summit()
    cheap = summit.with_gpu(kernel_launch_cpu_s=0.65e-6, kernel_launch_device_s=0.25e-6)
    grid = (768, 768, 768)

    def run():
        fig = FigureData("ablation_launch", "Launch-overhead ablation (16 nodes, ODF 8)",
                         "machine", "fusion-C speedup (x)")
        for name, machine in (("summit", summit), ("cheap-launches", cheap)):
            base = _per_iter(machine, version="charm-d", nodes=16, grid=grid, odf=8)
            fused = _per_iter(machine, version="charm-d", nodes=16, grid=grid, odf=8,
                              fusion="C")
            fig.new_series(name).add(16, base / fused)
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    claims = [
        Claim("fusion pays on Summit-like launch costs (>1.5x)",
              fig.series["summit"].y_at(16) > 1.5,
              f"{fig.series['summit'].y_at(16):.2f}x"),
        Claim("cheap launches shrink the fusion benefit",
              fig.series["cheap-launches"].y_at(16) < fig.series["summit"].y_at(16)),
    ]
    report(fig, claims)


def test_concurrency_penalty_microbench(benchmark):
    """The optional stacking knob, measured at the protocol level: 16
    concurrent pipelined sends from one GPU drain slower when the penalty
    models UCX progress-context degradation.  (Ships disabled: at app level
    the extra wire time is usually hidden by overlap, and enabling it flips
    Charm-D's strong-scaling ODF preference — see specs.py.)"""
    from repro.comm import UcxContext
    from repro.hardware import Cluster, MiB
    from repro.sim import Engine

    def drain(penalty: float) -> float:
        machine = MachineSpec.summit().with_ucx(pipeline_concurrency_penalty=penalty)
        engine = Engine()
        cluster = Cluster(engine, machine, 2)
        ucx = UcxContext(cluster)
        for k in range(16):
            ucx.isend(0, 6, 4 * MiB, tag=k, on_device=True)
            ucx.irecv(0, 6, 4 * MiB, tag=k, on_device=True)
        engine.run()
        return engine.now

    def run():
        fig = FigureData("ablation_stacking",
                         "Concurrency-penalty ablation (16 x 4 MiB pipelined sends)",
                         "penalty", "drain time (s)")
        series = fig.new_series("one-device drain")
        for penalty in (0.0, 0.04, 0.08):
            series.add(penalty, drain(penalty))
        return fig

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    ys = fig.series["one-device drain"].ys()
    claims = [
        Claim("higher penalty -> slower aggregate drain", ys[0] < ys[1] < ys[2],
              " / ".join(f"{y*1e3:.2f}ms" for y in ys)),
    ]
    report(fig, claims)
