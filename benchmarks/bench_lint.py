"""Lint wall-clock over the shipped tree.

Not a paper figure: this pins the cost of the static-analysis gate so a
rule that regresses from linear AST walking to something quadratic shows
up in ``results/bench_meta.json`` next to the figure timings.  The run
doubles as a self-host check — the tree must come back clean.
"""

import time
from datetime import datetime, timezone
from pathlib import Path

from conftest import BENCH_META_PATH, RESULTS_DIR

import repro
from repro.lint import run_lint
from repro.obs import append_bench_history

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def test_lint_wall_clock(benchmark):
    paths = [p for p in (REPO_ROOT / d for d in
                         ("src", "tests", "benchmarks", "examples", "scripts"))
             if p.is_dir()]
    t0 = time.perf_counter()
    report = benchmark.pedantic(lambda: run_lint(paths), rounds=1, iterations=1)
    wall_s = time.perf_counter() - t0

    assert report.findings == [], "shipped tree must lint clean"
    assert report.files > 100

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    append_bench_history(
        BENCH_META_PATH,
        "lint",
        {
            "files": report.files,
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "wall_s": round(wall_s, 6),
        },
        now=datetime.now(timezone.utc),
    )
    print(f"\n[lint] {report.files} files clean in {wall_s:.3f}s "
          f"({report.suppressed} suppressed)")
