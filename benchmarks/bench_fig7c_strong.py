"""Figure 7c: strong scaling of a 3072³ grid (8..512 nodes).

Charm-D combines overlap with GPU-aware communication: it overtakes every
other version once halos drop below the pipeline threshold, sustains a
higher best-ODF to larger node counts than Charm-H (later crossover), and
reaches sub-millisecond iterations at 512 nodes in the full ladder.
"""

from conftest import ladder, report

from repro.core import check_figure7c, figure7c


def test_fig7c_strong_scaling(benchmark, progress, runner):
    fig = benchmark.pedantic(
        lambda: figure7c(nodes=ladder("fig7c"), progress=progress, runner=runner),
        rounds=1, iterations=1,
    )
    report(fig, check_figure7c(fig), runner=runner)
