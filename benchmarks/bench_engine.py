"""Pure events/sec microbenchmark for the simulation kernel.

Not a paper figure: this pins the speed of the event loop itself, the
constant factor that every figure, sweep, and golden trace pays.  Three
event mixes bracket the kernel's hot paths:

* ``small``  — long delay chains through ``Engine.pause`` (the pooled
  create-yield-discard idiom every runtime hot path uses): heap push/pop
  plus ``Process`` resume, nothing else.  The engine's floor.
* ``medium`` — store ping-pong: the ``Store`` mailbox pattern the runtime
  scheduler is built on (event allocation, callback dispatch, deposits).
* ``large``  — a small jacobi3d charm-d run through ``run_app``: the full
  runtime/network/comm stack as the event producer.

Each mix reports events/sec (``Engine.events_executed`` over the best of
``ROUNDS`` wall-clock timings; the event count is deterministic) and the
combined entry is appended to the ``engine`` slot of
``results/bench_meta.json`` via ``append_bench_history``.  The recorded
``us_per_event`` values are lower-is-better scalars that ``repro perf
compare`` extracts, so engine speed cannot silently regress.

``REPRO_BENCH_EPS_FLOOR`` (events/sec, default 20000) sets the absolute
floor asserted per mix — generous enough for slow CI machines, tight
enough to catch an accidental O(n) -> O(n log n) slip in the hot loop.
"""

import os
import time
from datetime import datetime, timezone

from conftest import BENCH_META_PATH, RESULTS_DIR

from repro.apps import Jacobi3DConfig, run_app
from repro.obs import Observatory, append_bench_history
from repro.sim import Engine, Store

#: Wall-clock rounds per mix; the best round is recorded (event counts are
#: deterministic, only the timing jitters).
ROUNDS = 3

EPS_FLOOR = float(os.environ.get("REPRO_BENCH_EPS_FLOOR", "20000"))


# ---------------------------------------------------------------------------
# Event mixes.  Each returns the engine so the caller reads
# ``events_executed``; the mixes must stay deterministic (fixed seeds, no
# wall-clock coupling) so every round executes the identical schedule.
# ---------------------------------------------------------------------------


def mix_small(n_chains: int = 200, n_hops: int = 250) -> Engine:
    """Delay chains via the bare-number yield (the pooled pause fast path):
    pure heap churn + generator resume, schedule identical to timeouts."""
    eng = Engine()

    def chain(i: int):
        delay = 1.0 + (i % 7) * 0.25
        for _ in range(n_hops):
            yield delay

    for i in range(n_chains):
        eng.process(chain(i))
    eng.run()
    return eng


def mix_medium(n_pairs: int = 100, n_rounds: int = 125) -> Engine:
    """Store ping-pong: the mailbox pattern under the runtime scheduler."""
    eng = Engine()

    def ping(a: Store, b: Store):
        for i in range(n_rounds):
            a.put_nowait(i)
            yield b.get()

    def pong(a: Store, b: Store):
        for _ in range(n_rounds):
            value = yield a.get()
            b.put_nowait(value)

    for p in range(n_pairs):
        a = Store(eng, name=f"a{p}")
        b = Store(eng, name=f"b{p}")
        eng.process(ping(a, b))
        eng.process(pong(a, b))
    eng.run()
    return eng


LARGE_CONFIG = dict(
    version="charm-d", nodes=2, grid=(96, 96, 96), odf=2,
    iterations=3, warmup=1,
)


def mix_large() -> None:
    """Full-stack run (no handle on the internal engine; the deterministic
    event count comes from :func:`large_event_count`)."""
    run_app(Jacobi3DConfig(**LARGE_CONFIG))


def large_event_count() -> int:
    """Event count of the ``large`` mix, measured once on an observed run
    (observers are pure: the schedule — hence the count — matches the bare
    timed runs)."""
    obs = Observatory()
    run_app(Jacobi3DConfig(**LARGE_CONFIG), observatory=obs)
    return obs.engine.events_executed


def _time_mix(run, events: int) -> dict:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    eps = events / best
    return {
        "events": events,
        "wall_s": round(best, 6),
        "events_per_sec": round(eps, 1),
    }


def test_engine_events_per_sec(benchmark):
    def all_mixes() -> dict:
        stats = {
            "small": _time_mix(lambda: mix_small(), mix_small().events_executed),
            "medium": _time_mix(lambda: mix_medium(), mix_medium().events_executed),
            "large": _time_mix(mix_large, large_event_count()),
        }
        return stats

    stats = benchmark.pedantic(all_mixes, rounds=1, iterations=1)

    entry = {
        **stats,
        "us_per_event": {
            mix: round(1e6 / s["events_per_sec"], 4) for mix, s in stats.items()
        },
        "wall_s": round(sum(s["wall_s"] for s in stats.values()), 6),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    append_bench_history(
        BENCH_META_PATH, "engine", entry, now=datetime.now(timezone.utc),
    )

    for mix, s in stats.items():
        print(f"\n[engine] {mix:6s} {s['events']:>7d} events in "
              f"{s['wall_s']:.3f}s = {s['events_per_sec']:,.0f} events/s")
        assert s["events"] > 10_000, f"{mix} mix too small to time reliably"
        assert s["events_per_sec"] >= EPS_FLOOR, (
            f"{mix} mix fell below the absolute floor "
            f"({s['events_per_sec']:,.0f} < {EPS_FLOOR:,.0f} events/s)"
        )
