"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's figures, prints the
paper-style table (plus an ASCII chart), saves the raw series to
``results/<figure_id>.json``, and asserts the figure's shape claims.

Node ladders default to the quick ranges; set ``REPRO_BENCH_FULL=1`` for
paper-scale ladders (minutes per figure — used to produce EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import render_figure
from repro.core import FULL_NODES, QUICK_NODES, render_claims

RESULTS_DIR = Path(
    os.environ.get("REPRO_RESULTS_DIR",
                   Path(__file__).resolve().parent.parent / "results")
)


def ladder(key: str):
    table = FULL_NODES if os.environ.get("REPRO_BENCH_FULL") else QUICK_NODES
    return table[key]


def report(fig, claims, extra_notes=()):
    """Print, persist, and assert one reproduced figure."""
    for note in extra_notes:
        fig.note(note)
    RESULTS_DIR.mkdir(exist_ok=True)
    fig.save_json(RESULTS_DIR / f"{fig.figure_id}.json")
    print()
    print(render_figure(fig))
    print(render_claims(claims))
    failed = [c for c in claims if not c.ok]
    assert not failed, "shape claims failed:\n" + render_claims(failed)


@pytest.fixture
def progress(capsys):
    """Per-point progress lines (visible with ``pytest -s``)."""

    def emit(line: str) -> None:
        print(f"    {line}")

    return emit
