"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's figures through the
experiment execution layer (``repro.exec``): a declarative plan run by a
:class:`~repro.exec.ParallelRunner` backed by the content-addressed result
cache.  Each prints the paper-style table (plus an ASCII chart), saves the
raw series to ``results/<figure_id>.json``, asserts the figure's shape
claims, and records per-figure wall-clock + cache-hit counts into
``results/bench_meta.json`` (the perf trajectory seed).

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — paper-scale node ladders (minutes per figure;
  used to produce EXPERIMENTS.md).
* ``REPRO_BENCH_JOBS=N`` — process-pool fan-out per figure (default 1).
* ``REPRO_BENCH_NO_CACHE=1`` — disable result caching (cold wall-clock).
* ``REPRO_RESULTS_DIR`` / ``REPRO_CACHE_DIR`` — output locations (cache
  defaults to ``<results>/.cache``).
"""

from __future__ import annotations

import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.analysis import render_figure
from repro.core import FULL_NODES, QUICK_NODES, render_claims
from repro.exec import ParallelRunner, ResultCache
from repro.obs import append_bench_history

RESULTS_DIR = Path(
    os.environ.get("REPRO_RESULTS_DIR",
                   Path(__file__).resolve().parent.parent / "results")
)
BENCH_META_PATH = RESULTS_DIR / "bench_meta.json"


def ladder(key: str):
    table = FULL_NODES if os.environ.get("REPRO_BENCH_FULL") else QUICK_NODES
    return table[key]


def make_runner() -> ParallelRunner:
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = None
    if not os.environ.get("REPRO_BENCH_NO_CACHE"):
        cache_dir = os.environ.get("REPRO_CACHE_DIR", RESULTS_DIR / ".cache")
        cache = ResultCache(cache_dir)
    return ParallelRunner(jobs=jobs, cache=cache)


def current_commit() -> str:
    """Short git rev of HEAD, or ``""`` outside a checkout — stamped into
    every history entry so the trend dashboard (``repro perf trend``) can
    draw per-PR boundary markers."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return ""


def record_bench_meta(figure_id: str, stats) -> None:
    """Append one figure's runner metrics to its timestamped history in
    ``results/bench_meta.json`` — each run extends the figure's perf
    trajectory (``{"latest": ..., "history": [...]}``) instead of erasing
    the previous one."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    entry = {
        "points": stats.points,
        "cache_hits": stats.cache_hits,
        "retries": stats.retries,
        "jobs": stats.jobs,
        "wall_s": round(stats.wall_s, 6),
    }
    commit = current_commit()
    if commit:
        entry["commit"] = commit
    append_bench_history(BENCH_META_PATH, figure_id, entry,
                         now=datetime.now(timezone.utc))


def report(fig, claims, extra_notes=(), runner=None):
    """Print, persist, and assert one reproduced figure."""
    for note in extra_notes:
        fig.note(note)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    fig.save_json(RESULTS_DIR / f"{fig.figure_id}.json")
    print()
    print(render_figure(fig))
    print(render_claims(claims))
    if runner is not None:
        record_bench_meta(fig.figure_id, runner.stats)
        print(f"[exec] {runner.stats.describe()}")
    failed = [c for c in claims if not c.ok]
    assert not failed, "shape claims failed:\n" + render_claims(failed)


@pytest.fixture
def runner():
    """One plan runner per benchmark (stats are per-``run``, and every
    benchmark makes exactly one figure call)."""
    return make_runner()


@pytest.fixture
def progress(capsys):
    """Per-point progress lines (visible with ``pytest -s``)."""

    def emit(line: str) -> None:
        print(f"    {line}")

    return emit
