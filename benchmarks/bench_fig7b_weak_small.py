"""Figure 7b: weak scaling at 192³ per node (≤ 96 KB halos).

The opposite regime from Fig. 7a: halos ride GPUDirect, so GPU-aware
communication wins for both MPI and Charm++, and overdecomposition only
adds overhead (ODF 1 is best).
"""

from conftest import ladder, report

from repro.core import check_figure7b, figure7b


def test_fig7b_weak_scaling_small_problem(benchmark, progress, runner):
    fig = benchmark.pedantic(
        lambda: figure7b(nodes=ladder("fig7b"), progress=progress, runner=runner),
        rounds=1, iterations=1,
    )
    report(fig, check_figure7b(fig), runner=runner)
