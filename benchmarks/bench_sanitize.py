"""Sanitizer overhead: bare vs. sanitized wall-clock for the same run.

Not a paper figure: the sanitizer is host-side bookkeeping layered on
monitor hooks, and this pins its cost so a clock-join or ledger change
that regresses from O(accesses) shows up in ``results/bench_meta.json``
next to the figure timings.  The run doubles as a self-host check — the
sanitized case must come back clean, and (pure-observer contract) both
runs must report the identical simulated elapsed time.
"""

import time
from datetime import datetime, timezone

from conftest import BENCH_META_PATH, RESULTS_DIR

from repro.apps import get_app, run_app
from repro.obs import append_bench_history
from repro.sanitize import Sanitizer

ROUNDS = 3


def _config():
    spec = get_app("jacobi3d")
    return spec.config_cls(version="charm-d", nodes=2, odf=4,
                           grid=(96, 96, 96), iterations=10, warmup=2)


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_sanitize_overhead(benchmark):
    bare_s, bare = _best_of(lambda: run_app(_config()))

    sanitizers = []

    def sanitized():
        san = Sanitizer()
        sanitizers.append(san)
        return run_app(_config(), sanitize=san)

    san_s, audited = benchmark.pedantic(
        lambda: _best_of(sanitized), rounds=1, iterations=1)
    san = sanitizers[-1]

    assert san.ok, san.report()
    assert san.ops_checked > 0 and san.accesses_checked > 0
    # Pure observer: identical simulated schedule with and without.
    assert audited.total_time == bare.total_time
    assert audited.time_per_iteration == bare.time_per_iteration

    overhead_pct = 100.0 * (san_s - bare_s) / bare_s
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    append_bench_history(
        BENCH_META_PATH,
        "sanitize",
        {
            "bare_s": round(bare_s, 6),
            "sanitized_s": round(san_s, 6),
            "overhead_pct": round(overhead_pct, 2),
            "ops_checked": san.ops_checked,
            "accesses_checked": san.accesses_checked,
            "findings": len(san.findings),
        },
        now=datetime.now(timezone.utc),
    )
    print(f"\n[sanitize] bare {bare_s:.3f}s -> sanitized {san_s:.3f}s "
          f"(+{overhead_pct:.1f}%), {san.ops_checked} ops / "
          f"{san.accesses_checked} accesses checked")
