"""DAG-throughput microbenchmark: the tiled-Cholesky app end to end.

Not a paper figure: this pins how fast the simulator retires *dependent*
tasks — the task-DAG analogue of ``bench_engine``'s events/sec.  Stencil
benches exercise a fixed neighbour pattern; Cholesky stresses the other
regime: per-step task lists of varying width, cross-stream gating through
the TaskSpace ledger, and factor-tile messages whose fan-out changes every
elimination step.

One modeled charm-d factorization (``TILES``-square tile grid,
overdecomposed) is timed best-of-``ROUNDS``; the deterministic task and
event counts come from one observed run.  The entry lands in the
``cholesky`` slot of ``results/bench_meta.json`` with lower-is-better
``us_per_event`` costs (``task`` = microseconds per retired DAG task,
``event`` = microseconds per engine event), which ``repro perf compare``
extracts — so DAG-dispatch speed cannot silently regress.

``REPRO_BENCH_TPS_FLOOR`` (tasks/sec, default 2000) sets the absolute
floor asserted here — generous for slow CI machines, tight enough to
catch a complexity slip in task gating.
"""

import os
import time
from datetime import datetime, timezone

from conftest import BENCH_META_PATH, RESULTS_DIR

from repro.apps import run_app
from repro.apps.cholesky import CholeskyConfig
from repro.obs import Observatory, append_bench_history

#: Wall-clock rounds; the best round is recorded (the schedule is
#: deterministic, only the timing jitters).
ROUNDS = 3

TILES = 16

TPS_FLOOR = float(os.environ.get("REPRO_BENCH_TPS_FLOOR", "2000"))

CONFIG = CholeskyConfig(version="charm-d", nodes=2, tiles=TILES, tile=64,
                        odf=2)


def dag_counts() -> tuple[int, int]:
    """(tasks, engine events) of one run, measured once under observation
    (observers are pure: the bare timed runs execute the same schedule)."""
    obs = Observatory()
    ctx_out: list = []
    run_app(CONFIG, observatory=obs, context_out=ctx_out)
    tasks = ctx_out[0].tasks
    tasks.check_all_finished()
    return len(tasks), obs.engine.events_executed


def test_cholesky_dag_tasks_per_sec(benchmark):
    n_tasks, n_events = dag_counts()

    def timed() -> float:
        best = float("inf")
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            run_app(CONFIG)
            best = min(best, time.perf_counter() - t0)
        return best

    wall = benchmark.pedantic(timed, rounds=1, iterations=1)
    tasks_per_sec = n_tasks / wall
    entry = {
        "tiles": TILES,
        "tasks": n_tasks,
        "events": n_events,
        "tasks_per_sec": round(tasks_per_sec, 1),
        "us_per_event": {
            "task": round(1e6 * wall / n_tasks, 4),
            "event": round(1e6 * wall / n_events, 4),
        },
        "wall_s": round(wall, 6),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    append_bench_history(
        BENCH_META_PATH, "cholesky", entry, now=datetime.now(timezone.utc),
    )

    print(f"\n[cholesky] {n_tasks} tasks / {n_events} events in "
          f"{wall:.3f}s = {tasks_per_sec:,.0f} tasks/s")
    # A 16x16 tile grid declares the full third-order task count.
    assert n_tasks == sum(
        1 + (TILES - 1 - k) + (TILES - 1 - k) * (TILES - k) // 2
        for k in range(TILES)
    )
    assert tasks_per_sec >= TPS_FLOOR, (
        f"DAG dispatch fell below the absolute floor "
        f"({tasks_per_sec:,.0f} < {TPS_FLOOR:,.0f} tasks/s)"
    )
