"""Figure 9: CUDA Graphs speedup (with and without fusion), 768³ strong
scaling at ODF 1 and ODF 8.

Graphs amortize launch CPU time: big wins where the PE is saturated with
launches (high ODF, no fusion), little effect at ODF 1, and shrinking
benefit as fusion removes the launches graphs would have amortized.
"""

from conftest import ladder, report

from repro.core import check_figure9, figure9


def test_fig9_cuda_graphs_speedup(benchmark, progress, runner):
    fig = benchmark.pedantic(
        lambda: figure9(nodes=ladder("fig9"), progress=progress, runner=runner),
        rounds=1, iterations=1,
    )
    report(fig, check_figure9(fig), runner=runner)
