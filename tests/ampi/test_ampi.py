"""Tests for AMPI: virtualized MPI ranks on the Charm++-like runtime."""

import pytest

from repro.ampi import AmpiProcess, AmpiWorld
from repro.hardware import Cluster, KernelWork, KiB, MachineSpec
from repro.mpi import MpiProcess, MpiWorld
from repro.sim import Engine, SimulationError


def make_world(n_nodes=2, vranks=None):
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), n_nodes)
    return eng, cluster, AmpiWorld(cluster, vranks=vranks)


class PingPong(AmpiProcess):
    log = {}

    def main(self, msg=None):
        if self.rank == 0:
            req = yield self.isend(1, 1 * KiB, tag=1, payload="ping")
            yield self.wait(req)
            rr = yield self.irecv(1, 1 * KiB, tag=2)
            yield self.wait(rr)
            PingPong.log[self.rank] = rr.data
        elif self.rank == 1:
            rr = yield self.irecv(0, 1 * KiB, tag=1)
            yield self.wait(rr)
            PingPong.log[self.rank] = rr.data
            rs = yield self.isend(0, 1 * KiB, tag=2, payload="pong")
            yield self.wait(rs)
        else:
            yield self.work(0)


def test_pingpong_roundtrip():
    eng, cluster, world = make_world()
    PingPong.log = {}
    world.launch(PingPong)
    world.run()
    assert PingPong.log[1] == "ping" and PingPong.log[0] == "pong"


def test_virtualization_more_ranks_than_pes():
    eng, cluster, world = make_world(n_nodes=1, vranks=8)
    assert world.virtualization_ratio == 4.0
    PingPong.log = {}
    world.launch(PingPong)
    world.run()
    assert PingPong.log[1] == "ping"


class AllreduceRank(AmpiProcess):
    results = {}

    def main(self, msg=None):
        total = yield from self.allreduce(self.rank + 1)
        AllreduceRank.results[self.rank] = total


@pytest.mark.parametrize("vranks", [3, 4, 8, 13])
def test_allreduce_any_virtualization(vranks):
    eng, cluster, world = make_world(n_nodes=1, vranks=vranks)
    AllreduceRank.results = {}
    world.launch(AllreduceRank)
    world.run()
    expected = vranks * (vranks + 1) // 2
    assert set(AllreduceRank.results.values()) == {expected}
    assert len(AllreduceRank.results) == vranks


class BarrierRank(AmpiProcess):
    after = {}

    def main(self, msg=None):
        yield self.work(self.rank * 1e-4)
        yield from self.barrier()
        BarrierRank.after[self.rank] = self.world.engine.now


def test_barrier_virtualized():
    eng, cluster, world = make_world(n_nodes=1, vranks=6)
    BarrierRank.after = {}
    world.launch(BarrierRank)
    world.run()
    times = list(BarrierRank.after.values())
    assert len(times) == 6
    assert min(times) >= 5e-4  # nobody leaves before the last arrival


class Deadlock(AmpiProcess):
    def main(self, msg=None):
        req = yield self.irecv((self.rank + 1) % self.size, 64, tag=7)
        yield self.wait(req)


def test_deadlock_detected():
    eng, cluster, world = make_world()
    world.launch(Deadlock)
    with pytest.raises(SimulationError):
        world.run()


def test_launch_twice_rejected():
    eng, cluster, world = make_world()
    world.launch(PingPong)
    with pytest.raises(SimulationError):
        world.launch(PingPong)


def test_run_before_launch_rejected():
    eng, cluster, world = make_world()
    with pytest.raises(SimulationError):
        world.run()


def test_invalid_vranks():
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), 1)
    with pytest.raises(ValueError):
        AmpiWorld(cluster, vranks=0)


# ---------------------------------------------------------------------------
# The AMPI value proposition: blocking waits overlap under virtualization
# ---------------------------------------------------------------------------


class GpuWaiter:
    """Rank program valid under both MPI and AMPI worlds: launch a 2 ms
    kernel and block on it; with virtualization the blocks overlap."""

    def main(self, msg=None):
        stream = self.gpu.create_stream(priority=10)
        op = yield self.launch(stream, KernelWork(bytes_moved=780e9 * 2e-3))
        yield self.sync(op.done)
        self.notify("done", t=self.world.engine.now)


class MpiGpuWaiter(GpuWaiter, MpiProcess):
    pass


class AmpiGpuWaiter(GpuWaiter, AmpiProcess):
    pass


def test_ampi_blocking_sync_frees_the_pe():
    """Under plain MPI a rank spins during sync; under AMPI the chare
    suspends, so the PE stays nearly idle — measurably."""
    eng1 = Engine()
    c1 = Cluster(eng1, MachineSpec.small_debug(), 1)
    w1 = MpiWorld(c1)
    w1.launch(MpiGpuWaiter)
    w1.run()
    # The spin window lands on the captive-core tracker (pe.blocked).
    mpi_pe_busy = sum(pe.blocked.busy_seconds() for pe in c1.all_pes())

    eng2 = Engine()
    c2 = Cluster(eng2, MachineSpec.small_debug(), 1)
    w2 = AmpiWorld(c2)
    w2.launch(AmpiGpuWaiter)
    w2.run()
    ampi_pe_busy = sum(pe.busy.busy_seconds() for pe in c2.all_pes())

    assert mpi_pe_busy > 3e-3  # two ranks spinning ~2 ms each
    assert ampi_pe_busy < 1e-3  # chares suspended during the kernel


def test_ampi_overlap_with_virtualization():
    """4 virtual ranks on 2 GPUs: kernels pipeline, blocking syncs overlap;
    total time approaches 2 kernels' worth per GPU, not 4 serial blocks."""
    eng, cluster, world = make_world(n_nodes=1, vranks=4)
    world.launch(AmpiGpuWaiter)
    world.run()
    # 2 GPUs x 2 kernels of 2 ms: ideal ~4 ms; far below 4 serial = 8 ms.
    assert eng.now < 5e-3
