"""Cross-backend differential validation: Charm++, AMPI and MPI integrate
the same PDE bit-for-bit, across decompositions, fusion strategies and
CUDA graphs."""

import numpy as np
import pytest

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.hardware import MachineSpec
from repro.validate import (
    default_base,
    default_matrix,
    diff_histories,
    run_differential_matrix,
)

# Three distinct problems: anisotropic grid, more iterations, higher ODF.
BASES = [
    Jacobi3DConfig(version="charm-d", nodes=1, grid=(16, 16, 16), odf=2,
                   iterations=4, warmup=1, data_mode="functional",
                   machine=MachineSpec.small_debug()),
    Jacobi3DConfig(version="charm-d", nodes=1, grid=(24, 12, 8), odf=2,
                   iterations=3, warmup=0, data_mode="functional",
                   machine=MachineSpec.small_debug()),
    Jacobi3DConfig(version="charm-d", nodes=1, grid=(8, 8, 32), odf=4,
                   iterations=5, warmup=2, data_mode="functional",
                   machine=MachineSpec.small_debug()),
]
FUSIONS = ["none", "A", "B", "C"]


def _residuals(config):
    return run_jacobi3d(config, validate=True).residuals


@pytest.mark.parametrize("base_idx", range(len(BASES)))
@pytest.mark.parametrize("fusion", FUSIONS)
def test_charm_ampi_mpi_bitwise_identical_residuals(base_idx, fusion):
    """Acceptance criterion: >= 3 configs x fusion {off, A, B, C} produce
    bitwise-identical residual histories across all three runtimes.
    Fusion applies to charm-d only (paper §III-D); AMPI and MPI run the
    plain rank program against the charm-d reference."""
    base = BASES[base_idx]
    reference = _residuals(base.with_(fusion=fusion))
    ampi = _residuals(base.with_(version="ampi-d", fusion="none"))
    mpi = _residuals(base.with_(version="mpi-d", odf=1, fusion="none"))
    assert diff_histories(reference, ampi) is None
    assert diff_histories(reference, mpi) is None
    assert len(reference) == base.total_iterations


def test_full_matrix_reports_clean():
    report = run_differential_matrix()
    assert report.ok, report.report()
    assert len(report.cases) == 13
    assert report.reference == "charm-d"
    labels = [c.label for c in report.cases]
    assert {"charm-d", "ampi-d", "ampi-h", "mpi-d", "mpi-h", "charm-h"} <= set(labels)
    assert "charm-d fusion=C graphs" in labels
    assert "0 failure(s)" in report.report()


def test_quick_matrix_is_cross_runtime_only():
    cases = default_matrix(default_base(), quick=True)
    assert [label for label, _ in cases] == [
        "charm-d", "charm-h", "ampi-d", "ampi-h", "mpi-d", "mpi-h"]
    assert all(not c.cuda_graphs for _, c in cases)


def test_mismatch_reports_first_differing_iteration():
    """A case integrating a different problem (one extra iteration) must be
    flagged with the exact divergence point, not just a boolean."""
    base = BASES[0]
    report = run_differential_matrix(base=base, cases=[
        ("ref", base),
        ("longer", base.with_(iterations=base.iterations + 1)),
    ])
    assert not report.ok
    bad = report.failures()[0]
    assert bad.label == "longer"
    # Identical prefix, so the first difference is the length mismatch.
    assert bad.first_diff_iteration == base.total_iterations
    assert "iteration count" in bad.detail
    assert "MISMATCH" in str(bad)


def test_mismatch_reports_divergent_physics():
    """A different problem must be flagged.  Early residuals of different
    grid sizes can legitimately coincide (the hot-boundary front has not
    reached the far wall yet), so the harness must also diff the final
    grids — here caught as a shape mismatch."""
    base = BASES[0]
    report = run_differential_matrix(base=base, cases=[
        ("ref", base),
        ("other-problem", base.with_(grid=(12, 12, 12))),
    ])
    bad = report.failures()[0]
    assert bad.first_diff_iteration == 0 or "grid" in bad.detail


def test_modeled_mode_rejected():
    with pytest.raises(ValueError, match="functional"):
        run_differential_matrix(base=default_base().with_(data_mode="modeled"))


# ---------------------------------------------------------------------------
# diff_histories unit behaviour
# ---------------------------------------------------------------------------


def test_diff_histories_identical():
    assert diff_histories([0.1, 0.2, 0.3], [0.1, 0.2, 0.3]) is None


def test_diff_histories_first_difference():
    assert diff_histories([0.1, 0.2, 0.3], [0.1, 0.25, 0.3]) == 1


def test_diff_histories_length_mismatch():
    assert diff_histories([0.1, 0.2], [0.1, 0.2, 0.3]) == 2
    assert diff_histories([0.1, 0.2, 0.3], [0.1]) == 1


def test_diff_histories_is_bitwise_not_numeric():
    # 0.0 == -0.0 numerically, but the bit patterns differ: a sign drift
    # must not be able to hide.
    assert diff_histories([0.0], [-0.0]) == 0
    assert diff_histories([], []) is None


def test_final_grids_match_serial_reference():
    """The assembled functional grid equals a straight serial integration
    of the same problem (independent of any runtime)."""
    from repro.apps.decomposition import BlockGeometry
    from repro.kernels import alloc_block, apply_boundary, hot_top_boundary, jacobi_update

    base = BASES[1]  # warmup=0: total_iterations == iterations
    result = run_jacobi3d(base, validate=True)
    geo = BlockGeometry.auto(base.n_blocks(), base.grid)
    grid = result.assemble_grid(geo)

    u = alloc_block(base.grid)
    apply_boundary(u, hot_top_boundary, base.grid, offset=(0, 0, 0))
    out = u.copy()
    for _ in range(base.total_iterations):
        jacobi_update(u, out)
        u, out = out, u
    assert np.array_equal(grid.view(np.int64),
                          u[1:-1, 1:-1, 1:-1].view(np.int64))
