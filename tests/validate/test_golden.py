"""Golden-trace regression store: digests, round-trips, staleness, and the
committed entries under tests/golden."""

import json

import pytest

from repro.sim import Engine, Tracer
from repro.validate import (
    CANONICAL_CONFIGS,
    GoldenStore,
    default_golden_dir,
    golden_entry,
    trace_digest,
)


def _entry(name="charm-d"):
    return golden_entry(CANONICAL_CONFIGS[name])


# ---------------------------------------------------------------------------
# trace_digest
# ---------------------------------------------------------------------------


def test_digest_stable_for_identical_runs():
    eng1, eng2 = Engine(), Engine()
    t1, t2 = Tracer().attach(eng1), Tracer().attach(eng2)
    for eng, t in ((eng1, t1), (eng2, t2)):
        t.emit("gpu.compute", "node0.gpu0", op="update", duration=1e-5)
        t.emit("net.send", "pe0", dst=1, size=4096, tag=(0, "x+"))
    assert trace_digest(t1) == trace_digest(t2)


def test_digest_sensitive_to_any_field():
    eng = Engine()
    base = Tracer().attach(eng)
    base.emit("gpu.compute", "node0.gpu0", op="update", duration=1e-5)
    for mutation in (
        dict(category="gpu.copy_d2h"),
        dict(actor="node0.gpu1"),
        dict(op="pack"),
        dict(duration=2e-5),
    ):
        other = Tracer().attach(Engine())
        kw = dict(op="update", duration=1e-5)
        kw.update({k: v for k, v in mutation.items() if k in kw})
        other.emit(mutation.get("category", "gpu.compute"),
                   mutation.get("actor", "node0.gpu0"), **kw)
        assert trace_digest(other) != trace_digest(base)


def test_digest_empty_trace():
    t = Tracer().attach(Engine())
    assert len(trace_digest(t)) == 64


# ---------------------------------------------------------------------------
# GoldenStore round-trips
# ---------------------------------------------------------------------------


def test_store_roundtrip_and_clean_check(tmp_path):
    store = GoldenStore(tmp_path)
    entry = _entry()
    store.save("charm-d", entry)
    assert store.names() == ["charm-d"]
    assert store.load("charm-d") == entry
    assert store.check("charm-d", entry) == []


def test_missing_entry_reports_stale(tmp_path):
    store = GoldenStore(tmp_path)
    problems = store.check("charm-d", _entry())
    assert len(problems) == 1 and "--update-golden" in problems[0]


def test_model_version_skew_reports_stale_not_regression(tmp_path):
    store = GoldenStore(tmp_path)
    entry = _entry()
    stale = dict(entry, model_version=entry["model_version"] + 1)
    store.save("charm-d", stale)
    problems = store.check("charm-d", entry)
    assert len(problems) == 1
    assert "MODEL_VERSION" in problems[0]
    assert "digest" not in problems[0]


def test_digest_drift_detected(tmp_path):
    store = GoldenStore(tmp_path)
    entry = _entry()
    tampered = dict(entry, trace_digest="0" * 64)
    store.save("charm-d", tampered)
    problems = store.check("charm-d", entry)
    assert any("trace digest changed" in p for p in problems)


def test_summary_drift_detected(tmp_path):
    store = GoldenStore(tmp_path)
    entry = _entry()
    tampered = json.loads(json.dumps(entry))
    tampered["summary"]["messages_sent"] += 1
    store.save("charm-d", tampered)
    problems = store.check("charm-d", entry)
    assert any("summary.messages_sent" in p for p in problems)


def test_corrupt_entry_reads_as_stale(tmp_path):
    store = GoldenStore(tmp_path)
    store.path_for("charm-d").write_text("{not json")
    assert store.load("charm-d") is None
    problems = store.check("charm-d", _entry())
    assert len(problems) == 1 and "no golden entry" in problems[0]


# ---------------------------------------------------------------------------
# The committed store
# ---------------------------------------------------------------------------


def test_committed_store_has_every_canonical_config():
    store = GoldenStore()
    assert store.root == default_golden_dir()
    assert store.names() == sorted(CANONICAL_CONFIGS)


@pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
def test_committed_golden_entries_are_current(name):
    """Re-simulate each canonical config and hold it to the committed
    digest: any schedule change must come with --update-golden."""
    store = GoldenStore()
    problems = store.check(name, golden_entry(CANONICAL_CONFIGS[name]))
    assert problems == [], "\n".join(problems)
