"""Determinism: the same config yields the identical *trace* (not just the
same result) run twice, and under process-pool fan-out."""

from repro.exec import ParallelRunner
from repro.hardware import MachineSpec
from repro.apps import Jacobi3DConfig
from repro.validate import CANONICAL_CONFIGS, golden_entry, golden_worker


def _configs():
    base = Jacobi3DConfig(nodes=1, grid=(48, 48, 48), odf=2, iterations=4,
                          warmup=1, machine=MachineSpec.small_debug())
    return [
        base.with_(version="charm-d"),
        base.with_(version="charm-h"),
        base.with_(version="ampi-d"),
        base.with_(version="mpi-d", odf=1),
    ]


def test_same_config_twice_identical_trace():
    cfg = CANONICAL_CONFIGS["charm-d"]
    a, b = golden_entry(cfg), golden_entry(cfg)
    assert a["trace_digest"] == b["trace_digest"]
    assert a == b


def test_serial_and_jobs4_identical_traces():
    """Pool fan-out must not perturb the schedule: each worker simulates an
    independent engine, so serial and --jobs 4 digests are bit-identical."""
    configs = _configs()
    serial = ParallelRunner(jobs=1, worker=golden_worker).run_configs(configs)
    pooled = ParallelRunner(jobs=4, worker=golden_worker).run_configs(configs)
    assert [e["trace_digest"] for e in serial] == [e["trace_digest"] for e in pooled]
    assert serial == pooled


def test_validating_runner_matches_plain_runner():
    """validate=True attaches pure observers: results are bit-identical."""
    configs = _configs()[:2]
    plain = ParallelRunner(jobs=1).run_configs(configs)
    audited = ParallelRunner(jobs=1, validate=True).run_configs(configs)
    assert [r.to_dict() for r in plain] == [r.to_dict() for r in audited]
