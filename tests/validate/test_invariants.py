"""InvariantChecker: clean runs pass, injected faults are caught with the
offending actor and simulated time."""

import pytest

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.hardware import Cluster, MachineSpec
from repro.sim import Engine, Resource, SimulationError
from repro.validate import InvariantChecker, InvariantError
from repro.validate.faults import (
    inject_double_grant,
    inject_lost_message,
    inject_phantom_release,
)


def _small(**kw):
    kw.setdefault("version", "charm-d")
    kw.setdefault("grid", (24, 24, 24))
    kw.setdefault("odf", 2)
    kw.setdefault("iterations", 3)
    kw.setdefault("warmup", 1)
    kw.setdefault("machine", MachineSpec.small_debug())
    return Jacobi3DConfig(**kw)


# ---------------------------------------------------------------------------
# Clean runs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("version", ["charm-d", "charm-h", "ampi-d", "mpi-d", "mpi-h"])
def test_clean_run_passes_all_invariants(version):
    odf = 1 if version.startswith("mpi") else 2
    result = run_jacobi3d(_small(version=version, odf=odf), validate=True)
    assert result.total_time > 0


def test_checker_report_mentions_audit_scope():
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), 1)
    checker = InvariantChecker().attach(eng)
    checker.watch_cluster(cluster)
    def tick():
        yield eng.timeout(1.0)

    eng.process(tick())
    eng.run()
    checker.finish()
    assert checker.ok
    assert "OK" in checker.report()
    assert "resources" in checker.report()


def test_finish_twice_rejected():
    checker = InvariantChecker().attach(Engine())
    checker.finish()
    with pytest.raises(SimulationError):
        checker.finish()


# ---------------------------------------------------------------------------
# Injected faults: each must be caught and attributed (actor + time)
# ---------------------------------------------------------------------------


def test_injected_exclusivity_violation_reports_actor_and_time():
    """A broken arbiter grants a capacity-1 resource twice: the checker
    names the resource and the simulated time of the second grant."""
    eng = Engine()
    res = Resource(eng, capacity=1, name="node0.gpu0.d2d")
    checker = InvariantChecker().attach(eng)
    checker.watch_resource(res)

    def workload():
        req = res.request()
        yield req
        yield eng.timeout(1.5)
        inject_double_grant(res)  # second exclusive grant at t=1.5
        yield eng.timeout(0.5)
        res.release(req)

    eng.process(workload())
    eng.run()
    with pytest.raises(InvariantError) as exc:
        checker.finish()
    violations = [v for v in exc.value.violations if v.rule == "resource-exclusivity"]
    assert violations, exc.value.violations
    v = violations[0]
    assert v.actor == "node0.gpu0.d2d"
    assert v.time == pytest.approx(1.5)
    assert "2 concurrent grant(s)" in v.detail
    # The forged grant also never gets released: leak reported too.
    rules = {v.rule for v in exc.value.violations}
    assert "resource-leak" in rules


def test_phantom_release_caught():
    eng = Engine()
    res = Resource(eng, capacity=2, name="nic.inject0")
    checker = InvariantChecker()
    checker.attach(eng)
    checker.watch_resource(res)
    inject_phantom_release(res)
    checker.finish(raise_on_violation=False)
    assert not checker.ok
    assert any(v.rule == "resource-release" and v.actor == "nic.inject0"
               for v in checker.violations)


def test_lost_message_breaks_channel_conservation():
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), 1)
    checker = InvariantChecker().attach(eng)
    checker.watch_cluster(cluster)
    inject_lost_message(cluster.network, src_pe=0, dst_pe=1)
    with pytest.raises(InvariantError) as exc:
        checker.finish()
    per_channel = [v for v in exc.value.violations
                   if v.rule == "message-conservation" and v.actor == "pe0->pe1"]
    assert per_channel
    assert "1 sent but 0 delivered" in per_channel[0].detail


def test_time_monotonicity_violation_detected():
    eng = Engine()
    checker = InvariantChecker().attach(eng)
    ev = type("FakeEvent", (), {"name": "bad"})()
    checker._on_event(5.0, ev)
    checker._on_event(3.0, ev)  # time went backwards
    assert any(v.rule == "time-monotonicity" and v.time == 3.0
               for v in checker.violations)


def test_dangling_events_detected_at_finish():
    eng = Engine()
    checker = InvariantChecker().attach(eng)
    eng.timeout(10.0)  # scheduled, never drained
    checker.finish(raise_on_violation=False)
    assert any(v.rule == "dangling-events" for v in checker.violations)


def test_books_disagree_when_component_lies():
    """Double-entry: if the resource's own counter is corrupted but the
    grant stream was clean, the cross-check fires."""
    eng = Engine()
    res = Resource(eng, capacity=4, name="lying")
    checker = InvariantChecker().attach(eng)
    checker.watch_resource(res)
    res.in_use = 3  # corrupted directly, bypassing request/release
    checker.finish(raise_on_violation=False)
    assert any(v.rule == "resource-books-disagree" and v.actor == "lying"
               for v in checker.violations)


def test_violation_cap_respected():
    eng = Engine()
    res = Resource(eng, capacity=1, name="r")
    checker = InvariantChecker(max_violations=5)
    checker.attach(eng)
    checker.watch_resource(res)
    for _ in range(20):
        inject_phantom_release(res)
    assert len(checker.violations) == 5
