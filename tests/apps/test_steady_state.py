"""The model reaches steady state quickly: measured per-iteration time must
be stable against the iteration count (this justifies the reduced iteration
counts in the figure generators vs the paper's 100)."""

import pytest

from repro.apps import Jacobi3DConfig, run_jacobi3d


@pytest.mark.parametrize("version,odf", [("mpi-h", 1), ("charm-h", 2), ("charm-d", 2)])
def test_time_per_iteration_stable_in_iteration_count(version, odf):
    def per_iter(iters):
        cfg = Jacobi3DConfig(version=version, nodes=2, grid=(768, 768, 1536),
                             odf=odf, iterations=iters, warmup=1)
        return run_jacobi3d(cfg).time_per_iteration

    short = per_iter(3)
    long = per_iter(8)
    assert long == pytest.approx(short, rel=0.05)


def test_warmup_count_does_not_change_steady_period():
    def per_iter(warmup):
        cfg = Jacobi3DConfig(version="charm-d", nodes=2, grid=(768, 768, 1536),
                             odf=2, iterations=4, warmup=warmup)
        return run_jacobi3d(cfg).time_per_iteration

    assert per_iter(1) == pytest.approx(per_iter(3), rel=0.05)
