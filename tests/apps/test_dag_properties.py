"""Property-based suite for the tiled-Cholesky task DAG (docs/apps.md).

Three guarantees, over randomly drawn problem shapes and frontends:

* **exactly once** — every task the planner declared is issued and
  finished exactly once (the :class:`~repro.runtime.taskspace.TaskSpace`
  journal, read through ``run_app``'s ``context_out`` hook), and the
  engine trace shows exactly one compute kernel per task.
* **dependency respect** — in the trace, no task's kernel *starts* before
  every declared dependency's kernel has *finished*.  Launch order is
  free (that is the asynchrony the paper is about); execution order is
  not.
* **bitwise factorization** — in functional mode the assembled factor is
  bit-identical to ``np.linalg.cholesky`` of the same input, for every
  frontend and overdecomposition factor.
"""

import dataclasses
from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import run_app
from repro.apps.cholesky import CholeskyConfig
from repro.apps.cholesky.context import CholeskyContext
from repro.apps.stencil import ALL_VERSIONS
from repro.hardware import MachineSpec
from repro.sim import Tracer

MACHINE = MachineSpec.small_debug()
#: Execution-interval comparisons tolerate float accumulation only.
TIME_EPS = 1e-12


def _name(key):
    """Kernel name of a task key: ``("gemm", 2, 1, 0)`` -> ``"gemm.2.1.0"``
    (the naming contract between the planner and the trace)."""
    return ".".join(str(part) for part in key)


@st.composite
def _configs(draw, functional=False):
    version = draw(st.sampled_from(ALL_VERSIONS))
    return CholeskyConfig(
        version=version,
        nodes=draw(st.integers(1, 2)),
        tiles=draw(st.integers(1, 5)),
        tile=8,
        odf=1 if version.startswith("mpi") else draw(st.integers(1, 3)),
        data_mode="functional" if functional else "modeled",
        seed=draw(st.integers(0, 2**16)),
        machine=MACHINE,
    )


def _run_traced(config):
    tracer = Tracer(categories=("gpu.compute",))
    ctx_out: list = []
    run_app(config, tracer=tracer, context_out=ctx_out)
    tracer.detach()
    return ctx_out[0], tracer.records


@settings(max_examples=10, deadline=None)
@given(config=_configs())
def test_every_declared_task_runs_exactly_once(config):
    ctx, records = _run_traced(config)
    journal = ctx.tasks.journal()
    # The declared DAG covers the whole factorization: one POTRF per step,
    # a TRSM per sub-diagonal panel tile, one Schur update per trailing tile.
    t = config.tiles
    assert len(journal) == sum(
        1 + (t - 1 - k) + (t - 1 - k) * (t - k) // 2 for k in range(t)
    )
    ctx.tasks.check_all_finished()
    for rec in journal:
        assert rec.issued_at is not None and rec.finished_at is not None
        assert rec.issued_at <= rec.finished_at
    # ... and the engine saw exactly one compute kernel per task.
    expected = Counter(_name(rec.key) for rec in journal)
    traced = Counter(r.data["op"] for r in records)
    assert traced == expected


@settings(max_examples=10, deadline=None)
@given(config=_configs())
def test_trace_never_starts_a_task_before_its_deps_finish(config):
    ctx, records = _run_traced(config)
    intervals = {
        r.data["op"]: (r.data["start"], r.data["start"] + r.data["duration"])
        for r in records
    }
    for rec in ctx.tasks.journal():
        start = intervals[_name(rec.key)][0]
        for dep in rec.deps:
            dep_end = intervals[_name(dep)][1]
            assert start >= dep_end - TIME_EPS, (
                f"{_name(rec.key)} started at {start} before its dependency "
                f"{_name(dep)} finished at {dep_end}"
            )


@settings(max_examples=8, deadline=None)
@given(config=_configs(functional=True))
def test_factor_is_bitwise_numpy_cholesky_for_every_frontend(config):
    result = run_app(config)
    ctx = CholeskyContext(config)
    factor = result.assemble_state()
    assert np.array_equal(factor, ctx.expected_factor)
    assert np.array_equal(factor, np.tril(np.linalg.cholesky(ctx.matrix)))


def test_single_tile_degenerate_dag():
    """tiles=1: the DAG is a lone POTRF; every frontend still terminates."""
    for version in ALL_VERSIONS:
        config = CholeskyConfig(version=version, nodes=1, tiles=1, tile=8,
                                odf=1, data_mode="functional", machine=MACHINE)
        ctx, records = _run_traced(config)
        assert [rec.key for rec in ctx.tasks.journal()] == [("potrf", 0)]
        ctx.tasks.check_all_finished()
        assert [r.data["op"] for r in records] == ["potrf.0"]


def test_odd_unit_counts_distribute_the_whole_triangle():
    """A 3-unit run (1 GPU/node) owns every tile exactly once and still
    factorizes bitwise."""
    machine = dataclasses.replace(
        MACHINE, node=dataclasses.replace(MACHINE.node, gpus_per_node=1))
    config = CholeskyConfig(version="charm-d", nodes=3, tiles=5, tile=8,
                            odf=1, data_mode="functional", machine=machine)
    ctx_out: list = []
    result = run_app(config, context_out=ctx_out)
    ctx = ctx_out[0]
    owned = [tl for u in range(ctx.n_units) for tl in ctx.unit_tiles[u]]
    assert sorted(owned) == sorted(ctx.tile_list)
    assert np.array_equal(result.assemble_state(), ctx.expected_factor)
