"""Functional-mode integration tests for the second registered workload:
Jacobi2D must produce grids bit-identical to the serial reference solver
through the same frontends, fusion strategies, and CUDA-graphs path as
Jacobi3D — the proof that the stencil core is genuinely app-agnostic."""

import numpy as np
import pytest

from repro.apps import Jacobi2DConfig, get_app, run_app
from repro.hardware import MachineSpec
from repro.kernels import reference_solve

GRID = (28, 28)
ITERS = 4
MACHINE = MachineSpec.small_debug()


@pytest.fixture(scope="module")
def reference():
    return reference_solve(GRID, ITERS)[1:-1, 1:-1]


def run_case(**kw):
    kw.setdefault("nodes", 1)
    kw.setdefault("grid", GRID)
    kw.setdefault("iterations", ITERS)
    kw.setdefault("warmup", 0)
    kw.setdefault("data_mode", "functional")
    kw.setdefault("machine", MACHINE)
    cfg = Jacobi2DConfig(**kw)
    res = run_app(cfg)
    geometry = get_app("jacobi2d").make_context(cfg).geometry
    return res, res.assemble_grid(geometry)


@pytest.mark.parametrize("version", ["mpi-h", "mpi-d", "charm-h", "charm-d",
                                     "ampi-h", "ampi-d"])
def test_all_versions_match_reference(version, reference):
    _res, grid = run_case(version=version)
    assert np.array_equal(grid, reference)


@pytest.mark.parametrize("odf", [2, 4])
def test_overdecomposition_matches_reference(odf, reference):
    _res, grid = run_case(version="charm-d", odf=odf)
    assert np.array_equal(grid, reference)


@pytest.mark.parametrize("fusion", ["A", "B", "C"])
def test_fusion_strategies_match_reference(fusion, reference):
    _res, grid = run_case(version="charm-d", odf=2, fusion=fusion)
    assert np.array_equal(grid, reference)


def test_cuda_graphs_match_reference(reference):
    _res, grid = run_case(version="charm-d", odf=2, cuda_graphs=True, fusion="C")
    assert np.array_equal(grid, reference)


def test_anisotropic_grid_with_uneven_splits():
    grid_shape = (13, 21)
    ref = reference_solve(grid_shape, 3)[1:-1, 1:-1]
    _res, grid = run_case(version="charm-h", grid=grid_shape, odf=2, iterations=3)
    assert np.array_equal(grid, ref)


def test_blocks_are_two_dimensional():
    res, _ = run_case(version="charm-h", odf=2)
    assert len(res.blocks) == res.config.n_blocks()
    for interior in res.blocks.values():
        assert interior.ndim == 2
