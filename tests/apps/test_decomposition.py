"""Unit and property tests for the 3D grid decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import BlockGeometry, factor_triples, partition_dims
from repro.kernels import FACES, opposite


def test_factor_triples_product():
    triples = list(factor_triples(12))
    assert all(a * b * c == 12 for a, b, c in triples)
    assert (1, 1, 12) in triples and (2, 2, 3) in triples
    assert len(set(triples)) == len(triples)


def test_factor_triples_invalid():
    with pytest.raises(ValueError):
        list(factor_triples(0))


def test_partition_minimizes_surface_cube():
    # A cube into 8 parts: the 2x2x2 split has minimal cut surface.
    assert partition_dims(8, (64, 64, 64)) == (2, 2, 2)


def test_partition_six_parts_summit_node():
    # The paper's single-node case: 6 GPUs.  1x2x3 beats 1x1x6 on surface.
    px, py, pz = partition_dims(6, (1536, 1536, 1536))
    assert sorted((px, py, pz)) == [1, 2, 3]


def test_partition_respects_grid_limits():
    # Cannot split a 4-cell axis into 8 parts.
    assert partition_dims(8, (4, 64, 64))[0] <= 4
    with pytest.raises(ValueError):
        partition_dims(128, (2, 2, 2))


def test_partition_anisotropic_grid_prefers_long_axis():
    px, py, pz = partition_dims(4, (64, 64, 1024))
    assert pz == 4  # cutting the long axis makes the smallest faces


def test_block_geometry_auto():
    geo = BlockGeometry.auto(12, (96, 96, 96))
    assert geo.n_blocks == 12
    px, py, pz = geo.parts
    assert px * py * pz == 12


def test_block_dims_remainders():
    geo = BlockGeometry((10, 4, 4), (3, 1, 1))
    dims = [geo.block_dims((i, 0, 0))[0] for i in range(3)]
    assert dims == [4, 3, 3]
    assert sum(dims) == 10


def test_block_offsets_contiguous():
    geo = BlockGeometry((10, 4, 4), (3, 1, 1))
    offs = [geo.block_offset((i, 0, 0))[0] for i in range(3)]
    assert offs == [0, 4, 7]


def test_neighbors_interior_and_boundary():
    geo = BlockGeometry((8, 8, 8), (2, 2, 2))
    corner = geo.neighbors((0, 0, 0))
    assert len(corner) == 3
    assert corner[(0, 1)] == (1, 0, 0)
    assert geo.neighbor((0, 0, 0), (0, -1)) is None
    assert geo.neighbor((1, 1, 1), (2, 1)) is None


def test_face_cells_cross_section():
    geo = BlockGeometry((8, 6, 4), (2, 1, 1))
    assert geo.face_cells((0, 0, 0), (0, 1)) == 6 * 4


def test_face_cells_symmetric_across_pairs():
    geo = BlockGeometry((10, 7, 5), (3, 2, 1))
    for idx in geo.indices():
        for face, nbr in geo.neighbors(idx).items():
            assert geo.face_cells(idx, face) == geo.face_cells(nbr, opposite(face))


def test_max_face_bytes_paper_numbers():
    # 1536^3 over 6 GPUs (1x2x3): biggest face is 1536x768 cells = 9 MiB.
    geo = BlockGeometry.auto(6, (1536, 1536, 1536))
    assert geo.max_face_bytes() == 1536 * 768 * 8
    # 192^3 over 6 GPUs: biggest face 192x96 cells = 144 KiB.
    geo_small = BlockGeometry.auto(6, (192, 192, 192))
    assert geo_small.max_face_bytes() == 192 * 96 * 8


def test_invalid_geometry():
    with pytest.raises(ValueError):
        BlockGeometry((4, 4, 4), (8, 1, 1))


@settings(max_examples=40, deadline=None)
@given(
    grid=st.tuples(st.integers(4, 40), st.integers(4, 40), st.integers(4, 40)),
    n=st.integers(1, 24),
)
def test_property_blocks_tile_grid_exactly(grid, n):
    try:
        geo = BlockGeometry.auto(n, grid)
    except ValueError:
        return  # grid too small for n parts: a legal refusal
    total = 0
    seen = set()
    for idx in geo.indices():
        dims = geo.block_dims(idx)
        off = geo.block_offset(idx)
        assert all(d >= 1 for d in dims)
        cells = dims[0] * dims[1] * dims[2]
        total += cells
        # Offsets + dims must tile without overlap: record cell ranges.
        seen.add((off, dims))
    assert total == grid[0] * grid[1] * grid[2]
    assert len(seen) == geo.n_blocks


@settings(max_examples=40, deadline=None)
@given(
    grid=st.tuples(st.integers(4, 32), st.integers(4, 32), st.integers(4, 32)),
    n=st.integers(1, 16),
)
def test_property_neighbor_relation_is_symmetric(grid, n):
    try:
        geo = BlockGeometry.auto(n, grid)
    except ValueError:
        return
    for idx in geo.indices():
        for face, nbr in geo.neighbors(idx).items():
            assert geo.neighbor(nbr, opposite(face)) == idx
