"""App registry coverage: the AppSpec contract, round-trips through the
registry dispatchers for every registered app, cache-key stability, and the
cross-app collision guarantee (same grid parameters under a different app
name never alias in the result cache)."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    Jacobi2DConfig,
    Jacobi3DConfig,
    StencilResult,
    app_names,
    config_from_dict,
    get_app,
    result_from_dict,
    run_app,
    spec_for,
)
from repro.apps.jacobi3d import SPEC as JACOBI3D_SPEC
from repro.apps.registry import register
from repro.apps.stencil import ALL_VERSIONS
from repro.exec import config_key
from repro.hardware import MachineSpec

MACHINE = MachineSpec.small_debug()

APP_CLASSES = {"jacobi3d": Jacobi3DConfig, "jacobi2d": Jacobi2DConfig}


def _configs(config_cls):
    """Arbitrary valid modeled-mode configs for one app, every frontend."""

    @st.composite
    def strat(draw):
        version = draw(st.sampled_from(ALL_VERSIONS))
        charm_d = version == "charm-d"
        return config_cls(
            version=version,
            nodes=draw(st.integers(1, 4)),
            grid=tuple(draw(st.integers(8, 96)) for _ in range(config_cls.NDIM)),
            odf=1 if version.startswith("mpi") else draw(st.integers(1, 4)),
            iterations=draw(st.integers(1, 12)),
            warmup=draw(st.integers(0, 3)),
            fusion=draw(st.sampled_from(["none", "A", "B", "C"])) if charm_d else "none",
            cuda_graphs=draw(st.booleans()) if charm_d else False,
            legacy_sync=draw(st.booleans()) if charm_d else False,
            mpi_overlap=draw(st.booleans()) if version.startswith("mpi") else False,
            machine=MACHINE,
        )

    return strat()


# ---------------------------------------------------------------------------
# Registry API
# ---------------------------------------------------------------------------


def test_all_bundled_apps_registered():
    assert app_names() == ["allreduce", "cholesky", "jacobi2d", "jacobi3d"]


def test_get_app_unknown_name():
    with pytest.raises(ValueError, match="unknown app 'nope'"):
        get_app("nope")


def test_config_from_dict_unknown_app_names_the_culprit():
    with pytest.raises(KeyError, match="unknown app 'nope'") as exc:
        config_from_dict({"app": "nope", "nodes": 1})
    # The error enumerates what IS registered, so a typo'd cache entry or
    # hand-edited config is self-diagnosing.
    assert "allreduce" in str(exc.value)
    assert "cholesky" in str(exc.value)
    assert "jacobi3d" in str(exc.value)


def test_spec_matches_config_class():
    for name, cls in APP_CLASSES.items():
        spec = get_app(name)
        assert spec.name == cls.APP == name
        assert spec.config_cls is cls
        assert spec_for(cls(machine=MACHINE)) is spec


def test_spec_for_rejects_foreign_objects():
    with pytest.raises(TypeError):
        spec_for(object())


def test_register_is_idempotent_but_rejects_conflicts():
    assert register(JACOBI3D_SPEC) is JACOBI3D_SPEC
    imposter = dataclasses.replace(JACOBI3D_SPEC, description="different")
    with pytest.raises(ValueError, match="already registered"):
        register(imposter)


def test_spec_name_must_match_config_class():
    with pytest.raises(ValueError, match="does not match its config class"):
        dataclasses.replace(JACOBI3D_SPEC, name="jacobi2d")


# ---------------------------------------------------------------------------
# Round-trips through the registry dispatchers
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app", sorted(APP_CLASSES))
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_property_config_roundtrip_per_app(app, data):
    config = data.draw(_configs(APP_CLASSES[app]))
    d = config.to_dict()
    assert d["app"] == app
    assert next(iter(d)) == "app"  # the app name leads the canonical form
    back = config_from_dict(d)
    assert type(back) is APP_CLASSES[app]
    assert back == config
    assert config_key(back) == config_key(config)


def test_from_dict_rejects_wrong_app():
    d = Jacobi2DConfig(machine=MACHINE).to_dict()
    with pytest.raises(ValueError, match="use repro.apps.registry.config_from_dict"):
        Jacobi3DConfig.from_dict(d)


def test_config_from_dict_defaults_legacy_dicts_to_jacobi3d():
    d = Jacobi3DConfig(machine=MACHINE).to_dict()
    del d["app"]  # a dict written before the app field existed
    assert type(config_from_dict(d)) is Jacobi3DConfig


def test_result_from_dict_dispatches_and_checks_expectation():
    cfg = Jacobi2DConfig(version="charm-d", grid=(16, 16), odf=2,
                         iterations=2, warmup=0, machine=MACHINE)
    d = run_app(cfg).to_dict()
    result = result_from_dict(d)
    assert isinstance(result, StencilResult)
    assert result.config == cfg
    assert result_from_dict(d, expected=get_app("jacobi2d")).config == cfg
    with pytest.raises(ValueError, match="expected 'jacobi3d'"):
        result_from_dict(d, expected=get_app("jacobi3d"))


# ---------------------------------------------------------------------------
# Cross-app cache-key separation
# ---------------------------------------------------------------------------


class _RenamedJacobi3D(Jacobi3DConfig):
    """Identical fields to Jacobi3DConfig under a different app name."""

    APP = "jacobi3d-renamed"


def test_same_parameters_different_app_different_key():
    kwargs = dict(version="charm-d", nodes=2, grid=(64, 64, 64), odf=2,
                  iterations=5, warmup=1, machine=MACHINE)
    a, b = Jacobi3DConfig(**kwargs), _RenamedJacobi3D(**kwargs)
    assert config_key(a) != config_key(b)
    # ... and the app name is the ONLY divergence in the canonical form.
    da, db = a.to_dict(), b.to_dict()
    assert da.pop("app") == "jacobi3d" and db.pop("app") == "jacobi3d-renamed"
    assert da == db


@settings(max_examples=40, deadline=None)
@given(d2=_configs(Jacobi2DConfig), d3=_configs(Jacobi3DConfig))
def test_property_apps_never_alias(d2, d3):
    assert config_key(d2) != config_key(d3)
