"""Modeled-mode behavioral tests: protocols, overlap, overheads, metrics."""

import pytest

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.comm import Protocol
from repro.hardware import MachineSpec


def run(**kw):
    kw.setdefault("nodes", 2)
    kw.setdefault("iterations", 6)
    kw.setdefault("warmup", 1)
    return run_jacobi3d(Jacobi3DConfig(**kw))


# ---------------------------------------------------------------------------
# Protocol selection driven by problem size (the Fig. 7a/7b mechanism)
# ---------------------------------------------------------------------------


def test_large_problem_gpu_aware_uses_pipelined_staging():
    res = run(version="charm-d", grid=(1536, 1536, 3072), odf=1)
    assert res.max_halo_bytes > 1024 * 1024
    assert res.protocol_counts.get(Protocol.RNDV_PIPELINED, 0) > 0
    assert res.protocol_counts.get(Protocol.RNDV_GPUDIRECT, 0) == 0


def test_small_problem_gpu_aware_uses_gpudirect():
    res = run(version="mpi-d", grid=(192, 192, 384), odf=1)
    assert res.max_halo_bytes <= 96 * 1024
    assert res.protocol_counts.get(Protocol.RNDV_GPUDIRECT, 0) > 0
    assert res.protocol_counts.get(Protocol.RNDV_PIPELINED, 0) == 0


def test_host_versions_never_touch_device_protocols():
    res = run(version="charm-h", grid=(192, 192, 384), odf=2)
    assert res.protocol_counts.get(Protocol.RNDV_PIPELINED, 0) == 0
    assert res.protocol_counts.get(Protocol.RNDV_GPUDIRECT, 0) == 0
    res = run(version="mpi-h", grid=(192, 192, 384))
    assert res.protocol_counts.get(Protocol.RNDV_HOST, 0) > 0


# ---------------------------------------------------------------------------
# Overlap (the paper's central mechanism)
# ---------------------------------------------------------------------------


def test_overdecomposition_increases_overlap():
    base = run(version="charm-h", grid=(768, 768, 1536), odf=1)
    over = run(version="charm-h", grid=(768, 768, 1536), odf=4)
    assert over.overlap_s > base.overlap_s


def test_charm_overlaps_more_than_blocking_mpi():
    mpi = run(version="mpi-h", grid=(768, 768, 1536))
    charm = run(version="charm-h", grid=(768, 768, 1536), odf=4)
    # Normalize by runtime: fraction of network busy time hidden by compute.
    assert charm.overlap_s / charm.total_time > mpi.overlap_s / mpi.total_time


def test_overdecomposition_improves_large_problem_charm():
    odf1 = run(version="charm-h", grid=(1536, 1536, 3072), odf=1)
    odf4 = run(version="charm-h", grid=(1536, 1536, 3072), odf=4)
    assert odf4.time_per_iteration < odf1.time_per_iteration


def test_overdecomposition_hurts_small_problem():
    odf1 = run(version="charm-d", grid=(192, 192, 384), odf=1)
    odf4 = run(version="charm-d", grid=(192, 192, 384), odf=4)
    assert odf4.time_per_iteration > odf1.time_per_iteration


# ---------------------------------------------------------------------------
# Optimizations (Fig. 6) and fine-grained techniques (Figs. 8-9)
# ---------------------------------------------------------------------------


def test_legacy_baseline_never_faster():
    new = run(version="charm-h", grid=(1536, 1536, 3072), odf=4)
    old = run(version="charm-h", grid=(1536, 1536, 3072), odf=4, legacy_sync=True)
    assert old.time_per_iteration >= new.time_per_iteration * 0.999


def test_fusion_c_beats_baseline_when_launch_bound():
    # Small blocks + ODF 8: kernel launches dominate.
    base = run(version="charm-d", nodes=4, grid=(384, 384, 384), odf=8,
               iterations=4)
    fused = run(version="charm-d", nodes=4, grid=(384, 384, 384), odf=8,
                fusion="C", iterations=4)
    assert fused.time_per_iteration < base.time_per_iteration


def test_cuda_graphs_help_when_launch_bound():
    base = run(version="charm-d", nodes=4, grid=(384, 384, 384), odf=8,
               iterations=4)
    graphs = run(version="charm-d", nodes=4, grid=(384, 384, 384), odf=8,
                 cuda_graphs=True, iterations=4)
    assert graphs.time_per_iteration < base.time_per_iteration


def test_mpi_manual_overlap_helps_or_neutral():
    plain = run(version="mpi-h", grid=(768, 768, 1536))
    overlap = run(version="mpi-h", grid=(768, 768, 1536), mpi_overlap=True)
    assert overlap.time_per_iteration <= plain.time_per_iteration * 1.02


# ---------------------------------------------------------------------------
# Metrics plumbing
# ---------------------------------------------------------------------------


def test_result_fields_sane():
    res = run(version="charm-d", grid=(384, 384, 768), odf=2)
    assert res.total_time > res.warmup_boundary > 0
    assert res.time_per_iteration > 0
    assert 0 < res.gpu_utilization <= 1
    assert res.messages_sent > 0 and res.bytes_sent > 0
    assert res.pe_busy_s > 0
    assert res.blocks is None  # modeled mode


def test_deterministic_repeat():
    a = run(version="charm-d", grid=(384, 384, 768), odf=2)
    b = run(version="charm-d", grid=(384, 384, 768), odf=2)
    assert a.time_per_iteration == b.time_per_iteration
    assert a.total_time == b.total_time
    assert a.messages_sent == b.messages_sent


def test_gpu_memory_accounting_guards_against_oversubscription():
    # 4000^3 on a single node would need ~85 GB per GPU: must raise OOM.
    with pytest.raises(MemoryError):
        run(version="charm-h", nodes=1, grid=(4000, 4000, 4000), odf=1)


def test_summary_mentions_key_facts():
    res = run(version="charm-d", grid=(384, 384, 768), odf=2)
    text = res.summary()
    assert "charm-d" in text and "odf=2" in text and "ms/iter" in text
