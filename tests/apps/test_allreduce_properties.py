"""Property-based suite for the allreduce collectives app (docs/apps.md).

The per-unit contributions are integer-valued float64 vectors, so the
reduction is exact in any association order — ring, binomial tree,
pipelined-chunk and serial reference results must all be *bit-identical*.
Random unit counts (including odd and single-unit), vector lengths
(including zero) and chunk counts all reduce to the same bits on every
frontend.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import run_app
from repro.apps.allreduce import AllreduceConfig
from repro.apps.allreduce.context import AllreduceContext, reference_allreduce
from repro.apps.stencil import ALL_VERSIONS
from repro.hardware import MachineSpec

MACHINE = MachineSpec.small_debug()
#: One GPU per node: lets ``nodes`` drive odd/prime unit counts directly.
MACHINE_1GPU = dataclasses.replace(
    MACHINE, node=dataclasses.replace(MACHINE.node, gpus_per_node=1))


def _expected(config):
    """The serial reference for the *final* measured iteration (each
    iteration rebuilds its accumulator, so the last one is the survivor)."""
    return reference_allreduce(config, config.total_iterations - 1)


def _check(config):
    result = run_app(config)
    final = result.assemble_state()  # raises if any two replicas disagree
    assert final.dtype == np.float64
    assert np.array_equal(final, _expected(config))


@st.composite
def _configs(draw):
    version = draw(st.sampled_from(ALL_VERSIONS))
    return AllreduceConfig(
        version=version,
        nodes=draw(st.integers(1, 5)),
        odf=1 if version.startswith("mpi") else draw(st.integers(1, 3)),
        elements=draw(st.integers(0, 200)),
        algorithm=draw(st.sampled_from(["ring", "tree"])),
        chunks=draw(st.integers(1, 4)),
        iterations=draw(st.integers(1, 3)),
        warmup=draw(st.integers(0, 1)),
        seed=draw(st.integers(0, 2**16)),
        data_mode="functional",
        machine=MACHINE_1GPU,
    )


@settings(max_examples=25, deadline=None)
@given(config=_configs())
def test_any_algorithm_any_shape_reduces_to_the_serial_bits(config):
    _check(config)


@settings(max_examples=10, deadline=None)
@given(
    nodes=st.integers(1, 3),
    elements=st.integers(0, 128),
    chunks=st.integers(1, 3),
    seed=st.integers(0, 2**16),
)
def test_ring_and_tree_agree_bitwise(nodes, elements, chunks, seed):
    """ring(x) == tree(x) == serial(x), bit for bit, on the same input."""
    base = AllreduceConfig(
        version="charm-d", nodes=nodes, odf=1, elements=elements,
        chunks=chunks, iterations=2, warmup=0, seed=seed,
        data_mode="functional", machine=MACHINE,
    )
    results = {}
    for algorithm in ("ring", "tree"):
        results[algorithm] = run_app(
            base.with_(algorithm=algorithm)).assemble_state()
    assert np.array_equal(results["ring"], results["tree"])
    assert np.array_equal(results["ring"], _expected(base))


def test_single_unit_is_the_identity_reduction():
    """U=1: no communication rounds at all; the result is the local vector."""
    for version in ALL_VERSIONS:
        config = AllreduceConfig(
            version=version, nodes=1, odf=1, elements=64, algorithm="tree",
            iterations=2, warmup=0, data_mode="functional",
            machine=MACHINE_1GPU,
        )
        assert not AllreduceContext(config).round_steps
        _check(config)


def test_zero_length_vectors_terminate_on_both_algorithms():
    """elements=0: every message is zero bytes and every kernel is empty,
    but the protocol still runs to completion."""
    for algorithm in ("ring", "tree"):
        _check(AllreduceConfig(
            version="charm-d", nodes=2, odf=1, elements=0,
            algorithm=algorithm, iterations=2, warmup=1,
            data_mode="functional", machine=MACHINE,
        ))


def test_more_chunks_than_elements_leaves_empty_chunks():
    """chunks > elements/segment: trailing chunks are zero-length messages."""
    _check(AllreduceConfig(
        version="mpi-d", nodes=4, odf=1, elements=3, algorithm="ring",
        chunks=4, iterations=1, warmup=0, data_mode="functional",
        machine=MACHINE,
    ))
