"""Tests for Jacobi3D configuration validation and derived properties."""

import pytest

from repro.apps import Jacobi3DConfig
from repro.hardware import MachineSpec
from repro.kernels import FusionStrategy


def base(**kw):
    kw.setdefault("grid", (96, 96, 96))
    kw.setdefault("nodes", 1)
    return Jacobi3DConfig(**kw)


def test_defaults_valid():
    cfg = base()
    assert cfg.version == "charm-d"
    assert cfg.is_charm and not cfg.is_mpi
    assert cfg.gpu_aware
    assert cfg.fusion is FusionStrategy.NONE


def test_unknown_version_rejected():
    with pytest.raises(ValueError, match="version"):
        base(version="openmp")


def test_mpi_odf_must_be_one():
    with pytest.raises(ValueError, match="odf"):
        base(version="mpi-h", odf=2)


def test_fusion_only_with_charm_d():
    base(version="charm-d", fusion="A")
    for version in ("charm-h", "mpi-d", "mpi-h"):
        with pytest.raises(ValueError, match="fusion"):
            base(version=version, fusion="A")


def test_graphs_only_with_charm_d():
    base(version="charm-d", cuda_graphs=True)
    with pytest.raises(ValueError, match="Graphs"):
        base(version="charm-h", cuda_graphs=True)


def test_mpi_overlap_only_with_mpi():
    base(version="mpi-h", mpi_overlap=True)
    with pytest.raises(ValueError, match="mpi_overlap"):
        base(version="charm-h", mpi_overlap=True)


def test_fusion_string_parsed():
    assert base(fusion="B").fusion is FusionStrategy.B


def test_functional_size_guard():
    with pytest.raises(ValueError, match="functional"):
        base(grid=(512, 512, 512), data_mode="functional")
    base(grid=(512, 512, 512), data_mode="functional", allow_large_functional=True)


def test_bad_numbers_rejected():
    with pytest.raises(ValueError):
        base(nodes=0)
    with pytest.raises(ValueError):
        base(odf=0)
    with pytest.raises(ValueError):
        base(iterations=0)
    with pytest.raises(ValueError):
        base(warmup=-1)
    with pytest.raises(ValueError):
        base(grid=(0, 4, 4))
    with pytest.raises(ValueError):
        base(data_mode="imaginary")


def test_derived_counts():
    cfg = base(version="charm-h", nodes=2, odf=4)
    assert cfg.n_pes() == 12
    assert cfg.n_blocks() == 48
    assert cfg.total_iterations == cfg.iterations + cfg.warmup
    mpi = base(version="mpi-d", nodes=2)
    assert mpi.n_blocks() == 12


def test_gpu_aware_flag():
    assert base(version="mpi-d").gpu_aware
    assert not base(version="mpi-h").gpu_aware
    assert not base(version="charm-h").gpu_aware


def test_with_copies():
    cfg = base(version="charm-h", odf=2)
    cfg2 = cfg.with_(odf=8)
    assert cfg2.odf == 8 and cfg.odf == 2
    assert cfg2.version == "charm-h"


def test_custom_machine():
    cfg = base(machine=MachineSpec.small_debug())
    assert cfg.n_pes() == 2
