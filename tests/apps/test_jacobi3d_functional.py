"""Functional-mode integration tests: every version and variant of Jacobi3D
must produce grids bit-identical to the serial reference solver.

This is the strongest statement the suite makes about the runtime: whatever
the message timing, protocol, fusion strategy, or graph mode, the right
halo bytes reach the right ghost cells at the right iterations.
"""

import numpy as np
import pytest

from repro.apps import AppContext, Jacobi3DConfig, run_jacobi3d
from repro.hardware import MachineSpec
from repro.kernels import reference_solve, residual, max_principle_holds

GRID = (20, 20, 20)
ITERS = 4
MACHINE = MachineSpec.small_debug()


@pytest.fixture(scope="module")
def reference():
    return reference_solve(GRID, ITERS)[1:-1, 1:-1, 1:-1]


def run_case(**kw):
    kw.setdefault("nodes", 1)
    kw.setdefault("grid", GRID)
    kw.setdefault("iterations", ITERS)
    kw.setdefault("warmup", 0)
    kw.setdefault("data_mode", "functional")
    kw.setdefault("machine", MACHINE)
    cfg = Jacobi3DConfig(**kw)
    res = run_jacobi3d(cfg)
    return res, res.assemble_grid(AppContext(cfg).geometry)


@pytest.mark.parametrize("version", ["mpi-h", "mpi-d", "charm-h", "charm-d"])
def test_all_versions_match_reference(version, reference):
    _res, grid = run_case(version=version)
    assert np.array_equal(grid, reference)


@pytest.mark.parametrize("odf", [2, 4])
@pytest.mark.parametrize("version", ["charm-h", "charm-d"])
def test_overdecomposition_matches_reference(version, odf, reference):
    _res, grid = run_case(version=version, odf=odf)
    assert np.array_equal(grid, reference)


@pytest.mark.parametrize("fusion", ["A", "B", "C"])
def test_fusion_strategies_match_reference(fusion, reference):
    _res, grid = run_case(version="charm-d", odf=2, fusion=fusion)
    assert np.array_equal(grid, reference)


@pytest.mark.parametrize("fusion", ["none", "B", "C"])
def test_cuda_graphs_match_reference(fusion, reference):
    _res, grid = run_case(version="charm-d", odf=2, cuda_graphs=True,
                          fusion=fusion if fusion != "none" else None)
    assert np.array_equal(grid, reference)


def test_legacy_baseline_matches_reference(reference):
    _res, grid = run_case(version="charm-h", odf=2, legacy_sync=True)
    assert np.array_equal(grid, reference)


@pytest.mark.parametrize("version", ["mpi-h", "mpi-d"])
def test_mpi_manual_overlap_matches_reference(version, reference):
    _res, grid = run_case(version=version, mpi_overlap=True)
    assert np.array_equal(grid, reference)


def test_multi_node_matches_reference(reference):
    _res, grid = run_case(version="charm-d", nodes=2, odf=2)
    assert np.array_equal(grid, reference)


def test_round_robin_style_grid_anisotropic():
    """Non-cubic grid with uneven splits still matches the reference."""
    grid_shape = (13, 9, 17)
    ref = reference_solve(grid_shape, 3)[1:-1, 1:-1, 1:-1]
    _res, grid = run_case(version="charm-h", grid=grid_shape, odf=2, iterations=3)
    assert np.array_equal(grid, ref)


def test_longer_run_converges_and_respects_max_principle():
    res, grid = run_case(version="charm-d", odf=2, iterations=60)
    full = np.zeros((GRID[0] + 2, GRID[1] + 2, GRID[2] + 2))
    full[1:-1, 1:-1, 1:-1] = grid
    full[-1, :, :] = 1.0  # hot face boundary for the residual check
    assert max_principle_holds(full)
    # 60 iterations must be closer to the fixed point than 4.
    _res4, grid4 = run_case(version="charm-d", odf=2)
    ref_inf = reference_solve(GRID, 400)[1:-1, 1:-1, 1:-1]
    assert np.abs(grid - ref_inf).max() < np.abs(grid4 - ref_inf).max()


def test_warmup_iterations_count_toward_physics(reference):
    """warmup affects timing only — the grid must reflect ALL iterations."""
    ref6 = reference_solve(GRID, 6)[1:-1, 1:-1, 1:-1]
    _res, grid = run_case(version="charm-d", odf=2, iterations=4, warmup=2)
    assert np.array_equal(grid, ref6)


def test_blocks_field_has_every_block():
    res, _ = run_case(version="charm-h", odf=2)
    cfg = res.config
    assert len(res.blocks) == cfg.n_blocks()
    for interior in res.blocks.values():
        assert interior.ndim == 3


def test_assemble_grid_requires_functional():
    cfg = Jacobi3DConfig(version="charm-h", nodes=1, grid=GRID, iterations=2,
                         machine=MACHINE)
    res = run_jacobi3d(cfg)
    assert res.blocks is None
    with pytest.raises(ValueError):
        res.assemble_grid(AppContext(cfg).geometry)
