"""Tests for series containers, rendering, and crossover analysis."""

import pytest

from repro.analysis import (
    FigureData,
    Series,
    best_label_per_x,
    crossover_x,
    render_figure,
    render_plot,
    render_table,
    speedup_series,
)


def make_fig():
    fig = FigureData("figX", "Test figure", "nodes", "time (s)")
    a = fig.new_series("fast")
    b = fig.new_series("slow")
    for x in (1, 2, 4):
        a.add(x, 1.0 / x)
        b.add(x, 2.0 / x)
    return fig


def test_series_add_and_access():
    s = Series("s")
    s.add(1, 10.0, note="x")
    s.add(2, 5.0)
    assert s.xs() == [1, 2]
    assert s.ys() == [10.0, 5.0]
    assert s.y_at(2) == 5.0
    assert s.meta[0] == {"note": "x"}
    assert len(s) == 2
    with pytest.raises(KeyError):
        s.y_at(3)


def test_figure_duplicate_series_rejected():
    fig = make_fig()
    with pytest.raises(ValueError):
        fig.new_series("fast")


def test_figure_json_roundtrip(tmp_path):
    fig = make_fig()
    fig.note("hello")
    path = tmp_path / "fig.json"
    fig.save_json(path)
    back = FigureData.load_json(path)
    assert back.figure_id == "figX"
    assert back.series["fast"].points == fig.series["fast"].points
    assert back.notes == ["hello"]


def test_render_table_contains_all_values():
    text = render_table(make_fig())
    assert "fast" in text and "slow" in text
    assert "0.25" in text  # fast at x=4
    assert "nodes" in text


def test_render_table_missing_point_dash():
    fig = make_fig()
    fig.series["fast"].add(8, 0.125)
    text = render_table(fig)
    assert "-" in text.splitlines()[-1]  # slow has no x=8


def test_render_plot_draws_marks():
    text = render_plot(make_fig())
    assert "o" in text and "x" in text
    assert "fast" in text and "slow" in text


def test_render_plot_empty():
    fig = FigureData("e", "Empty", "x", "y")
    fig.new_series("nothing")
    assert "no data" in render_plot(fig)


def test_render_figure_includes_notes():
    fig = make_fig()
    fig.note("calibration note")
    text = render_figure(fig)
    assert "calibration note" in text
    assert "figX" in text


# ---------------------------------------------------------------------------
# Crossover analysis
# ---------------------------------------------------------------------------


def crossing_series():
    hi = Series("ODF-4")
    lo = Series("ODF-2")
    for x, y4, y2 in [(1, 1.0, 1.5), (2, 0.9, 1.0), (4, 0.8, 0.7), (8, 0.7, 0.5)]:
        hi.add(x, y4)
        lo.add(x, y2)
    return {"ODF-4": hi, "ODF-2": lo}


def test_best_label_per_x():
    best = best_label_per_x(crossing_series())
    assert best == {1: "ODF-4", 2: "ODF-4", 4: "ODF-2", 8: "ODF-2"}


def test_best_label_empty():
    assert best_label_per_x({}) == {}


def test_crossover_x_found():
    assert crossover_x(crossing_series(), "ODF-4", "ODF-2") == 4


def test_crossover_x_never():
    series = crossing_series()
    assert crossover_x(series, "ODF-2", "ODF-4") is None


def test_crossover_requires_sustained_win():
    a = Series("a")
    b = Series("b")
    for x, ya, yb in [(1, 1.0, 0.9), (2, 1.0, 1.2), (4, 1.0, 0.8), (8, 1.0, 0.7)]:
        a.add(x, ya)
        b.add(x, yb)
    # b dips below at x=1 but loses at x=2; the sustained crossover is x=4.
    assert crossover_x({"a": a, "b": b}, "a", "b") == 4


def test_speedup_series():
    base = Series("base")
    other = Series("other")
    for x in (1, 2):
        base.add(x, 2.0)
        other.add(x, 1.0)
    sp = speedup_series(base, other)
    assert sp.ys() == [2.0, 2.0]
