"""Metrics registry: labelled series, cardinality cap, attachment contract."""

import pytest

from repro.obs import MetricsRegistry, size_bucket
from repro.obs.metrics import _OVERFLOW_KEY
from repro.sim import Engine


# ---------------------------------------------------------------------------
# Counters / gauges / histograms
# ---------------------------------------------------------------------------


def test_counter_accumulates_per_label_set():
    reg = MetricsRegistry()
    reg.inc("msgs", pe=0)
    reg.inc("msgs", pe=0)
    reg.inc("msgs", 3, pe=1)
    counter = reg.get("msgs")
    assert counter.value(pe=0) == 2
    assert counter.value(pe=1) == 3
    assert counter.total() == 5


def test_counter_label_order_is_irrelevant():
    reg = MetricsRegistry()
    reg.inc("x", pe=0, kind="a")
    reg.inc("x", kind="a", pe=0)
    assert reg.get("x").value(pe=0, kind="a") == 2


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.inc("x", -1.0)


def test_gauge_tracks_value_and_max():
    reg = MetricsRegistry()
    reg.set("depth", 3, pe=0)
    reg.set("depth", 7, pe=0)
    reg.set("depth", 2, pe=0)
    gauge = reg.get("depth")
    assert gauge.value(pe=0) == 2
    assert gauge.max(pe=0) == 7
    assert gauge.value(pe=9) == 0.0  # unseen label set


def test_histogram_buckets_by_upper_edge():
    reg = MetricsRegistry()
    hist = reg.histogram("lat", buckets=[1.0, 10.0])
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(100.0)
    cell = hist.series[()]
    assert cell["buckets"] == [1, 1, 1]  # <=1, <=10, +inf
    assert cell["count"] == 3
    assert cell["sum"] == pytest.approx(105.5)


def test_histogram_rejects_unsorted_edges():
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("bad", buckets=[10.0, 1.0])


def test_size_bucket_edges():
    assert size_bucket(0) == "64"
    assert size_bucket(64) == "64"
    assert size_bucket(65) == "256"
    assert size_bucket(4**15) == str(4**15)
    assert size_bucket(4**15 + 1) == "+inf"


def test_redeclare_with_different_kind_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(TypeError):
        reg.gauge("m")
    with pytest.raises(TypeError):
        reg.histogram("m")


# ---------------------------------------------------------------------------
# Label-cardinality cap (satellite: an unbounded label must not grow memory
# without bound)
# ---------------------------------------------------------------------------


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_cardinality_cap_folds_into_overflow_series():
    reg = MetricsRegistry(max_series=4)
    for i in range(10):
        reg.inc("leaky", msg_id=i)  # a per-message id: the classic bug
    counter = reg.get("leaky")
    assert len(counter.series) == 5  # 4 real series + 1 overflow cell
    assert counter.dropped_series == 6
    assert counter.series[_OVERFLOW_KEY] == 6  # every folded sample counted
    assert counter.total() == 10  # nothing lost, only label detail


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_cardinality_cap_existing_series_keep_updating():
    reg = MetricsRegistry(max_series=2)
    reg.inc("c", pe=0)
    reg.inc("c", pe=1)
    reg.inc("c", pe=2)  # overflows
    reg.inc("c", pe=0)  # existing series still addressable past the cap
    counter = reg.get("c")
    assert counter.value(pe=0) == 2
    assert counter.dropped_series == 1


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_snapshot_reports_overflow():
    reg = MetricsRegistry(max_series=1)
    reg.inc("c", pe=0)
    reg.inc("c", pe=1)
    snap = reg.snapshot()["c"]
    assert snap["dropped_series"] == 1
    assert any(s["labels"] == {"_overflow": "true"} for s in snap["series"])


# ---------------------------------------------------------------------------
# Attachment (mirrors the Tracer contract)
# ---------------------------------------------------------------------------


def test_attach_is_idempotent_and_migrates_engines():
    reg = MetricsRegistry()
    eng1, eng2 = Engine(), Engine()
    assert reg.attach(eng1) is reg
    reg.attach(eng1)  # same engine: no-op
    assert eng1.metrics is reg
    reg.attach(eng2)  # new engine: old reference cleared
    assert eng1.metrics is None
    assert eng2.metrics is reg


def test_detach_clears_engine_reference():
    reg = MetricsRegistry()
    eng = Engine()
    reg.attach(eng)
    reg.detach()
    assert eng.metrics is None
    reg.detach()  # no-op when unattached


def test_context_manager_detaches_on_exit():
    eng = Engine()
    with MetricsRegistry().attach(eng) as reg:
        assert eng.metrics is reg
    assert eng.metrics is None


def test_engine_counts_events_only_when_registry_attached():
    def proc(eng):
        yield eng.timeout(1.0)

    eng = Engine()
    eng.process(proc(eng))
    eng.run()
    assert eng.metrics is None  # zero-cost default: no registry, no counting

    eng2 = Engine()
    reg = MetricsRegistry().attach(eng2)
    eng2.process(proc(eng2))
    eng2.run()
    assert reg.get("sim.events.scheduled").total() > 0
    assert (reg.get("sim.events.executed").total()
            == reg.get("sim.events.scheduled").total())


# ---------------------------------------------------------------------------
# Queries and rendering
# ---------------------------------------------------------------------------


def test_scalar_totals_counters_only():
    reg = MetricsRegistry()
    reg.inc("a", 2, pe=0)
    reg.inc("a", 3, pe=1)
    reg.set("g", 9)
    reg.observe("h", 1.0)
    assert reg.scalar_totals() == {"a": 5}


def test_render_text_mentions_every_metric():
    reg = MetricsRegistry()
    reg.inc("counter.x", pe=0)
    reg.set("gauge.y", 4)
    reg.observe("hist.z", 2.0)
    text = reg.render_text()
    for name in ("counter.x", "gauge.y", "hist.z"):
        assert name in text
    assert "max 4" in text

def test_names_and_contains():
    reg = MetricsRegistry()
    reg.inc("b")
    reg.inc("a")
    assert reg.names() == ["a", "b"]
    assert "a" in reg and "zzz" not in reg


def test_overflow_warns_once_per_metric():
    reg = MetricsRegistry(max_series=2)
    reg.inc("leaky", k=0)
    reg.inc("leaky", k=1)
    with pytest.warns(RuntimeWarning, match="leaky.*folding"):
        reg.inc("leaky", k=2)  # first fold warns
    import warnings as _warnings
    with _warnings.catch_warnings():
        _warnings.simplefilter("error")  # a second warning would raise
        reg.inc("leaky", k=3)
        reg.inc("leaky", k=4)
    # A different metric gets its own single warning.
    reg.inc("other", k=0)
    reg.inc("other", k=1)
    with pytest.warns(RuntimeWarning, match="other"):
        reg.inc("other", k=2)


def test_overflow_total_surfaces_in_summaries():
    from repro.obs import OVERFLOW_METRIC

    reg = MetricsRegistry(max_series=1)
    reg.inc("clean")
    # No folding yet: the synthetic counter stays out of the way.
    assert OVERFLOW_METRIC not in reg.scalar_totals()
    assert OVERFLOW_METRIC not in reg.snapshot()
    with pytest.warns(RuntimeWarning):
        reg.inc("leaky", k=0)
        reg.inc("leaky", k=1)
        reg.inc("leaky", k=2)
    assert reg.overflow_total() == 2
    assert reg.scalar_totals()[OVERFLOW_METRIC] == 2.0
    snap = reg.snapshot()[OVERFLOW_METRIC]
    assert snap["kind"] == "counter"
    assert snap["series"] == [{"labels": {"metric": "leaky"}, "value": 2}]
