"""Differential perf analysis: exact blame decomposition, schema guards
(including the pre-app report-shape regression), and sidecar-sweep diffs."""

import json

import pytest

from repro.apps import Jacobi3DConfig
from repro.exec import perf_sidecar_reports
from repro.hardware import MachineSpec
from repro.obs import (
    Intervention,
    SchemaMismatch,
    apply_to_machine,
    collect_perf,
    diff_reports,
    diff_sidecar_dirs,
)
from repro.obs.diff import DIFF_SCHEMA, ensure_diffable


def _config(machine=None):
    return Jacobi3DConfig(version="charm-d", nodes=2, grid=(64, 64, 64),
                          odf=2, iterations=3, warmup=1,
                          machine=machine or MachineSpec.small_debug())


@pytest.fixture(scope="module")
def pair():
    """Baseline report + the same config on a 2x-slower wire."""
    from repro.apps import spec_for

    base_cfg = _config()
    slow = apply_to_machine(Intervention("net", 2.0), spec_for(base_cfg),
                            base_cfg.machine)
    _, baseline = collect_perf(base_cfg)
    _, current = collect_perf(_config(machine=slow))
    return baseline, current


# ---------------------------------------------------------------------------
# The differential
# ---------------------------------------------------------------------------


def test_blame_is_an_exact_decomposition(pair):
    baseline, current = pair
    diff = diff_reports(baseline, current)
    assert diff.baseline_makespan == pytest.approx(baseline.makespan)
    assert diff.current_makespan == pytest.approx(current.makespan)
    # The critical path tiles [0, makespan], so per-category deltas sum to
    # the makespan delta exactly — blame is arithmetic, not heuristic.
    total = sum(e.delta for e in diff.critpath)
    assert total == pytest.approx(diff.makespan_delta, abs=1e-9)


def test_accepts_reports_and_dicts(pair):
    baseline, current = pair
    a = diff_reports(baseline, current)
    b = diff_reports(baseline.to_dict(), current.to_dict())
    assert a.makespan_delta == pytest.approx(b.makespan_delta)


def test_blame_line_names_the_biggest_mover(pair):
    baseline, current = pair
    diff = diff_reports(baseline, current)
    top = max(diff.critpath, key=lambda e: abs(e.delta))
    assert top.name in diff.blame()
    # Identical reports: nothing to blame.
    null = diff_reports(baseline, baseline)
    assert null.blame() == "no single critical-path category moved"
    assert null.makespan_delta == 0.0


def test_to_dict_schema_is_pinned(pair):
    baseline, current = pair
    doc = diff_reports(baseline, current).to_dict()
    assert doc["schema"] == DIFF_SCHEMA == "repro.perf-diff/1"
    assert set(doc) == {"schema", "baseline_makespan", "current_makespan",
                        "makespan_delta", "blame", "critical_path",
                        "phases", "resources"}
    for row in doc["critical_path"]:
        assert set(row) == {"name", "baseline", "current", "delta"}


def test_render_text_sections(pair):
    baseline, current = pair
    text = diff_reports(baseline, current).render_text()
    assert "perf diff: makespan" in text
    assert "blame:" in text
    assert "exact decomposition" in text
    assert "phase footprint" in text


# ---------------------------------------------------------------------------
# Schema guards — exit-2 material for the CLI
# ---------------------------------------------------------------------------


def test_bench_meta_documents_are_rejected(pair):
    baseline, _ = pair
    trajectory = {"engine": {"latest": {"wall_s": 0.25}, "history": []}}
    with pytest.raises(SchemaMismatch, match="not diffable"):
        diff_reports(trajectory, baseline)


def test_pre_app_report_shape_is_rejected(pair):
    """Regression guard: reports written before the app registry existed
    carry no ``config.app`` — their phase vocabulary is not comparable."""
    import copy

    baseline, current = pair
    # Deep copy: to_dict() shares the report's config dict, and this test
    # must not mutate the module-scoped fixture.
    old = copy.deepcopy(baseline.to_dict())
    old["config"].pop("app")
    with pytest.raises(SchemaMismatch, match="pre-app report shape"):
        diff_reports(old, current)
    with pytest.raises(SchemaMismatch, match="current"):
        diff_reports(baseline, old)


def test_missing_fields_are_rejected():
    with pytest.raises(SchemaMismatch, match="not a JSON object"):
        ensure_diffable([1, 2, 3])
    with pytest.raises(SchemaMismatch, match="missing 'makespan'"):
        ensure_diffable({"schema": "repro.perf/1"})
    with pytest.raises(SchemaMismatch, match="critical_path"):
        ensure_diffable({"schema": "repro.perf/1", "makespan": 1.0})


# ---------------------------------------------------------------------------
# Sidecar sweep directories
# ---------------------------------------------------------------------------


def test_diff_sidecar_dirs(tmp_path, pair):
    baseline, current = pair
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir(), b.mkdir()
    (a / "k1.perf.json").write_text(json.dumps(baseline.to_dict()))
    (b / "k1.perf.json").write_text(json.dumps(current.to_dict()))
    # k2: present in both but not diffable on one side -> None.
    (a / "k2.perf.json").write_text(json.dumps(baseline.to_dict()))
    (b / "k2.perf.json").write_text(json.dumps({"schema": "other"}))
    # k3: present on one side only -> absent from the result.
    (a / "k3.perf.json").write_text(json.dumps(baseline.to_dict()))
    # Corrupt sidecars are skipped, not fatal.
    (b / "k4.perf.json").write_text("{not json")

    diffs = diff_sidecar_dirs(a, b)
    assert set(diffs) == {"k1", "k2"}
    assert diffs["k2"] is None
    assert diffs["k1"].makespan_delta == pytest.approx(
        current.makespan - baseline.makespan)

    reports = perf_sidecar_reports(a)
    assert set(reports) == {"k1", "k2", "k3"}
