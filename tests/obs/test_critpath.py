"""Critical-path backward walk: tiling invariant, wait attribution, and the
acceptance check that the reported path length equals the simulated makespan."""

import pytest

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.obs import Observatory, collect_segments, critical_path


def _assert_tiles(path):
    """The path must partition [t_start, t_end] exactly, in time order."""
    assert path.segments[0].start == path.t_start
    assert path.segments[-1].end == path.t_end
    for prev, cur in zip(path.segments, path.segments[1:]):
        assert cur.start == prev.end
    assert sum(s.duration for s in path.segments) == pytest.approx(path.length_s)


# ---------------------------------------------------------------------------
# Synthetic interval sets
# ---------------------------------------------------------------------------


def test_single_chain():
    path = critical_path([(0.0, 2.0, "pe"), (2.0, 5.0, "nic")], t_end=5.0)
    _assert_tiles(path)
    assert path.composition() == {"nic": 3.0, "pe": 2.0}
    assert path.wait_s == 0.0


def test_gap_becomes_wait():
    path = critical_path([(0.0, 1.0, "pe"), (3.0, 5.0, "nic")], t_end=5.0)
    _assert_tiles(path)
    assert path.composition()["wait"] == pytest.approx(2.0)
    waits = [s for s in path.segments if s.category == "wait"]
    assert [(s.start, s.end) for s in waits] == [(1.0, 3.0)]


def test_leading_gap_is_wait_to_t_start():
    path = critical_path([(2.0, 4.0, "pe")], t_start=0.0, t_end=4.0)
    _assert_tiles(path)
    assert path.segments[0].category == "wait"
    assert (path.segments[0].start, path.segments[0].end) == (0.0, 2.0)


def test_earliest_start_wins_among_concurrent_activities():
    # At t=6 both are active; pe began earlier, so the whole step lands on pe.
    path = critical_path([(0.0, 6.0, "pe"), (4.0, 6.0, "nic")], t_end=6.0)
    assert [s.category for s in path.segments] == ["pe"]


def test_overlapping_same_category_intervals_merge():
    # pe's two spans merge to (0,5); nic alone reaches t=6, so the walk
    # attributes (4.5,6) to nic (its whole gating interval) and hands the
    # rest back to pe.
    path = critical_path(
        [(0.0, 3.0, "pe"), (2.0, 5.0, "pe"), (4.5, 6.0, "nic")], t_end=6.0)
    _assert_tiles(path)
    assert path.composition() == {"pe": 4.5, "nic": 1.5}


def test_zero_length_intervals_are_ignored():
    path = critical_path([(1.0, 1.0, "pe"), (0.0, 2.0, "nic")], t_end=2.0)
    assert [s.category for s in path.segments] == ["nic"]


def test_empty_segments_gives_pure_wait():
    path = critical_path([], t_start=0.0, t_end=3.0)
    assert path.composition() == {"wait": 3.0}
    _assert_tiles(path)


def test_empty_window():
    path = critical_path([(0.0, 1.0, "pe")], t_start=1.0, t_end=1.0)
    assert path.segments == []
    assert path.length_s == 0.0


def test_t_end_defaults_to_latest_interval_end():
    path = critical_path([(0.0, 2.0, "pe"), (1.0, 4.0, "nic")])
    assert path.t_end == 4.0


def test_to_dict_and_render():
    path = critical_path([(0.0, 2.0, "pe"), (3.0, 4.0, "nic")], t_end=4.0)
    d = path.to_dict(max_segments=2)
    assert d["length_s"] == 4.0
    assert d["n_segments"] == 3
    assert len(d["longest_segments"]) == 2
    assert d["longest_segments"][0]["duration"] >= d["longest_segments"][1]["duration"]
    text = path.render_text()
    assert "critical path" in text and "wait" in text


# ---------------------------------------------------------------------------
# Acceptance: on a fig-6-style config the path length equals the makespan
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("version,legacy", [("charm-h", True), ("charm-d", False)])
def test_critical_path_length_equals_makespan(version, legacy):
    config = Jacobi3DConfig(version=version, nodes=2, grid=(96, 96, 96),
                            odf=4, iterations=6, warmup=2, legacy_sync=legacy)
    obs = Observatory()
    run_jacobi3d(config, observatory=obs)
    makespan = obs.engine.now
    path = critical_path(collect_segments(obs.cluster, obs.tracer),
                         t_start=0.0, t_end=makespan)
    assert path.length_s == pytest.approx(makespan, rel=0.01)
    _assert_tiles(path)
    comp = path.composition()
    assert sum(comp.values()) == pytest.approx(makespan, rel=1e-9)
    assert any(cat != "wait" for cat in comp)  # real work on the path


def test_collect_segments_uses_trace_phases_when_available():
    config = Jacobi3DConfig(version="charm-d", nodes=1, grid=(96, 96, 96),
                            odf=2, iterations=4, warmup=1)
    obs = Observatory()
    run_jacobi3d(config, observatory=obs)
    cats = {cat for _, _, cat in collect_segments(obs.cluster, obs.tracer)}
    assert "pe" in cats and "nic" in cats
    # GPU work is phase-classified, not engine-named, when traced.
    assert {"pack", "unpack", "update"} <= cats
    assert not any(c.startswith("gpu.") for c in cats)


def test_collect_segments_falls_back_to_engine_trackers():
    config = Jacobi3DConfig(version="charm-d", nodes=1, grid=(96, 96, 96),
                            odf=2, iterations=4, warmup=1)
    obs = Observatory()
    run_jacobi3d(config, observatory=obs)
    cats = {cat for _, _, cat in collect_segments(obs.cluster, tracer=None)}
    assert any(c.startswith("gpu.") for c in cats)
