"""Perf reports and the regression gate: collection, serialization,
comparison semantics, and the bench_meta history helper."""

import json

import pytest

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.obs import (
    Observatory,
    PerfReport,
    append_bench_history,
    collect_perf,
    compare_perf,
    extract_comparable,
)

CONFIG = Jacobi3DConfig(version="charm-d", nodes=2, grid=(96, 96, 96),
                        odf=4, iterations=6, warmup=2)


@pytest.fixture(scope="module")
def perf():
    return collect_perf(CONFIG)


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------


def test_report_answers_the_papers_questions(perf):
    result, report = perf
    assert report.makespan == result.total_time
    assert report.time_per_iteration == result.time_per_iteration
    assert report.overlap_s == result.overlap_s
    # Per-resource utilization, per-iteration phases, critical path: all there.
    assert any(r["kind"] == "gpu.compute" and r["busy_s"] > 0 for r in report.resources)
    assert len(report.iterations) == CONFIG.total_iterations
    assert report.critical_path["length_s"] == pytest.approx(report.makespan, rel=0.01)
    assert report.counters["ucx.messages"] > 0
    assert report.counters["sim.events.executed"] > 0


def test_observatory_run_matches_plain_run(perf):
    # Observability must be a pure observer: results are bit-identical.
    result, _report = perf
    plain = run_jacobi3d(CONFIG)
    assert plain.total_time == result.total_time
    assert plain.time_per_iteration == result.time_per_iteration
    assert plain.overlap_s == result.overlap_s
    assert plain.messages_sent == result.messages_sent


def test_observatory_report_before_run_raises():
    with pytest.raises(RuntimeError):
        Observatory().report(None)


def test_driver_rejects_tracer_plus_observatory():
    from repro.sim import Tracer
    with pytest.raises(ValueError):
        run_jacobi3d(CONFIG, tracer=Tracer(), observatory=Observatory())


def test_overlap_odf4_exceeds_odf1():
    # Acceptance: overdecomposition buys overlap on the same config.
    base = CONFIG.to_dict()
    base["odf"] = 1
    r1 = run_jacobi3d(Jacobi3DConfig.from_dict(base))
    r4 = run_jacobi3d(CONFIG)
    assert r4.overlap_s > r1.overlap_s


def test_chrome_trace_export(perf):
    obs = Observatory()
    run_jacobi3d(CONFIG, observatory=obs)
    events = obs.chrome_trace()
    assert events and json.loads(json.dumps(events))


# ---------------------------------------------------------------------------
# Serialization and rendering
# ---------------------------------------------------------------------------


def test_report_json_round_trip(tmp_path, perf):
    _result, report = perf
    path = report.save(tmp_path / "r.perf.json")
    loaded = PerfReport.load(path)
    assert loaded.to_dict() == report.to_dict()
    assert loaded.scalar_metrics() == report.scalar_metrics()


def test_render_text_sections(perf):
    _result, report = perf
    text = report.render_text()
    for needle in ("makespan", "resources", "phase footprint",
                   "per-iteration", "critical path", "counters"):
        assert needle in text


def test_render_html_is_standalone(perf):
    _result, report = perf
    html = report.render_html()
    assert html.startswith("<!doctype html>")
    assert "Critical path" in html and "Resources" in html


# ---------------------------------------------------------------------------
# The regression gate
# ---------------------------------------------------------------------------


def _doc(tpi=1.0, makespan=10.0):
    return {"time_per_iteration": tpi, "makespan": makespan}


def test_identical_inputs_pass():
    comparison = compare_perf(_doc(), _doc(), tolerance=0.05)
    assert comparison.ok
    assert comparison.unchanged == 2


def test_ten_percent_slowdown_fails_at_five_percent_tolerance():
    comparison = compare_perf(_doc(), _doc(tpi=1.10), tolerance=0.05)
    assert not comparison.ok
    (reg,) = comparison.regressions
    assert reg.metric == "time_per_iteration"
    assert reg.ratio == pytest.approx(1.10)
    assert "REGRESSION" in comparison.render_text()


def test_slowdown_within_tolerance_passes():
    assert compare_perf(_doc(), _doc(tpi=1.04), tolerance=0.05).ok


def test_improvement_is_reported_not_failed():
    comparison = compare_perf(_doc(), _doc(tpi=0.5), tolerance=0.05)
    assert comparison.ok
    assert len(comparison.improvements) == 1


def test_only_shared_metrics_compared():
    comparison = compare_perf({"time_per_iteration": 1.0},
                              _doc(tpi=1.0, makespan=99.0))
    assert comparison.ok
    assert comparison.unchanged == 1  # makespan absent from baseline: skipped


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError):
        compare_perf(_doc(), _doc(), tolerance=-0.1)


def test_extract_comparable_bench_meta_formats():
    doc = {
        "fig6": {"latest": {"wall_s": 2.5}, "history": [{"wall_s": 3.0},
                                                        {"wall_s": 2.5}]},
        "fig7a": {"history": [{"wall_s": 4.0}]},  # no latest: newest entry
        "fig8": {"wall_s": 1.0},                  # legacy flat entry
        "schema": "not-a-figure",
        "lint": {"latest": {"files": 120}},       # no wall_s: skipped
    }
    assert extract_comparable(doc) == {
        "fig6.wall_s": 2.5, "fig7a.wall_s": 4.0, "fig8.wall_s": 1.0}


def test_gate_on_real_report_is_deterministic(perf):
    _result, report = perf
    again = collect_perf(CONFIG)[1]
    comparison = compare_perf(report.to_dict(), again.to_dict(), tolerance=0.0)
    assert comparison.ok  # simulated metrics: bit-identical across runs


# ---------------------------------------------------------------------------
# append_bench_history (the conftest satellite's engine)
# ---------------------------------------------------------------------------


def test_history_appends_instead_of_overwriting(tmp_path):
    path = tmp_path / "bench_meta.json"
    append_bench_history(path, "fig6", {"wall_s": 1.0}, now="2026-08-06T00:00:00")
    meta = append_bench_history(path, "fig6", {"wall_s": 2.0},
                                now="2026-08-07T00:00:00")
    slot = meta["fig6"]
    assert [e["wall_s"] for e in slot["history"]] == [1.0, 2.0]
    assert slot["latest"]["wall_s"] == 2.0
    assert slot["latest"]["at"] == "2026-08-07T00:00:00"
    assert json.loads(path.read_text()) == meta


def test_history_migrates_legacy_flat_entry(tmp_path):
    path = tmp_path / "bench_meta.json"
    path.write_text(json.dumps({"fig6": {"wall_s": 9.0, "points": 4}}))
    meta = append_bench_history(path, "fig6", {"wall_s": 1.0})
    assert [e["wall_s"] for e in meta["fig6"]["history"]] == [9.0, 1.0]


def test_history_is_capped(tmp_path):
    path = tmp_path / "bench_meta.json"
    for i in range(7):
        meta = append_bench_history(path, "fig6", {"wall_s": float(i)}, limit=3)
    assert [e["wall_s"] for e in meta["fig6"]["history"]] == [4.0, 5.0, 6.0]


def test_history_other_keys_untouched(tmp_path):
    path = tmp_path / "bench_meta.json"
    append_bench_history(path, "fig6", {"wall_s": 1.0})
    meta = append_bench_history(path, "lint", {"wall_s": 0.5})
    assert meta["fig6"]["latest"]["wall_s"] == 1.0


def test_history_recovers_from_corrupt_file(tmp_path):
    path = tmp_path / "bench_meta.json"
    path.write_text("{not json")
    meta = append_bench_history(path, "fig6", {"wall_s": 1.0})
    assert meta["fig6"]["latest"]["wall_s"] == 1.0
