"""What-if projection engine: prediction-vs-actual across every registered
app and both frontends, target resolution, projection properties, and the
ODF advisor held against the true sweep.

The matrix configs and intervention sets below are the pinned validation
surface for :data:`repro.obs.whatif.DEFAULT_TOLERANCE`: every projection
must match an *actual* re-run on the equivalently modified machine within
that tolerance.  If a model change pushes an error past the bound, either
the projection engine or the tolerance needs revisiting — not the test.
"""

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_app, spec_for
from repro.hardware import MachineSpec
from repro.obs import (
    DEFAULT_TOLERANCE,
    Intervention,
    advise_odf,
    apply_to_machine,
    odf_sweep,
    record_run,
    resolve_targets,
    validate_intervention,
)

MACHINE = MachineSpec.small_debug()

#: Per-app pinned validation configs (small enough for tier-1, large
#: enough that every intervention target has real footprint).
def make_config(app: str, version: str, odf: int):
    cls = get_app(app).config_cls
    if app == "jacobi3d":
        return cls(version=version, nodes=2, grid=(128, 128, 128), odf=odf,
                   iterations=4, warmup=1, machine=MACHINE)
    if app == "jacobi2d":
        return cls(version=version, nodes=2, grid=(1024, 1024), odf=odf,
                   iterations=4, warmup=1, machine=MACHINE)
    if app == "cholesky":
        return cls(version=version, nodes=2, tiles=8, tile=128, odf=odf,
                   machine=MACHINE)
    if app == "allreduce":
        return cls(version=version, nodes=2, elements=1 << 16, odf=odf,
                   iterations=3, warmup=1, machine=MACHINE)
    raise AssertionError(app)


#: The per-app intervention vocabulary under test: the generic machine
#: aliases plus app-declared phases (pack for stencils, factor/update for
#: cholesky, chunk/reduce-scatter for allreduce).
INTERVENTIONS = {
    "jacobi3d": ("net*0", "net*2", "h2d*0.5", "pack=0", "gpu*0.5"),
    "jacobi2d": ("net*0", "net*2", "h2d*0.5", "pack=0", "gpu*0.5"),
    "cholesky": ("net*0", "net*2", "h2d*0.5", "gpu*0.5", "factor=0",
                 "update*0.5"),
    "allreduce": ("net*0", "net*2", "h2d*0.5", "gpu*0.5", "chunk=0",
                  "reduce-scatter*0.5"),
}

FRONTENDS = (("charm-d", 2), ("mpi-h", 1))

MATRIX = [
    (app, version, odf, spec)
    for app, specs in sorted(INTERVENTIONS.items())
    for version, odf in FRONTENDS
    for spec in specs
]


@lru_cache(maxsize=None)
def recorded(app: str, version: str, odf: int):
    """One recorded run + projection model per matrix cell (cached: the
    whole point of the engine is many projections from one profile)."""
    config = make_config(app, version, odf)
    _, model = record_run(config)
    return config, model


# ---------------------------------------------------------------------------
# Prediction vs actual — the pinned-tolerance matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app,version,odf,spec", MATRIX)
def test_prediction_matches_actual_rerun(app, version, odf, spec):
    config, model = recorded(app, version, odf)
    validation = validate_intervention(config, Intervention.parse(spec),
                                       model=model)
    assert validation.ok(), (
        f"{app}/{version} {spec}: predicted {validation.predicted:.6g}s, "
        f"actual {validation.actual:.6g}s — rel error "
        f"{validation.rel_error * 100:.1f}% exceeds "
        f"{DEFAULT_TOLERANCE * 100:.0f}%")


def test_validation_reports_baseline_and_error():
    config, model = recorded("jacobi3d", "charm-d", 2)
    v = validate_intervention(config, Intervention.parse("net*0"), model=model)
    assert v.baseline == pytest.approx(model.makespan)
    assert v.rel_error == abs(v.predicted - v.actual) / v.actual
    doc = v.to_dict()
    assert set(doc) >= {"intervention", "predicted", "actual", "baseline",
                        "rel_error"}


# ---------------------------------------------------------------------------
# Target resolution & the machine mapping
# ---------------------------------------------------------------------------


def test_targets_cover_phases_and_aliases():
    for app in INTERVENTIONS:
        spec = get_app(app)
        targets = resolve_targets(spec)
        assert {"net", "gpu", "d2h", "h2d"} <= set(targets)
        for phase, _ in spec.phase_kernels:
            assert phase in targets, f"{app}: declared phase {phase} missing"


def test_unknown_target_lists_the_valid_ones():
    _, model = recorded("jacobi3d", "charm-d", 2)
    with pytest.raises(ValueError, match="valid targets"):
        model.predict(Intervention("warp-drive", 0.5))


def test_parse_accepts_the_documented_spellings():
    assert Intervention.parse("net*0") == Intervention("net", 0.0)
    assert Intervention.parse("h2d×0.5") == Intervention("h2d", 0.5)
    assert Intervention.parse("pack=0") == Intervention("pack", 0.0)
    for bad in ("", "net", "*2", "net*-1", "net*two"):
        with pytest.raises(ValueError):
            Intervention.parse(bad)


def test_apply_to_machine_moves_the_right_knob():
    spec = get_app("jacobi3d")
    wire = apply_to_machine(Intervention("net", 2.0), spec, MACHINE)
    assert wire.node.nic.wire_scale == pytest.approx(2.0)
    h2d = apply_to_machine(Intervention("h2d", 0.5), spec, MACHINE)
    assert h2d.node.gpu.h2d_scale == pytest.approx(0.5)
    pack = apply_to_machine(Intervention("pack", 0.0), spec, MACHINE)
    assert any(prefix == "pack" and scale == 0.0
               for prefix, scale in pack.node.gpu.op_scales)
    # The baseline machine is untouched (interventions are virtual).
    assert MACHINE.node.nic.wire_scale == 1.0
    assert MACHINE.node.gpu.op_scales == ()


def test_config_app_spec_roundtrip():
    config = make_config("cholesky", "charm-d", 2)
    assert spec_for(config).name == "cholesky"


# ---------------------------------------------------------------------------
# Projection properties (no re-simulation: these are pure model checks)
# ---------------------------------------------------------------------------


def _model_and_targets():
    _, model = recorded("jacobi3d", "charm-d", 2)
    return model, sorted(resolve_targets(model.app_spec))


def test_noop_predicts_the_recorded_makespan_exactly():
    model, targets = _model_and_targets()
    for target in targets:
        pred = model.predict(Intervention(target, 1.0))
        assert pred.makespan == pytest.approx(model.makespan, rel=1e-12), \
            f"no-op on {target} moved the makespan"


@given(scale=st.floats(min_value=0.0, max_value=1.0), data=st.data())
@settings(max_examples=60, deadline=None)
def test_scaling_down_never_predicts_slower(scale, data):
    model, targets = _model_and_targets()
    target = data.draw(st.sampled_from(targets))
    pred = model.predict(Intervention(target, scale))
    assert pred.makespan <= model.makespan * (1 + 1e-9)


@given(scale=st.floats(min_value=1.0, max_value=8.0), data=st.data())
@settings(max_examples=60, deadline=None)
def test_scaling_up_never_predicts_faster(scale, data):
    model, targets = _model_and_targets()
    target = data.draw(st.sampled_from(targets))
    pred = model.predict(Intervention(target, scale))
    assert pred.makespan >= model.makespan * (1 - 1e-9)


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_zeroing_never_predicts_below_the_compute_floor(data):
    """Zeroing a *communication* category cannot beat the busiest serial
    compute lane: the GPU still has to do all the compute work."""
    model, targets = _model_and_targets()
    compute_phases = {phase for phase, _ in model.app_spec.phase_kernels}
    comm_targets = [t for t in targets if t not in compute_phases
                    and t != "gpu"]
    target = data.draw(st.sampled_from(comm_targets))
    compute_floor = max(
        (sum(secs for cat, secs in lane.items() if cat in compute_phases)
         for lane in model.lane_sums.values()), default=0.0)
    pred = model.predict(Intervention(target, 0.0))
    assert pred.makespan >= compute_floor * (1 - 1e-9)


# ---------------------------------------------------------------------------
# ODF advisor vs the true sweep
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("grid,best_odf", [
    # Large grid: deep pipeline, overlap wins — the paper's §IV-B regime.
    ((1536, 1536, 1536), 4),
    # Small grid: per-block overheads dominate, no decomposition wins.
    ((256, 256, 256), 1),
])
def test_odf_advisor_agrees_with_the_true_sweep(grid, best_odf):
    cls = get_app("jacobi3d").config_cls
    config = cls(version="charm-d", nodes=4, grid=grid, odf=2,
                 iterations=3, warmup=1, machine=MACHINE)
    _, model = record_run(config)
    odfs = (1, 2, 4, 8)
    advice = advise_odf(model, odfs)
    actual = odf_sweep(config, odfs)
    assert advice[0].odf == best_odf
    assert min(actual, key=actual.get) == best_odf
    # Calibration makes the prediction at the recorded ODF exact.
    at_b0 = next(a for a in advice if a.odf == config.odf)
    assert at_b0.predicted_s == pytest.approx(model.makespan, rel=1e-12)
    # Ranked output, best first.
    assert [a.predicted_s for a in advice] == \
        sorted(a.predicted_s for a in advice)
