"""Perf-trend dashboard: trajectory flattening, regression and per-PR
boundary flags, and the generated HTML's contract."""

import json

import pytest

from repro.obs import (
    TREND_SCHEMA,
    load_bench_meta,
    render_dashboard,
    trend_series,
    write_dashboard,
)


def _meta(wall=(0.2, 0.21, 0.3), commits=(None, None, None)):
    history = [
        {"at": f"2026-08-0{i + 1}T00:00:00+00:00", "wall_s": w,
         **({"commit": c} if c else {})}
        for i, (w, c) in enumerate(zip(wall, commits))
    ]
    return {"fig": {"latest": history[-1], "history": history}}


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


def test_series_per_key_and_metric():
    meta = _meta()
    meta["engine"] = {"latest": {}, "history": [
        {"at": "2026-08-01T00:00:00+00:00", "wall_s": 0.5,
         "us_per_event": {"small": 2.4, "large": 5.5}},
    ]}
    series = trend_series(meta)
    names = {(s.key, s.metric) for s in series}
    assert names == {("fig", "wall_s"), ("engine", "wall_s"),
                     ("engine", "us_per_event.small"),
                     ("engine", "us_per_event.large")}
    engine = next(s for s in series if s.metric == "us_per_event.small")
    assert engine.unit == "µs/event" and engine.group == "us_per_event"
    assert engine.label == "small"


def test_regression_flag_uses_the_gate_rule():
    series = trend_series(_meta(wall=(0.2, 0.205, 0.3)), tolerance=0.05)
    flags = [p.regressed for p in series[0].points]
    # 0.205 is within 5% of 0.2; 0.3 is not within 5% of 0.205.
    assert flags == [False, False, True]
    # A looser tolerance unflags it.
    loose = trend_series(_meta(wall=(0.2, 0.205, 0.3)), tolerance=0.5)
    assert not any(p.regressed for p in loose[0].points)
    with pytest.raises(ValueError):
        trend_series(_meta(), tolerance=-0.1)


def test_pr_boundaries_follow_commit_stamps():
    series = trend_series(_meta(commits=("aaa", "aaa", "bbb")))
    marks = [p.pr_boundary for p in series[0].points]
    assert marks == [False, False, True]
    assert [p.commit for p in series[0].points] == ["aaa", "aaa", "bbb"]
    # No stamps at all -> no boundaries.
    assert not any(p.pr_boundary for s in trend_series(_meta())
                   for p in s.points)


def test_legacy_flat_entries_and_junk_slots():
    meta = {"old": {"wall_s": 0.4, "at": "2026-08-01T00:00:00+00:00"},
            "junk": "not a dict", "numbers": 7}
    series = trend_series(meta)
    assert [(s.key, len(s.points)) for s in series] == [("old", 1)]


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def test_dashboard_contract():
    meta = _meta(wall=(0.2, 0.21, 0.3), commits=("aaa", "aaa", "bbb"))
    page = render_dashboard(meta, source="x/bench_meta.json")
    assert TREND_SCHEMA in page
    assert "x/bench_meta.json" in page
    # One chart with its hover payload, a legendless single series, the
    # regression triangle, the PR-boundary commit label, and a table view.
    assert page.count('<figure class="chart"') == 1
    payloads = [json.loads(p.replace("<\\/", "</")) for p in
                _payloads(page)]
    assert len(payloads) == 1 and len(payloads[0]["xs"]) == 3
    assert '<path d="M' in page  # regression marker
    assert ">bbb<" in page  # commit boundary label
    assert "table view" in page
    assert "▲ regression" in page  # non-color-alone flag in the table
    assert 'class="legend"' not in page  # single series: no legend box


def test_dashboard_multi_series_has_a_legend():
    meta = {"engine": {"latest": {}, "history": [
        {"at": "2026-08-01T00:00:00+00:00",
         "us_per_event": {"small": 2.4, "large": 5.5}}]}}
    page = render_dashboard(meta)
    assert 'class="legend"' in page
    assert ">small<" in page and ">large<" in page


def test_dashboard_escapes_untrusted_keys():
    meta = {"<script>alert(1)</script>": {
        "latest": {}, "history": [{"wall_s": 0.1}]}}
    page = render_dashboard(meta)
    assert "<script>alert(1)</script>" not in page
    assert "&lt;script&gt;" in page


def test_empty_meta_renders_a_placeholder():
    page = render_dashboard({})
    assert "no trajectories" in page


def _payloads(page):
    import re
    return re.findall(r'<script type="application/json">(.*?)</script>',
                      page, re.S)


# ---------------------------------------------------------------------------
# File round-trip
# ---------------------------------------------------------------------------


def test_write_dashboard(tmp_path):
    meta_path = tmp_path / "bench_meta.json"
    meta_path.write_text(json.dumps(_meta()))
    out = write_dashboard(meta_path, tmp_path / "sub" / "trend.html",
                          generated="2026-08-08")
    page = out.read_text()
    assert out.name == "trend.html"
    assert "2026-08-08" in page and "fig" in page


def test_load_bench_meta_errors():
    with pytest.raises(ValueError, match="cannot read"):
        load_bench_meta("/nonexistent/bench_meta.json")


def test_load_bench_meta_rejects_non_objects(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        load_bench_meta(bad)
    bad.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_bench_meta(bad)
