"""Timeline analysis: phase classification, resource usage, iteration windows."""

import pytest

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.obs import (
    classify_op,
    compute_comm_overlap,
    iteration_boundaries,
    per_iteration_phases,
    phase_breakdown,
    phase_intervals,
    resource_usage,
)
from repro.sim import Engine, Tracer, merge_intervals, overlap_seconds


# ---------------------------------------------------------------------------
# classify_op
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("category,op,phase", [
    ("gpu.compute", "pack3", "pack"),
    ("gpu.compute", "pack0a", "pack"),
    ("gpu.compute", "unpack1", "unpack"),
    ("gpu.compute", "update", "update"),
    ("gpu.compute", "interior", "update"),
    ("gpu.compute", "exterior", "update"),
    ("gpu.compute", "fusedC", "update"),
    ("gpu.compute", "graph.pack2", "pack"),  # CUDA-graph prefix stripped
    ("gpu.compute", "graph.update", "update"),
    ("gpu.compute", "mystery", "other"),
    ("gpu.copy_d2h", "d2h0", "d2h"),
    ("gpu.copy_h2d", "h2d0", "h2d"),
    ("gpu.copy_d2d", "ucx.ipc_d2d", "nic"),  # same-device IPC is transport
    ("net.send", "", "nic"),
    ("sched.message", "x", "other"),
])
def test_classify_op(category, op, phase):
    assert classify_op(category, op) == phase


# ---------------------------------------------------------------------------
# phase_intervals / phase_breakdown on a synthetic trace
# ---------------------------------------------------------------------------


def _synthetic_tracer():
    eng = Engine()
    tracer = Tracer().attach(eng)
    tracer.emit("gpu.compute", "n0.g0", op="pack0", start=0.0, duration=1.0)
    tracer.emit("gpu.copy_d2h", "n0.g0", op="d2h0", start=1.0, duration=2.0)
    tracer.emit("gpu.copy_h2d", "n0.g0", op="h2d0", start=5.0, duration=1.0)
    tracer.emit("gpu.compute", "n0.g0", op="update", start=6.0, duration=2.0)
    tracer.emit("gpu.compute", "n0.g0", op="nodur")  # no duration: skipped

    def deliver():
        yield eng.timeout(5.0)
        tracer.emit("net.deliver", "pe1", src=0, size=4, latency=2.0)

    eng.process(deliver())
    eng.run()
    return tracer


def test_phase_intervals_reconstructs_net_window_from_latency():
    intervals = phase_intervals(_synthetic_tracer())
    assert intervals["pack"] == [(0.0, 1.0)]
    assert intervals["d2h"] == [(1.0, 3.0)]
    assert intervals["nic"] == [(3.0, 5.0)]  # deliver@5 with latency 2
    assert intervals["h2d"] == [(5.0, 6.0)]
    assert intervals["update"] == [(6.0, 8.0)]
    assert intervals["other"] == []


def test_phase_breakdown_clips_to_window():
    tracer = _synthetic_tracer()
    full = phase_breakdown(tracer)
    assert full["d2h"] == pytest.approx(2.0)
    assert sum(full.values()) == pytest.approx(8.0)
    clipped = phase_breakdown(tracer, t0=2.0, t1=6.0)
    assert clipped["pack"] == 0.0
    assert clipped["d2h"] == pytest.approx(1.0)   # (2,3] of (1,3)
    assert clipped["h2d"] == pytest.approx(1.0)
    assert clipped["update"] == 0.0


def test_phase_breakdown_is_footprint_not_sum():
    # Two concurrent same-phase copies count once per unit of wall-clock.
    eng = Engine()
    tracer = Tracer().attach(eng)
    tracer.emit("gpu.copy_d2h", "n0.g0", op="d2h0", start=0.0, duration=2.0)
    tracer.emit("gpu.copy_d2h", "n0.g1", op="d2h1", start=1.0, duration=2.0)
    assert phase_breakdown(tracer, 0.0, 3.0)["d2h"] == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# Iteration windows from app.iter_done markers
# ---------------------------------------------------------------------------


def test_iteration_boundaries_take_latest_unit_per_iteration():
    eng = Engine()
    tracer = Tracer().attach(eng)

    def mark():
        yield eng.timeout(1.0)
        tracer.emit("app.iter_done", "(0,)", iter=0)
        yield eng.timeout(0.5)
        tracer.emit("app.iter_done", "(1,)", iter=0)  # straggler defines it
        yield eng.timeout(1.0)
        tracer.emit("app.iter_done", "(1,)", iter=1)
        tracer.emit("app.iter_done", "(0,)", iter=1)

    eng.process(mark())
    eng.run()
    assert iteration_boundaries(tracer) == [1.5, 2.5]


def test_per_iteration_phases_empty_without_markers():
    assert per_iteration_phases(_synthetic_tracer()) == []


def test_per_iteration_phases_windows_partition_the_run():
    config = Jacobi3DConfig(version="charm-d", nodes=1, grid=(96, 96, 96),
                            odf=2, iterations=4, warmup=1)
    tracer = Tracer()
    run_jacobi3d(config, tracer=tracer)
    entries = per_iteration_phases(tracer)
    assert len(entries) == config.total_iterations
    assert entries[0]["t0"] == 0.0
    for prev, cur in zip(entries, entries[1:]):
        assert cur["t0"] == prev["t1"]  # contiguous windows
        assert cur["t1"] > cur["t0"]
    # A charm-d run stages halos through the copy engines every iteration.
    assert all(e["phases"]["update"] > 0 for e in entries)


# ---------------------------------------------------------------------------
# resource_usage / compute_comm_overlap on a real run
# ---------------------------------------------------------------------------


def test_resource_usage_covers_every_resource():
    from repro.obs import Observatory
    config = Jacobi3DConfig(version="charm-d", nodes=2, grid=(96, 96, 96),
                            odf=2, iterations=4, warmup=1)
    obs = Observatory()
    run_jacobi3d(config, observatory=obs)
    usage = resource_usage(obs.cluster)
    kinds = {u.kind for u in usage}
    assert {"pe", "net", "gpu.compute", "gpu.copy_d2h", "gpu.copy_h2d"} <= kinds
    for u in usage:
        assert 0.0 <= u.utilization <= 1.0
        assert u.idle_s == pytest.approx(u.window_s - u.busy_s)
    pes = [u for u in usage if u.kind == "pe"]
    assert len(pes) == obs.cluster.n_gpus  # one PE per GPU in this machine
    assert any(u.busy_s > 0 for u in pes)


def test_compute_comm_overlap_matches_manual_computation():
    config = Jacobi3DConfig(version="charm-d", nodes=2, grid=(96, 96, 96),
                            odf=2, iterations=4, warmup=1)
    from repro.hardware import COMPUTE
    from repro.obs import Observatory
    obs = Observatory()
    result = run_jacobi3d(config, observatory=obs)
    cluster = obs.cluster
    spans = []
    for node in cluster.nodes:
        for gpu in node.gpus:
            spans.extend(gpu.trackers[COMPUTE].spans)
    manual = overlap_seconds(merge_intervals(spans), cluster.network.inflight.spans)
    assert compute_comm_overlap(cluster) == manual
    assert result.overlap_s == manual  # driver uses the shared implementation
