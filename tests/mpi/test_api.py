"""Tests for the MPI model: point-to-point, blocking waits, collectives."""

import pytest

from repro.hardware import Cluster, KiB, KernelWork, MachineSpec
from repro.mpi import MpiProcess, MpiWorld
from repro.sim import Engine, SimulationError


def make_world(n_nodes=2):
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), n_nodes)
    return eng, cluster, MpiWorld(cluster)


class PingPong(MpiProcess):
    log = {}

    def main(self, msg=None):
        if self.rank == 0:
            req = yield self.isend(1, 1 * KiB, tag=1, payload="ping")
            yield self.wait(req)
            rr = yield self.irecv(1, 1 * KiB, tag=2)
            (data,) = yield self.waitall([rr])
            PingPong.log[self.rank] = data
        elif self.rank == 1:
            rr = yield self.irecv(0, 1 * KiB, tag=1)
            yield self.wait(rr)
            PingPong.log[self.rank] = rr.data
            rs = yield self.isend(0, 1 * KiB, tag=2, payload="pong")
            yield self.wait(rs)
        else:
            yield self.work(0)


def test_pingpong_payload_roundtrip():
    eng, cluster, world = make_world()
    PingPong.log = {}
    world.launch(PingPong)
    world.run()
    assert PingPong.log[1] == "ping"
    assert PingPong.log[0] == "pong"


def test_world_size_and_ranks():
    eng, cluster, world = make_world(n_nodes=2)
    assert world.size == 4
    procs = world.launch(PingPong)
    assert [p.rank for p in procs] == [0, 1, 2, 3]
    assert procs[3].pe is cluster.pe(3)


def test_launch_twice_rejected():
    eng, cluster, world = make_world()
    world.launch(PingPong)
    with pytest.raises(SimulationError):
        world.launch(PingPong)


def test_run_before_launch_rejected():
    eng, cluster, world = make_world()
    with pytest.raises(SimulationError):
        world.run()


class Deadlock(MpiProcess):
    def main(self, msg=None):
        # Everyone receives, nobody sends.
        req = yield self.irecv((self.rank + 1) % self.size, 64, tag=9)
        yield self.wait(req)


def test_deadlock_detected():
    eng, cluster, world = make_world()
    world.launch(Deadlock)
    with pytest.raises(SimulationError, match="deadlock"):
        world.run()


class Crash(MpiProcess):
    def main(self, msg=None):
        yield self.work(1e-6)
        raise ValueError("rank exploded")


def test_rank_exception_propagates():
    eng, cluster, world = make_world()
    world.launch(Crash)
    with pytest.raises(ValueError, match="exploded"):
        world.run()


class BlockingWaiter(MpiProcess):
    def main(self, msg=None):
        if self.rank == 0:
            req = yield self.irecv(1, 1 * KiB, tag=0)
            yield self.wait(req)  # blocks ~1 ms while rank 1 dawdles
        elif self.rank == 1:
            yield self.work(1e-3)
            req = yield self.isend(0, 1 * KiB, tag=0)
            yield self.wait(req)
        else:
            yield self.work(0)


def test_blocking_wait_captures_the_core():
    """MPI_Wait spins: the core is captive for the whole wait (this is
    what Charm++'s asynchronous completion avoids).  The window lands on
    the ``blocked`` tracker, not ``busy`` — the core does no work, so
    profilers attribute the wait to whatever gates it."""
    eng, cluster, world = make_world()
    world.launch(BlockingWaiter)
    world.run()
    assert cluster.pe(0).blocked.busy_seconds() >= 1e-3
    assert cluster.pe(0).busy.busy_seconds() < 1e-3


class BarrierProc(MpiProcess):
    after = {}

    def main(self, msg=None):
        yield self.work(self.rank * 1e-4)  # staggered arrival
        yield from self.barrier()
        BarrierProc.after[self.rank] = self.world.engine.now


def test_barrier_synchronizes_all_ranks():
    eng, cluster, world = make_world()
    BarrierProc.after = {}
    world.launch(BarrierProc)
    world.run()
    times = list(BarrierProc.after.values())
    assert len(times) == 4
    slowest_arrival = 3e-4
    assert min(times) >= slowest_arrival  # nobody exits before the last arrives
    assert max(times) - min(times) < 1e-4  # and all exit together-ish


class AllreduceProc(MpiProcess):
    results = {}

    def main(self, msg=None):
        total = yield from self.allreduce(self.rank + 1)
        AllreduceProc.results[self.rank] = total


@pytest.mark.parametrize("n_nodes", [1, 2, 3])
def test_allreduce_sum_any_size(n_nodes):
    eng, cluster, world = make_world(n_nodes=n_nodes)
    AllreduceProc.results = {}
    world.launch(AllreduceProc)
    world.run()
    n = world.size
    expected = n * (n + 1) // 2
    assert set(AllreduceProc.results.values()) == {expected}
    assert len(AllreduceProc.results) == n


class AllreduceMax(MpiProcess):
    results = {}

    def main(self, msg=None):
        best = yield from self.allreduce(self.rank, op=max)
        AllreduceMax.results[self.rank] = best


def test_allreduce_custom_op():
    eng, cluster, world = make_world()
    AllreduceMax.results = {}
    world.launch(AllreduceMax)
    world.run()
    assert set(AllreduceMax.results.values()) == {world.size - 1}


class GpuRank(MpiProcess):
    def init(self):
        self.stream = self.gpu.create_stream(priority=10)

    def main(self, msg=None):
        op = yield self.launch(self.stream, KernelWork(bytes_moved=780e9 * 0.001))
        yield self.sync(op.done)
        self.notify("kernel_done")


def test_gpu_launch_and_blocking_sync():
    eng, cluster, world = make_world(n_nodes=1)
    events = []
    world.observe(lambda name, proc, **d: events.append((name, proc.rank)))
    world.launch(GpuRank)
    world.run()
    assert sorted(events) == [("kernel_done", 0), ("kernel_done", 1)]
    assert eng.now >= 0.001


class DeviceExchange(MpiProcess):
    """CUDA-aware halo-style exchange between two ranks on different nodes."""

    def main(self, msg=None):
        peer = 2 if self.rank == 0 else 0
        if self.rank in (0, 2):
            rr = yield self.irecv(peer, 96 * KiB, tag=5, device=True)
            rs = yield self.isend(peer, 96 * KiB, tag=5, device=True)
            yield self.waitall([rr, rs])
        else:
            yield self.work(0)


def test_device_exchange_uses_gpudirect():
    from repro.comm import Protocol

    eng, cluster, world = make_world()
    world.launch(DeviceExchange)
    world.run()
    assert world.ucx.protocol_counts[Protocol.RNDV_GPUDIRECT] == 2
