"""Tests for roofline work models and fusion accounting."""

import pytest

from repro.hardware import GpuSpec, HostLinkSpec
from repro.kernels import (
    FusionStrategy,
    exterior_work,
    fused_all_work,
    fused_pack_work,
    fused_unpack_work,
    interior_work,
    kernel_launches_per_iteration,
    pack_work,
    unpack_work,
    update_work,
)

SPEC = GpuSpec()
LINK = HostLinkSpec()


def test_update_work_bytes_and_flops():
    w = update_work((10, 10, 10))
    assert w.bytes_moved == 2 * 8 * 1000
    assert w.flops == 6 * 1000


def test_update_is_memory_bound_on_v100():
    from repro.kernels import stencil_efficiency

    w = update_work((256, 256, 256))
    mem_t = w.bytes_moved / SPEC.mem_bandwidth
    flop_t = w.flops / SPEC.flops
    assert mem_t > flop_t
    assert w.duration(SPEC, LINK) == pytest.approx(mem_t / stencil_efficiency((256, 256, 256)))


def test_stencil_efficiency_decreases_with_smaller_blocks():
    from repro.kernels import stencil_efficiency

    big = stencil_efficiency((512, 512, 512))
    small = stencil_efficiency((64, 64, 64))
    tiny = stencil_efficiency((16, 16, 16))
    assert 0 < tiny < small < big <= 1.0
    assert big > 0.95  # large blocks near streaming peak


def test_paper_scale_update_duration_plausible():
    # 1536^3 per node / 6 GPUs: the paper's large weak-scaling block.
    vol = 1536**3 // 6
    w = update_work((1536, 1536, 256))
    t = w.duration(SPEC, LINK)
    assert 0.008 < t < 0.025  # ~12 ms at 780 GB/s


def test_pack_unpack_symmetry():
    assert pack_work(100).bytes_moved == unpack_work(100).bytes_moved == 2 * 8 * 100


def test_fused_pack_same_bytes_lower_efficiency():
    faces = [100, 100, 200, 200, 50, 50]
    fused = fused_pack_work(faces)
    assert fused.bytes_moved == 2 * 8 * sum(faces)
    assert fused.efficiency < 1.0
    # One fused launch is still faster than 6 separate launches once the
    # per-launch device overhead is included.
    separate = sum(pack_work(f).duration(SPEC, LINK) + SPEC.kernel_launch_device_s
                   for f in faces)
    assert fused.duration(SPEC, LINK) + SPEC.kernel_launch_device_s < separate


def test_fused_all_includes_everything():
    dims = (32, 32, 32)
    faces = [32 * 32] * 6
    w = fused_all_work(dims, faces)
    assert w.bytes_moved == 2 * 8 * (32**3 + 2 * 6 * 32 * 32)
    assert w.flops == 6 * 32**3


def test_fused_unpack_matches_pack_model():
    faces = [10, 20]
    assert fused_unpack_work(faces).bytes_moved == fused_pack_work(faces).bytes_moved


def test_interior_exterior_partition_volume():
    dims = (10, 8, 6)
    inner = interior_work(dims)
    outer = exterior_work(dims)
    total_flops = inner.flops + outer.flops
    assert total_flops == 6 * 10 * 8 * 6


def test_interior_work_small_blocks_degenerate():
    w = interior_work((2, 2, 2))  # no interior cells at all
    assert w.flops == 0
    assert w.bytes_moved >= 1  # still a valid (if empty) kernel


# ---------------------------------------------------------------------------
# Fusion strategy enum
# ---------------------------------------------------------------------------


def test_fusion_parse():
    assert FusionStrategy.parse(None) is FusionStrategy.NONE
    assert FusionStrategy.parse("A") is FusionStrategy.A
    assert FusionStrategy.parse(FusionStrategy.C) is FusionStrategy.C
    with pytest.raises(ValueError):
        FusionStrategy.parse("Z")


def test_fusion_flags():
    assert not FusionStrategy.NONE.packs_fused
    assert FusionStrategy.A.packs_fused and not FusionStrategy.A.unpacks_fused
    assert FusionStrategy.B.unpacks_fused and not FusionStrategy.B.all_in_one
    assert FusionStrategy.C.all_in_one


def test_launch_counts_match_paper_table():
    n = 6  # interior block
    assert kernel_launches_per_iteration(FusionStrategy.NONE, n) == 13
    assert kernel_launches_per_iteration(FusionStrategy.A, n) == 8
    assert kernel_launches_per_iteration(FusionStrategy.B, n) == 3
    assert kernel_launches_per_iteration(FusionStrategy.C, n) == 1


def test_launch_counts_strictly_decrease_with_aggression():
    for n in (3, 4, 5, 6):
        seq = [kernel_launches_per_iteration(s, n)
               for s in (FusionStrategy.NONE, FusionStrategy.A, FusionStrategy.B,
                         FusionStrategy.C)]
        assert seq == sorted(seq, reverse=True)
        assert len(set(seq)) == 4
