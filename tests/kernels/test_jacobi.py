"""Unit and property tests for the functional Jacobi numerics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    FACES,
    alloc_block,
    apply_boundary,
    face_shape,
    hot_top_boundary,
    jacobi_update,
    max_principle_holds,
    opposite,
    pack_face,
    reference_solve,
    residual,
    unpack_face,
)


def test_alloc_block_shape_and_fill():
    u = alloc_block((4, 5, 6), fill=2.5)
    assert u.shape == (6, 7, 8)
    assert (u == 2.5).all()
    assert u.dtype == np.float64


def test_alloc_block_min_size():
    assert alloc_block((1, 1, 1)).shape == (3, 3, 3)
    with pytest.raises(ValueError):
        alloc_block((0, 1, 1))


def test_faces_and_opposite():
    assert len(FACES) == 6
    for f in FACES:
        assert opposite(opposite(f)) == f
        assert opposite(f)[0] == f[0] and opposite(f)[1] == -f[1]


def test_face_shape():
    assert face_shape((4, 5, 6), (0, -1)) == (5, 6)
    assert face_shape((4, 5, 6), (1, 1)) == (4, 6)
    assert face_shape((4, 5, 6), (2, -1)) == (4, 5)


def test_jacobi_update_uniform_stays_uniform():
    u = alloc_block((3, 3, 3), fill=4.0)
    out = jacobi_update(u)
    assert np.allclose(out[1:-1, 1:-1, 1:-1], 4.0)


def test_jacobi_update_single_cell_average():
    u = alloc_block((1, 1, 1), fill=0.0)
    u[0, 1, 1] = 6.0  # one ghost neighbour hot
    out = jacobi_update(u)
    assert out[1, 1, 1] == pytest.approx(1.0)


def test_jacobi_update_does_not_touch_ghosts():
    u = alloc_block((2, 2, 2))
    u[0, :, :] = 7.0
    out = jacobi_update(u)
    assert (out[0, :, :] == u[0, :, :]).all()


def test_jacobi_update_out_reuse():
    u = alloc_block((3, 3, 3), fill=1.0)
    out = np.zeros_like(u)
    res = jacobi_update(u, out)
    assert res is out


def test_pack_unpack_roundtrip_all_faces():
    rng = np.random.default_rng(0)
    u = rng.random((5, 6, 7))
    v = np.zeros_like(u)
    for face in FACES:
        halo = pack_face(u, face)
        unpack_face(v, face, halo)
    # Ghost layers of v now mirror u's first interior layers.
    assert (v[0, 1:-1, 1:-1] == u[1, 1:-1, 1:-1]).all()
    assert (v[-1, 1:-1, 1:-1] == u[-2, 1:-1, 1:-1]).all()
    assert (v[1:-1, 0, 1:-1] == u[1:-1, 1, 1:-1]).all()
    assert (v[1:-1, 1:-1, -1] == u[1:-1, 1:-1, -2]).all()


def test_pack_face_is_contiguous_copy():
    u = np.arange(5 * 5 * 5, dtype=float).reshape(5, 5, 5)
    halo = pack_face(u, (1, 1))
    assert halo.flags["C_CONTIGUOUS"]
    halo[...] = -1
    assert u.max() > 0  # original untouched


def test_unpack_shape_mismatch_raises():
    u = alloc_block((3, 3, 3))
    with pytest.raises(ValueError):
        unpack_face(u, (0, -1), np.zeros((2, 2)))


def test_bad_face_rejected():
    u = alloc_block((3, 3, 3))
    with pytest.raises(ValueError):
        pack_face(u, (3, 1))
    with pytest.raises(ValueError):
        pack_face(u, (0, 2))


def test_residual_zero_for_converged():
    u = alloc_block((4, 4, 4), fill=3.0)
    assert residual(u) == 0.0


def test_residual_positive_when_not_converged():
    u = alloc_block((4, 4, 4))
    u[0, :, :] = 1.0
    assert residual(u) > 0


# ---------------------------------------------------------------------------
# Reference solver and invariants
# ---------------------------------------------------------------------------


def test_reference_solve_converges_toward_laplace():
    u50 = reference_solve((6, 6, 6), 50)
    u200 = reference_solve((6, 6, 6), 400)
    assert residual(u200) < residual(u50) < 1.0


def test_reference_solution_monotone_from_hot_face():
    u = reference_solve((8, 4, 4), 300)
    centre = u[1:-1, 2, 2]
    # Values increase toward the hot +x boundary.
    assert all(np.diff(centre) > -1e-12)
    assert centre[-1] > centre[0]


def test_apply_boundary_only_touches_global_faces():
    u = alloc_block((4, 4, 4), fill=-5.0)
    # Block occupying the low corner of an 8^3 global grid: its +x ghosts
    # are *interior* (neighbour side) and must stay untouched.
    apply_boundary(u, hot_top_boundary, (8, 8, 8), offset=(0, 0, 0))
    # Interior-facing ghosts (the +x halo cross-section) stay untouched;
    # edge/corner ghosts may legitimately sit on other global faces.
    assert (u[-1, 1:-1, 1:-1] == -5.0).all()
    assert (u[0, :, :] == 0.0).all()  # global -x face set to 0


def test_apply_boundary_hot_face():
    shape = (4, 4, 4)
    u = alloc_block(shape)
    apply_boundary(u, hot_top_boundary, shape)
    assert (u[-1, :, :] == 1.0).all()
    assert (u[0, :, :] == 0.0).all()


def test_max_principle_detector():
    shape = (4, 4, 4)
    u = reference_solve(shape, 100)
    assert max_principle_holds(u)
    u[2, 2, 2] = 99.0
    assert not max_principle_holds(u)


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)),
    iters=st.integers(1, 20),
)
def test_property_max_principle_under_iteration(shape, iters):
    u = alloc_block(shape)
    apply_boundary(u, hot_top_boundary, shape)
    out = u.copy()
    for _ in range(iters):
        jacobi_update(u, out)
        u, out = out, u
    assert max_principle_holds(u)


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5)),
    face_i=st.integers(0, 5),
    seed=st.integers(0, 2**16),
)
def test_property_pack_unpack_is_exact(shape, face_i, seed):
    face = FACES[face_i]
    rng = np.random.default_rng(seed)
    u = rng.random(tuple(s + 2 for s in shape))
    v = np.zeros_like(u)
    unpack_face(v, face, pack_face(u, face))
    axis, side = face
    idx_src = [slice(1, -1)] * 3
    idx_dst = [slice(1, -1)] * 3
    idx_src[axis] = 1 if side < 0 else u.shape[axis] - 2
    idx_dst[axis] = 0 if side < 0 else u.shape[axis] - 1
    assert (v[tuple(idx_dst)] == u[tuple(idx_src)]).all()
