"""Tests for the content-addressed result cache: hits, key invalidation
(machine fields, model version), and corruption fallback."""

import json

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.exec import ResultCache, config_key
from repro.exec import cache as cache_mod
from repro.hardware import MachineSpec


def _config(**kw):
    kw.setdefault("version", "charm-d")
    kw.setdefault("grid", (96, 96, 96))
    kw.setdefault("iterations", 2)
    kw.setdefault("warmup", 0)
    return Jacobi3DConfig(**kw)


def test_hit_on_identical_config(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = _config(odf=2)
    result = run_jacobi3d(cfg)
    assert cache.get(cfg) is None  # cold
    assert cache.put(cfg, result)
    # A *separately constructed* but equal config hits the same entry.
    hit = cache.get(_config(odf=2))
    assert hit == result
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert len(cache) == 1


def test_machine_field_change_misses(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = _config()
    cache.put(cfg, run_jacobi3d(cfg))
    ablated = cfg.with_(machine=cfg.machine.with_nic(overhead_s=2e-6))
    assert config_key(ablated) != config_key(cfg)
    assert cache.get(ablated) is None
    assert cache.get(cfg) is not None  # the original entry is untouched


def test_model_version_change_misses(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    cfg = _config()
    cache.put(cfg, run_jacobi3d(cfg))
    monkeypatch.setattr(cache_mod, "MODEL_VERSION", cache_mod.MODEL_VERSION + 1)
    assert cache.get(cfg) is None  # the key moved with the stamp


def test_corrupted_entry_falls_back_to_recompute(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = _config()
    result = run_jacobi3d(cfg)
    cache.put(cfg, result)
    path = cache.path_for(cfg)
    path.write_text("{not json")
    assert cache.get(cfg) is None
    assert cache.stats.corrupt == 1
    assert not path.exists()  # corrupt entries are evicted
    # Recompute-and-store heals the entry.
    cache.put(cfg, result)
    assert cache.get(cfg) == result


def test_entry_with_wrong_payload_is_corrupt(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = _config()
    cache.put(cfg, run_jacobi3d(cfg))
    path = cache.path_for(cfg)
    data = json.loads(path.read_text())
    data["model_version"] = -1  # stale stamp inside a well-formed file
    path.write_text(json.dumps(data))
    assert cache.get(cfg) is None
    assert cache.stats.corrupt == 1


def test_functional_configs_are_never_cached(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = _config(version="mpi-h", grid=(24, 24, 24), data_mode="functional",
                  machine=MachineSpec.small_debug())
    result = run_jacobi3d(cfg)
    assert not cache.put(cfg, result)
    assert cache.get(cfg) is None
    assert len(cache) == 0


def test_put_rejects_non_result_values(tmp_path):
    cache = ResultCache(tmp_path)
    assert not cache.put(_config(), {"not": "a result"})
    assert len(cache) == 0


def test_clear(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cfg = _config()
    cache.put(cfg, run_jacobi3d(cfg))
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0
    assert cache.get(cfg) is None
