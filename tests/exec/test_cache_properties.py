"""Property-based tests for ResultCache key stability: serialization
round-trips, dict-ordering invariance, and MODEL_VERSION hit/miss
semantics exactly as documented in repro.exec.cache."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import Jacobi3DConfig, run_jacobi3d
from repro.apps.jacobi3d import ALL_VERSIONS
from repro.exec import ResultCache, config_key
from repro.exec import cache as cache_mod
from repro.hardware import MachineSpec

SEEDS = [0, 7, 42, 1234, 99991]


def _cfg(**kw):
    kw.setdefault("version", "charm-d")
    kw.setdefault("grid", (96, 96, 96))
    kw.setdefault("odf", 2)
    kw.setdefault("iterations", 2)
    kw.setdefault("warmup", 0)
    kw.setdefault("machine", MachineSpec.small_debug())
    return Jacobi3DConfig(**kw)


@st.composite
def configs(draw):
    """Arbitrary valid modeled-mode configs across every frontend."""
    version = draw(st.sampled_from(ALL_VERSIONS))
    charm_d = version == "charm-d"
    return Jacobi3DConfig(
        version=version,
        nodes=draw(st.integers(1, 4)),
        grid=tuple(draw(st.integers(8, 96)) for _ in range(3)),
        odf=1 if version.startswith("mpi") else draw(st.integers(1, 4)),
        iterations=draw(st.integers(1, 12)),
        warmup=draw(st.integers(0, 3)),
        fusion=draw(st.sampled_from(["none", "A", "B", "C"])) if charm_d else "none",
        cuda_graphs=draw(st.booleans()) if charm_d else False,
        legacy_sync=draw(st.booleans()) if charm_d else False,
        mpi_overlap=draw(st.booleans()) if version.startswith("mpi") else False,
        machine=MachineSpec.small_debug(),
    )


def _shuffled(d: dict, rng: random.Random) -> dict:
    """The same mapping with a different (seeded) insertion order,
    recursively."""
    items = list(d.items())
    rng.shuffle(items)
    return {k: _shuffled(v, rng) if isinstance(v, dict) else v for k, v in items}


# ---------------------------------------------------------------------------
# Round-trips and ordering invariance
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(config=configs())
def test_property_roundtrip_preserves_config_and_key(config):
    back = Jacobi3DConfig.from_dict(config.to_dict())
    assert back == config
    assert config_key(back) == config_key(config)


@settings(max_examples=60, deadline=None)
@given(config=configs(), seed=st.integers(0, 2**32 - 1))
def test_property_key_invariant_under_dict_ordering(config, seed):
    """config_key canonicalizes with sort_keys: the insertion order of the
    serialized dict (including the nested machine dict) must not matter."""
    shuffled = _shuffled(config.to_dict(), random.Random(seed))
    assert Jacobi3DConfig.from_dict(shuffled) == config
    assert config_key(Jacobi3DConfig.from_dict(shuffled)) == config_key(config)


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_permutation_sweep_hits_same_entry(seed, tmp_path):
    """A cache populated through one dict ordering is hit through any
    other ordering of the same config."""
    rng = random.Random(seed)
    cache = ResultCache(tmp_path)
    cfg = _cfg(odf=rng.choice([1, 2, 4]), iterations=rng.randint(2, 4))
    cache.put(cfg, run_jacobi3d(cfg))
    reordered = Jacobi3DConfig.from_dict(_shuffled(cfg.to_dict(), rng))
    assert cache.get(reordered) is not None
    assert cache.stats.hits == 1


@settings(max_examples=30, deadline=None)
@given(overhead=st.floats(1e-7, 1e-5, allow_nan=False, allow_infinity=False))
def test_property_machine_spec_roundtrip(overhead):
    spec = MachineSpec.summit().with_nic(overhead_s=overhead)
    cfg = _cfg(machine=spec)
    back = Jacobi3DConfig.from_dict(cfg.to_dict())
    assert back.machine == spec
    assert config_key(back) == config_key(cfg)
    # ... and a different calibration value is a different key.
    other = _cfg(machine=MachineSpec.summit().with_nic(overhead_s=overhead * 2))
    assert config_key(other) != config_key(cfg)


# ---------------------------------------------------------------------------
# MODEL_VERSION semantics, exactly as documented
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bump", [1, 2, 5])
def test_model_version_bump_misses_then_restore_hits(tmp_path, monkeypatch, bump):
    """Bumping MODEL_VERSION moves the key: old entries read as misses but
    stay on disk untouched; restoring the stamp restores the hit."""
    cache = ResultCache(tmp_path)
    cfg = _cfg()
    cache.put(cfg, run_jacobi3d(cfg))
    assert cache.get(cfg) is not None and cache.stats.hits == 1

    monkeypatch.setattr(cache_mod, "MODEL_VERSION", cache_mod.MODEL_VERSION + bump)
    assert cache.get(cfg) is None
    assert cache.stats.misses == 1 and cache.stats.corrupt == 0
    assert len(cache) == 1  # the v-old entry was not deleted

    monkeypatch.undo()
    assert cache.get(cfg) is not None
    assert cache.stats.hits == 2


def test_model_version_recompute_coexists_with_old_entry(tmp_path, monkeypatch):
    """After a bump, recomputing stores a second entry under the new key;
    both versions coexist (clean invalidation, no clobbering)."""
    cache = ResultCache(tmp_path)
    cfg = _cfg()
    result = run_jacobi3d(cfg)
    cache.put(cfg, result)
    monkeypatch.setattr(cache_mod, "MODEL_VERSION", cache_mod.MODEL_VERSION + 1)
    assert cache.put(cfg, result)
    assert len(cache) == 2
    assert cache.get(cfg) is not None
