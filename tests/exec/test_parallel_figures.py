"""End-to-end guarantees of the execution layer at figure scale:

* a ``--jobs 4`` figure is byte-identical to its serial run (the simulator
  is deterministic and cache round-trips are exact), and
* a repeated cached invocation is 100% cache hits and >= 5x faster.
"""

import time

from repro.cli import main
from repro.core import figure7b, odf_sweep
from repro.exec import ParallelRunner, ResultCache

NODES = ["1", "2"]  # quick-ladder prefix: 8 points for fig 7a


def _figure_7a(tmp_path, out_name, *extra):
    out = tmp_path / out_name
    args = ["figure", "7a", "--nodes", *NODES, "--no-plot", "--quiet",
            "--save", str(out), *extra]
    t0 = time.perf_counter()
    assert main(args) == 0
    return out, time.perf_counter() - t0


def test_cli_jobs4_byte_identical_then_all_cache_hits(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    serial, t_serial = _figure_7a(tmp_path, "serial.json", "--no-cache")
    parallel, _ = _figure_7a(tmp_path, "parallel.json", "--jobs", "4",
                             "--cache-dir", cache)
    assert parallel.read_bytes() == serial.read_bytes()

    capsys.readouterr()  # drop output of the cold runs
    warm, t_warm = _figure_7a(tmp_path, "warm.json", "--jobs", "4",
                              "--cache-dir", cache)
    assert warm.read_bytes() == serial.read_bytes()
    err = capsys.readouterr().err
    assert "8/8 points, 8 cache hits" in err  # 100% hits
    assert t_serial >= 5 * t_warm, (
        f"cached re-run not >=5x faster: serial {t_serial:.2f}s vs warm {t_warm:.2f}s")


def test_figure_parallel_equals_serial_exactly():
    serial = figure7b(nodes=(1, 2))
    parallel = figure7b(nodes=(1, 2), runner=ParallelRunner(jobs=4))
    assert parallel.to_dict() == serial.to_dict()


def test_sweep_shares_cache_across_invocations(tmp_path):
    cache = ResultCache(tmp_path)
    kwargs = dict(base=(192, 192, 192), nodes=2, odfs=(1, 2), versions=("charm-d",))
    cold = ParallelRunner(jobs=2, cache=cache)
    first = odf_sweep(runner=cold, **kwargs)
    assert cold.stats.cache_hits == 0
    warm = ParallelRunner(jobs=2, cache=cache)
    second = odf_sweep(runner=warm, **kwargs)
    assert warm.stats.cache_hits == warm.stats.points == 2
    assert second.to_dict() == first.to_dict()


def test_cli_sweep_accepts_exec_flags(tmp_path, capsys):
    rc = main(["sweep", "--base", "192", "--nodes", "2", "--odfs", "1", "2",
               "--jobs", "2", "--cache-dir", str(tmp_path / "c")])
    assert rc == 0
    captured = capsys.readouterr()
    assert "best ODF" in captured.out
    assert "[exec]" in captured.err
