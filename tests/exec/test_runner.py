"""Tests for the parallel runner: deterministic ordering, cache
integration, crash retry, and timeouts."""

import multiprocessing
import os
import time

import pytest

from repro.apps import Jacobi3DConfig
from repro.exec import (
    ExperimentPlan,
    ExperimentTimeout,
    ParallelRunner,
    ResultCache,
)


def _config(**kw):
    kw.setdefault("version", "charm-d")
    kw.setdefault("grid", (96, 96, 96))
    kw.setdefault("iterations", 2)
    kw.setdefault("warmup", 0)
    return Jacobi3DConfig(**kw)


_CONFIGS = [
    _config(version="mpi-h"),
    _config(version="charm-h", odf=2),
    _config(version="charm-d", odf=4),
    _config(version="charm-d", odf=1, grid=(64, 64, 64)),
    _config(version="mpi-d", grid=(128, 128, 128)),
]


# -- module-level test workers (must pickle into pool children) -------------


def _echo_worker(config_dict):
    return ("echo", config_dict["version"], config_dict["odf"])


def _slow_echo_worker(config_dict):
    # Invert plan order in completion time: later points finish first.
    time.sleep(0.2 / (1 + config_dict["odf"]))
    return config_dict["odf"]


def _crash_in_child_worker(config_dict):
    if multiprocessing.parent_process() is not None:
        os._exit(3)  # simulate a worker segfault/OOM kill
    return ("retried", config_dict["version"])


def _sleepy_worker(config_dict):
    time.sleep(3.0)
    return "late"


# -- determinism and ordering ----------------------------------------------


def test_parallel_results_identical_to_serial():
    serial = ParallelRunner(jobs=1).run_configs(_CONFIGS)
    parallel = ParallelRunner(jobs=4).run_configs(_CONFIGS)
    assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]


def test_results_in_plan_order_regardless_of_completion_order():
    configs = [_config(odf=odf) for odf in (1, 2, 4, 8)]
    results = ParallelRunner(jobs=4, worker=_slow_echo_worker).run_configs(configs)
    assert results == [1, 2, 4, 8]


def test_stats_and_progress_outcomes():
    outcomes = []
    runner = ParallelRunner(jobs=2, worker=_echo_worker)
    plan = ExperimentPlan("figX")
    for i, cfg in enumerate(_CONFIGS[:3]):
        plan.add(cfg, series=f"s{i}", x=i)
    runner.run(plan, on_point=outcomes.append)
    assert runner.stats.points == 3 and runner.stats.completed == 3
    assert runner.stats.cache_hits == 0 and runner.stats.retries == 0
    assert len(runner.stats.point_wall_s) == 3
    assert [o.index for o in outcomes] == [0, 1, 2]
    assert [o.series for o in outcomes] == ["s0", "s1", "s2"]
    assert all(not o.cache_hit for o in outcomes)


# -- cache integration ------------------------------------------------------


def test_cache_round_trip_through_runner(tmp_path):
    cache = ResultCache(tmp_path)
    cold = ParallelRunner(jobs=2, cache=cache)
    first = cold.run_configs(_CONFIGS[:3])
    assert cold.stats.cache_hits == 0

    warm = ParallelRunner(jobs=2, cache=cache)
    second = warm.run_configs(_CONFIGS[:3])
    assert warm.stats.cache_hits == 3  # 100% hits
    assert [r.to_dict() for r in first] == [r.to_dict() for r in second]


def test_cache_hit_outcomes_are_flagged(tmp_path):
    cache = ResultCache(tmp_path)
    ParallelRunner(cache=cache).run_configs(_CONFIGS[:1])
    outcomes = []
    ParallelRunner(cache=cache).run_configs(_CONFIGS[:1], on_point=outcomes.append)
    assert [o.cache_hit for o in outcomes] == [True]
    assert outcomes[0].wall_s == 0.0


# -- failure handling -------------------------------------------------------


def test_worker_crash_retries_in_process():
    runner = ParallelRunner(jobs=2, worker=_crash_in_child_worker)
    results = runner.run_configs(_CONFIGS[:2])
    assert results == [("retried", "mpi-h"), ("retried", "charm-h")]
    assert runner.stats.retries == 2
    assert runner.stats.completed == 2


def test_deterministic_worker_exception_propagates():
    # A config whose validation fails inside the worker is not retried:
    # the error reproduces identically.  Exercise via a bad machine budget.
    bad = _config(nodes=10_000)  # summit has 4608 nodes; cluster build fails
    with pytest.raises(Exception):
        ParallelRunner(jobs=2).run_configs([bad, _config()])


def test_per_point_timeout():
    runner = ParallelRunner(jobs=2, timeout=0.3, worker=_sleepy_worker)
    with pytest.raises(ExperimentTimeout, match="exceeded"):
        runner.run_configs(_CONFIGS[:2])


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        ParallelRunner(jobs=0)


# -- perf-report sidecar files ----------------------------------------------


def test_perf_dir_saves_report_per_point(tmp_path):
    from repro.exec import config_key

    configs = [_config(odf=2), _config(odf=4)]
    runner = ParallelRunner(jobs=2, perf_dir=tmp_path / "perf")
    results = runner.run_configs(configs)

    from repro.obs import PerfReport
    for config, result in zip(configs, results):
        report = PerfReport.load(tmp_path / "perf"
                                 / f"{config_key(config)}.perf.json")
        # Observation never perturbs the simulation itself.
        assert report.makespan == result.total_time
        assert report.time_per_iteration == result.time_per_iteration
        assert report.critical_path["length_s"] == pytest.approx(
            report.makespan, rel=0.01)


def test_perf_dir_results_match_plain_run(tmp_path):
    plain = ParallelRunner(jobs=1).run_configs(_CONFIGS[:2])
    with_perf = ParallelRunner(jobs=1, perf_dir=tmp_path).run_configs(_CONFIGS[:2])
    assert [r.to_dict() for r in plain] == [r.to_dict() for r in with_perf]


def test_perf_dir_with_cache_skips_rerun_but_keeps_report(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    perf_dir = tmp_path / "perf"
    ParallelRunner(cache=cache, perf_dir=perf_dir).run_configs(_CONFIGS[:1])
    assert len(list(perf_dir.glob("*.perf.json"))) == 1

    warm = ParallelRunner(cache=cache, perf_dir=perf_dir)
    warm.run_configs(_CONFIGS[:1])
    assert warm.stats.cache_hits == 1  # cached result reused; report kept
    assert len(list(perf_dir.glob("*.perf.json"))) == 1
