"""Tests for experiment plans and the stable config/result serialization
they and the cache rely on."""

import json

import pytest

from repro.apps import Jacobi3DConfig, Jacobi3DResult, run_jacobi3d
from repro.exec import ExperimentPlan, ExperimentPoint
from repro.hardware import MachineSpec


def _small_config(**kw):
    kw.setdefault("version", "charm-d")
    kw.setdefault("grid", (96, 96, 96))
    kw.setdefault("iterations", 2)
    kw.setdefault("warmup", 0)
    return Jacobi3DConfig(**kw)


# -- serialization ----------------------------------------------------------


def test_config_dict_round_trip():
    cfg = _small_config(odf=2, fusion="C", cuda_graphs=True)
    restored = Jacobi3DConfig.from_dict(cfg.to_dict())
    assert restored == cfg


def test_config_dict_is_json_stable():
    cfg = _small_config(machine=MachineSpec.summit().with_nic(overhead_s=2e-6))
    blob1 = json.dumps(cfg.to_dict(), sort_keys=True)
    blob2 = json.dumps(Jacobi3DConfig.from_dict(cfg.to_dict()).to_dict(), sort_keys=True)
    assert blob1 == blob2
    assert json.loads(blob1)["machine"]["node"]["nic"]["overhead_s"] == 2e-6


def test_machine_spec_round_trip_covers_ablations():
    spec = MachineSpec.summit().with_ucx(pipeline_concurrency_penalty=0.04).with_gpu(
        kernel_launch_cpu_s=1e-6)
    restored = MachineSpec.from_dict(spec.to_dict())
    assert restored == spec
    assert restored.ucx.pipeline_concurrency_penalty == 0.04


def test_result_round_trip_is_exact():
    result = run_jacobi3d(_small_config())
    restored = Jacobi3DResult.from_dict(result.to_dict())
    assert restored == result  # bit-exact floats, enum keys, config


def test_functional_result_refuses_serialization():
    result = run_jacobi3d(_small_config(grid=(24, 24, 24), data_mode="functional",
                                        machine=MachineSpec.small_debug()))
    assert result.blocks is not None
    with pytest.raises(ValueError, match="functional"):
        result.to_dict()


# -- plan construction and assembly ----------------------------------------


def test_plan_add_returns_indices():
    plan = ExperimentPlan("figX")
    i0 = plan.add(_small_config(), "a", 1)
    i1 = plan.add(_small_config(odf=2), "a", 2)
    assert (i0, i1) == (0, 1)
    assert len(plan) == 2
    assert [p.x for p in plan] == [1.0, 2.0]
    assert plan.configs()[1].odf == 2


def test_plan_generic_assembly_orders_series_by_first_encounter():
    plan = ExperimentPlan("figX", "title", "nodes", "t")
    cfg = _small_config()
    plan.add(cfg, "legacy", 1, meta_fields=(("util", "gpu_utilization"),))
    plan.add(cfg, "optimized", 1)
    plan.add(cfg, "legacy", 2, meta_fields=(("util", "gpu_utilization"),))
    res = run_jacobi3d(cfg)
    fig = plan.figure([res, res, res])
    assert list(fig.series) == ["legacy", "optimized"]
    assert fig.series["legacy"].points == [(1.0, res.time_per_iteration),
                                           (2.0, res.time_per_iteration)]
    assert fig.series["legacy"].meta[0] == {"util": res.gpu_utilization}
    assert fig.series["optimized"].meta == [{}]


def test_plan_assembly_rejects_length_mismatch():
    plan = ExperimentPlan("figX")
    plan.add(_small_config(), "a", 1)
    with pytest.raises(ValueError, match="1 points"):
        plan.figure([])


def test_point_is_frozen():
    point = ExperimentPoint(_small_config(), "s", 1.0)
    with pytest.raises(AttributeError):
        point.x = 2.0
