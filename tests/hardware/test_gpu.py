"""Unit tests for the GPU device model: streams, engines, events, memory."""

import pytest

from repro.hardware import (
    COMPUTE,
    COPY_D2D,
    COPY_D2H,
    COPY_H2D,
    CopyWork,
    GpuDevice,
    GpuSpec,
    HostLinkSpec,
    KernelWork,
    MiB,
)
from repro.sim import Engine
from repro.sim.tracing import overlap_seconds


def make_gpu(engine=None, **gpu_kwargs):
    eng = engine or Engine()
    spec = GpuSpec(**gpu_kwargs)
    return eng, GpuDevice(eng, spec, HostLinkSpec(), name="gpu0")


# ---------------------------------------------------------------------------
# Work models
# ---------------------------------------------------------------------------


def test_kernel_duration_memory_bound():
    spec = GpuSpec(mem_bandwidth=100e9, flops=1e15)
    w = KernelWork(bytes_moved=1e9, flops=1.0)
    assert w.duration(spec, HostLinkSpec()) == pytest.approx(1e9 / 100e9)


def test_kernel_duration_flop_bound():
    spec = GpuSpec(mem_bandwidth=1e15, flops=1e12)
    w = KernelWork(bytes_moved=8.0, flops=1e10)
    assert w.duration(spec, HostLinkSpec()) == pytest.approx(1e10 / 1e12)


def test_kernel_efficiency_slows_duration():
    spec = GpuSpec(mem_bandwidth=100e9)
    fast = KernelWork(bytes_moved=1e9)
    slow = KernelWork(bytes_moved=1e9, efficiency=0.5)
    assert slow.duration(spec, HostLinkSpec()) == pytest.approx(
        2 * fast.duration(spec, HostLinkSpec())
    )


def test_kernel_work_validation():
    with pytest.raises(ValueError):
        KernelWork(bytes_moved=-1)
    with pytest.raises(ValueError):
        KernelWork(bytes_moved=1, efficiency=0.0)
    with pytest.raises(ValueError):
        KernelWork(bytes_moved=1, efficiency=1.5)


def test_copy_duration_uses_host_link():
    link = HostLinkSpec(bandwidth=10e9, latency=1e-6)
    w = CopyWork(size=10 * MiB, direction=COPY_D2H)
    assert w.duration(GpuSpec(), link) == pytest.approx(1e-6 + 10 * MiB / 10e9)


def test_copy_d2d_uses_device_bandwidth():
    spec = GpuSpec(mem_bandwidth=100e9)
    w = CopyWork(size=50 * MiB, direction=COPY_D2D)
    assert w.duration(spec, HostLinkSpec()) == pytest.approx(2 * 50 * MiB / 100e9)


def test_copy_engine_selection():
    assert CopyWork(1, COPY_D2H).engine == COPY_D2H
    assert CopyWork(1, COPY_H2D).engine == COPY_H2D
    assert KernelWork(1).engine == COMPUTE


def test_copy_validation():
    with pytest.raises(ValueError):
        CopyWork(size=-1)
    with pytest.raises(ValueError):
        CopyWork(size=1, direction="sideways")


# ---------------------------------------------------------------------------
# Streams and execution
# ---------------------------------------------------------------------------


def test_single_kernel_executes_with_overheads():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=1e-6)
    s = gpu.create_stream()
    op = s.enqueue(KernelWork(bytes_moved=1e9))
    eng.run()
    assert op.done.processed
    assert eng.now == pytest.approx(1e-6 + 0.01)


def test_stream_is_fifo():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    s = gpu.create_stream()
    done_times = {}
    for name, size in [("a", 1e9), ("b", 2e9)]:
        op = s.enqueue(KernelWork(bytes_moved=size), name=name)
        op.done.add_callback(lambda ev, n=name: done_times.setdefault(n, eng.now))
    eng.run()
    assert done_times["a"] == pytest.approx(0.01)
    assert done_times["b"] == pytest.approx(0.03)


def test_compute_engine_serializes_across_streams():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    s1, s2 = gpu.create_stream(), gpu.create_stream()
    s1.enqueue(KernelWork(bytes_moved=1e9))
    s2.enqueue(KernelWork(bytes_moved=1e9))
    eng.run()
    assert eng.now == pytest.approx(0.02)  # serialized, not 0.01


def test_copy_overlaps_with_kernel_on_different_streams():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    k_stream = gpu.create_stream()
    c_stream = gpu.create_stream()
    k_stream.enqueue(KernelWork(bytes_moved=1e9))  # 10 ms compute
    c_stream.enqueue(CopyWork(size=450 * MiB, direction=COPY_D2H))  # ~10 ms copy
    eng.run()
    # Full overlap: total time is max, not sum.
    assert eng.now < 0.015
    comp = gpu.trackers[COMPUTE].busy_union()
    copy = gpu.trackers[COPY_D2H].busy_union()
    assert overlap_seconds(comp, copy) > 0.009


def test_d2h_and_h2d_engines_are_independent():
    eng, gpu = make_gpu()
    a = gpu.create_stream().enqueue(CopyWork(size=450 * MiB, direction=COPY_D2H))
    b = gpu.create_stream().enqueue(CopyWork(size=450 * MiB, direction=COPY_H2D))
    eng.run()
    single = CopyWork(size=450 * MiB).duration(gpu.spec, gpu.link) + gpu.spec.kernel_launch_device_s
    assert a.done.processed and b.done.processed
    assert eng.now == pytest.approx(single, rel=1e-6)  # ran concurrently


def test_same_direction_copies_serialize():
    eng, gpu = make_gpu()
    gpu.create_stream().enqueue(CopyWork(size=450 * MiB, direction=COPY_D2H))
    gpu.create_stream().enqueue(CopyWork(size=450 * MiB, direction=COPY_D2H))
    eng.run()
    single = CopyWork(size=450 * MiB).duration(gpu.spec, gpu.link) + gpu.spec.kernel_launch_device_s
    assert eng.now == pytest.approx(2 * single, rel=1e-6)


def test_priority_stream_jumps_queue():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    low1 = gpu.create_stream(priority=10)
    low2 = gpu.create_stream(priority=10)
    high = gpu.create_stream(priority=0)
    finish = {}

    def track(op, name):
        op.done.add_callback(lambda ev, n=name: finish.setdefault(n, eng.now))

    # Fill the engine: first low kernel runs immediately; second queues.
    track(low1.enqueue(KernelWork(bytes_moved=1e9)), "low1")
    track(low2.enqueue(KernelWork(bytes_moved=1e9)), "low2")
    track(high.enqueue(KernelWork(bytes_moved=1e8)), "high")
    eng.run()
    # High-priority kernel runs after the *running* low1 but before queued low2.
    assert finish["low1"] < finish["high"] < finish["low2"]


def test_cuda_event_cross_stream_dependency():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    producer = gpu.create_stream()
    consumer = gpu.create_stream()
    producer.enqueue(KernelWork(bytes_moved=1e9))  # 10 ms
    ev = producer.record_event()
    consumer.wait_event(ev)
    op = consumer.enqueue(KernelWork(bytes_moved=1e8))  # 1 ms
    times = {}
    op.done.add_callback(lambda e: times.setdefault("c", eng.now))
    eng.run()
    assert times["c"] == pytest.approx(0.011)


def test_event_records_at_stream_position():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    s = gpu.create_stream()
    s.enqueue(KernelWork(bytes_moved=1e9))
    ev = s.record_event()
    s.enqueue(KernelWork(bytes_moved=1e9))
    when = {}
    ev.fired.add_callback(lambda e: when.setdefault("t", eng.now))
    eng.run()
    assert when["t"] == pytest.approx(0.01)
    assert eng.now == pytest.approx(0.02)


def test_synchronize_event_waits_all_prior_work():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    s = gpu.create_stream()
    s.enqueue(KernelWork(bytes_moved=1e9))
    s.enqueue(KernelWork(bytes_moved=1e9))
    sync = s.synchronize_event()
    when = {}
    sync.add_callback(lambda e: when.setdefault("t", eng.now))
    eng.run()
    assert when["t"] == pytest.approx(0.02)


def test_op_explicit_wait_events():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    gate = eng.event()
    s = gpu.create_stream()
    op = s.enqueue(KernelWork(bytes_moved=1e8), wait_events=[gate])

    def opener():
        yield eng.timeout(5.0)
        gate.succeed()

    eng.process(opener())
    eng.run()
    assert op.done.processed
    assert eng.now == pytest.approx(5.001)


def test_wait_event_only_applies_to_later_ops():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    producer = gpu.create_stream()
    consumer = gpu.create_stream()
    first = consumer.enqueue(KernelWork(bytes_moved=1e8), name="first")
    ev = producer.record_event()
    producer.enqueue(KernelWork(bytes_moved=1e9))
    consumer.wait_event(ev)
    times = {}
    first.done.add_callback(lambda e: times.setdefault("first", eng.now))
    eng.run()
    assert times["first"] == pytest.approx(0.001)


# ---------------------------------------------------------------------------
# Memory accounting
# ---------------------------------------------------------------------------


def test_malloc_tracks_and_oom():
    eng, gpu = make_gpu()
    gpu.malloc(10 * 1024**3)
    assert gpu.mem_allocated == 10 * 1024**3
    with pytest.raises(MemoryError):
        gpu.malloc(7 * 1024**3)
    gpu.free(10 * 1024**3)
    assert gpu.mem_allocated == 0


def test_free_more_than_allocated_raises():
    from repro.sim import SimulationError

    eng, gpu = make_gpu()
    with pytest.raises(SimulationError):
        gpu.free(1)


def test_malloc_negative_rejected():
    eng, gpu = make_gpu()
    with pytest.raises(ValueError):
        gpu.malloc(-1)


# ---------------------------------------------------------------------------
# Utilization and cost helpers
# ---------------------------------------------------------------------------


def test_utilization_reflects_busy_fraction():
    eng, gpu = make_gpu(mem_bandwidth=100e9, kernel_launch_device_s=0.0)
    s = gpu.create_stream()
    s.enqueue(KernelWork(bytes_moved=1e9))  # busy 10 ms

    def idle_tail():
        yield eng.timeout(0.02)

    eng.process(idle_tail())
    eng.run()
    assert gpu.utilization(COMPUTE) == pytest.approx(0.5)
    assert gpu.busy_seconds(COMPUTE) == pytest.approx(0.01)


def test_cpu_launch_cost_by_work_type():
    eng, gpu = make_gpu()
    assert gpu.cpu_launch_cost(KernelWork(1)) == gpu.spec.kernel_launch_cpu_s
    assert gpu.cpu_launch_cost(CopyWork(1)) == gpu.link.copy_setup_cpu_s
