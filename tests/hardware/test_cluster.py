"""Unit tests for PE/Node/Cluster wiring."""

import pytest

from repro.hardware import Cluster, MachineSpec
from repro.sim import Engine


def make_cluster(n_nodes=2, spec=None):
    eng = Engine()
    return eng, Cluster(eng, spec or MachineSpec.summit(), n_nodes)


def test_cluster_shape():
    eng, c = make_cluster(n_nodes=3)
    assert c.n_nodes == 3
    assert c.n_pes == 18
    assert c.n_gpus == 18
    assert len(c.nodes) == 3
    assert len(c.nodes[0].pes) == 6 and len(c.nodes[0].gpus) == 6


def test_global_pe_indexing():
    eng, c = make_cluster(n_nodes=2)
    pe = c.pe(7)
    assert pe.index == 7
    assert pe.node_index == 1
    assert pe.local_index == 1
    assert c.pe(7) is c.nodes[1].pes[1]


def test_pe_gpu_one_to_one():
    eng, c = make_cluster()
    for pe in c.all_pes():
        assert pe.gpu is c.gpu(pe.index)
    gpus = [pe.gpu for pe in c.all_pes()]
    assert len(set(map(id, gpus))) == len(gpus)


def test_cluster_validates_node_count():
    eng = Engine()
    with pytest.raises(ValueError):
        Cluster(eng, MachineSpec.summit(), 0)
    with pytest.raises(ValueError):
        Cluster(eng, MachineSpec.summit(), 10_000)


def test_pe_occupy_serializes_core():
    eng, c = make_cluster(n_nodes=1)
    pe = c.pe(0)
    times = []

    def worker(tag):
        yield from pe.occupy(1.0)
        times.append((tag, eng.now))

    eng.process(worker("a"))
    eng.process(worker("b"))
    eng.run()
    assert times == [("a", 1.0), ("b", 2.0)]
    assert pe.busy.busy_seconds() == pytest.approx(2.0)


def test_pe_occupy_priority():
    eng, c = make_cluster(n_nodes=1)
    pe = c.pe(0)
    order = []

    def holder():
        yield from pe.occupy(1.0)
        order.append("holder")

    def late(tag, prio, delay):
        yield eng.timeout(delay)
        yield from pe.occupy(0.1, priority=prio)
        order.append(tag)

    eng.process(holder())
    eng.process(late("low", 5, 0.1))
    eng.process(late("high", 0, 0.2))
    eng.run()
    assert order == ["holder", "high", "low"]


def test_total_gpu_busy_seconds():
    from repro.hardware import KernelWork

    eng, c = make_cluster(n_nodes=1, spec=MachineSpec.small_debug())
    s0 = c.gpu(0).create_stream()
    s1 = c.gpu(1).create_stream()
    s0.enqueue(KernelWork(bytes_moved=780e9 * 0.01))  # 10 ms at spec bandwidth
    s1.enqueue(KernelWork(bytes_moved=780e9 * 0.02))
    eng.run()
    assert c.total_gpu_busy_seconds() == pytest.approx(0.03, rel=0.01)


def test_network_shares_machine_shape():
    eng, c = make_cluster(n_nodes=2)
    assert c.network.n_nodes == 2
    assert c.network.pes_per_node == 6
