"""Unit tests for topology, network transfers, and port contention."""

import pytest

from repro.hardware import FatTree, MachineSpec, Message, MiB, Network, NicSpec, TopologySpec
from repro.sim import Engine


def make_net(n_nodes=4, pes_per_node=2, **nic_kwargs):
    eng = Engine()
    spec = MachineSpec.summit()
    if nic_kwargs:
        spec = spec.with_nic(**nic_kwargs)
    net = Network(eng, spec, n_nodes, pes_per_node)
    return eng, net


# ---------------------------------------------------------------------------
# FatTree
# ---------------------------------------------------------------------------


def test_hops_same_node_zero():
    tree = FatTree(TopologySpec(nodes_per_switch=18))
    assert tree.hops(3, 3) == 0


def test_hops_same_switch():
    tree = FatTree(TopologySpec(nodes_per_switch=18))
    assert tree.hops(0, 17) == 2
    assert tree.hops(18, 35) == 2


def test_hops_across_switches():
    tree = FatTree(TopologySpec(nodes_per_switch=18))
    assert tree.hops(0, 18) == 4


def test_hops_across_pods():
    tree = FatTree(TopologySpec(nodes_per_switch=18), radix=18)
    assert tree.hops(0, 18 * 18) == 6


def test_hops_capped_at_levels():
    tree = FatTree(TopologySpec(nodes_per_switch=2, levels=2), radix=2)
    assert tree.hops(0, 1000) == 4


def test_latency_monotone_in_hops():
    nic = NicSpec()
    tree = FatTree(TopologySpec(nodes_per_switch=18))
    near = tree.latency(0, 1, nic)
    far = tree.latency(0, 20, nic)
    assert near < far


# ---------------------------------------------------------------------------
# Transfers
# ---------------------------------------------------------------------------


def test_uncontended_inter_node_transfer_time():
    eng, net = make_net()
    msg = Message(src_pe=0, dst_pe=2, size=23 * 10**6)  # node 0 -> node 1
    done = net.transfer(msg)
    eng.run_until_complete(done)
    bw = net.spec.node.nic.injection_bandwidth
    expected = msg.size / bw + net.wire_latency(0, 1)
    assert eng.now == pytest.approx(expected)
    assert msg.delivered_at == eng.now and msg.sent_at == 0.0


def test_uncontended_time_helper_matches_transfer():
    eng, net = make_net()
    msg = Message(src_pe=0, dst_pe=2, size=1 * MiB)
    done = net.transfer(msg)
    eng.run_until_complete(done)
    assert eng.now == pytest.approx(net.uncontended_time(0, 2, 1 * MiB))


def test_intra_node_transfer_bypasses_nic():
    eng, net = make_net()
    msg = Message(src_pe=0, dst_pe=1, size=1 * MiB)  # both on node 0
    eng.run_until_complete(net.transfer(msg))
    node = net.spec.node
    expected = 1 * MiB / node.intra_node_bandwidth + node.intra_node_latency_s
    assert eng.now == pytest.approx(expected)
    assert net.inject[0].in_use == 0


def test_injection_port_serializes_two_sends():
    eng, net = make_net()
    m1 = Message(src_pe=0, dst_pe=2, size=23 * 10**6)
    m2 = Message(src_pe=0, dst_pe=4, size=23 * 10**6)
    d1, d2 = net.transfer(m1), net.transfer(m2)
    eng.run_until_complete(d1, d2)
    # Two 1 ms messages out of one port: second delivered ~2 ms.
    assert m2.delivered_at - m1.delivered_at == pytest.approx(1e-3, rel=0.2)


def test_ejection_port_serializes_two_receives():
    eng, net = make_net()
    m1 = Message(src_pe=0, dst_pe=6, size=23 * 10**6)
    m2 = Message(src_pe=2, dst_pe=6, size=23 * 10**6)
    d1, d2 = net.transfer(m1), net.transfer(m2)
    eng.run_until_complete(d1, d2)
    assert abs(m2.delivered_at - m1.delivered_at) == pytest.approx(1e-3, rel=0.2)


def test_disjoint_pairs_transfer_concurrently():
    eng, net = make_net()
    m1 = Message(src_pe=0, dst_pe=2, size=23 * 10**6)
    m2 = Message(src_pe=4, dst_pe=6, size=23 * 10**6)
    eng.run_until_complete(net.transfer(m1), net.transfer(m2))
    assert eng.now < 1.5e-3  # both finish ~1 ms


def test_priority_wins_injection_port():
    eng, net = make_net()
    order = []

    def send(msg, delay):
        def proc():
            yield eng.timeout(delay)
            yield net.transfer(msg)
            order.append(msg.tag)

        return eng.process(proc())

    big = Message(src_pe=0, dst_pe=2, size=23 * 10**6, tag="first", priority=5)
    low = Message(src_pe=0, dst_pe=2, size=23 * 10**3, tag="low", priority=5)
    high = Message(src_pe=0, dst_pe=2, size=23 * 10**3, tag="high", priority=0)
    p1 = send(big, 0.0)
    p2 = send(low, 1e-5)  # queue while big is in flight
    p3 = send(high, 2e-5)
    eng.run_until_complete(p1, p2, p3)
    assert order == ["first", "high", "low"]


def test_message_counters():
    eng, net = make_net()
    eng.run_until_complete(net.transfer(Message(0, 2, 100)), net.transfer(Message(0, 4, 50)))
    assert net.messages_sent == 2
    assert net.bytes_sent == 150


def test_inflight_tracker_covers_transfer():
    eng, net = make_net()
    msg = Message(src_pe=0, dst_pe=2, size=23 * 10**6)
    eng.run_until_complete(net.transfer(msg))
    (span,) = net.inflight.busy_union()
    assert span[0] == 0.0 and span[1] == pytest.approx(eng.now)


def test_node_of_pe():
    eng, net = make_net(n_nodes=4, pes_per_node=6)
    assert net.node_of_pe(0) == 0
    assert net.node_of_pe(5) == 0
    assert net.node_of_pe(6) == 1
    assert net.node_of_pe(23) == 3
