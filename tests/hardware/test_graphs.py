"""Unit tests for the CUDA Graphs model."""

import pytest

from repro.hardware import (
    COMPUTE,
    CopyWork,
    CudaGraph,
    GpuDevice,
    GpuSpec,
    HostLinkSpec,
    KernelWork,
)
from repro.sim import Engine


def make_gpu(**kw):
    eng = Engine()
    defaults = dict(mem_bandwidth=100e9, kernel_launch_device_s=2e-6, graph_node_device_s=5e-7)
    defaults.update(kw)
    return eng, GpuDevice(eng, GpuSpec(**defaults), HostLinkSpec(), name="gpu0")


def test_graph_add_and_deps_validation():
    g = CudaGraph()
    a = g.add(KernelWork(1e6))
    b = g.add(KernelWork(1e6), deps=[a])
    assert (a, b) == (0, 1) and len(g) == 2
    with pytest.raises(ValueError):
        g.add(KernelWork(1e6), deps=[5])


def test_from_sequence_serial_chain():
    g = CudaGraph.from_sequence([KernelWork(1e6)] * 3)
    assert [n.deps for n in g.nodes] == [(), (0,), (1,)]


def test_from_sequence_parallel():
    g = CudaGraph.from_sequence([KernelWork(1e6)] * 3, serial=False)
    assert all(n.deps == () for n in g.nodes)


def test_empty_graph_cannot_instantiate():
    eng, gpu = make_gpu()
    with pytest.raises(ValueError):
        CudaGraph().instantiate(gpu)


def test_serial_graph_respects_dependencies():
    eng, gpu = make_gpu()
    g = CudaGraph.from_sequence([KernelWork(1e9), KernelWork(1e9)])  # 10 ms each
    done = g.instantiate(gpu).launch()
    eng.run_until_complete(done)
    expected = 2 * (0.01 + gpu.spec.graph_node_device_s)
    assert eng.now == pytest.approx(expected)


def test_graph_nodes_use_reduced_device_overhead():
    eng, gpu = make_gpu(graph_node_device_s=0.0, kernel_launch_device_s=1.0)
    g = CudaGraph.from_sequence([KernelWork(1e9)])
    eng.run_until_complete(g.instantiate(gpu).launch())
    # With graph overhead 0, a kernel with 1-second *stream* launch overhead
    # finishes in just its compute time.
    assert eng.now == pytest.approx(0.01)


def test_independent_nodes_respect_engine_capacity():
    eng, gpu = make_gpu(graph_node_device_s=0.0)
    g = CudaGraph.from_sequence([KernelWork(1e9)] * 2, serial=False)
    eng.run_until_complete(g.instantiate(gpu).launch())
    # Parallel in the DAG but the single compute engine serializes.
    assert eng.now == pytest.approx(0.02)


def test_graph_mixed_engines_run_concurrently():
    eng, gpu = make_gpu(graph_node_device_s=0.0)
    g = CudaGraph()
    g.add(KernelWork(1e9))  # 10 ms on compute
    g.add(CopyWork(450 * 1024**2))  # ~10 ms on the D2H engine
    eng.run_until_complete(g.instantiate(gpu).launch())
    assert eng.now < 0.015


def test_diamond_dag():
    eng, gpu = make_gpu(graph_node_device_s=0.0)
    g = CudaGraph()
    a = g.add(KernelWork(1e8), name="a")  # 1 ms
    b = g.add(KernelWork(1e8), deps=[a], name="b")
    c = g.add(KernelWork(1e8), deps=[a], name="c")
    g.add(KernelWork(1e8), deps=[b, c], name="d")
    eng.run_until_complete(g.instantiate(gpu).launch())
    # a; then b,c serialized on one engine; then d: 4 ms total.
    assert eng.now == pytest.approx(0.004)


def test_launch_after_gate():
    eng, gpu = make_gpu(graph_node_device_s=0.0)
    gate = eng.event()
    done = CudaGraph.from_sequence([KernelWork(1e8)]).instantiate(gpu).launch(after=[gate])

    def opener():
        yield eng.timeout(1.0)
        gate.succeed()

    eng.process(opener())
    eng.run_until_complete(done)
    assert eng.now == pytest.approx(1.001)


def test_repeat_launches_count():
    eng, gpu = make_gpu()
    ge = CudaGraph.from_sequence([KernelWork(1e6)]).instantiate(gpu)
    eng.run_until_complete(ge.launch())
    eng.run_until_complete(ge.launch())
    assert ge.launches == 2


def test_update_cost_scales_with_nodes():
    eng, gpu = make_gpu()
    g = CudaGraph.from_sequence([KernelWork(1e6)] * 10)
    assert g.update_cost(gpu) == pytest.approx(5 * gpu.spec.kernel_launch_cpu_s)
    assert g.update_cost(gpu, nodes_updated=2) == pytest.approx(gpu.spec.kernel_launch_cpu_s)


def test_cpu_launch_cost_exposed():
    eng, gpu = make_gpu()
    ge = CudaGraph.from_sequence([KernelWork(1e6)]).instantiate(gpu)
    assert ge.cpu_launch_cost == gpu.spec.graph_launch_cpu_s
