"""Unit tests for hardware specs and machine presets."""

import pytest

from repro.hardware import GiB, KiB, MachineSpec, MiB, NodeSpec, UcxSpec


def test_units():
    assert KiB == 1024 and MiB == 1024**2 and GiB == 1024**3


def test_summit_preset_shape():
    m = MachineSpec.summit()
    assert m.name == "summit"
    assert m.node.gpus_per_node == 6
    assert m.node.pes_per_node == 6
    assert m.max_nodes == 4608
    assert m.node.gpu.mem_capacity == 16 * GiB


def test_small_debug_preset():
    m = MachineSpec.small_debug()
    assert m.node.gpus_per_node == 2


def test_validate_nodes_bounds():
    m = MachineSpec.summit()
    m.validate_nodes(1)
    m.validate_nodes(4608)
    with pytest.raises(ValueError):
        m.validate_nodes(0)
    with pytest.raises(ValueError):
        m.validate_nodes(4609)


def test_with_gpu_ablation_returns_new_spec():
    m = MachineSpec.summit()
    m2 = m.with_gpu(kernel_launch_cpu_s=1e-5)
    assert m2.node.gpu.kernel_launch_cpu_s == 1e-5
    assert m.node.gpu.kernel_launch_cpu_s != 1e-5  # original untouched
    assert m2.node.gpu.mem_bandwidth == m.node.gpu.mem_bandwidth


def test_with_nic_and_ucx_ablation():
    m = MachineSpec.summit().with_nic(injection_bandwidth=1e9).with_ucx(device_pipeline_threshold=64)
    assert m.node.nic.injection_bandwidth == 1e9
    assert m.ucx.device_pipeline_threshold == 64


def test_with_node_ablation():
    m = MachineSpec.summit().with_node(gpus_per_node=4)
    assert m.node.gpus_per_node == 4


def test_ucx_protocol_thresholds_ordered():
    u = UcxSpec()
    assert u.eager_threshold < u.device_pipeline_threshold
    assert u.pipeline_chunk_bytes <= u.staging_pool_bytes


def test_specs_frozen():
    m = MachineSpec.summit()
    with pytest.raises(AttributeError):
        m.name = "x"  # type: ignore[misc]
    with pytest.raises(AttributeError):
        m.node.gpu.flops = 1.0  # type: ignore[misc]


def test_pes_equal_gpus():
    n = NodeSpec(gpus_per_node=3)
    assert n.pes_per_node == 3
