"""Each injected defect class is detected, with a report naming the
offending task key / buffer / cycle (the sanitizer's liveness proof):

* a dropped Cholesky dependency declaration -> race / missing-dependency
  naming the task;
* a skipped halo-copy wait -> race naming the staging buffer;
* a channel deposit that is never awaited -> dangling-mailbox;
* an artificial cross-stream wait cycle -> deadlock-cycle naming the ops,
  and the runtime's quiescence error is enriched with the pending ops.
"""

import pytest

from repro.apps import ALL_VERSIONS, get_app, run_app
from repro.apps.cholesky import CholeskyConfig
from repro.hardware import Cluster, KiB, MachineSpec
from repro.hardware.gpu import COPY_D2H, CopyWork
from repro.runtime import Chare, CharmRuntime
from repro.sanitize import Sanitizer, declared_dep_pairs, drop_cholesky_dep, drop_wait
from repro.sim import Engine, Event
from repro.sim.errors import SimulationError

MACHINE = MachineSpec.small_debug()


def _cholesky_config(version):
    return CholeskyConfig(version=version, nodes=2, tiles=4, tile=16,
                          odf=1 if version.startswith("mpi") else 2,
                          machine=MACHINE)


def _key_name(key):
    return ".".join(str(part) for part in key)


# -- dropped DAG dependency --------------------------------------------------

@pytest.mark.parametrize("version", ALL_VERSIONS)
def test_dropped_cholesky_dep_detected_on_every_frontend(version):
    sanitizer = Sanitizer()
    dropped = {}

    def hook(ctx):
        pairs = declared_dep_pairs(ctx)
        task, dep = pairs[len(pairs) // 2]
        dropped["task"], dropped["dep"] = drop_cholesky_dep(ctx, task, dep)

    run_app(_cholesky_config(version), sanitize=sanitizer, context_hook=hook)
    kinds = {d.kind for d in sanitizer.findings}
    assert kinds & {"race", "missing-dependency"}, sanitizer.report()
    text = "\n".join(str(d) for d in sanitizer.findings)
    assert (_key_name(dropped["task"]) in text
            or _key_name(dropped["dep"]) in text), text


def test_dropped_dep_report_names_the_undeclared_edge():
    sanitizer = Sanitizer()
    dropped = {}

    def hook(ctx):
        pairs = declared_dep_pairs(ctx)
        task, dep = pairs[len(pairs) // 2]
        dropped["task"], dropped["dep"] = drop_cholesky_dep(ctx, task, dep)

    run_app(_cholesky_config("charm-d"), sanitize=sanitizer, context_hook=hook)
    missing = [d for d in sanitizer.findings if d.kind == "missing-dependency"]
    races = [d for d in sanitizer.findings if d.kind == "race"]
    assert missing or races, sanitizer.report()
    text = "\n".join(str(d) for d in missing + races)
    assert _key_name(dropped["task"]) in text, text


# -- skipped halo wait -------------------------------------------------------

def test_skipped_halo_wait_detected():
    spec = get_app("jacobi3d")
    config = spec.config_cls(version="charm-h", nodes=2, odf=2,
                             grid=(48, 48, 48), iterations=3, warmup=1)
    sanitizer = Sanitizer()
    with drop_wait("unpack") as state:
        run_app(config, sanitize=sanitizer)
    assert state["dropped"] == 1
    races = [d for d in sanitizer.findings if d.kind == "race"]
    assert races, sanitizer.report()
    assert any("gstage" in d.detail for d in races), sanitizer.report()


def test_drop_wait_is_scoped_to_the_context():
    spec = get_app("jacobi3d")
    config = spec.config_cls(version="charm-h", nodes=2, odf=2,
                             grid=(48, 48, 48), iterations=3, warmup=1)
    with drop_wait("unpack"):
        pass  # nothing ran inside: the patch must not leak out
    sanitizer = Sanitizer()
    run_app(config, sanitize=sanitizer)
    assert sanitizer.ok, sanitizer.report()


# -- channel deposit never awaited -------------------------------------------

class LeakyPair(Chare):
    """Exchanges one chunk per direction but never awaits the receive
    completion — the deposit rots in the mailbox."""

    size = 64 * KiB

    def run(self, msg):
        other = (1 - self.index[0],)
        ch = self.channel_to(other)
        ch.send(self.size, ref=("s", 0))
        ch.recv(self.size, ref=("r", 0))
        yield self.when("ch_send", ref=("s", 0))
        # BUG under test: no when("ch_recv") for the posted receive.


def test_unawaited_channel_deposit_detected():
    engine = Engine()
    cluster = Cluster(engine, MACHINE, 2)
    runtime = CharmRuntime(cluster)
    sanitizer = Sanitizer().attach(engine)
    sanitizer.watch_runtime(runtime)
    array = runtime.create_array(LeakyPair, shape=(2,), mapping="block")
    array.broadcast("run")
    runtime.run()
    sanitizer.finish(raise_on_findings=False)
    dangling = [d for d in sanitizer.findings if d.kind == "dangling-mailbox"]
    assert dangling, sanitizer.report()
    assert any("ch_recv" in d.detail for d in dangling), sanitizer.report()


# -- artificial wait cycle ---------------------------------------------------

def test_cross_stream_wait_cycle_detected():
    engine = Engine()
    cluster = Cluster(engine, MACHINE, 1)
    gpu = cluster.nodes[0].gpus[0]
    sanitizer = Sanitizer().attach(engine)
    s1 = gpu.create_stream(name="s1")
    s2 = gpu.create_stream(name="s2")
    a = s1.enqueue(CopyWork(4 * KiB, COPY_D2H), name="A")
    b = s2.enqueue(CopyWork(4 * KiB, COPY_D2H), name="B", wait_events=[a.done])
    # No declaration order can produce a cycle, so inject one post-hoc.
    a.wait_events = [b.done]
    engine.run()
    sanitizer.finish(raise_on_findings=False)
    cycles = [d for d in sanitizer.findings if d.kind == "deadlock-cycle"]
    assert cycles, sanitizer.report()
    assert "A" in cycles[0].detail and "B" in cycles[0].detail


class StuckChare(Chare):
    """Launches a kernel gated on an event nothing ever fires."""

    def run(self, msg):
        stream = self.gpu.create_stream(name="stuck")
        never = Event(self.runtime.engine, name="never-fired")
        op = yield self.launch(stream, CopyWork(4 * KiB, COPY_D2H),
                               name="k1", wait=[never])
        yield self.wait(op.done)


def test_runtime_deadlock_error_is_enriched():
    engine = Engine()
    cluster = Cluster(engine, MACHINE, 1)
    runtime = CharmRuntime(cluster)
    sanitizer = Sanitizer().attach(engine)
    sanitizer.watch_runtime(runtime)
    array = runtime.create_array(StuckChare, shape=(1,), mapping="block")
    array.broadcast("run")
    with pytest.raises(SimulationError) as excinfo:
        runtime.run()
    message = str(excinfo.value)
    assert "deadlock" in message
    assert "sanitizer:" in message and "k1" in message
