"""Regression: ``TaskSpace.check_all_finished`` names declared-but-never-
attached tasks (previously they slipped through when nothing downstream
consumed them), and a fully attached + finished space passes."""

import pytest

from repro.runtime.taskspace import TaskSpace
from repro.sim import Engine, Event


def test_never_attached_tasks_are_named():
    ts = TaskSpace(name="demo")
    ts.declare(("potrf", 7))  # repro-lint: disable=RPL032 -- deliberately never attached (regression under test)
    ts.declare(("trsm", 8, 7), deps=[("potrf", 7)])  # repro-lint: disable=RPL032 -- deliberately never attached (regression under test)
    assert ts.never_attached() == [("potrf", 7), ("trsm", 8, 7)]
    with pytest.raises(RuntimeError, match="never attached") as excinfo:
        ts.check_all_finished()
    message = str(excinfo.value)
    assert "('potrf', 7)" in message and "('trsm', 8, 7)" in message
    assert "2/2" in message


def test_partially_attached_space_names_only_the_stragglers():
    engine = Engine()
    ts = TaskSpace(name="demo2")
    ts.declare(("syrk", 1, 0))
    ts.declare(("gemm", 2, 1, 0), deps=[("syrk", 1, 0)])  # repro-lint: disable=RPL032 -- deliberately never attached (regression under test)
    done = Event(engine, name="syrk-done")
    ts.attach(("syrk", 1, 0), done, engine)
    with pytest.raises(RuntimeError, match="never attached") as excinfo:
        ts.check_all_finished()
    message = str(excinfo.value)
    assert "('gemm', 2, 1, 0)" in message
    assert "('syrk', 1, 0)" not in message
    assert "1/2" in message


def test_attached_and_finished_space_passes():
    engine = Engine()
    ts = TaskSpace(name="demo3")
    ts.declare(("potrf", 0))
    done = Event(engine, name="potrf-done")
    ts.attach(("potrf", 0), done, engine)
    done.succeed()
    engine.run()
    ts.check_all_finished()
    assert ts.never_attached() == []
