"""Self-hosting: the registered apps run clean under the sanitizer.

The full all-apps × all-frontends matrix is the CI gate (``repro sanitize
--strict``); here the cheap apps run the whole matrix and the expensive
ones one representative frontend each, so the suite stays fast while
every app keeps a sanitized regression test.
"""

import pytest

from repro.apps import get_app, run_app
from repro.sanitize import Sanitizer
from repro.sanitize.driver import SanitizeCase, render_matrix, sanitize_matrix


@pytest.mark.parametrize("app", ["cholesky", "jacobi3d"])
def test_matrix_is_clean(app):
    cases = sanitize_matrix(app=app)
    assert len(cases) == 6  # every frontend
    for case in cases:
        assert case.ok, render_matrix([case])
        assert case.sanitizer.ops_checked > 0
        assert case.sanitizer.accesses_checked > 0


@pytest.mark.parametrize("app,version,kwargs", [
    ("jacobi2d", "charm-h", dict(nodes=2, odf=2, grid=(96, 96),
                                 iterations=3, warmup=1)),
    ("jacobi2d", "mpi-d", dict(nodes=2, grid=(96, 96),
                               iterations=3, warmup=1)),
    ("allreduce", "mpi-h", dict(nodes=2, elements=4096,
                                iterations=2, warmup=1)),
    ("allreduce", "charm-d", dict(nodes=2, odf=2, elements=4096,
                                  iterations=2, warmup=1)),
])
def test_representative_cases_clean(app, version, kwargs):
    spec = get_app(app)
    sanitizer = Sanitizer()
    run_app(spec.config_cls(version=version, **kwargs), sanitize=sanitizer)
    assert sanitizer.ok, sanitizer.report()
    assert sanitizer.accesses_checked > 0


def test_render_matrix_shows_findings():
    sanitizer = Sanitizer()
    sanitizer._record("race", "gpu0.s1", "synthetic finding for rendering")
    case = SanitizeCase("demo", "charm-d", sanitizer)
    text = render_matrix([case])
    assert "1 FINDING(S)" in text
    assert "synthetic finding" in text
    assert "1/1 case(s) with findings" in text
