"""Property: deleting ANY single declared Cholesky dependency produces at
least one sanitizer race / missing-dependency report, on every frontend and
at any over-decomposition factor — and deleting nothing produces zero."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ALL_VERSIONS, get_app, run_app
from repro.apps.cholesky import CholeskyConfig
from repro.hardware import MachineSpec
from repro.sanitize import Sanitizer, declared_dep_pairs, drop_cholesky_dep

MACHINE = MachineSpec.small_debug()
SPEC = get_app("cholesky")

# The DAG edge set is a pure function of the tile count, so index the
# hypothesis strategy against a throwaway context built up front.
_N_EDGES = len(declared_dep_pairs(SPEC.make_context(
    CholeskyConfig(version="charm-d", nodes=2, tiles=4, tile=16, odf=2,
                   machine=MACHINE))))


def _config(version, odf):
    return CholeskyConfig(version=version, nodes=2, tiles=4, tile=16,
                          odf=1 if version.startswith("mpi") else odf,
                          machine=MACHINE)


@settings(max_examples=12, deadline=None)
@given(version=st.sampled_from(ALL_VERSIONS),
       odf=st.integers(min_value=1, max_value=3),
       edge=st.integers(min_value=0, max_value=_N_EDGES - 1))
def test_any_single_dropped_dep_is_reported(version, odf, edge):
    sanitizer = Sanitizer()

    def hook(ctx):
        task, dep = declared_dep_pairs(ctx)[edge]
        drop_cholesky_dep(ctx, task, dep)

    run_app(_config(version, odf), sanitize=sanitizer, context_hook=hook)
    kinds = {d.kind for d in sanitizer.findings}
    assert kinds & {"race", "missing-dependency"}, sanitizer.report()


@settings(max_examples=6, deadline=None)
@given(version=st.sampled_from(ALL_VERSIONS),
       odf=st.integers(min_value=1, max_value=3))
def test_intact_dag_is_clean(version, odf):
    sanitizer = Sanitizer()
    run_app(_config(version, odf), sanitize=sanitizer)
    assert sanitizer.ok, sanitizer.report()
