"""Unit tests for the UCX-like transfer engine."""

import pytest

from repro.comm import Protocol, UcxContext
from repro.hardware import Cluster, KiB, MachineSpec, MiB
from repro.sim import Engine


def make_ctx(n_nodes=2, spec=None):
    eng = Engine()
    cluster = Cluster(eng, spec or MachineSpec.summit(), n_nodes)
    return eng, cluster, UcxContext(cluster)


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------


def test_send_then_recv_matches():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 6, 100, tag="a")
    r = ucx.irecv(0, 6, 100, tag="a")
    eng.run()
    assert s.done.processed and r.done.processed
    assert ucx.pending_counts() == (0, 0)


def test_recv_then_send_matches():
    eng, cluster, ucx = make_ctx()
    r = ucx.irecv(0, 6, 100, tag="a")
    s = ucx.isend(0, 6, 100, tag="a")
    eng.run()
    assert s.done.processed and r.done.processed


def test_tag_mismatch_does_not_match():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 6, 100, tag="x")
    r = ucx.irecv(0, 6, 100, tag="y")
    eng.run()
    assert not r.done.triggered
    assert ucx.pending_counts() == (1, 1)


def test_fifo_matching_same_key():
    eng, cluster, ucx = make_ctx()
    s1 = ucx.isend(0, 6, 100, tag="t")
    s2 = ucx.isend(0, 6, 200, tag="t")
    r1 = ucx.irecv(0, 6, 100, tag="t")
    r2 = ucx.irecv(0, 6, 200, tag="t")
    eng.run()
    assert r1.peer is s1 and r2.peer is s2


def test_rendezvous_send_blocks_until_recv_posted():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 6, 100 * KiB, tag="t")  # host rendezvous
    eng.run()
    assert not s.done.triggered  # no matching recv yet
    r = ucx.irecv(0, 6, 100 * KiB, tag="t")
    eng.run()
    assert s.done.processed and r.done.processed


# ---------------------------------------------------------------------------
# Eager
# ---------------------------------------------------------------------------


def test_eager_sender_completes_before_delivery():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 6, 4 * KiB, tag="e")
    send_t = {}
    s.done.add_callback(lambda e: send_t.setdefault("t", eng.now))
    eng.run()  # no recv posted at all
    assert s.done.processed
    assert send_t["t"] <= 2e-6  # local buffering only
    r = ucx.irecv(0, 6, 4 * KiB, tag="e")
    eng.run()
    assert r.done.processed  # unexpected message drained on late recv


def test_eager_device_uses_copy_engines():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 6, 4 * KiB, tag="e", on_device=True)
    r = ucx.irecv(0, 6, 4 * KiB, tag="e", on_device=True)
    eng.run()
    assert s.done.processed and r.done.processed
    from repro.hardware.gpu import COPY_D2H, COPY_H2D

    assert cluster.gpu(0).busy_seconds(COPY_D2H) > 0
    assert cluster.gpu(6).busy_seconds(COPY_H2D) > 0


# ---------------------------------------------------------------------------
# GPUDirect
# ---------------------------------------------------------------------------


def test_gpudirect_no_copy_engine_usage():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 6, 96 * KiB, tag="g", on_device=True)
    r = ucx.irecv(0, 6, 96 * KiB, tag="g", on_device=True)
    eng.run()
    assert s.protocol is Protocol.RNDV_GPUDIRECT
    assert s.done.processed and r.done.processed
    from repro.hardware.gpu import COPY_D2H, COPY_H2D

    assert cluster.gpu(0).busy_seconds(COPY_D2H) == 0.0
    assert cluster.gpu(6).busy_seconds(COPY_H2D) == 0.0


def test_gpudirect_faster_than_host_staged_equivalent():
    """A 96 KiB device transfer must beat D2H + host send + H2D."""
    eng, cluster, ucx = make_ctx()
    ucx.isend(0, 6, 96 * KiB, tag="g", on_device=True)
    r = ucx.irecv(0, 6, 96 * KiB, tag="g", on_device=True)
    eng.run()
    gpu_aware_time = eng.now

    link = cluster.spec.node.host_link
    staged_floor = 2 * (link.latency + 96 * KiB / link.bandwidth)  # copies alone
    assert gpu_aware_time < staged_floor + cluster.network.uncontended_time(0, 6, 96 * KiB)


# ---------------------------------------------------------------------------
# Pipelined host staging
# ---------------------------------------------------------------------------


def test_large_device_message_pipelines():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 6, 9 * MiB, tag="p", on_device=True)
    r = ucx.irecv(0, 6, 9 * MiB, tag="p", on_device=True)
    eng.run()
    assert s.protocol is Protocol.RNDV_PIPELINED
    assert s.done.processed and r.done.processed
    from repro.hardware.gpu import COPY_D2H, COPY_H2D

    # Staging copies happened on both ends.
    assert cluster.gpu(0).busy_seconds(COPY_D2H) > 0
    assert cluster.gpu(6).busy_seconds(COPY_H2D) > 0


def test_pipelined_slower_than_host_rendezvous_same_bytes():
    """The Fig. 7a mechanism: a 9 MB *device* transfer via the pipelined
    protocol is slower than the same bytes as a *host* rendezvous."""
    size = 9 * MiB

    eng1, _, ucx1 = make_ctx()
    ucx1.isend(0, 6, size, tag="d", on_device=True)
    ucx1.irecv(0, 6, size, tag="d", on_device=True)
    eng1.run()
    device_time = eng1.now

    eng2, _, ucx2 = make_ctx()
    ucx2.isend(0, 6, size, tag="h", on_device=False)
    ucx2.irecv(0, 6, size, tag="h", on_device=False)
    eng2.run()
    host_time = eng2.now

    assert device_time > 1.2 * host_time


def test_pipelined_effective_bandwidth_in_plausible_range():
    size = 16 * MiB
    eng, cluster, ucx = make_ctx()
    ucx.isend(0, 6, size, tag="p", on_device=True)
    r = ucx.irecv(0, 6, size, tag="p", on_device=True)
    eng.run()
    eff_bw = size / eng.now
    wire_bw = cluster.spec.node.nic.injection_bandwidth
    assert 0.3 * wire_bw < eff_bw < 0.85 * wire_bw


def test_protocol_counters():
    eng, cluster, ucx = make_ctx()
    ucx.isend(0, 6, 1 * KiB, tag=1)
    ucx.irecv(0, 6, 1 * KiB, tag=1)
    ucx.isend(0, 6, 64 * KiB, tag=2, on_device=True)
    ucx.irecv(0, 6, 64 * KiB, tag=2, on_device=True)
    ucx.isend(0, 6, 2 * MiB, tag=3, on_device=True)
    ucx.irecv(0, 6, 2 * MiB, tag=3, on_device=True)
    eng.run()
    assert ucx.protocol_counts[Protocol.EAGER] == 1
    assert ucx.protocol_counts[Protocol.RNDV_GPUDIRECT] == 1
    assert ucx.protocol_counts[Protocol.RNDV_PIPELINED] == 1


def test_negative_size_rejected():
    eng, cluster, ucx = make_ctx()
    with pytest.raises(ValueError):
        ucx.isend(0, 6, -5)


def test_concurrent_pipelined_messages_share_port_and_staging():
    """Within a message the chunk pipeline is serial (gaps on the wire);
    a second concurrent message fills those gaps until the shared injection
    port saturates, after which added messages cost full wire time."""
    size = 4 * MiB
    eng1, c1, ucx1 = make_ctx()
    ucx1.isend(0, 6, size, tag=1, on_device=True)
    ucx1.irecv(0, 6, size, tag=1, on_device=True)
    eng1.run()
    one = eng1.now

    eng2, c2, ucx2 = make_ctx()
    for t in (1, 2):
        ucx2.isend(0, 6, size, tag=t, on_device=True)
        ucx2.irecv(0, 6, size, tag=t, on_device=True)
    eng2.run()
    two = eng2.now

    spec = c2.spec
    wire_floor = 2 * size / (spec.node.nic.injection_bandwidth * spec.ucx.pipeline_wire_efficiency)
    assert two > one  # contention is visible
    assert two >= wire_floor  # the shared port bounds aggregate throughput
    assert two < 2 * one  # but cross-message overlap does help
