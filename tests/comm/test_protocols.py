"""Unit tests for protocol selection."""

import pytest

from repro.comm import Protocol, select_protocol
from repro.hardware import KiB, MiB, UcxSpec

SPEC = UcxSpec()


@pytest.mark.parametrize("size", [0, 1, 8 * KiB])
def test_small_messages_are_eager_host_and_device(size):
    assert select_protocol(SPEC, size, on_device=True) is Protocol.EAGER
    assert select_protocol(SPEC, size, on_device=False) is Protocol.EAGER


def test_medium_device_uses_gpudirect():
    assert select_protocol(SPEC, 96 * KiB, on_device=True) is Protocol.RNDV_GPUDIRECT
    assert select_protocol(SPEC, 1 * MiB, on_device=True) is Protocol.RNDV_GPUDIRECT


def test_large_device_uses_pipelined_host_staging():
    # The paper's 9 MB halos at the 1536^3 weak-scaling size.
    assert select_protocol(SPEC, 9 * MiB, on_device=True) is Protocol.RNDV_PIPELINED
    assert select_protocol(SPEC, 1 * MiB + 1, on_device=True) is Protocol.RNDV_PIPELINED


def test_host_buffers_never_pipeline():
    assert select_protocol(SPEC, 9 * MiB, on_device=False) is Protocol.RNDV_HOST
    assert select_protocol(SPEC, 96 * KiB, on_device=False) is Protocol.RNDV_HOST


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        select_protocol(SPEC, -1, on_device=False)


def test_threshold_ablation_changes_selection():
    spec = UcxSpec(device_pipeline_threshold=16 * MiB)
    assert select_protocol(spec, 9 * MiB, on_device=True) is Protocol.RNDV_GPUDIRECT
