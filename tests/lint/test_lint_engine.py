"""Unit tests for the lint engine internals: suppression parsing, file
collection, config knobs, parse-error handling, and rendering."""
from __future__ import annotations

import json
from pathlib import Path

from repro.lint import (
    DEFAULT_MAILBOX_ALLOWLIST,
    JSON_SCHEMA_VERSION,
    LintConfig,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.suppressions import is_suppressed, parse_suppressions

FIXTURES = Path(__file__).resolve().parent / "fixtures"

CHARE_PREAMBLE = "from repro.runtime import Chare\n\n\nclass B(Chare):\n"


def _lint_source(tmp_path, source, **cfg):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return run_lint([path], LintConfig(determinism_parts=None, **cfg))


# ---------------------------------------------------------------------------
# suppression parsing


def test_parse_suppressions_single_and_multi_code():
    src = (
        "x = 1  # repro-lint: disable=RPL001\n"
        "y = 2  # repro-lint: disable=RPL010, RPL011 -- justification text\n"
        "z = 3  # unrelated comment\n"
    )
    sup = parse_suppressions(src)
    assert sup[1] == frozenset({"RPL001"})
    assert sup[2] == frozenset({"RPL010", "RPL011"})
    assert 3 not in sup


def test_parse_suppressions_all_and_case():
    sup = parse_suppressions("x = 1  # repro-lint: disable=all\n")
    assert is_suppressed(sup, 1, "RPL999")
    assert not is_suppressed(sup, 2, "RPL999")


def test_is_suppressed_is_case_insensitive():
    sup = parse_suppressions("x = 1  # repro-lint: disable=rpl003\n")
    assert is_suppressed(sup, 1, "RPL003")


def test_parse_suppressions_tolerates_broken_source():
    assert parse_suppressions("def broken(:\n") == {}


# ---------------------------------------------------------------------------
# engine behaviour


def test_parse_error_yields_rpl000(tmp_path):
    report = _lint_source(tmp_path, "def broken(:\n")
    assert [f.code for f in report.findings] == ["RPL000"]
    assert not report.ok


def test_directory_walk_skips_fixture_dirs(tmp_path):
    bad = tmp_path / "fixtures"
    bad.mkdir()
    (bad / "seeded.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "clean.py").write_text("x = 1\n")
    report = run_lint([tmp_path], LintConfig(determinism_parts=None))
    assert report.files == 1
    assert report.findings == []


def test_explicit_file_bypasses_exclusion():
    report = run_lint(
        [FIXTURES / "rpl020_wall_clock.py"], LintConfig(determinism_parts=None)
    )
    assert {f.code for f in report.findings} == {"RPL020"}


def test_messageflow_can_be_disabled(tmp_path):
    src = CHARE_PREAMBLE + (
        "    def run(self, msg):\n"
        "        self.send((1,), 'orphan', data_bytes=8)\n"
        "        yield self.when('ghost')\n"
    )
    on = _lint_source(tmp_path, src)
    off = _lint_source(tmp_path, src, messageflow=False)
    assert {f.code for f in on.findings} == {"RPL010", "RPL011"}
    assert off.findings == []


def test_mailbox_allowlist_covers_runtime_internals(tmp_path):
    src = CHARE_PREAMBLE + (
        "    def run(self, msg):\n"
        "        yield self.when('_reduction_result', ref=0)\n"
    )
    report = _lint_source(tmp_path, src)
    assert report.findings == []
    assert "_reduction_result" in DEFAULT_MAILBOX_ALLOWLIST


def test_determinism_scope_limits_rpl02x(tmp_path):
    # Outside src/repro/{sim,runtime,comm,apps} the determinism family is
    # silent under the *default* config.
    path = tmp_path / "harness.py"
    path.write_text("import time\nt = time.time()\n")
    report = run_lint([path])  # default config, default scope
    assert report.findings == []


# ---------------------------------------------------------------------------
# rendering


def test_render_text_clean_and_dirty(tmp_path):
    clean = _lint_source(tmp_path, "x = 1\n")
    assert "clean" in render_text(clean)
    dirty = run_lint(
        [FIXTURES / "rpl022_os_entropy.py"], LintConfig(determinism_parts=None)
    )
    text = render_text(dirty)
    assert "RPL022" in text and "rpl022_os_entropy.py" in text


def test_render_json_roundtrip(tmp_path):
    report = run_lint(
        [FIXTURES / "rpl022_os_entropy.py"], LintConfig(determinism_parts=None)
    )
    data = json.loads(render_json(report))
    assert data["version"] == JSON_SCHEMA_VERSION
    assert data["counts"] == {"RPL022": 2}
    assert all(
        set(f) == {"path", "line", "col", "code", "rule", "family", "message"}
        for f in data["findings"]
    )


def test_render_json_v2_families_and_v1_fields():
    """Schema v2 adds 'family' to each finding; every v1 field survives."""
    report = run_lint(
        [FIXTURES / "rpl022_os_entropy.py",
         FIXTURES / "rpl034_redeclared_key.py"],
        LintConfig(determinism_parts=None),
    )
    data = json.loads(render_json(report))
    assert data["version"] == 2
    v1_fields = {"path", "line", "col", "code", "rule", "message"}
    assert all(v1_fields <= set(f) for f in data["findings"])
    families = {f["code"]: f["family"] for f in data["findings"]}
    assert families["RPL022"] == "determinism"
    assert families["RPL034"] == "streamdag"
