"""Positive fixture: suspend-only APIs in a plain entry method (RPL004)."""
from repro.runtime import Chare


class Block(Chare):
    def on_halo(self, msg):
        self.wait(msg.payload)  # EXPECT: RPL004
        got = self.when("more")  # EXPECT: RPL004
        self.send((0,), "more", data_bytes=8)
        return got
