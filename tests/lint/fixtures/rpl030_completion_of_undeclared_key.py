"""Fixture: completion() of a task key this file never declares."""


def build(ts):
    ts.declare(("potrf", 0))


def consume(ts, gpu, stream, work):
    ev = ts.completion(("trsm", 1, 0))  # EXPECT: RPL030
    return gpu.launch(stream, work, wait=[ev])
