"""Negative fixture: every deposit has a consumer and vice versa."""
from repro.runtime import Chare


class Left(Chare):
    def run(self, msg):
        ch = self.channel_to((1,))
        ch.send(1024, ref=0)
        yield self.when("ch_send", ref=0)
        self.gpu_send((1,), "halo", size=1024, ref=0)
        yield self.when("ack", ref=0)


class Right(Chare):
    def run(self, msg):
        ch = self.channel_to((0,))
        ch.recv(1024, ref=0)
        yield self.when("ch_recv", ref=0)
        yield self.when("halo", ref=0)
        self.send((0,), "ack", ref=0)
