"""Positive fixture: iteration over unordered sets (RPL023)."""


def total(edges):
    pending = {2, 3, 5}
    acc = 0
    for x in pending:  # EXPECT: RPL023
        acc += x
    for y in set(edges):  # EXPECT: RPL023
        acc += y
    doubled = [2 * z for z in {1, 2}]  # EXPECT: RPL023
    order = list({1, 2})  # EXPECT: RPL023
    return acc, order, doubled
