"""Fixture: a declared task key that is never attached anywhere here."""


def build(ts, engine, done):
    ts.declare(("potrf", 0))
    ts.declare(("trsm", 1, 0), deps=[("potrf", 0)])  # EXPECT: RPL032
    ts.attach(("potrf", 0), done, engine)
