"""Positive fixture: global / unseeded RNG (RPL021)."""
import random

import numpy as np


def jitter():
    a = random.random()  # EXPECT: RPL021
    rng = np.random.default_rng()  # EXPECT: RPL021
    b = np.random.rand()  # EXPECT: RPL021
    c = random.Random()  # EXPECT: RPL021
    return a, rng, b, c
