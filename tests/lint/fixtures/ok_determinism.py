"""Negative fixture: determinism-clean model code (seeded RNG, ordered sets)."""
import numpy as np


def draws(seed, values):
    rng = np.random.default_rng(seed)
    jitter = rng.uniform(0.0, 1e-9)
    ordered = sorted(set(values))
    total = 0.0
    for v in ordered:
        total += v
    return jitter, total
