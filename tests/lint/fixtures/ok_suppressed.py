"""Negative fixture: violations present but suppressed with justification."""
from repro.runtime import Chare


class Block(Chare):
    def run(self, msg):
        yield 42  # repro-lint: disable=RPL003 -- demonstrates the suppression machinery
        yield self.when("ghost")  # repro-lint: disable=RPL011 -- demonstrates the suppression machinery
