"""Positive fixture: wall-clock reads in model code (RPL020)."""
import time
from datetime import datetime


def stamp():
    t0 = time.perf_counter()  # EXPECT: RPL020
    t1 = time.time()  # EXPECT: RPL020
    now = datetime.now()  # EXPECT: RPL020
    return t0, t1, now
