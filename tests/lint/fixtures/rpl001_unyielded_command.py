"""Positive fixture: command-factory results discarded (RPL001)."""
from repro.runtime import Chare


class Block(Chare):
    def run(self, msg):
        self.work(1e-6)  # EXPECT: RPL001
        self.when("halo", ref=0)  # EXPECT: RPL001
        m = yield self.when("halo", ref=1)
        self.send((0,), "halo", data_bytes=8)
        return m
