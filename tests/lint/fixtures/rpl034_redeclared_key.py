"""Fixture: the same task key declared twice."""


def build(ts):
    ts.declare(("potrf", 0))
    ts.declare(("potrf", 0))  # EXPECT: RPL034
