"""Negative fixture: protocol-clean chare code — zero findings expected."""
from repro.runtime import Chare


class Block(Chare):
    def _halo_phase(self, it):
        self.send((1,), "halo", ref=it, data_bytes=8)
        m = yield self.when("halo", ref=it)
        return m

    def run(self, msg):
        for it in range(2):
            yield self.work(1e-6)
            yield from self._halo_phase(it)

    def status(self, msg):
        return self.index
