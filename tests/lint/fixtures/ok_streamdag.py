"""Negative fixture: correct TaskSpace, launch and monitor protocol."""


def build_and_run(ts, engine, gpu, stream, work, tracer):
    tracer.attach(engine)  # monitors attach before run()
    ts.declare(("potrf", 0))
    ts.declare(("trsm", 1, 0), deps=[("potrf", 0)])
    op = gpu.launch(stream, work, wait=[])
    ts.attach(("potrf", 0), op.done, engine)
    dep = ts.completion(("potrf", 0))
    op2 = gpu.launch(stream, work, wait=[dep])
    ts.attach(("trsm", 1, 0), op2.done, engine)
    engine.run()


def computed_keys_are_out_of_scope(ts, engine, done, k):
    # Computed keys resolve at runtime only; the literal-key rules must
    # not guess about them.
    ts.attach(("gemm", k, k, k - 1), done, engine)
    return ts.completion(("syrk", k, k - 1)) if k else None
