"""Positive fixture: a send deposit nobody consumes (RPL010)."""
from repro.runtime import Chare


class Block(Chare):
    def run(self, msg):
        self.send((1,), "orphan", data_bytes=8)  # EXPECT: RPL010
        yield self.work(1e-6)
