"""Positive fixture: a when() mailbox nobody ever fills (RPL011)."""
from repro.runtime import Chare


class Block(Chare):
    def run(self, msg):
        yield self.when("ghost", ref=0)  # EXPECT: RPL011
