"""Fixture: stream launch gated on a set of events (hash-ordered)."""


def go(gpu, stream, work, e1, e2):
    return gpu.launch(stream, work, wait={e1, e2})  # EXPECT: RPL033


def go_comprehension(gpu, stream, work, ops):
    return gpu.launch(stream, work, wait={op.done for op in ops})  # EXPECT: RPL033
