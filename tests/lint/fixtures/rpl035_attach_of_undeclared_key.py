"""Fixture: attach() of a task key this file never declares."""


def build(ts, engine, done):
    ts.declare(("potrf", 0))
    ts.attach(("potrf", 0), done, engine)
    ts.attach(("trsm", 1, 0), done, engine)  # EXPECT: RPL035
