"""Fixture: monitors attached after the simulation already ran."""


def main(engine, tracer, checker):
    engine.run()
    tracer.attach(engine)  # EXPECT: RPL036
    return checker


def watch_late(runtime, checker):
    runtime.run()
    checker.watch_runtime(runtime)  # EXPECT: RPL036
