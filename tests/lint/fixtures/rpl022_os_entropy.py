"""Positive fixture: OS entropy sources (RPL022)."""
import os
import uuid


def token():
    raw = os.urandom(8)  # EXPECT: RPL022
    tag = uuid.uuid4()  # EXPECT: RPL022
    return raw, tag
