"""Positive fixture: generator helpers invoked as plain calls (RPL002)."""
from repro.runtime import Chare


class Block(Chare):
    def _halo_phase(self):
        yield self.work(1e-6)

    def run(self, msg):
        self._halo_phase()  # EXPECT: RPL002
        yield self._halo_phase()  # EXPECT: RPL002
        yield from self._halo_phase()

    def on_ping(self, msg):
        self._halo_phase()  # EXPECT: RPL002
