"""Positive fixture: yields of values that cannot be Commands (RPL003)."""
from repro.runtime import Chare


class Block(Chare):
    def run(self, msg):
        yield 42  # EXPECT: RPL003
        yield (1e-6, "work")  # EXPECT: RPL003
        yield  # EXPECT: RPL003
        yield self.work(1e-6)
