"""Fixture: completion() textually before the key's declare."""


def consume(ts):
    return ts.completion(("potrf", 0))  # EXPECT: RPL031


def build(ts):
    ts.declare(("potrf", 0))
