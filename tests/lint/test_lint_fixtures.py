"""Fixture-driven rule tests.

Every positive fixture carries ``# EXPECT: CODE`` comments on its offending
lines; the parametrized test below asserts that linting the fixture yields
exactly that set of ``(code, line)`` findings — no more, no fewer.  Deleting
a rule from the engine therefore turns its fixture red.  Negative
(``ok_*.py``) fixtures must produce zero findings.
"""
from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import LintConfig, RULES, run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"
ALL_FIXTURES = sorted(FIXTURES.glob("*.py"))
EXPECT = re.compile(r"#\s*EXPECT:\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)")

# Fixtures live outside src/repro, so widen the determinism scope to
# everywhere; message-flow is resolved per linted file set as usual.
CONFIG = LintConfig(determinism_parts=None)


def expected_findings(path: Path) -> list[tuple[str, int]]:
    out: list[tuple[str, int]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = EXPECT.search(line)
        if m:
            for code in m.group(1).split(","):
                out.append((code.strip(), lineno))
    return sorted(out)


def test_fixture_corpus_is_nonempty():
    assert len(ALL_FIXTURES) >= 22


@pytest.mark.parametrize("path", ALL_FIXTURES, ids=lambda p: p.name)
def test_fixture_findings_exact(path):
    report = run_lint([path], CONFIG)
    got = sorted((f.code, f.line) for f in report.findings)
    rendered = "\n".join(f.render() for f in report.findings)
    assert got == expected_findings(path), f"findings were:\n{rendered}"


def test_every_rule_has_a_failing_fixture():
    covered = {code for p in ALL_FIXTURES for code, _ in expected_findings(p)}
    required = set(RULES) - {"RPL000"}  # parse errors are covered in test_lint_engine
    missing = sorted(required - covered)
    assert not missing, f"rules without a failing fixture: {missing}"


def test_every_rule_family_has_a_negative_fixture():
    names = {p.name for p in ALL_FIXTURES}
    assert {"ok_sdag.py", "ok_messageflow.py", "ok_determinism.py",
            "ok_streamdag.py"} <= names


def test_suppressed_fixture_counts_suppressions():
    report = run_lint([FIXTURES / "ok_suppressed.py"], CONFIG)
    assert report.findings == []
    assert report.suppressed == 2
