"""Self-hosting: the shipped tree must lint clean with the default config.

This is the static counterpart of the runtime InvariantChecker suite — any
protocol or determinism regression introduced into src/repro turns this red
before a simulation ever runs.
"""
from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.lint import run_lint

SRC = Path(repro.__file__).resolve().parent


@pytest.fixture(scope="module")
def report():
    return run_lint([SRC])


def test_src_repro_is_clean(report):
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"src/repro has lint findings:\n{rendered}"


def test_src_repro_coverage(report):
    # The walk must actually traverse the package, not skip it.
    assert report.files > 50


def test_shipped_suppressions_are_counted(report):
    # The two bare-yield generator markers (mpi/api.py, ampi/world.py) carry
    # justified inline suppressions; the engine must count, not drop, them.
    assert report.suppressed >= 2
