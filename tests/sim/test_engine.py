"""Unit tests for the DES kernel: events, processes, conditions, clock."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Engine,
    EventAlreadyTriggered,
    Interrupt,
    ProcessCrashed,
    SimulationError,
)


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_clock_custom_start():
    assert Engine(start_time=5.0).now == 5.0


def test_timeout_advances_clock():
    eng = Engine()
    eng.timeout(3.5)
    eng.run()
    assert eng.now == 3.5


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_timeouts_fire_in_time_order():
    eng = Engine()
    fired = []
    for d in (5.0, 1.0, 3.0):
        eng.timeout(d).add_callback(lambda ev, d=d: fired.append(d))
    eng.run()
    assert fired == [1.0, 3.0, 5.0]


def test_equal_time_events_fire_in_schedule_order():
    eng = Engine()
    fired = []
    for i in range(10):
        eng.timeout(1.0).add_callback(lambda ev, i=i: fired.append(i))
    eng.run()
    assert fired == list(range(10))


def test_run_until_stops_clock_at_until():
    eng = Engine()
    eng.timeout(10.0)
    eng.run(until=4.0)
    assert eng.now == 4.0
    eng.run()
    assert eng.now == 10.0


def test_run_until_beyond_last_event_sets_clock():
    eng = Engine()
    eng.timeout(1.0)
    eng.run(until=100.0)
    assert eng.now == 100.0


def test_event_succeed_carries_value():
    eng = Engine()
    ev = eng.event()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    ev.succeed(42)
    eng.run()
    assert got == [42]


def test_event_double_succeed_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed()
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()


def test_event_fail_requires_exception():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.event().fail("not an exception")  # type: ignore[arg-type]


def test_callback_on_processed_event_fires_immediately():
    eng = Engine()
    ev = eng.event()
    ev.succeed("x")
    eng.run()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    assert got == ["x"]


def test_process_returns_value():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        return "done"

    p = eng.process(proc())
    eng.run()
    assert p.ok and p.value == "done"


def test_process_receives_event_value():
    eng = Engine()
    results = []

    def proc():
        v = yield eng.timeout(1.0, value="hello")
        results.append(v)

    eng.process(proc())
    eng.run()
    assert results == ["hello"]


def test_process_waits_on_process():
    eng = Engine()
    order = []

    def child():
        yield eng.timeout(2.0)
        order.append("child")
        return 7

    def parent():
        v = yield eng.process(child())
        order.append(("parent", v))

    eng.process(parent())
    eng.run()
    assert order == ["child", ("parent", 7)]


def test_process_crash_propagates_from_run():
    eng = Engine()

    def bad():
        yield eng.timeout(1.0)
        raise RuntimeError("boom")

    eng.process(bad())
    with pytest.raises(ProcessCrashed) as ei:
        eng.run()
    assert isinstance(ei.value.__cause__, RuntimeError)


def test_waiting_process_receives_child_exception():
    eng = Engine()
    caught = []

    def bad():
        yield eng.timeout(1.0)
        raise ValueError("inner")

    def parent():
        try:
            yield eng.process(bad())
        except ValueError as exc:
            caught.append(str(exc))

    eng.process(parent())
    eng.run()
    assert caught == ["inner"]


def test_yield_non_event_crashes_process():
    eng = Engine()

    def bad():
        yield "not an event"  # type: ignore[misc]

    eng.process(bad())
    with pytest.raises(ProcessCrashed):
        eng.run()


def test_yield_bare_number_pauses():
    # `yield delay` is shorthand for `yield eng.pause(delay)`: same clock
    # advance, same resume value (None), ints and floats both accepted.
    eng = Engine()
    log = []

    def proc():
        got = yield 1.5
        log.append((eng.now, got))
        got = yield 2
        log.append((eng.now, got))

    eng.process(proc())
    eng.run()
    assert log == [(1.5, None), (3.5, None)]


def test_yield_negative_number_crashes_process():
    eng = Engine()

    def bad():
        yield -0.1

    eng.process(bad())
    with pytest.raises(ProcessCrashed):
        eng.run()


def test_process_requires_generator():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.process(lambda: None)  # type: ignore[arg-type]


def test_all_of_waits_for_every_event():
    eng = Engine()
    done = []

    def proc():
        vals = yield eng.all_of([eng.timeout(1.0, value="a"), eng.timeout(3.0, value="b")])
        done.append((eng.now, vals))

    eng.process(proc())
    eng.run()
    assert done == [(3.0, ["a", "b"])]


def test_all_of_empty_triggers_immediately():
    eng = Engine()
    ev = eng.all_of([])
    assert ev.triggered


def test_any_of_triggers_on_first():
    eng = Engine()
    done = []

    def proc():
        vals = yield eng.any_of([eng.timeout(5.0, value="slow"), eng.timeout(1.0, value="fast")])
        done.append((eng.now, vals))

    eng.process(proc())
    eng.run()
    assert done == [(1.0, ["fast"])]


def test_all_of_fails_if_child_fails():
    eng = Engine()
    caught = []

    def bad():
        yield eng.timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        try:
            yield eng.all_of([eng.process(bad()), eng.timeout(10.0)])
        except RuntimeError as exc:
            caught.append((eng.now, str(exc)))

    eng.process(parent())
    eng.run()
    assert caught == [(1.0, "child died")]


def test_mixing_engines_rejected():
    a, b = Engine(), Engine()
    with pytest.raises(SimulationError):
        AllOf(a, [b.event()])


def test_run_until_complete_returns_values():
    eng = Engine()

    def proc(d):
        yield eng.timeout(d)
        return d * 10

    p1, p2 = eng.process(proc(1.0)), eng.process(proc(2.0))
    vals = eng.run_until_complete(p1, p2)
    assert vals == [10.0, 20.0]
    assert eng.now == 2.0


def test_run_until_complete_detects_deadlock():
    eng = Engine()
    never = eng.event()
    with pytest.raises(SimulationError, match="deadlock"):
        eng.run_until_complete(never)


def test_run_until_complete_raises_on_crash():
    eng = Engine()

    def bad():
        yield eng.timeout(1.0)
        raise KeyError("x")

    with pytest.raises(ProcessCrashed):
        eng.run_until_complete(eng.process(bad()))


def test_max_events_guard():
    eng = Engine()

    def forever():
        while True:
            yield eng.timeout(1.0)

    eng.process(forever())
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=50)


def test_max_events_exact_budget_run_and_run_until_complete():
    """Regression: ``run`` and ``run_until_complete`` agree — a program of
    exactly N events completes under ``max_events=N`` and raises under
    ``max_events=N - 1`` (previously ``run`` allowed one extra event)."""
    n = 5

    def fresh_timeouts(eng):
        return [eng.timeout(float(i)) for i in range(n)]  # exactly n events

    eng = Engine()
    fresh_timeouts(eng)
    eng.run(max_events=n)  # exact budget: fine
    assert eng.now == n - 1

    eng = Engine()
    fresh_timeouts(eng)
    with pytest.raises(SimulationError, match=f"max_events={n - 1}"):
        eng.run(max_events=n - 1)

    eng = Engine()
    timeouts = fresh_timeouts(eng)
    values = eng.run_until_complete(*timeouts, max_events=n)  # exact budget
    assert len(values) == n

    eng = Engine()
    timeouts = fresh_timeouts(eng)
    with pytest.raises(SimulationError, match=f"max_events={n - 1}"):
        eng.run_until_complete(*timeouts, max_events=n - 1)


def test_interrupt_wakes_process():
    eng = Engine()
    seen = []

    def sleeper():
        try:
            yield eng.timeout(100.0)
        except Interrupt as intr:
            seen.append((eng.now, intr.cause))

    p = eng.process(sleeper())

    def interrupter():
        yield eng.timeout(2.0)
        p.interrupt("wake up")

    eng.process(interrupter())
    eng.run()
    assert seen == [(2.0, "wake up")]


def test_interrupt_finished_process_rejected():
    eng = Engine()

    def quick():
        yield eng.timeout(0.1)

    p = eng.process(quick())
    eng.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_active_process_visible_during_resume():
    eng = Engine()
    observed = []

    def proc():
        observed.append(eng.active_process)
        yield eng.timeout(1.0)

    p = eng.process(proc())
    eng.run()
    assert observed == [p]
    assert eng.active_process is None


def test_peek_reports_next_event_time():
    eng = Engine()
    assert eng.peek() == float("inf")
    eng.timeout(4.0)
    eng.timeout(2.0)
    assert eng.peek() == 2.0


def test_step_processes_single_event():
    eng = Engine()
    fired = []
    eng.timeout(1.0).add_callback(lambda e: fired.append(1))
    eng.timeout(2.0).add_callback(lambda e: fired.append(2))
    eng.step()
    assert fired == [1] and eng.now == 1.0


def test_nested_processes_deep_chain():
    eng = Engine()

    def chain(depth):
        if depth == 0:
            yield eng.timeout(1.0)
            return 0
        v = yield eng.process(chain(depth - 1))
        return v + 1

    p = eng.process(chain(50))
    eng.run()
    assert p.value == 50
    assert eng.now == 1.0
