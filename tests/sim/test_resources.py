"""Unit tests for stores, resources, and token pools."""

import pytest

from repro.sim import Engine, FilterStore, PriorityStore, Resource, SimulationError, Store, TokenPool


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_put_then_get():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    eng.process(consumer())
    store.put("msg")
    eng.run()
    assert got == ["msg"]


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer():
        item = yield store.get()
        got.append((eng.now, item))

    def producer():
        yield eng.timeout(5.0)
        yield store.put("late")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == [(5.0, "late")]


def test_store_fifo_order():
    eng = Engine()
    store = Store(eng)
    for i in range(5):
        store.put(i)
    got = []

    def consumer():
        for _ in range(5):
            got.append((yield store.get()))

    eng.process(consumer())
    eng.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_getters_served_in_arrival_order():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    eng.process(consumer("first"))
    eng.process(consumer("second"))

    def producer():
        yield eng.timeout(1.0)
        store.put("a")
        store.put("b")

    eng.process(producer())
    eng.run()
    assert got == [("first", "a"), ("second", "b")]


def test_store_capacity_blocks_putter():
    eng = Engine()
    store = Store(eng, capacity=1)
    times = []

    def producer():
        yield store.put("x")
        times.append(("x", eng.now))
        yield store.put("y")
        times.append(("y", eng.now))

    def consumer():
        yield eng.timeout(3.0)
        yield store.get()

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert times == [("x", 0.0), ("y", 3.0)]


def test_store_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Store(Engine(), capacity=0)


def test_store_try_get():
    eng = Engine()
    store = Store(eng)
    assert store.try_get() is None
    store.put(9)
    eng.run()
    assert store.try_get() == 9
    assert store.try_get() is None


def test_store_none_item_roundtrip():
    eng = Engine()
    store = Store(eng)
    store.put(None)
    got = []

    def consumer():
        got.append((yield store.get()))

    eng.process(consumer())
    eng.run()
    assert got == [None]


def test_store_len():
    eng = Engine()
    store = Store(eng)
    store.put(1)
    store.put(2)
    assert len(store) == 2


# ---------------------------------------------------------------------------
# FilterStore
# ---------------------------------------------------------------------------


def test_filter_store_matches_predicate():
    eng = Engine()
    store = FilterStore(eng)
    store.put({"tag": 1})
    store.put({"tag": 2})
    got = []

    def consumer():
        item = yield store.get(lambda m: m["tag"] == 2)
        got.append(item)

    eng.process(consumer())
    eng.run()
    assert got == [{"tag": 2}]
    assert store.items == [{"tag": 1}]


def test_filter_store_nonmatching_getter_does_not_block_others():
    eng = Engine()
    store = FilterStore(eng)
    got = []

    def want(tag, label):
        item = yield store.get(lambda m: m == tag)
        got.append((label, eng.now, item))

    eng.process(want("never", "blocked"))
    eng.process(want("b", "lucky"))

    def producer():
        yield eng.timeout(1.0)
        store.put("b")

    eng.process(producer())
    eng.run()
    assert got == [("lucky", 1.0, "b")]


def test_filter_store_unfiltered_get():
    eng = Engine()
    store = FilterStore(eng)
    store.put("only")
    got = []

    def consumer():
        got.append((yield store.get()))

    eng.process(consumer())
    eng.run()
    assert got == ["only"]


def test_filter_store_waiting_getter_wakes_on_put():
    eng = Engine()
    store = FilterStore(eng)
    got = []

    def consumer():
        item = yield store.get(lambda m: m % 2 == 0)
        got.append((eng.now, item))

    eng.process(consumer())

    def producer():
        yield eng.timeout(1.0)
        store.put(3)
        yield eng.timeout(1.0)
        store.put(4)

    eng.process(producer())
    eng.run()
    assert got == [(2.0, 4)]


# ---------------------------------------------------------------------------
# PriorityStore
# ---------------------------------------------------------------------------


def test_priority_store_orders_by_priority():
    eng = Engine()
    store = PriorityStore(eng, priority=lambda item: item[0])
    store.put((5, "low"))
    store.put((1, "high"))
    store.put((3, "mid"))
    got = []

    def consumer():
        for _ in range(3):
            got.append((yield store.get())[1])

    eng.process(consumer())
    eng.run()
    assert got == ["high", "mid", "low"]


def test_priority_store_fifo_among_equal():
    eng = Engine()
    store = PriorityStore(eng, priority=lambda item: 0)
    for label in "abc":
        store.put(label)
    got = []

    def consumer():
        for _ in range(3):
            got.append((yield store.get()))

    eng.process(consumer())
    eng.run()
    assert got == ["a", "b", "c"]


def test_priority_store_peek_priority():
    eng = Engine()
    store = PriorityStore(eng, priority=lambda item: item)
    with pytest.raises(SimulationError):
        store.peek_priority()
    store.put(7)
    store.put(2)
    assert store.peek_priority() == 2


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    eng = Engine()
    res = Resource(eng, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    eng.run()
    assert r1.processed and r2.processed and not r3.triggered
    assert res.available == 0 and res.queue_length == 1


def test_resource_release_grants_waiter():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append((tag, "acq", eng.now))
        yield eng.timeout(hold)
        res.release(req)
        order.append((tag, "rel", eng.now))

    eng.process(user("a", 2.0))
    eng.process(user("b", 1.0))
    eng.run()
    assert order == [("a", "acq", 0.0), ("a", "rel", 2.0), ("b", "acq", 2.0), ("b", "rel", 3.0)]


def test_resource_priority_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def user(tag, prio):
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        yield eng.timeout(1.0)
        res.release(req)

    def setup():
        hold = res.request()
        yield hold
        eng.process(user("low", 10))
        eng.process(user("high", 0))
        yield eng.timeout(1.0)
        res.release(hold)

    eng.process(setup())
    eng.run()
    assert order == ["high", "low"]


def test_resource_multi_unit_request_all_or_nothing():
    eng = Engine()
    res = Resource(eng, capacity=3)
    r_big = res.request(amount=3)
    eng.run()
    assert r_big.processed
    r_small = res.request(amount=1)
    eng.run()
    assert not r_small.triggered
    res.release(r_big)
    eng.run()
    assert r_small.processed


def test_resource_invalid_amount():
    res = Resource(Engine(), capacity=2)
    with pytest.raises(ValueError):
        res.request(amount=3)
    with pytest.raises(ValueError):
        res.request(amount=0)


def test_resource_release_unheld_raises():
    eng = Engine()
    res = Resource(eng, capacity=1)
    granted = res.request()
    eng.run()
    res.release(granted)
    with pytest.raises(SimulationError):
        res.release(granted)


def test_resource_cancel_pending_request():
    eng = Engine()
    res = Resource(eng, capacity=1)
    held = res.request()
    pending = res.request()
    eng.run()
    res.cancel(pending)
    res.release(held)
    eng.run()
    assert not pending.triggered
    assert res.available == 1


def test_resource_cancel_granted_raises():
    eng = Engine()
    res = Resource(eng, capacity=1)
    held = res.request()
    eng.run()
    with pytest.raises(SimulationError):
        res.cancel(held)


# ---------------------------------------------------------------------------
# TokenPool
# ---------------------------------------------------------------------------


def test_token_pool_acquire_release():
    eng = Engine()
    pool = TokenPool(eng, capacity=4)
    a = pool.acquire(3)
    eng.run()
    assert a.processed and pool.level == 1
    b = pool.acquire(2)
    eng.run()
    assert not b.triggered
    pool.release(3)
    eng.run()
    assert b.processed and pool.level == 2


def test_token_pool_fifo_all_or_nothing():
    eng = Engine()
    pool = TokenPool(eng, capacity=4)
    hold = pool.acquire(4)
    first = pool.acquire(3)  # queued first, needs 3
    second = pool.acquire(1)  # queued second, needs 1
    eng.run()
    assert hold.processed and not first.triggered and not second.triggered
    pool.release(2)
    eng.run()
    # FIFO: first (needs 3) still blocks; second must wait behind it.
    assert not first.triggered and not second.triggered
    pool.release(1)
    eng.run()
    assert first.processed and not second.triggered  # first drained the pool
    pool.release(1)
    eng.run()
    assert second.processed


def test_token_pool_over_release_raises():
    eng = Engine()
    pool = TokenPool(eng, capacity=2)
    with pytest.raises(SimulationError):
        pool.release(1)


def test_token_pool_invalid_acquire():
    pool = TokenPool(Engine(), capacity=2)
    with pytest.raises(ValueError):
        pool.acquire(3)
    with pytest.raises(ValueError):
        pool.acquire(0)
