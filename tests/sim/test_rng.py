"""Unit tests for deterministic named RNG streams."""

from repro.sim import RandomStreams


def test_same_name_returns_same_generator():
    rs = RandomStreams(seed=1)
    assert rs.stream("a") is rs.stream("a")


def test_streams_reproducible_across_instances():
    a = RandomStreams(seed=42).stream("nic").random(5)
    b = RandomStreams(seed=42).stream("nic").random(5)
    assert (a == b).all()


def test_streams_independent_of_creation_order():
    rs1 = RandomStreams(seed=42)
    _ = rs1.stream("other")
    a = rs1.stream("nic").random(3)
    rs2 = RandomStreams(seed=42)
    b = rs2.stream("nic").random(3)
    assert (a == b).all()


def test_different_names_differ():
    rs = RandomStreams(seed=0)
    assert rs.stream("x").random() != rs.stream("y").random()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("n").random()
    b = RandomStreams(seed=2).stream("n").random()
    assert a != b


def test_zero_jitter_is_exactly_zero_and_consumes_nothing():
    rs = RandomStreams(seed=3)
    assert rs.uniform_jitter("j", 0.0) == 0.0
    # No generator should have been created for the stream at all.
    assert "j" not in rs._streams


def test_jitter_within_bounds():
    rs = RandomStreams(seed=3)
    draws = [rs.uniform_jitter("j", 1e-6) for _ in range(100)]
    assert all(0.0 <= d < 1e-6 for d in draws)
    assert len(set(draws)) > 1
