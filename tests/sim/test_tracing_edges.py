"""Edge cases for trace export and overlap accounting: empty traces,
adjacent-but-not-overlapping intervals, and the Chrome-trace schema."""

import json

from repro.sim import Engine, Tracer, overlap_seconds, to_chrome_trace
from repro.sim.tracing import merge_intervals


# ---------------------------------------------------------------------------
# overlap_seconds
# ---------------------------------------------------------------------------


def test_overlap_empty_sets():
    assert overlap_seconds([], []) == 0.0
    assert overlap_seconds([(0.0, 1.0)], []) == 0.0
    assert overlap_seconds([], [(0.0, 1.0)]) == 0.0


def test_overlap_adjacent_intervals_is_zero():
    # Touching endpoints share no open time: strictly zero, not epsilon.
    assert overlap_seconds([(0.0, 1.0)], [(1.0, 2.0)]) == 0.0
    assert overlap_seconds([(1.0, 2.0)], [(0.0, 1.0)]) == 0.0


def test_overlap_partial_and_nested():
    assert overlap_seconds([(0.0, 2.0)], [(1.0, 3.0)]) == 1.0
    assert overlap_seconds([(0.0, 10.0)], [(2.0, 3.0), (5.0, 6.0)]) == 2.0


def test_overlap_ignores_degenerate_spans():
    # Zero-width spans contribute nothing on either side.
    assert overlap_seconds([(1.0, 1.0)], [(0.0, 2.0)]) == 0.0


def test_merge_intervals_adjacent_join():
    assert merge_intervals([(0.0, 1.0), (1.0, 2.0)]) == [(0.0, 2.0)]
    assert merge_intervals([]) == []


# ---------------------------------------------------------------------------
# to_chrome_trace
# ---------------------------------------------------------------------------


def test_chrome_trace_empty():
    tracer = Tracer().attach(Engine())
    assert to_chrome_trace(tracer) == []


def test_chrome_trace_complete_event_schema():
    eng = Engine()
    tracer = Tracer().attach(eng)

    def proc():
        yield eng.timeout(2e-6)
        tracer.emit("gpu.compute", "node0.gpu1", op="update", duration=3e-6)

    eng.process(proc())
    eng.run()
    (ev,) = to_chrome_trace(tracer)
    assert ev["ph"] == "X"
    assert ev["name"] == "update"
    assert ev["cat"] == "gpu.compute"
    assert ev["pid"] == "node0"          # pid groups by component prefix
    assert ev["tid"] == "node0.gpu1"
    assert ev["ts"] == 2e-6 * 1e6        # microseconds, as the format requires
    assert ev["dur"] == 3e-6 * 1e6
    assert "s" not in ev                 # instant-only field


def test_chrome_trace_instant_event_schema():
    tracer = Tracer().attach(Engine())
    tracer.emit("sched.message", "pe3", kind="exec")
    (ev,) = to_chrome_trace(tracer)
    assert ev["ph"] == "i"
    assert ev["s"] == "t"
    assert "dur" not in ev
    assert ev["pid"] == "pe3"            # no dot: actor is its own group


def test_chrome_trace_args_keep_scalars_only():
    tracer = Tracer().attach(Engine())
    tracer.emit("net.send", "pe0", size=4096, dst=1, tag=(0, "x"), note="hi")
    (ev,) = to_chrome_trace(tracer)
    assert ev["args"] == {"size": 4096, "dst": 1, "note": "hi"}  # tuple dropped


# ---------------------------------------------------------------------------
# Tracer attachment lifecycle (idempotent attach, detach, context manager)
# ---------------------------------------------------------------------------


def test_attach_same_engine_is_idempotent():
    eng = Engine()
    tracer = Tracer().attach(eng)
    assert tracer.attach(eng) is tracer
    assert eng.tracer is tracer
    tracer.emit("x", "a")
    assert len(tracer.records) == 1  # no double-recording after re-attach


def test_reattach_to_new_engine_clears_old_reference():
    eng1, eng2 = Engine(), Engine()
    tracer = Tracer().attach(eng1)
    tracer.attach(eng2)
    assert eng1.tracer is None
    assert eng2.tracer is tracer


def test_detach_clears_engine_and_is_safe_to_repeat():
    eng = Engine()
    tracer = Tracer().attach(eng)
    tracer.detach()
    assert eng.tracer is None
    tracer.detach()  # no-op when unattached


def test_detach_leaves_foreign_tracer_alone():
    # Someone else attached after us: detach must not evict them.
    eng = Engine()
    first = Tracer().attach(eng)
    second = Tracer().attach(eng)
    first.detach()
    assert eng.tracer is second


def test_context_manager_detaches_on_exit():
    eng = Engine()
    with Tracer().attach(eng) as tracer:
        tracer.emit("cat", "actor")
    assert eng.tracer is None
    assert len(tracer.records) == 1  # records survive detachment


def test_category_prefix_filtering():
    eng = Engine()
    tracer = Tracer(categories=["gpu.", "net.send"]).attach(eng)
    tracer.emit("gpu.compute", "g0", op="k")
    tracer.emit("gpu.copy_d2h", "g0", op="c")
    tracer.emit("net.send", "pe0")
    tracer.emit("net.deliver", "pe1")   # not under any prefix
    tracer.emit("sched.message", "pe0")
    assert [r.category for r in tracer.records] == [
        "gpu.compute", "gpu.copy_d2h", "net.send"]


def test_chrome_trace_is_json_serializable():
    eng = Engine()
    tracer = Tracer().attach(eng)
    tracer.emit("gpu.compute", "node0.gpu0", op="k", duration=1e-6)
    tracer.emit("sched.message", "pe0")
    text = json.dumps(to_chrome_trace(tracer))
    assert json.loads(text)[0]["ph"] == "X"
