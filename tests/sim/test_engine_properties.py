"""Property-based tests for the DES kernel itself."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, PriorityStore, Resource, Store


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
def test_property_time_is_monotone_and_ends_at_max(delays):
    eng = Engine()
    observed = []
    for d in delays:
        eng.timeout(d).add_callback(lambda e: observed.append(eng.now))
    eng.run()
    assert observed == sorted(observed)
    assert eng.now == max(delays)


@settings(max_examples=50, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(st.floats(0.0, 5.0), st.floats(0.001, 2.0)),  # (arrival, hold)
        min_size=1,
        max_size=20,
    ),
    capacity=st.integers(1, 4),
)
def test_property_resource_conserves_capacity(jobs, capacity):
    eng = Engine()
    res = Resource(eng, capacity=capacity)
    max_in_use = [0]

    def user(arrival, hold):
        yield eng.timeout(arrival)
        req = res.request()
        yield req
        max_in_use[0] = max(max_in_use[0], res.in_use)
        assert res.in_use <= capacity
        yield eng.timeout(hold)
        res.release(req)

    for arrival, hold in jobs:
        eng.process(user(arrival, hold))
    eng.run()
    assert res.in_use == 0
    assert res.queue_length == 0
    assert 1 <= max_in_use[0] <= capacity


@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
def test_property_priority_store_is_a_total_sort(items):
    eng = Engine()
    store = PriorityStore(eng, priority=lambda x: x)
    for item in items:
        store.put(item)
    got = []

    def consumer():
        for _ in items:
            got.append((yield store.get()))

    eng.process(consumer())
    eng.run()
    assert got == sorted(items)


@settings(max_examples=50, deadline=None)
@given(
    n_items=st.integers(1, 30),
    n_consumers=st.integers(1, 5),
)
def test_property_store_items_consumed_exactly_once(n_items, n_consumers):
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer():
        while True:
            got.append((yield store.get()))

    for _ in range(n_consumers):
        eng.process(consumer())
    for i in range(n_items):
        store.put(i)
    eng.run()
    assert sorted(got) == list(range(n_items))


@settings(max_examples=30, deadline=None)
@given(
    seed_delays=st.lists(st.floats(0.001, 10.0), min_size=2, max_size=15),
)
def test_property_runs_are_bit_deterministic(seed_delays):
    def simulate():
        eng = Engine()
        log = []

        def proc(i, d):
            yield eng.timeout(d)
            log.append((i, eng.now))
            yield eng.timeout(d / 2)
            log.append((i, eng.now))

        for i, d in enumerate(seed_delays):
            eng.process(proc(i, d))
        eng.run()
        return log, eng.now

    assert simulate() == simulate()
