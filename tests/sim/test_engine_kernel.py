"""Seam tests for the fast-dispatch event kernel.

The hot-path refactor (pooled pause events, the bare-number yield, the
bare/observed run-loop variants, Store handoff fast paths, vectorized
latency matrices) must be *observably invisible*: same event ordering,
same values, same trace digests, same ``max_events`` semantics.  Each test
here pins one seam where a fast path could diverge from the slow path it
replaced.
"""

import pytest

from repro.hardware.specs import NicSpec, TopologySpec
from repro.hardware.topology import FatTree
from repro.obs import MetricsRegistry
from repro.sim import (
    Engine,
    FilterStore,
    Interrupt,
    SimulationError,
    Store,
)
from repro.validate import CANONICAL_CONFIGS, GoldenStore, golden_entry


# ---------------------------------------------------------------------------
# Same-timestamp ordering
# ---------------------------------------------------------------------------


def test_urgent_beats_normal_at_equal_time():
    eng = Engine()
    fired = []
    normal = eng.event("n")
    urgent = eng.event("u")
    normal.add_callback(lambda ev: fired.append("normal"))
    urgent.add_callback(lambda ev: fired.append("urgent"))
    # NORMAL scheduled *first* (earlier seq) still runs after URGENT.
    normal.succeed()
    urgent.succeed(priority=0)  # URGENT
    eng.run()
    assert fired == ["urgent", "normal"]


def test_same_time_fifo_across_event_kinds():
    """Timeout, pause, and the bare-number yield all land at the same
    timestamp with NORMAL priority: the sequence number alone must order
    them, i.e. strictly in creation order regardless of kind."""
    eng = Engine()
    fired = []

    def via_bare(tag):
        yield 1.0
        fired.append(tag)

    def via_pause(tag):
        yield eng.pause(1.0)
        fired.append(tag)

    expected = []
    for i in range(12):
        kind = i % 3
        if kind == 0:
            eng.timeout(1.0).add_callback(lambda ev, i=i: fired.append(i))
        elif kind == 1:
            eng.process(via_bare(i))
        else:
            eng.process(via_pause(i))
        expected.append(i)
    eng.run()
    # Timeouts take their sequence number at creation (t=0); the processes'
    # pauses take theirs during the t=0 resume, after every timeout.  So at
    # t=1 all timeouts fire first in creation order, then the processes in
    # start order — with bare yields and pause() interleaving purely by
    # sequence number, never by kind.
    timeouts = [i for i in expected if i % 3 == 0]
    processes = [i for i in expected if i % 3 != 0]
    assert fired == timeouts + processes


def test_bare_yield_schedules_identically_to_timeout():
    """`yield delay` must consume exactly one sequence number and one heap
    push per hop, like `yield engine.timeout(delay)` — same event count,
    same final clock, same interleaving."""

    def run(style):
        eng = Engine()
        log = []

        def chain(tag, delay):
            for _ in range(5):
                if style == "bare":
                    yield delay
                else:
                    yield eng.timeout(delay)
                log.append((eng.now, tag))

        eng.process(chain("a", 2.0))
        eng.process(chain("b", 3.0))
        eng.run()
        return log, eng.now, eng.events_executed, eng._seq

    bare, timeouts = run("bare"), run("timeout")
    assert bare == timeouts


# ---------------------------------------------------------------------------
# Free-list hygiene
# ---------------------------------------------------------------------------


def test_pause_value_delivered_and_not_leaked():
    eng = Engine()
    seen = []

    def proc():
        seen.append((yield eng.pause(1.0, value="payload")))
        seen.append((yield eng.pause(1.0)))  # recycled object: value reset
        seen.append((yield 1.0))  # bare yield: no stale value either

    eng.process(proc())
    eng.run()
    assert seen == ["payload", None, None]


def test_free_list_stays_bounded_by_in_flight_pauses():
    """The no-leak guarantee: a 100-hop create-yield-discard chain recycles
    a constant number of pooled objects (the fired event is recycled right
    after its waiter draws the *next* one, so each chain ping-pongs between
    two objects), never one object per hop."""
    eng = Engine()

    def chain():
        for _ in range(100):
            yield 0.5

    eng.process(chain())
    eng.run()
    assert len(eng._event_pool) == 2  # not 100
    for ev in eng._event_pool:
        assert ev._value is None and ev._waiter is None
        assert ev.callbacks == [] and ev._ok


def test_pool_survives_interleaved_pause_styles():
    """pause() handouts and bare-yield handouts draw from the same pool;
    concurrent chains need at most one pooled event per in-flight pause."""
    eng = Engine()

    def chain(delay):
        for _ in range(50):
            yield delay

    for d in (0.5, 0.75, 1.0):
        eng.process(chain(d))
    eng.run()
    # At most one in-flight pause per chain plus the one being recycled.
    assert 1 <= len(eng._event_pool) <= 4
    assert all(e._value is None and e._waiter is None for e in eng._event_pool)


def test_conditions_reject_pooled_events():
    eng = Engine()
    with pytest.raises(SimulationError, match="pooled"):
        eng.all_of([eng.pause(1.0)])
    with pytest.raises(SimulationError, match="pooled"):
        eng.any_of([eng.pause(1.0)])


# ---------------------------------------------------------------------------
# Interrupt vs the bare-yield fast lane
# ---------------------------------------------------------------------------


def test_interrupt_defuses_pending_bare_yield_tick():
    """Interrupting a process parked on a bare-number yield must cancel the
    pending wakeup: the pooled event still fires (and recycles) at its
    original time, but must not resume the process a second time."""
    eng = Engine()
    log = []

    def sleeper():
        try:
            yield 5.0
            log.append("overslept")
        except Interrupt as exc:
            log.append(("interrupted", eng.now, exc.cause))
        yield 1.0
        log.append(("resumed", eng.now))

    proc = eng.process(sleeper())

    def poker():
        yield 1.0
        proc.interrupt(cause="wake up")

    eng.process(poker())
    eng.run()
    assert log == [("interrupted", 1.0, "wake up"), ("resumed", 2.0)]
    # The defused tick at t=5 still executed and the event was recycled.
    assert eng.now == 5.0
    assert len(eng._event_pool) >= 1


def test_interrupt_defused_event_recycles_cleanly():
    """A pause recycled after a defused tick must hand out with no stale
    waiter: the next process to draw it sleeps undisturbed."""
    eng = Engine()
    log = []

    def sleeper():
        try:
            yield 10.0
        except Interrupt:
            log.append(("interrupted", eng.now))

    proc = eng.process(sleeper())

    def poker():
        yield 1.0
        proc.interrupt()
        # Outlive the defused t=10 tick, drawing recycled events all along.
        for _ in range(20):
            yield 1.0
        log.append(("poker done", eng.now))

    eng.process(poker())
    eng.run()
    assert log == [("interrupted", 1.0), ("poker done", 21.0)]


# ---------------------------------------------------------------------------
# max_events and stop() semantics across run-loop variants
# ---------------------------------------------------------------------------


def test_max_events_unchanged_with_pooled_events():
    def chains(eng, hops):
        def chain():
            for _ in range(hops):
                yield 1.0

        eng.process(chain())

    # 1 start event + `hops` pause ticks + the Process completion event
    # itself = hops + 2 events total.
    eng = Engine()
    chains(eng, 10)
    eng.run(max_events=12)  # exact budget: completes without raising
    assert eng.events_executed == 12

    eng = Engine()
    chains(eng, 10)
    with pytest.raises(SimulationError, match="max_events"):
        eng.run(max_events=11)


def test_bare_loop_event_count_after_stop():
    """The bare variant derives its pop count arithmetically; stopping
    mid-run with events left on the heap must still count exactly the
    events that executed."""
    eng = Engine()
    for i in range(10):
        ev = eng.timeout(float(i + 1))
        if i == 4:
            ev.add_callback(lambda _ev: eng.stop())
    eng.run()  # no observers, no bounds: the bare loop
    assert eng.events_executed == 5
    assert len(eng._heap) == 5  # the rest stayed scheduled


def test_observed_loop_counts_match_bare_loop():
    """Attaching a metrics registry selects the observed loop; the event
    count and schedule must not change."""

    def program(eng):
        def chain():
            for _ in range(25):
                yield 0.5

        eng.process(chain())
        eng.run()
        return eng.events_executed, eng.now

    bare = program(Engine())
    eng = Engine()
    registry = MetricsRegistry().attach(eng)
    observed = program(eng)
    assert observed == bare
    assert registry.counter("sim.events.executed").value() == bare[0]
    assert registry.counter("sim.events.scheduled").value() == bare[0]


# ---------------------------------------------------------------------------
# Store fast-path equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("store_cls", [Store, FilterStore])
def test_store_handoff_order_identical_across_paths(store_cls):
    """Store's direct producer→consumer handoff (the `_simple` fast path)
    must deliver the same values in the same order as FilterStore's
    generic dispatch loop."""
    eng = Engine()
    store = store_cls(eng, name="s")
    got = []

    def consumer():
        for _ in range(6):
            got.append((yield store.get()))

    def producer():
        for i in range(3):  # getters already waiting: direct handoff
            store.put_nowait(i)
            yield 1.0
        for i in range(3, 6):  # no getter yet: buffered then drained
            store.put_nowait(i)
        yield 1.0

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == [0, 1, 2, 3, 4, 5]


def test_simple_store_invariant_items_xor_getters():
    """The fast path's justification: a plain Store never holds buffered
    items and blocked getters simultaneously.  Audit after every event."""
    eng = Engine()
    store = Store(eng, name="s")
    violations = []

    def audit(_time, _event):
        if store.items and store._getters:
            violations.append((eng.now, list(store.items)))

    eng.add_monitor(audit)

    def churn(i):
        for n in range(10):
            if (i + n) % 2:
                store.put_nowait((i, n))
            else:
                yield store.get()
            yield 0.25 + 0.25 * i

    for i in range(4):
        eng.process(churn(i))
    eng.run()
    assert violations == []


# ---------------------------------------------------------------------------
# Vectorized latency matrix bit-identity
# ---------------------------------------------------------------------------


def test_latency_matrix_bit_equal_to_scalar_path():
    nic = NicSpec()
    tree = FatTree(TopologySpec(nodes_per_switch=2, levels=2), radix=2)
    n = 8
    matrix = tree.latency_matrix(n, nic)
    for a in range(n):
        for b in range(n):
            scalar = tree.latency(a, b, nic)
            assert matrix[a][b] == scalar  # bitwise, not approx
            assert isinstance(matrix[a][b], float)  # no numpy scalars


# ---------------------------------------------------------------------------
# Trace-digest bit-identity vs the committed golden store
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
def test_bare_loop_digest_matches_committed_golden(name):
    """Golden entries are recorded with the invariant monitor attached
    (the observed loop).  Re-running unvalidated — which selects the bare
    fast-dispatch loop — must reproduce the committed digest bit-for-bit:
    the strongest end-to-end proof that the kernel variants are
    observationally identical."""
    from repro.apps import run_app
    from repro.sim import Tracer
    from repro.validate import trace_digest

    committed = GoldenStore().load(name)
    assert committed is not None, f"no committed golden entry for {name}"
    tracer = Tracer()
    run_app(CANONICAL_CONFIGS[name], tracer=tracer)  # validate=False: bare loop
    assert trace_digest(tracer) == committed["trace_digest"]
    assert len(tracer.records) == committed["trace_records"]


def test_validated_entry_matches_bare_digest_spot_check():
    """One config through `golden_entry` (observed loop, invariant monitor
    on) vs the committed store — the complement of the bare-loop sweep."""
    entry = golden_entry(CANONICAL_CONFIGS["charm-d"])
    committed = GoldenStore().load("charm-d")
    assert entry["trace_digest"] == committed["trace_digest"]
    assert entry["summary"] == committed["summary"]
