"""Unit tests for tracing, interval tracking, and overlap math."""

from repro.sim import Engine, IntervalTracker, Tracer, merge_intervals, overlap_seconds, trace


def test_tracer_records_time_and_payload():
    eng = Engine()
    tracer = Tracer().attach(eng)

    def proc():
        yield eng.timeout(2.0)
        trace(eng, "gpu.kernel", "gpu0", duration=1.5)

    eng.process(proc())
    eng.run()
    assert len(tracer.records) == 1
    rec = tracer.records[0]
    assert rec.time == 2.0 and rec.category == "gpu.kernel" and rec.actor == "gpu0"
    assert rec.data == {"duration": 1.5}


def test_trace_noop_without_tracer():
    eng = Engine()
    trace(eng, "x", "y")  # must not raise


def test_tracer_category_filter():
    eng = Engine()
    tracer = Tracer(categories=["nic."]).attach(eng)
    trace(eng, "nic.send", "n0")
    trace(eng, "gpu.kernel", "g0")
    assert [r.category for r in tracer.records] == ["nic.send"]


def test_tracer_select():
    eng = Engine()
    tracer = Tracer().attach(eng)
    trace(eng, "nic.send", "n0", size=10)
    trace(eng, "nic.recv", "n1", size=10)
    trace(eng, "gpu.kernel", "g0")
    assert len(tracer.select(category="nic.")) == 2
    assert len(tracer.select(actor="n1")) == 1
    assert len(tracer.select(predicate=lambda r: r.data.get("size") == 10)) == 2


def test_tracer_disable():
    eng = Engine()
    tracer = Tracer().attach(eng)
    tracer.enabled = False
    trace(eng, "a", "b")
    assert tracer.records == []


def test_interval_tracker_busy_and_utilization():
    eng = Engine()
    tracker = IntervalTracker(eng, "gpu0")

    def proc():
        t = tracker.begin()
        yield eng.timeout(2.0)
        tracker.end(t)
        yield eng.timeout(2.0)
        t = tracker.begin()
        yield eng.timeout(1.0)
        tracker.end(t)

    eng.process(proc())
    eng.run()
    assert tracker.busy_seconds() == 3.0
    assert tracker.utilization() == 3.0 / 5.0
    assert tracker.busy_union() == [(0.0, 2.0), (4.0, 5.0)]


def test_interval_tracker_overlapping_spans_union():
    eng = Engine()
    tracker = IntervalTracker(eng, "link")

    def a():
        t = tracker.begin()
        yield eng.timeout(3.0)
        tracker.end(t)

    def b():
        yield eng.timeout(1.0)
        t = tracker.begin()
        yield eng.timeout(4.0)
        tracker.end(t)

    eng.process(a())
    eng.process(b())
    eng.run()
    assert tracker.busy_union() == [(0.0, 5.0)]
    assert tracker.busy_seconds() == 5.0


def test_interval_tracker_windowed_busy():
    eng = Engine()
    tracker = IntervalTracker(eng, "x")

    def proc():
        t = tracker.begin()
        yield eng.timeout(10.0)
        tracker.end(t)

    eng.process(proc())
    eng.run()
    assert tracker.busy_seconds(t0=2.0, t1=5.0) == 3.0
    assert tracker.utilization(t0=2.0, t1=5.0) == 1.0
    assert tracker.utilization(t0=5.0, t1=5.0) == 0.0


def test_merge_intervals():
    assert merge_intervals([]) == []
    assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]
    assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]
    assert merge_intervals([(1, 3), (0, 2)]) == [(0, 3)]
    assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]
    assert merge_intervals([(0, 0), (1, 2)]) == [(1, 2)]  # empty span dropped


def test_overlap_seconds():
    a = [(0.0, 5.0)]
    b = [(3.0, 8.0)]
    assert overlap_seconds(a, b) == 2.0
    assert overlap_seconds(b, a) == 2.0
    assert overlap_seconds(a, []) == 0.0
    assert overlap_seconds([(0, 1), (4, 6)], [(0.5, 5.0)]) == 0.5 + 1.0


def test_chrome_trace_export():
    import json

    from repro.sim import to_chrome_trace

    eng = Engine()
    tracer = Tracer().attach(eng)
    trace(eng, "gpu.compute", "n0.gpu1", op="update", duration=2e-3)
    trace(eng, "net.send", "pe3", dst=5, size=1024)
    events = to_chrome_trace(tracer)
    assert len(events) == 2
    slice_ev, instant_ev = events
    assert slice_ev["ph"] == "X"
    assert slice_ev["dur"] == 2e-3 * 1e6
    assert slice_ev["name"] == "update"
    assert slice_ev["pid"] == "n0" and slice_ev["tid"] == "n0.gpu1"
    assert instant_ev["ph"] == "i"
    assert instant_ev["args"]["size"] == 1024
    json.dumps(events)  # must be serializable
