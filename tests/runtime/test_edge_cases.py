"""Scheduler/transport edge cases: zero-byte messages, self-sends, two
chares sharing a PE, and Engine.run(max_events=0)."""

import pytest

from repro.comm import UcxContext
from repro.hardware import Cluster, KiB, MachineSpec
from repro.mpi import MpiProcess, MpiWorld
from repro.runtime import Chare, CharmRuntime
from repro.sim import Engine, SimulationError


def make_ctx(n_nodes=1):
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), n_nodes)
    return eng, cluster, UcxContext(cluster)


# ---------------------------------------------------------------------------
# Zero-byte messages
# ---------------------------------------------------------------------------


def test_zero_byte_message_completes():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 1, 0, tag="empty")
    r = ucx.irecv(0, 1, 0, tag="empty")
    eng.run()
    assert s.done.processed and r.done.processed
    assert ucx.pending_counts() == (0, 0)


def test_zero_byte_device_message_completes():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 1, 0, tag="empty", on_device=True)
    r = ucx.irecv(0, 1, 0, tag="empty", on_device=True)
    eng.run()
    assert s.done.processed and r.done.processed


# ---------------------------------------------------------------------------
# Self-sends (src == dst)
# ---------------------------------------------------------------------------


def test_ucx_self_send_matches():
    eng, cluster, ucx = make_ctx()
    s = ucx.isend(0, 0, 256, tag="self")
    r = ucx.irecv(0, 0, 256, tag="self", )
    eng.run()
    assert s.done.processed and r.done.processed
    assert ucx.pending_counts() == (0, 0)


class SelfSender(MpiProcess):
    seen = {}

    def main(self, msg=None):
        rr = yield self.irecv(self.rank, 64, tag="loop")
        rs = yield self.isend(self.rank, 64, tag="loop", payload=self.rank * 10)
        yield self.waitall([rr, rs])
        SelfSender.seen[self.rank] = rr.data


def test_mpi_rank_self_send_does_not_deadlock():
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), 1)
    world = MpiWorld(cluster)
    SelfSender.seen = {}
    world.launch(SelfSender)
    world.run()
    assert SelfSender.seen == {r: r * 10 for r in range(world.size)}


# ---------------------------------------------------------------------------
# Two chares exchanging on the same PE
# ---------------------------------------------------------------------------


class SamePePair(Chare):
    done = {}

    def run(self, msg):
        other = (1 - self.index[0],)
        ch = self.channel_to(other)
        ch.send(32 * KiB, ref=("s", 0))
        ch.recv(32 * KiB, ref=("r", 0))
        yield self.when("ch_recv", ref=("r", 0))
        yield self.when("ch_send", ref=("s", 0))
        SamePePair.done[self.index] = self.runtime.engine.now


def test_two_chares_exchange_on_same_pe():
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), 1)
    rt = CharmRuntime(cluster)
    SamePePair.done = {}
    arr = rt.create_array(SamePePair, shape=(2,), mapping={(0,): 0, (1,): 0})
    arr.broadcast("run")
    rt.run()
    assert set(SamePePair.done) == {(0,), (1,)}
    assert rt.ucx.pending_counts() == (0, 0)


# ---------------------------------------------------------------------------
# Engine.run(max_events=0)
# ---------------------------------------------------------------------------


def test_run_max_events_zero_on_empty_heap_is_noop():
    eng = Engine()
    eng.run(max_events=0)
    assert eng.now == 0.0


def test_run_max_events_zero_with_pending_events_raises():
    eng = Engine()
    eng.timeout(1.0)
    with pytest.raises(SimulationError, match="max_events=0"):
        eng.run(max_events=0)


def test_run_max_events_exact_count_does_not_raise():
    eng = Engine()
    eng.timeout(1.0)  # exactly one event to process
    eng.run(max_events=1)
    assert eng.now == 1.0
