"""Tests for the Proxy/ElementProxy sugar and array messaging edges."""

import pytest

from repro.hardware import Cluster, MachineSpec
from repro.runtime import Chare, CharmRuntime
from repro.sim import Engine


class Echo(Chare):
    got = []

    def ping(self, msg):
        Echo.got.append((self.index, msg.ref, msg.payload))


def make(n_nodes=1):
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), n_nodes)
    rt = CharmRuntime(cluster)
    Echo.got = []
    arr = rt.create_array(Echo, shape=(2, 2))
    return eng, rt, arr


def test_array_getitem_proxy_invocation():
    eng, rt, arr = make()
    arr[(1, 0)].ping(ref=7, payload="hi")
    rt.run()
    assert Echo.got == [((1, 0), 7, "hi")]


def test_proxy_call_form():
    eng, rt, arr = make()
    arr.proxy(0, 1).ping(payload="x")
    rt.run()
    assert Echo.got == [((0, 1), None, "x")]


def test_proxy_broadcast():
    eng, rt, arr = make()
    arr.proxy.broadcast("ping")
    rt.run()
    assert sorted(i for i, _r, _p in Echo.got) == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_proxy_from_chare_charges_sender():
    class Sender(Chare):
        def run(self, msg):
            proxy = self.array.proxy.from_chare(self)
            proxy[(0, 1)].ping(payload="from-chare")
            yield self.work(1e-9)

    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), 1)
    rt = CharmRuntime(cluster)
    Echo.got = []
    echo = rt.create_array(Echo, shape=(2, 2))

    class Sender2(Sender):
        array = None

    Sender2.array = echo  # hand the echo array to the sender class

    class Starter(Chare):
        def run(self, msg):
            p = echo.proxy.from_chare(self)
            p[(0, 1)].ping(payload="from-chare")
            yield self.work(1e-9)

    starters = rt.create_array(Starter, shape=(1,))
    starters.broadcast("run")
    rt.run()
    assert Echo.got == [((0, 1), None, "from-chare")]


def test_element_proxy_rejects_private_methods():
    eng, rt, arr = make()
    with pytest.raises(AttributeError):
        arr[(0, 0)]._secret


def test_send_to_missing_element_raises():
    class Bad(Chare):
        def run(self, msg):
            self.send((9, 9), "ping")
            yield self.work(1e-9)

    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), 1)
    rt = CharmRuntime(cluster)
    arr = rt.create_array(Bad, shape=(1, 1))
    arr.broadcast("run")
    with pytest.raises(Exception, match="no element"):
        rt.run()


def test_array_len_and_element():
    eng, rt, arr = make()
    assert len(arr) == 4
    assert arr.element([1, 1]).index == (1, 1)
