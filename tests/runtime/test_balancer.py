"""Tests for load measurement, balancing strategies, and chare migration."""

import pytest

from repro.hardware import Cluster, KernelWork, MachineSpec
from repro.runtime import (
    Chare,
    CharmRuntime,
    LoadRecorder,
    apply_rebalance,
    greedy_map,
    refine_map,
)
from repro.sim import Engine, SimulationError


# ---------------------------------------------------------------------------
# Strategies (pure functions)
# ---------------------------------------------------------------------------


def test_greedy_map_balances_uniform_loads():
    loads = {(i,): 1.0 for i in range(8)}
    m = greedy_map(loads, 4)
    per_pe = [sum(1 for pe in m.values() if pe == p) for p in range(4)]
    assert per_pe == [2, 2, 2, 2]


def test_greedy_map_heaviest_get_own_pes():
    loads = {(0,): 10.0, (1,): 10.0, (2,): 1.0, (3,): 1.0}
    m = greedy_map(loads, 2)
    assert m[(0,)] != m[(1,)]  # the two heavy chares split


def test_greedy_map_near_optimal_makespan():
    loads = {(i,): float(w) for i, w in enumerate([7, 5, 4, 3, 2, 2, 1])}
    m = greedy_map(loads, 3)
    per_pe = [0.0] * 3
    for idx, pe in m.items():
        per_pe[pe] += loads[idx]
    assert max(per_pe) <= 1.34 * (sum(loads.values()) / 3)


def test_greedy_map_validates_pes():
    with pytest.raises(ValueError):
        greedy_map({(0,): 1.0}, 0)


def test_refine_map_moves_little_when_balanced():
    loads = {(i,): 1.0 for i in range(8)}
    current = {(i,): i % 4 for i in range(8)}
    m = refine_map(loads, current, 4)
    assert m == current  # already balanced: zero migrations


def test_refine_map_fixes_hotspot():
    loads = {(i,): 1.0 for i in range(8)}
    current = {(i,): 0 for i in range(8)}  # everything on PE 0
    m = refine_map(loads, current, 4)
    per_pe = [sum(loads[i] for i, pe in m.items() if pe == p) for p in range(4)]
    assert max(per_pe) <= 1.5 * (sum(loads.values()) / 4)
    moved = sum(1 for i in loads if m[i] != current[i])
    assert 0 < moved < 8  # it moved some, not all


def test_refine_map_zero_loads_noop():
    current = {(0,): 0, (1,): 1}
    assert refine_map({}, current, 2) == current


# ---------------------------------------------------------------------------
# LoadRecorder
# ---------------------------------------------------------------------------


class Worker(Chare):
    weights = {}

    def init(self):
        self.stream = self.gpu.create_stream(priority=10)

    def run(self, msg):
        weight = Worker.weights.get(self.index, 1.0)
        work = KernelWork(bytes_moved=780e9 * 1e-3 * weight)  # weight ms
        op = yield self.launch(self.stream, work)
        yield self.wait(op.done)
        self.notify("load", seconds=weight * 1e-3)

    def on_migrate(self):
        self.stream = self.gpu.create_stream(priority=10)


def make_runtime(n_nodes=2):
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), n_nodes)
    return eng, cluster, CharmRuntime(cluster)


def test_load_recorder_accumulates_and_imbalance():
    eng, cluster, rt = make_runtime()
    rec = LoadRecorder()
    rt.observe(rec.on_event)
    Worker.weights = {(0,): 4.0}
    arr = rt.create_array(Worker, shape=(4,), mapping={(i,): i for i in range(4)})
    arr.broadcast("run")
    rt.run()
    assert rec.loads[(0,)] == pytest.approx(4e-3)
    assert rec.loads[(1,)] == pytest.approx(1e-3)
    # One PE has 4x the mean-ish load.
    assert rec.imbalance(arr.mapping, cluster.n_pes) > 1.5
    rec.reset()
    assert not rec.loads


# ---------------------------------------------------------------------------
# Migration
# ---------------------------------------------------------------------------


def test_apply_rebalance_moves_chares_with_cost():
    eng, cluster, rt = make_runtime()
    Worker.weights = {}
    arr = rt.create_array(Worker, shape=(4,), mapping={(i,): 0 for i in range(4)})
    arr.broadcast("run")
    rt.run()
    new_mapping = {(i,): i for i in range(4)}
    stats = apply_rebalance(rt, arr, new_mapping, state_bytes=lambda c: 1024)
    assert stats.moves == 3  # (0,) stays
    assert stats.bytes_moved == 3 * 1024
    assert stats.migration_seconds > 0
    assert arr.mapping == new_mapping
    for i in range(4):
        chare = arr.element((i,))
        assert chare.pe is cluster.pe(i)
        assert chare.gpu is cluster.pe(i).gpu


def test_migrated_chares_keep_working():
    eng, cluster, rt = make_runtime()
    Worker.weights = {}
    arr = rt.create_array(Worker, shape=(4,), mapping={(i,): 0 for i in range(4)})
    arr.broadcast("run")
    rt.run()
    apply_rebalance(rt, arr, {(i,): i for i in range(4)})
    arr.broadcast("run")  # second phase on new placement
    rt.run()  # must quiesce cleanly


def test_rebalance_improves_imbalanced_run():
    """The headline: measure, rebalance greedily, re-run, get faster."""

    def phase(rt, arr):
        t0 = rt.engine.now
        arr.broadcast("run")
        rt.run()
        return rt.engine.now - t0

    eng, cluster, rt = make_runtime()
    rec = LoadRecorder()
    rt.observe(rec.on_event)
    # Hot chares all mapped to PE 0 initially (block map over sorted index).
    Worker.weights = {(i,): (8.0 if i < 2 else 1.0) for i in range(8)}
    arr = rt.create_array(Worker, shape=(8,),
                          mapping={(i,): i // 2 for i in range(8)})
    before = phase(rt, arr)
    new_mapping = greedy_map(rec.loads, cluster.n_pes)
    apply_rebalance(rt, arr, new_mapping, state_bytes=lambda c: 4096)
    rec.reset()
    after = phase(rt, arr)
    assert after < 0.8 * before


def test_rebalance_requires_quiescence():
    class Stuck(Chare):
        def run(self, msg):
            yield self.when("never")  # repro-lint: disable=RPL011 -- deliberate deadlock

    eng, cluster, rt = make_runtime()
    arr = rt.create_array(Stuck, shape=(1,))
    arr.broadcast("run")
    try:
        rt.run()
    except SimulationError:
        pass  # expected deadlock report; frames remain live
    with pytest.raises(SimulationError, match="frames"):
        apply_rebalance(rt, arr, {(0,): 1})


def test_rebalance_rejects_bad_pe():
    eng, cluster, rt = make_runtime()
    Worker.weights = {}
    arr = rt.create_array(Worker, shape=(2,))
    arr.broadcast("run")
    rt.run()
    with pytest.raises(ValueError):
        apply_rebalance(rt, arr, {(0,): 99})
