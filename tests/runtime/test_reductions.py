"""Tests for array-wide reductions."""

import pytest

from repro.hardware import Cluster, MachineSpec
from repro.sim import Engine
from repro.runtime import REDUCERS, Chare, CharmRuntime


def make_runtime(n_nodes=2):
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), n_nodes)
    return eng, cluster, CharmRuntime(cluster)


class Reducer(Chare):
    results = {}
    op = "sum"

    def run(self, msg):
        value = self.index[0] + 1
        total = yield from self.allreduce(value, op=Reducer.op)
        Reducer.results[self.index] = total


def run_reduction(shape=(6,), op="sum", n_nodes=2):
    eng, cluster, rt = make_runtime(n_nodes)
    Reducer.results = {}
    Reducer.op = op
    arr = rt.create_array(Reducer, shape=shape)
    arr.broadcast("run")
    rt.run()
    return rt


def test_allreduce_sum_all_chares_get_total():
    run_reduction(shape=(6,), op="sum")
    assert set(Reducer.results.values()) == {21}  # 1+2+...+6
    assert len(Reducer.results) == 6


def test_allreduce_max():
    run_reduction(shape=(5,), op="max")
    assert set(Reducer.results.values()) == {5}


def test_allreduce_min():
    run_reduction(shape=(5,), op="min")
    assert set(Reducer.results.values()) == {1}


def test_allreduce_prod():
    run_reduction(shape=(4,), op="prod")
    assert set(Reducer.results.values()) == {24}


def test_allreduce_single_pe():
    run_reduction(shape=(3,), n_nodes=1)
    assert set(Reducer.results.values()) == {6}


def test_unknown_op_rejected():
    class BadOp(Chare):
        def run(self, msg):
            yield from self.allreduce(1, op="median")

    eng, cluster, rt = make_runtime()
    arr = rt.create_array(BadOp, shape=(2,))
    arr.broadcast("run")
    with pytest.raises(Exception, match="median"):
        rt.run()


class TwoRounds(Chare):
    results = []

    def run(self, msg):
        a = yield from self.allreduce(1, op="sum")
        b = yield from self.allreduce(self.index[0], op="max")
        if self.index == (0,):
            TwoRounds.results.append((a, b))


def test_consecutive_reductions_use_distinct_sequences():
    eng, cluster, rt = make_runtime()
    TwoRounds.results = []
    arr = rt.create_array(TwoRounds, shape=(4,))
    arr.broadcast("run")
    rt.run()
    assert TwoRounds.results == [(4, 3)]
    assert rt.reductions.completed == 2


def test_reduction_takes_nonzero_time():
    eng, cluster, rt = make_runtime()
    Reducer.results = {}
    Reducer.op = "sum"
    arr = rt.create_array(Reducer, shape=(8,))
    arr.broadcast("run")
    rt.run()
    assert eng.now > 0  # messages cost time


def test_reducers_table():
    assert REDUCERS["sum"](2, 3) == 5
    assert REDUCERS["max"](2, 3) == 3
    assert REDUCERS["min"](2, 3) == 2
    assert REDUCERS["prod"](2, 3) == 6
