"""Core runtime tests: entry methods, SDAG when, HAPI waits, overlap."""

import pytest

from repro.hardware import Cluster, KernelWork, MachineSpec
from repro.sim import Engine, SimulationError
from repro.sim.tracing import overlap_seconds
from repro.runtime import CharmRuntime, Chare, MsgPriority


def make_runtime(n_nodes=1, spec=None):
    eng = Engine()
    cluster = Cluster(eng, spec or MachineSpec.small_debug(), n_nodes)
    return eng, cluster, CharmRuntime(cluster)


# ---------------------------------------------------------------------------
# Basic lifecycle
# ---------------------------------------------------------------------------


class Hello(Chare):
    log = []

    def run(self, msg):
        yield self.work(1e-6)
        Hello.log.append((self.index, self.runtime.engine.now))


def test_broadcast_runs_every_element():
    eng, cluster, rt = make_runtime()
    Hello.log = []
    arr = rt.create_array(Hello, shape=(2, 2))
    arr.broadcast("run")
    rt.run()
    assert sorted(i for i, _t in Hello.log) == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_entry_work_occupies_pe_serially():
    eng, cluster, rt = make_runtime()
    Hello.log = []
    arr = rt.create_array(Hello, shape=(4,), mapping={(i,): 0 for i in range(4)})
    arr.broadcast("run")
    rt.run()
    times = sorted(t for _i, t in Hello.log)
    # Four chares on one PE serialize; each needs >= 1 us of work.
    assert times[-1] >= 4e-6
    assert len(set(times)) == 4


class Echo(Chare):
    received = []

    def ping(self, msg):
        Echo.received.append((self.index, msg.payload, self.runtime.engine.now))


def test_plain_entry_method_invocation():
    eng, cluster, rt = make_runtime()
    Echo.received = []
    arr = rt.create_array(Echo, shape=(2,))
    arr.proxy[(1,)].ping(payload="hi")
    rt.run()
    assert Echo.received == [((1,), "hi", pytest.approx(eng.now, abs=1e-9))]


def test_run_returns_at_quiescence_without_frames():
    eng, cluster, rt = make_runtime()
    rt.create_array(Echo, shape=(2,))
    rt.run()  # nothing to do; must not raise
    assert rt._live_frames == 0


# ---------------------------------------------------------------------------
# SDAG when / mailbox semantics
# ---------------------------------------------------------------------------


class WhenChare(Chare):
    seen = []

    def run(self, msg):
        m = yield self.when("data", ref=1)
        WhenChare.seen.append(("ref1", m.payload))
        m = yield self.when("data", ref=2)
        WhenChare.seen.append(("ref2", m.payload))


def test_when_matches_reference_numbers_out_of_order():
    eng, cluster, rt = make_runtime()
    WhenChare.seen = []
    arr = rt.create_array(WhenChare, shape=(1,))
    arr.broadcast("run")
    # Deliver ref=2 first; the chare must still consume ref=1 first.
    arr.proxy[(0,)].data(ref=2, payload="second")
    arr.proxy[(0,)].data(ref=1, payload="first")
    rt.run()
    assert WhenChare.seen == [("ref1", "first"), ("ref2", "second")]


def test_when_buffers_early_messages():
    eng, cluster, rt = make_runtime()
    WhenChare.seen = []
    arr = rt.create_array(WhenChare, shape=(1,))
    arr.proxy[(0,)].data(ref=1, payload="early1")
    arr.proxy[(0,)].data(ref=2, payload="early2")
    arr.broadcast("run")  # run starts after both deposits
    rt.run()
    assert WhenChare.seen == [("ref1", "early1"), ("ref2", "early2")]


class AnyRef(Chare):
    got = []

    def run(self, msg):
        m = yield self.when("data")  # ref=None matches anything
        AnyRef.got.append(m.ref)


def test_when_none_ref_matches_any():
    eng, cluster, rt = make_runtime()
    AnyRef.got = []
    arr = rt.create_array(AnyRef, shape=(1,))
    arr.broadcast("run")
    arr.proxy[(0,)].data(ref=42, payload=None)
    rt.run()
    assert AnyRef.got == [42]


def test_deadlock_detection_reports_stuck_when():
    class Stuck(Chare):
        def run(self, msg):
            yield self.when("never", ref=9)  # repro-lint: disable=RPL011 -- deliberate deadlock

    eng, cluster, rt = make_runtime()
    arr = rt.create_array(Stuck, shape=(1,))
    arr.broadcast("run")
    with pytest.raises(SimulationError, match="never"):
        rt.run()


def test_bad_yield_value_raises():
    class Bad(Chare):
        def run(self, msg):
            yield 42  # repro-lint: disable=RPL003 -- exercises the runtime's own check

    eng, cluster, rt = make_runtime()
    arr = rt.create_array(Bad, shape=(1,))
    arr.broadcast("run")
    with pytest.raises(Exception, match="Command"):
        rt.run()


# ---------------------------------------------------------------------------
# Chare-to-chare sends
# ---------------------------------------------------------------------------


class PingPong(Chare):
    trace = []

    def run(self, msg):
        other = (1 - self.index[0],)
        if self.index[0] == 0:
            self.send(other, "ball", ref=0, data_bytes=1024)
            m = yield self.when("ball", ref=1)
            PingPong.trace.append(("pe0 got", self.runtime.engine.now))
        else:
            m = yield self.when("ball", ref=0)
            self.send(other, "ball", ref=1, data_bytes=1024)


def test_send_between_chares_roundtrip():
    eng, cluster, rt = make_runtime(n_nodes=2)
    PingPong.trace = []
    mapping = {(0,): 0, (1,): 2}  # different nodes
    arr = rt.create_array(PingPong, shape=(2,), mapping=mapping)
    arr.broadcast("run")
    rt.run()
    assert len(PingPong.trace) == 1
    rtt = PingPong.trace[0][1]
    assert rtt > 2 * cluster.network.uncontended_time(0, 2, 1024)


def test_local_send_cheaper_than_remote():
    def roundtrip(mapping, n_nodes):
        eng, cluster, rt = make_runtime(n_nodes=n_nodes)
        PingPong.trace = []
        arr = rt.create_array(PingPong, shape=(2,), mapping=mapping)
        arr.broadcast("run")
        rt.run()
        return PingPong.trace[0][1]

    local = roundtrip({(0,): 0, (1,): 0}, 1)
    remote = roundtrip({(0,): 0, (1,): 2}, 2)
    assert local < remote


# ---------------------------------------------------------------------------
# HAPI-style GPU completion waits and overlap
# ---------------------------------------------------------------------------


class GpuUser(Chare):
    done_at = {}

    def init(self):
        self.stream = self.gpu.create_stream(priority=10)

    def run(self, msg):
        op = yield self.launch(self.stream, KernelWork(bytes_moved=780e9 * 0.01))
        yield self.wait(op.done)
        GpuUser.done_at[self.index] = self.runtime.engine.now


def test_hapi_wait_resumes_after_kernel():
    eng, cluster, rt = make_runtime()
    GpuUser.done_at = {}
    arr = rt.create_array(GpuUser, shape=(1,))
    arr.broadcast("run")
    rt.run()
    assert GpuUser.done_at[(0,)] >= 0.01


def test_two_chares_one_pe_overlap_gpu_and_wait():
    """While chare A waits on its kernel, chare B must get the PE and launch
    its own — message-driven execution does not block on the GPU."""
    eng, cluster, rt = make_runtime()
    GpuUser.done_at = {}
    arr = rt.create_array(GpuUser, shape=(2,), mapping={(0,): 0, (1,): 0})
    arr.broadcast("run")
    rt.run()
    # Kernels serialize on the GPU (10 ms each) but launches interleave:
    # total must be ~20 ms, NOT 20 ms + blocking artifacts, and both finish.
    t = max(GpuUser.done_at.values())
    assert t == pytest.approx(0.02, rel=0.05)
    gpu = cluster.gpu(0)
    from repro.hardware import COMPUTE

    assert gpu.busy_seconds(COMPUTE) == pytest.approx(0.02, rel=0.01)
    # GPU was busy while the PE processed the *other* chare's messages.
    assert gpu.utilization(COMPUTE, 0.0, t) > 0.95


class Blocking(Chare):
    """Anti-pattern for comparison: synchronous completion (Fig. 4 top)."""

    done_at = {}

    def init(self):
        self.stream = self.gpu.create_stream(priority=10)

    def run(self, msg):
        op = yield self.launch(self.stream, KernelWork(bytes_moved=780e9 * 0.01))
        # Busy-wait on the PE until the kernel completes: block the scheduler.
        yield self.work(0.01)
        Blocking.done_at[self.index] = self.runtime.engine.now


def test_synchronous_completion_hogs_the_pe():
    """Fig. 4's point: synchronous completion keeps the host CPU busy for the
    whole GPU duration, so the scheduler cannot do other useful work;
    asynchronous (HAPI) completion leaves the PE almost entirely free."""
    eng, cluster, rt = make_runtime()
    Blocking.done_at = {}
    arr = rt.create_array(Blocking, shape=(2,), mapping={(0,): 0, (1,): 0})
    arr.broadcast("run")
    rt.run()
    blocking_pe_busy = cluster.pe(0).busy.busy_seconds()

    eng2, cluster2, rt2 = make_runtime()
    GpuUser.done_at = {}
    arr2 = rt2.create_array(GpuUser, shape=(2,), mapping={(0,): 0, (1,): 0})
    arr2.broadcast("run")
    rt2.run()
    async_pe_busy = cluster2.pe(0).busy.busy_seconds()

    assert blocking_pe_busy == pytest.approx(0.02, rel=0.05)
    assert async_pe_busy < 0.001  # scheduler free while the GPU works


# ---------------------------------------------------------------------------
# Observers and stats
# ---------------------------------------------------------------------------


def test_observer_receives_notifications():
    class Notifier(Chare):
        def run(self, msg):
            yield self.work(1e-6)
            self.notify("did_thing", value=7)

    eng, cluster, rt = make_runtime()
    events = []
    rt.observe(lambda name, chare, **d: events.append((name, chare.index, d)))
    arr = rt.create_array(Notifier, shape=(1,))
    arr.broadcast("run")
    rt.run()
    assert events == [("did_thing", (0,), {"value": 7})]


def test_messages_processed_counter():
    eng, cluster, rt = make_runtime()
    Hello.log = []
    arr = rt.create_array(Hello, shape=(2,))
    arr.broadcast("run")
    rt.run()
    assert rt.total_messages_processed() >= 2


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_identical_runs_are_bit_identical():
    def final_time():
        eng, cluster, rt = make_runtime(n_nodes=2)
        GpuUser.done_at = {}
        arr = rt.create_array(GpuUser, shape=(3, 2))
        arr.broadcast("run")
        rt.run()
        return eng.now

    assert final_time() == final_time()
