"""Unit and property tests for chare->PE mappings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import all_indices, block_map, linearize, make_mapping, round_robin_map


def test_all_indices_order_and_count():
    idx = all_indices((2, 3))
    assert len(idx) == 6
    assert idx[0] == (0, 0) and idx[1] == (0, 1) and idx[-1] == (1, 2)


def test_linearize_row_major():
    assert linearize((0, 0, 0), (2, 3, 4)) == 0
    assert linearize((0, 0, 1), (2, 3, 4)) == 1
    assert linearize((1, 2, 3), (2, 3, 4)) == 23


def test_linearize_bounds():
    with pytest.raises(IndexError):
        linearize((2, 0), (2, 3))
    with pytest.raises(ValueError):
        linearize((0,), (2, 3))


def test_block_map_contiguous_and_balanced():
    m = block_map((4, 2), 4)  # 8 chares over 4 PEs
    loads = [sum(1 for pe in m.values() if pe == p) for p in range(4)]
    assert loads == [2, 2, 2, 2]
    # Linearly consecutive chares share PEs.
    order = [m[idx] for idx in all_indices((4, 2))]
    assert order == sorted(order)


def test_block_map_remainders_spread():
    m = block_map((7,), 3)
    loads = [sum(1 for pe in m.values() if pe == p) for p in range(3)]
    assert sorted(loads) == [2, 2, 3]


def test_round_robin_map_cycles():
    m = round_robin_map((6,), 3)
    assert [m[(i,)] for i in range(6)] == [0, 1, 2, 0, 1, 2]


def test_make_mapping_factory():
    assert make_mapping("block", (4,), 2) == block_map((4,), 2)
    assert make_mapping("round_robin", (4,), 2) == round_robin_map((4,), 2)
    with pytest.raises(ValueError):
        make_mapping("magic", (4,), 2)


def test_invalid_pe_count():
    with pytest.raises(ValueError):
        block_map((4,), 0)
    with pytest.raises(ValueError):
        round_robin_map((4,), 0)


@settings(max_examples=60, deadline=None)
@given(
    shape=st.lists(st.integers(1, 6), min_size=1, max_size=3).map(tuple),
    n_pes=st.integers(1, 12),
    kind=st.sampled_from(["block", "round_robin"]),
)
def test_property_every_chare_mapped_exactly_once_and_balanced(shape, n_pes, kind):
    m = make_mapping(kind, shape, n_pes)
    assert set(m.keys()) == set(all_indices(shape))
    assert all(0 <= pe < n_pes for pe in m.values())
    loads = [sum(1 for pe in m.values() if pe == p) for p in range(n_pes)]
    assert max(loads) - min(loads) <= 1
