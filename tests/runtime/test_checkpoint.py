"""Tests for checkpoint/restart (double in-memory, PUP idiom)."""

import numpy as np
import pytest

from repro.hardware import Cluster, MachineSpec
from repro.runtime import (
    Chare,
    CharmRuntime,
    Checkpoint,
    restore_array,
    take_checkpoint,
)
from repro.sim import Engine, SimulationError


class Counter(Chare):
    """A chare whose state is a counter plus an array."""

    def init(self):
        self.count = 0
        self.field = np.zeros(8)

    def run(self, msg):
        yield self.work(1e-6)
        self.count += 1
        self.field += self.index[0] + 1

    def pup(self):
        return {"count": self.count, "field": self.field.copy()}

    def unpup(self, state):
        self.count = state["count"]
        self.field = state["field"].copy()


def make_world(n_nodes=2):
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), n_nodes)
    return eng, cluster, CharmRuntime(cluster)


def run_phase(rt, arr):
    arr.broadcast("run")
    rt.run()


def test_checkpoint_captures_state_and_costs_time():
    eng, cluster, rt = make_world()
    arr = rt.create_array(Counter, shape=(4,))
    run_phase(rt, arr)
    t0 = eng.now
    ckpt = take_checkpoint(rt, arr)
    assert len(ckpt.states) == 4
    assert ckpt.states[(0,)]["count"] == 1
    assert (ckpt.states[(1,)]["field"] == 2.0).all()
    assert ckpt.cost_seconds > 0  # buddy copies crossed the network
    assert eng.now == t0 + ckpt.cost_seconds
    assert ckpt.total_bytes > 4 * 64  # arrays + envelope


def test_checkpoint_is_a_copy_not_a_view():
    eng, cluster, rt = make_world()
    arr = rt.create_array(Counter, shape=(2,))
    run_phase(rt, arr)
    ckpt = take_checkpoint(rt, arr)
    run_phase(rt, arr)  # mutate further
    assert ckpt.states[(0,)]["count"] == 1
    assert arr.element((0,)).count == 2


def test_restore_on_new_runtime_with_fewer_nodes():
    eng1, c1, rt1 = make_world(n_nodes=2)
    arr1 = rt1.create_array(Counter, shape=(4,))
    run_phase(rt1, arr1)
    run_phase(rt1, arr1)
    ckpt = take_checkpoint(rt1, arr1)

    # "Node 1 failed": restart everything on a 1-node cluster.
    eng2, c2, rt2 = make_world(n_nodes=1)
    arr2 = rt2.create_array(Counter, shape=(4,))
    restored = restore_array(arr2, ckpt, failed_nodes=[1])
    assert restored == 4
    assert arr2.element((3,)).count == 2
    assert (arr2.element((3,)).field == 8.0).all()
    run_phase(rt2, arr2)  # continues from the restored state
    assert arr2.element((3,)).count == 3


def test_buddy_placement_survives_single_node_failure():
    eng, cluster, rt = make_world(n_nodes=2)
    arr = rt.create_array(Counter, shape=(4,))
    run_phase(rt, arr)
    ckpt = take_checkpoint(rt, arr)
    for node in (0, 1):
        assert ckpt.survives([node])
    assert not ckpt.survives([0, 1])
    assert len(ckpt.lost_chares([0, 1])) == 4


def test_restore_refuses_lost_checkpoint():
    eng, cluster, rt = make_world(n_nodes=2)
    arr = rt.create_array(Counter, shape=(2,))
    run_phase(rt, arr)
    ckpt = take_checkpoint(rt, arr)
    eng2, c2, rt2 = make_world(n_nodes=1)
    arr2 = rt2.create_array(Counter, shape=(2,))
    with pytest.raises(SimulationError, match="lost"):
        restore_array(arr2, ckpt, failed_nodes=[0, 1])


def test_restore_shape_mismatch():
    eng, cluster, rt = make_world()
    arr = rt.create_array(Counter, shape=(2,))
    run_phase(rt, arr)
    ckpt = take_checkpoint(rt, arr)
    eng2, c2, rt2 = make_world()
    arr2 = rt2.create_array(Counter, shape=(3,))
    with pytest.raises(ValueError, match="shape"):
        restore_array(arr2, ckpt)


def test_checkpoint_requires_pup():
    class NoPup(Chare):
        def run(self, msg):
            yield self.work(1e-9)

    eng, cluster, rt = make_world()
    arr = rt.create_array(NoPup, shape=(1,))
    run_phase(rt, arr)
    with pytest.raises(SimulationError, match="pup"):
        take_checkpoint(rt, arr)


def test_single_node_checkpoint_has_no_network_cost():
    eng, cluster, rt = make_world(n_nodes=1)
    arr = rt.create_array(Counter, shape=(2,))
    run_phase(rt, arr)
    ckpt = take_checkpoint(rt, arr)
    assert ckpt.cost_seconds == 0.0
    assert ckpt.home_node[(0,)] == ckpt.buddy_node[(0,)] == 0


# ---------------------------------------------------------------------------
# End-to-end: Jacobi3D survives a node failure with bit-exact numerics
# ---------------------------------------------------------------------------


def test_jacobi3d_restart_is_bit_exact():
    from repro.apps import AppContext, Jacobi3DConfig, run_jacobi3d
    from repro.kernels import reference_solve

    grid = (20, 20, 20)
    ref = reference_solve(grid, 6)[1:-1, 1:-1, 1:-1]

    # Phase 1: 3 iterations on 2 nodes (4 GPUs), ODF 2 -> 8 blocks.
    cfg1 = Jacobi3DConfig(version="charm-d", nodes=2, grid=grid, odf=2,
                          iterations=3, warmup=0, data_mode="functional",
                          machine=MachineSpec.small_debug())
    res1 = run_jacobi3d(cfg1)

    # "Failure": restart the SAME 8 blocks on 1 node (2 GPUs) at ODF 4.
    cfg2 = Jacobi3DConfig(version="charm-d", nodes=1, grid=grid, odf=4,
                          iterations=3, warmup=0, data_mode="functional",
                          machine=MachineSpec.small_debug())
    assert cfg1.n_blocks() == cfg2.n_blocks()
    res2 = run_jacobi3d(cfg2, initial_state=res1.blocks)

    final = res2.assemble_grid(AppContext(cfg2).geometry)
    assert np.array_equal(final, ref)
