"""Tests for the Channel API and GPU Messaging API."""

import pytest

from repro.comm import Protocol
from repro.hardware import Cluster, KiB, MachineSpec, MiB
from repro.sim import Engine
from repro.runtime import Chare, CharmRuntime


def make_runtime(n_nodes=2):
    eng = Engine()
    cluster = Cluster(eng, MachineSpec.small_debug(), n_nodes)
    return eng, cluster, CharmRuntime(cluster)


class ChannelPair(Chare):
    done = {}
    size = 96 * KiB

    def run(self, msg):
        other = (1 - self.index[0],)
        ch = self.channel_to(other)
        ch.send(self.size, ref=("s", 0))
        ch.recv(self.size, ref=("r", 0))
        yield self.when("ch_recv", ref=("r", 0))
        yield self.when("ch_send", ref=("s", 0))
        ChannelPair.done[self.index] = self.runtime.engine.now


def run_pair(mapping, n_nodes=2, size=96 * KiB):
    eng, cluster, rt = make_runtime(n_nodes)
    ChannelPair.done = {}
    ChannelPair.size = size
    arr = rt.create_array(ChannelPair, shape=(2,), mapping=mapping)
    arr.broadcast("run")
    rt.run()
    return eng, cluster, rt


def test_channel_exchange_completes_both_sides():
    eng, cluster, rt = run_pair({(0,): 0, (1,): 2})
    assert set(ChannelPair.done) == {(0,), (1,)}
    assert rt.ucx.pending_counts() == (0, 0)


def test_channel_uses_gpudirect_for_medium_messages():
    eng, cluster, rt = run_pair({(0,): 0, (1,): 2})
    assert rt.ucx.protocol_counts[Protocol.RNDV_GPUDIRECT] == 2


def test_channel_same_node_uses_ipc():
    eng, cluster, rt = run_pair({(0,): 0, (1,): 1}, n_nodes=1)
    assert rt.ucx.protocol_counts[Protocol.DEVICE_IPC] == 2


def test_channel_large_message_pipelines():
    eng, cluster, rt = run_pair({(0,): 0, (1,): 2}, size=4 * MiB)
    assert rt.ucx.protocol_counts[Protocol.RNDV_PIPELINED] == 2


def test_channel_endpoint_cached():
    eng, cluster, rt = make_runtime()
    arr = rt.create_array(ChannelPair, shape=(2,))
    a = arr.element((0,))
    assert a.channel_to((1,)) is a.channel_to((1,))


def test_channel_to_missing_element_raises():
    eng, cluster, rt = make_runtime()
    arr = rt.create_array(ChannelPair, shape=(2,))
    with pytest.raises(KeyError):
        arr.element((0,)).channel_to((5,))


class MultiIter(Chare):
    """Two back-to-back exchanges: sequence numbers must keep matching."""

    finished = {}

    def run(self, msg):
        other = (1 - self.index[0],)
        ch = self.channel_to(other)
        for it in range(3):
            ch.send(32 * KiB, ref=("s", it))
            ch.recv(32 * KiB, ref=("r", it))
            yield self.when("ch_recv", ref=("r", it))
            yield self.when("ch_send", ref=("s", it))
        MultiIter.finished[self.index] = True


def test_channel_sequences_across_iterations():
    eng, cluster, rt = make_runtime()
    MultiIter.finished = {}
    arr = rt.create_array(MultiIter, shape=(2,), mapping={(0,): 0, (1,): 2})
    arr.broadcast("run")
    rt.run()
    assert MultiIter.finished == {(0,): True, (1,): True}
    assert rt.ucx.pending_counts() == (0, 0)


# ---------------------------------------------------------------------------
# GPU Messaging API
# ---------------------------------------------------------------------------


class GmSender(Chare):
    arrived = {}

    def run(self, msg):
        if self.index[0] == 0:
            self.gpu_send((1,), "halo", size=96 * KiB, ref=7)
            yield self.work(1e-7)
        else:
            yield self.when("halo", ref=7)
            GmSender.arrived[self.index] = self.runtime.engine.now


def test_gpu_messaging_delivers():
    eng, cluster, rt = make_runtime()
    GmSender.arrived = {}
    arr = rt.create_array(GmSender, shape=(2,), mapping={(0,): 0, (1,): 2})
    arr.broadcast("run")
    rt.run()
    assert (1,) in GmSender.arrived
    assert rt.ucx.pending_counts() == (0, 0)


class ChSender(Chare):
    arrived = {}

    def run(self, msg):
        other = (1 - self.index[0],)
        ch = self.channel_to(other)
        if self.index[0] == 0:
            ch.send(96 * KiB, ref=0)
            yield self.when("ch_send", ref=0)
        else:
            ch.recv(96 * KiB, ref=0)
            yield self.when("ch_recv", ref=0)
            ChSender.arrived[self.index] = self.runtime.engine.now


def test_channel_api_faster_than_gpu_messaging():
    """The paper's motivation for the Channel API: no post-entry-method
    round trip on the receive path."""
    eng1, c1, rt1 = make_runtime()
    GmSender.arrived = {}
    arr = rt1.create_array(GmSender, shape=(2,), mapping={(0,): 0, (1,): 2})
    arr.broadcast("run")
    rt1.run()
    gm_time = GmSender.arrived[(1,)]

    eng2, c2, rt2 = make_runtime()
    ChSender.arrived = {}
    arr = rt2.create_array(ChSender, shape=(2,), mapping={(0,): 0, (1,): 2})
    arr.broadcast("run")
    rt2.run()
    ch_time = ChSender.arrived[(1,)]

    assert ch_time < gm_time
