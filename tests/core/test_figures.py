"""Tests for the figure generators (tiny ladders; shapes checked in
tests/integration)."""

import pytest

from repro.core import (
    FULL_NODES,
    QUICK_NODES,
    figure6,
    figure7a,
    figure7c,
    iterations_for,
    odf_sweep,
    strong_grid,
    weak_grid,
)


def test_weak_grid_doubling_schedule():
    base = (1536, 1536, 1536)
    assert weak_grid(base, 1) == base
    assert weak_grid(base, 2) == (1536, 1536, 3072)
    assert weak_grid(base, 4) == (1536, 3072, 3072)
    assert weak_grid(base, 8) == (3072, 3072, 3072)  # paper's equivalence
    assert weak_grid(base, 64) == (6144, 6144, 6144)


def test_weak_grid_power_of_two_only():
    with pytest.raises(ValueError):
        weak_grid((192, 192, 192), 3)


def test_weak_grid_preserves_per_node_volume():
    base = (192, 192, 192)
    for n in (1, 2, 4, 8, 16, 32):
        g = weak_grid(base, n)
        assert g[0] * g[1] * g[2] == n * base[0] * base[1] * base[2]


def test_strong_grid():
    assert strong_grid() == (3072, 3072, 3072)
    assert strong_grid(768) == (768, 768, 768)


def test_iterations_for_decreases_with_scale():
    small = iterations_for(1)[0]
    large = iterations_for(512)[0]
    assert small > large >= 2
    assert all(iterations_for(n)[1] >= 1 for n in (1, 32, 512))


def test_node_ladders_sane():
    for key, quick in QUICK_NODES.items():
        assert list(quick) == sorted(quick)
        assert set(quick) <= set(FULL_NODES[key])
    # Strong-scaling ladders start at 8 nodes (3072^3 memory floor).
    assert QUICK_NODES["fig7c"][0] == 8 and QUICK_NODES["fig6b"][0] == 8


def test_figure6_smoke():
    fig = figure6(mode="weak", nodes=(1, 2))
    assert set(fig.series) == {"charm-h legacy", "charm-h optimized"}
    assert fig.series["charm-h legacy"].xs() == [1, 2]
    assert all(y > 0 for s in fig.series.values() for y in s.ys())


def test_figure6_invalid_mode():
    with pytest.raises(ValueError):
        figure6(mode="sideways")


def test_figure7a_series_labels():
    fig = figure7a(nodes=(1, 2))
    labels = list(fig.series)
    assert any(lb.startswith("MPI-H") for lb in labels)
    assert any(lb.startswith("Charm-D") for lb in labels)
    assert all(len(fig.series[lb]) == 2 for lb in labels)


def test_figure7c_best_odf_recorded():
    fig = figure7c(nodes=(8,), odf_candidates=(1, 2))
    best = fig.series["Charm-H (best ODF)"]
    assert all("odf" in m for m in best.meta)
    assert "Charm-H ODF-1" in fig.series and "Charm-H ODF-2" in fig.series
    # best-ODF curve is the min of the per-ODF curves at each point.
    for x in best.xs():
        per = min(fig.series[f"Charm-H ODF-{o}"].y_at(x) for o in (1, 2))
        assert best.y_at(x) == per


def test_odf_sweep_small_problem_prefers_odf1():
    fig = odf_sweep(base=(192, 192, 192), nodes=2, odfs=(1, 2, 4),
                    versions=("charm-d",))
    s = fig.series["charm-d"]
    assert s.y_at(1) == min(s.ys())


def test_progress_callback_invoked():
    lines = []
    figure6(mode="weak", nodes=(1,), progress=lines.append)
    assert len(lines) == 2  # legacy + optimized
    assert all("charm-h" in ln for ln in lines)
