"""Tests for the communication-mechanism microbenchmark."""

import pytest

from repro.core import comm_api_comparison
from repro.hardware import KiB, MachineSpec


@pytest.fixture(scope="module")
def fig():
    return comm_api_comparison(sizes=(8 * KiB, 64 * KiB, 512 * KiB),
                               machine=MachineSpec.small_debug())


def test_all_mechanisms_measured(fig):
    assert set(fig.series) == {"entry_message", "gpu_messaging", "channel"}
    for s in fig.series.values():
        assert len(s) == 3
        assert all(y > 0 for y in s.ys())


def test_channel_beats_gpu_messaging(fig):
    """The Channel API's reason to exist: no post-entry-method delay."""
    ch = fig.series["channel"]
    gm = fig.series["gpu_messaging"]
    assert all(ch.y_at(x) < gm.y_at(x) for x in ch.xs())


def test_latency_grows_with_size(fig):
    for s in fig.series.values():
        ys = s.ys()
        assert ys[-1] > ys[0]


def test_medium_device_messages_beat_host_staged_path(fig):
    """64-512 KiB *device* buffers ride GPUDirect and skip staging.

    The fair host-path comparison for GPU data is entry-message transport
    plus the D2H and H2D staging copies an application must add.
    """
    machine = MachineSpec.small_debug()
    link = machine.node.host_link
    ch = fig.series["channel"]
    host = fig.series["entry_message"]
    for size in (64 * KiB, 512 * KiB):
        staging = 2 * (link.latency + size / link.bandwidth)
        assert ch.y_at(size) < host.y_at(size) + staging
