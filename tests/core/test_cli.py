"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main

LINT_FIXTURES = Path(__file__).resolve().parents[1] / "lint" / "fixtures"


def test_run_command_prints_metrics(capsys):
    rc = main(["run", "--version", "charm-d", "--nodes", "1",
               "--grid", "96", "96", "96", "--odf", "2", "--iterations", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "time/iteration" in out
    assert "charm-d" in out
    assert "protocol" in out


def test_run_functional_mode(capsys):
    rc = main(["run", "--version", "mpi-h", "--grid", "24", "24", "24",
               "--iterations", "2", "--warmup", "0", "--functional"])
    assert rc == 0
    assert "mpi-h" in capsys.readouterr().out


def test_run_with_fusion_and_graphs(capsys):
    rc = main(["run", "--version", "charm-d", "--grid", "96", "96", "96",
               "--odf", "2", "--fusion", "C", "--graphs", "--iterations", "3"])
    assert rc == 0


def test_figure_command_with_custom_ladder(capsys):
    rc = main(["figure", "7b", "--nodes", "1", "2", "--no-plot", "--quiet"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fig7b" in out
    assert "PASS" in out


def test_figure_save_json(tmp_path, capsys):
    path = tmp_path / "fig.json"
    rc = main(["figure", "7b", "--nodes", "1", "--no-plot", "--quiet",
               "--save", str(path)])
    assert rc == 0
    data = json.loads(path.read_text())
    assert data["figure_id"] == "fig7b"


def test_sweep_command(capsys):
    rc = main(["sweep", "--base", "192", "--nodes", "2", "--odfs", "1", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "best ODF" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "42"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_run_ampi_version_with_validate(capsys):
    rc = main(["run", "--version", "ampi-d", "--grid", "96", "96", "96",
               "--odf", "2", "--iterations", "3", "--validate"])
    assert rc == 0
    assert "ampi-d" in capsys.readouterr().out


def test_validate_quick_exits_zero(capsys):
    rc = main(["validate", "--quick", "--quiet"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "differential matrix vs charm-d" in out
    assert "0 failure(s)" in out
    # quick mode: cross-runtime cases only, golden store untouched
    assert "ampi-d" in out and "mpi-h" in out
    assert "golden store" not in out


def test_validate_update_golden_roundtrip(tmp_path, capsys):
    rc = main(["validate", "--quick", "--quiet", "--update-golden",
               "--golden-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "refreshed 14 entries" in out
    assert len(list(tmp_path.glob("*.json"))) == 14
    # Every registered app contributes entries.
    assert (tmp_path / "charm-d.json").exists()
    assert (tmp_path / "jacobi2d-charm-d.json").exists()
    assert (tmp_path / "cholesky-charm-d.json").exists()
    assert (tmp_path / "allreduce-charm-d-ring.json").exists()


def test_validate_scoped_to_one_app(tmp_path, capsys):
    rc = main(["validate", "--app", "jacobi2d", "--quick", "--quiet",
               "--update-golden", "--golden-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "refreshed 2 entries" in out
    assert sorted(p.stem for p in tmp_path.glob("*.json")) == [
        "jacobi2d-charm-d", "jacobi2d-mpi-h"]
    # Scoped runs skip the other apps' differential matrices.
    assert "== app:" not in out


def test_apps_lists_registered_workloads(capsys):
    rc = main(["apps"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "jacobi3d" in out and "jacobi2d" in out
    assert "ndim=3" in out and "ndim=2" in out
    # Non-stencil apps describe their own geometry instead of a grid.
    assert "cholesky" in out and "tiles=8x8" in out
    assert "allreduce" in out and "algorithm=ring" in out


def test_run_second_app(capsys):
    rc = main(["run", "--app", "jacobi2d", "--version", "charm-d",
               "--grid", "96", "96", "--odf", "2", "--iterations", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "time/iteration" in out


def test_run_grid_arity_checked_against_app():
    with pytest.raises(SystemExit, match="--grid needs 2 value"):
        main(["run", "--app", "jacobi2d", "--grid", "96", "96", "96"])


def test_run_cholesky_app(capsys):
    rc = main(["run", "--app", "cholesky", "--version", "charm-d",
               "--tiles", "4", "--tile", "32", "--odf", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "cholesky" in out and "time/iteration" in out


def test_run_allreduce_app(capsys):
    rc = main(["run", "--app", "allreduce", "--version", "mpi-d",
               "--nodes", "2", "--elements", "4096", "--algorithm", "tree",
               "--chunks", "2", "--iterations", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "allreduce" in out and "time/iteration" in out


def test_inapplicable_flags_rejected_per_app():
    with pytest.raises(SystemExit, match="--grid is not meaningful"):
        main(["run", "--app", "allreduce", "--grid", "96"])
    with pytest.raises(SystemExit, match="--tiles is not meaningful"):
        main(["run", "--app", "jacobi3d", "--tiles", "4"])
    with pytest.raises(SystemExit, match="--iterations is not meaningful"):
        # a cholesky run's iteration count IS its tile count
        main(["run", "--app", "cholesky", "--iterations", "5"])
    with pytest.raises(SystemExit, match="--fusion is not meaningful"):
        main(["run", "--app", "cholesky", "--fusion", "C"])


def test_sweep_requires_a_stencil_app():
    with pytest.raises(SystemExit, match="no grid to weak-scale"):
        main(["sweep", "--app", "cholesky"])


def test_lint_strict_clean_on_shipped_tree(capsys):
    src = Path(repro.__file__).resolve().parent
    rc = main(["lint", "--strict", str(src)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean: 0 findings" in out


def test_lint_nonstrict_reports_but_exits_zero(capsys):
    rc = main(["lint", str(LINT_FIXTURES / "rpl001_unyielded_command.py")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "RPL001" in out


def test_lint_strict_fails_on_violation(capsys):
    rc = main(["lint", "--strict",
               str(LINT_FIXTURES / "rpl001_unyielded_command.py")])
    assert rc == 1
    assert "RPL001" in capsys.readouterr().out


def test_lint_json_schema(capsys):
    rc = main(["lint", "--format", "json",
               str(LINT_FIXTURES / "rpl001_unyielded_command.py")])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    assert set(data) == {"version", "files", "suppressed", "counts", "findings"}
    assert data["version"] == 2
    assert data["files"] == 1
    assert data["counts"] == {"RPL001": 2}
    for finding in data["findings"]:
        assert set(finding) == {"path", "line", "col", "code", "rule",
                                "family", "message"}
        assert finding["family"] == "sdag"
    assert data["findings"][0]["rule"] == "unyielded-command"


def test_lint_rules_listing(capsys):
    rc = main(["lint", "--rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for code in ("RPL001", "RPL004", "RPL010", "RPL011", "RPL020", "RPL023"):
        assert code in out
    assert "repro-lint: disable=" in out


def test_lint_missing_path_exits_two(capsys):
    rc = main(["lint", "no/such/path.py"])
    assert rc == 2
    assert "no/such/path.py" in capsys.readouterr().err


def test_lint_no_messageflow_flag(capsys):
    rc = main(["lint", "--strict", "--no-messageflow",
               str(LINT_FIXTURES / "rpl011_when_without_sender.py")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean" in out


PERF_RUN = ["perf", "run", "--version", "charm-d", "--grid", "96", "96", "96",
            "--odf", "2", "--iterations", "4", "--warmup", "1"]


def test_perf_run_prints_report(capsys):
    rc = main(PERF_RUN)
    out = capsys.readouterr().out
    assert rc == 0
    for needle in ("makespan", "critical path", "phase footprint", "counters"):
        assert needle in out


def test_perf_run_writes_artifacts(tmp_path, capsys):
    report = tmp_path / "r.perf.json"
    html = tmp_path / "r.html"
    trace = tmp_path / "r.trace.json"
    rc = main(PERF_RUN + ["--quiet", "--json", str(report),
                          "--html", str(html), "--trace", str(trace)])
    assert rc == 0
    assert capsys.readouterr().out == ""  # --quiet suppresses the text report
    doc = json.loads(report.read_text())
    assert doc["schema"] == "repro.perf/1"
    assert doc["time_per_iteration"] > 0
    assert html.read_text().startswith("<!doctype html>")
    assert all(ev["ph"] in ("X", "i") for ev in json.loads(trace.read_text()))


def test_perf_compare_gate_exit_codes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    rc = main(PERF_RUN + ["--quiet", "--json", str(baseline)])
    assert rc == 0

    # Identical inputs pass the gate.
    assert main(["perf", "compare", str(baseline), str(baseline)]) == 0
    assert "0 regression(s)" in capsys.readouterr().out

    # A 10% slowdown fails it at the default 5% tolerance...
    doc = json.loads(baseline.read_text())
    doc["time_per_iteration"] *= 1.10
    slower = tmp_path / "slower.json"
    slower.write_text(json.dumps(doc))
    assert main(["perf", "compare", str(baseline), str(slower)]) == 1
    assert "REGRESSION" in capsys.readouterr().out

    # ...and passes with the tolerance widened.
    assert main(["perf", "compare", str(baseline), str(slower),
                 "--tolerance", "0.2"]) == 0


def test_perf_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["perf"])


PERF_PROFILE = ["perf", "profile", "--version", "charm-d", "--grid", "64", "64", "64",
                "--odf", "2", "--iterations", "2", "--warmup", "1"]


def test_perf_profile_prints_hotspots(capsys):
    rc = main(PERF_PROFILE + ["--top", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    # A cProfile table naming the event kernel as a hot frame.
    assert "cumulative time" in out
    assert "sim/engine.py" in out


def test_perf_profile_sort_and_pstats_dump(tmp_path, capsys):
    import pstats

    dump = tmp_path / "run.pstats"
    rc = main(PERF_PROFILE + ["--top", "3", "--sort", "tottime",
                              "--pstats", str(dump)])
    captured = capsys.readouterr()
    assert rc == 0
    assert "internal time" in captured.out  # pstats' tottime heading
    assert str(dump) in captured.err
    # The dump round-trips through the standard pstats loader.
    stats = pstats.Stats(str(dump))
    assert stats.total_calls > 0


# ---------------------------------------------------------------------------
# Observability CLI: compare --format json / overrides, diff, trend, whatif
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def perf_baseline(tmp_path_factory):
    """One recorded perf report shared by the compare/diff CLI tests."""
    path = tmp_path_factory.mktemp("perf") / "baseline.json"
    assert main(PERF_RUN + ["--quiet", "--json", str(path)]) == 0
    return path


def _slowed_copy(baseline: Path, out: Path, factor: float = 1.10) -> Path:
    """A copy of ``baseline`` uniformly ``factor``x slower, keeping the
    critical-path composition tiling the makespan exactly."""
    doc = json.loads(baseline.read_text())
    doc["makespan"] *= factor
    doc["time_per_iteration"] *= factor
    cp = doc["critical_path"]
    cp["composition"] = {k: v * factor for k, v in cp["composition"].items()}
    out.write_text(json.dumps(doc))
    return out


def test_perf_compare_json_schema_is_pinned(perf_baseline, capsys):
    rc = main(["perf", "compare", str(perf_baseline), str(perf_baseline),
               "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    # The v1 machine-readable contract: exactly these keys.
    assert set(doc) == {"schema", "ok", "tolerance", "overrides",
                        "regressions", "improvements", "unchanged", "blame"}
    assert doc["schema"] == "repro.perf-compare/1"
    assert doc["ok"] is True and doc["blame"] is None
    assert doc["unchanged"] == 2  # time_per_iteration + makespan


def test_perf_compare_gate_trip_carries_a_blame_line(
        perf_baseline, tmp_path, capsys):
    slower = _slowed_copy(perf_baseline, tmp_path / "slower.json")
    rc = main(["perf", "compare", str(perf_baseline), str(slower),
               "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["ok"] is False
    assert [r["metric"] for r in doc["regressions"]] == \
        ["makespan", "time_per_iteration"]
    for row in doc["regressions"]:
        assert set(row) == {"metric", "baseline", "current", "ratio"}
        assert row["ratio"] == pytest.approx(1.10)
    # The diff-based explanation of *why* the gate tripped rides along.
    assert isinstance(doc["blame"], str) and doc["blame"]

    rc = main(["perf", "compare", str(perf_baseline), str(slower)])
    out = capsys.readouterr().out
    assert rc == 1 and "blame:" in out


def test_perf_compare_per_metric_tolerance_overrides(
        perf_baseline, tmp_path, capsys):
    slower = _slowed_copy(perf_baseline, tmp_path / "slower.json")
    rc = main(["perf", "compare", str(perf_baseline), str(slower),
               "--tolerance-for", "time_per_iteration=0.2",
               "--tolerance-for", "makespan=0.2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "tolerance override" in out
    # Overrides for metrics absent from these inputs are allowed.
    assert main(["perf", "compare", str(perf_baseline), str(slower),
                 "--tolerance-for", "time_per_iteration=0.2",
                 "--tolerance-for", "makespan=0.2",
                 "--tolerance-for", "fig6a.wall_s=0.5"]) == 0
    capsys.readouterr()


def test_perf_compare_bad_override_spec_exits_two(perf_baseline, capsys):
    for bad in ("time_per_iteration", "=0.2", "makespan=-0.1", "makespan=x"):
        rc = main(["perf", "compare", str(perf_baseline), str(perf_baseline),
                   "--tolerance-for", bad])
        captured = capsys.readouterr()
        assert rc == 2, bad
        assert "--tolerance-for" in captured.err


def test_perf_diff_text_and_json(perf_baseline, tmp_path, capsys):
    slower = _slowed_copy(perf_baseline, tmp_path / "slower.json")
    rc = main(["perf", "diff", str(perf_baseline), str(slower)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "perf diff: makespan" in out and "blame:" in out

    rc = main(["perf", "diff", str(perf_baseline), str(slower),
               "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["schema"] == "repro.perf-diff/1"
    assert doc["makespan_delta"] == pytest.approx(
        json.loads(perf_baseline.read_text())["makespan"] * 0.10)


def test_perf_diff_incomparable_exits_two(perf_baseline, tmp_path, capsys):
    # Exit 2 (not the gate-fail 1): a pre-app report has no comparable
    # phase vocabulary.
    old_doc = json.loads(perf_baseline.read_text())
    old_doc["config"].pop("app")
    old = tmp_path / "old.json"
    old.write_text(json.dumps(old_doc))
    rc = main(["perf", "diff", str(old), str(perf_baseline)])
    captured = capsys.readouterr()
    assert rc == 2
    assert "pre-app report shape" in captured.err

    rc = main(["perf", "diff", str(perf_baseline), "/nonexistent.json"])
    captured = capsys.readouterr()
    assert rc == 2
    assert "cannot read" in captured.err


def test_perf_trend_writes_the_dashboard(tmp_path, capsys):
    meta = tmp_path / "bench_meta.json"
    meta.write_text(json.dumps({"fig": {
        "latest": {"at": "2026-08-08T00:00:00+00:00", "wall_s": 0.2},
        "history": [{"at": "2026-08-08T00:00:00+00:00", "wall_s": 0.2}]}}))
    out = tmp_path / "trend.html"
    rc = main(["perf", "trend", "--meta", str(meta), "--out", str(out)])
    captured = capsys.readouterr()
    assert rc == 0
    assert str(out) in captured.err
    assert "repro.trend/1" in out.read_text()


def test_perf_trend_missing_meta_exits_two(tmp_path, capsys):
    rc = main(["perf", "trend", "--meta", str(tmp_path / "absent.json"),
               "--out", str(tmp_path / "trend.html")])
    captured = capsys.readouterr()
    assert rc == 2
    assert "cannot read" in captured.err


PERF_WHATIF = ["perf", "whatif", "--version", "charm-d",
               "--grid", "64", "64", "64", "--odf", "2",
               "--iterations", "2", "--warmup", "1"]


def test_perf_whatif_projects_interventions(capsys):
    rc = main(PERF_WHATIF + ["--intervene", "net*0",
                             "--intervene", "h2d*0.5", "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["recorded_makespan"] > 0
    # Canonical spelling: the multiply sign renders as "x".
    assert [p["intervention"] for p in doc["predictions"]] == \
        ["netx0", "h2dx0.5"]
    for pred in doc["predictions"]:
        assert 0 < pred["makespan"] <= doc["recorded_makespan"] * (1 + 1e-9)


def test_perf_whatif_check_validates_against_reruns(capsys):
    rc = main(PERF_WHATIF + ["--intervene", "net*0", "--check"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "what-if model" in out
    assert "predicted" in out and "actual" in out and "error" in out


def test_perf_whatif_bad_inputs_exit_two(capsys):
    rc = main(PERF_WHATIF + ["--intervene", "warp*fast"])
    assert rc == 2
    assert "perf whatif" in capsys.readouterr().err
    # Nothing to project is an input error, not a silent no-op.
    rc = main(PERF_WHATIF)
    assert rc == 2
    assert "nothing to project" in capsys.readouterr().err
