"""Test the EXPERIMENTS.md generator against synthetic saved results."""

import subprocess
import sys
from pathlib import Path

from repro.analysis import FigureData

REPO = Path(__file__).resolve().parent.parent.parent


def test_generator_handles_missing_and_present_results(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    # One present figure (synthetic but claim-passing), everything else missing.
    fig = FigureData("fig6a", "t", "nodes", "time/iter (s)")
    legacy = fig.new_series("charm-h legacy")
    opt = fig.new_series("charm-h optimized")
    for x in (1, 2, 4):
        legacy.add(x, 1.0)
        opt.add(x, 0.9)
    fig.save_json(results / "fig6a.json")

    out = tmp_path / "EXP.md"
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "generate_experiments.py"),
         str(results), str(out)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr
    text = out.read_text()
    assert "# EXPERIMENTS" in text
    assert "Fig. 6a" in text
    assert "✅ optimized never slower than legacy" in text
    assert text.count("no saved results") >= 5  # the missing figures are flagged
    assert "machine-checked shape claims pass" in text


def test_generator_flags_failing_claims(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    fig = FigureData("fig6a", "t", "nodes", "time/iter (s)")
    legacy = fig.new_series("charm-h legacy")
    opt = fig.new_series("charm-h optimized")
    for x in (1, 2):
        legacy.add(x, 1.0)
        opt.add(x, 1.2)  # optimization made it slower: claim must fail
    fig.save_json(results / "fig6a.json")
    out = tmp_path / "EXP.md"
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "generate_experiments.py"),
         str(results), str(out)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert proc.returncode == 1  # nonzero when any claim fails
    assert "❌" in out.read_text()
