"""Tests for the shape-claim checkers (on synthetic figure data)."""

from repro.analysis import FigureData
from repro.core import (
    Claim,
    check_figure6,
    check_figure7a,
    check_figure7b,
    check_figure8,
    check_figure9,
    check_odf_sweep,
    render_claims,
)


def test_claim_str():
    good = Claim("works", True, "detail here")
    bad = Claim("broken", False)
    assert "PASS" in str(good) and "detail here" in str(good)
    assert "FAIL" in str(bad)
    text = render_claims([good, bad])
    assert text.count("\n") == 1


def fig6_synth(opt_faster=True):
    fig = FigureData("fig6a", "t", "nodes", "s")
    legacy = fig.new_series("charm-h legacy")
    opt = fig.new_series("charm-h optimized")
    for x in (1, 2, 4):
        legacy.add(x, 1.0)
        opt.add(x, 0.9 if opt_faster else 1.1)
    return fig


def test_check_figure6_pass_and_fail():
    assert all(c.ok for c in check_figure6(fig6_synth(True)))
    assert not all(c.ok for c in check_figure6(fig6_synth(False)))


def fig7_synth(invert=False):
    fig = FigureData("fig7a", "t", "nodes", "s")
    vals = {
        "MPI-H": [1.0, 1.2, 1.5, 1.9],
        "MPI-D": [1.0, 1.2, 2.0, 2.6],
        "Charm-H (ODF 4)": [0.9, 0.95, 1.0, 1.05],
        "Charm-D (ODF 4)": [0.95, 1.1, 1.3, 1.5],
    }
    if invert:
        vals["Charm-D (ODF 4)"] = [0.5, 0.5, 0.5, 0.5]  # breaks degradation claim
    for label, ys in vals.items():
        s = fig.new_series(label)
        for x, y in zip((1, 2, 8, 16), ys):
            s.add(x, y)
    return fig


def test_check_figure7a_pass():
    assert all(c.ok for c in check_figure7a(fig7_synth()))


def test_check_figure7a_detects_inversion():
    claims = check_figure7a(fig7_synth(invert=True))
    assert any(not c.ok for c in claims)


def test_check_figure7b_all_thresholds():
    fig = FigureData("fig7b", "t", "nodes", "s")
    for label, base in (("MPI-H", 2e-4), ("MPI-D", 1.5e-4),
                        ("Charm-H (ODF 1)", 1.8e-4), ("Charm-D (ODF 1)", 1.4e-4)):
        s = fig.new_series(label)
        for x in (1, 2, 4):
            s.add(x, base * x**0.2)
    assert all(c.ok for c in check_figure7b(fig))


def fig8_synth(last_x=64):
    fig = FigureData("fig8", "t", "nodes", "s")
    speed = {"baseline": 1.0, "fusion-A": 0.9, "fusion-B": 0.8, "fusion-C": 0.7}
    for odf, scale in ((1, 1.0), (8, 2.0)):
        for name, f in speed.items():
            s = fig.new_series(f"ODF-{odf} {name}")
            for x in (1, last_x):
                # Gains shown only at the large end.
                s.add(x, scale * (1.0 if x == 1 else f * (0.8 if odf == 8 else 1.0)))
    return fig


def test_check_figure8_pass_at_scale():
    assert all(c.ok for c in check_figure8(fig8_synth()))


def test_check_figure8_small_ladder_uses_neutral_claim():
    claims = check_figure8(fig8_synth(last_x=16))
    assert any("neutral" in c.name for c in claims)


def test_check_figure9():
    fig = FigureData("fig9", "t", "nodes", "x")
    data = {
        "ODF-1 baseline": [1.0, 1.02],
        "ODF-1 fusion-C": [1.0, 1.0],
        "ODF-8 baseline": [1.1, 1.5],
        "ODF-8 fusion-C": [1.0, 1.05],
    }
    for label, ys in data.items():
        s = fig.new_series(label)
        for x, y in zip((1, 16), ys):
            s.add(x, y)
    assert all(c.ok for c in check_figure9(fig))


def test_check_odf_sweep():
    fig = FigureData("odf_sweep", "t", "ODF", "s")
    s = fig.new_series("charm-h")
    for odf, y in ((1, 1.0), (2, 0.8), (4, 0.7), (8, 0.75), (16, 0.9)):
        s.add(odf, y)
    ok = check_odf_sweep(fig, {"charm-h": (4, 8)})
    assert all(c.ok for c in ok)
    bad = check_odf_sweep(fig, {"charm-h": (16,)})
    assert not all(c.ok for c in bad)
