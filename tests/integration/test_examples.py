"""Smoke tests for the example scripts.

Each example must import cleanly; the fast ones also run end to end (the
heavier scaling examples are exercised by the benchmark suite instead).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples"


def load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES.glob("*.py"))


def test_every_example_is_covered_here():
    assert len(ALL_EXAMPLES) >= 9


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports(name):
    module = load(name)
    assert hasattr(module, "main")
    assert module.__doc__  # every example documents itself


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "bit-identical to the serial reference: True" in out


@pytest.mark.slow
def test_fault_tolerance_runs(capsys):
    load("fault_tolerance").main()
    out = capsys.readouterr().out
    assert "bit-identical to an uninterrupted 12-iteration solve: True" in out


@pytest.mark.slow
def test_load_balancing_runs(capsys):
    load("load_balancing").main()
    out = capsys.readouterr().out
    assert "speedup from load balancing" in out
    # The rebalanced phase must actually be faster.
    import re

    speedup = float(re.search(r"speedup from load balancing: ([\d.]+)x", out).group(1))
    assert speedup > 1.2


@pytest.mark.slow
def test_heat_until_converged_runs(capsys):
    load("heat_until_converged").main()
    out = capsys.readouterr().out
    assert "converged after" in out
