"""End-to-end shape checks: the reproduced figures must show the paper's
qualitative results on reduced node ladders.

The full-scale equivalents run in ``benchmarks/`` (same checkers, paper
ladders); these keep the claims pinned in the fast suite.
"""

import pytest

from repro.core import (
    check_figure6,
    check_figure7a,
    check_figure7b,
    check_figure7c,
    check_figure8,
    check_figure9,
    check_odf_sweep,
    figure6,
    figure7a,
    figure7b,
    figure7c,
    figure8,
    figure9,
    odf_sweep,
    render_claims,
)


def assert_claims(claims):
    failed = [c for c in claims if not c.ok]
    assert not failed, "\n" + render_claims(claims)


@pytest.mark.slow
def test_fig6_weak_shapes():
    assert_claims(check_figure6(figure6(mode="weak", nodes=(1, 2, 4, 8))))


@pytest.mark.slow
def test_fig6_strong_shapes():
    assert_claims(check_figure6(figure6(mode="strong", nodes=(8, 16))))


@pytest.mark.slow
def test_fig7a_shapes():
    assert_claims(check_figure7a(figure7a(nodes=(1, 2, 4, 8))))


@pytest.mark.slow
def test_fig7b_shapes():
    assert_claims(check_figure7b(figure7b(nodes=(1, 2, 4, 8))))


@pytest.mark.slow
def test_fig7c_shapes():
    fig = figure7c(nodes=(8, 16, 32), odf_candidates=(1, 2, 4))
    claims = [c for c in check_figure7c(fig)
              # The ODF-crossover claim needs the full ladder (the paper
              # places it at 16-128 nodes); asserted in the benchmark run.
              if "crossover" not in c.name]
    assert_claims(claims)


@pytest.mark.slow
def test_fig8_shapes():
    assert_claims(check_figure8(figure8(nodes=(4, 16))))


@pytest.mark.slow
def test_fig9_shapes():
    assert_claims(check_figure9(figure9(nodes=(4, 16))))


@pytest.mark.slow
def test_odf_sweep_small_problem_prefers_low_odf():
    fig = odf_sweep(base=(192, 192, 192), nodes=4, odfs=(1, 2, 4, 8))
    assert_claims(check_odf_sweep(fig, {"charm-h": (1,), "charm-d": (1,)}))


@pytest.mark.slow
def test_odf_sweep_large_problem_prefers_overdecomposition():
    fig = odf_sweep(base=(1536, 1536, 1536), nodes=4, odfs=(1, 2, 4))
    # ODF > 1 must win for both Charm versions at the big problem size.
    assert_claims(check_odf_sweep(fig, {"charm-h": (2, 4), "charm-d": (2, 4)}))
