"""Property-based conservation and determinism tests across the stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import UcxContext
from repro.hardware import Cluster, MachineSpec, Message
from repro.sim import Engine


def make_cluster(n_nodes=2):
    eng = Engine()
    return eng, Cluster(eng, MachineSpec.small_debug(), n_nodes)


@settings(max_examples=30, deadline=None)
@given(
    msgs=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 2_000_000)),
        min_size=1,
        max_size=25,
    )
)
def test_property_network_delivers_every_message_exactly_once(msgs):
    eng, cluster = make_cluster()
    net = cluster.network
    events = []
    sent_bytes = 0
    for src, dst, size in msgs:
        events.append(net.transfer(Message(src, dst, size)))
        sent_bytes += size
    eng.run()
    assert all(ev.processed for ev in events)
    assert net.messages_sent == len(msgs)
    assert net.bytes_sent == sent_bytes
    # No port is left held.
    for r in net.inject + net.eject + net.intra:
        assert r.in_use == 0 and r.queue_length == 0


@settings(max_examples=30, deadline=None)
@given(
    msgs=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 500_000)),
        min_size=1,
        max_size=15,
    )
)
def test_property_delivery_never_beats_the_wire(msgs):
    eng, cluster = make_cluster()
    net = cluster.network
    records = []
    for src, dst, size in msgs:
        m = Message(src, dst, size)
        net.transfer(m)
        records.append((m, eng.now, size))
    eng.run()
    for m, t0, size in records:
        assert m.delivered_at >= t0 + net.uncontended_time(m.src_pe, m.dst_pe, size) - 1e-15


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 3),  # src pe
            st.integers(0, 3),  # dst pe
            st.sampled_from([512, 64 * 1024, 3 * 1024 * 1024]),  # size/protocol
            st.booleans(),  # device buffers
            st.booleans(),  # recv posted first
        ),
        min_size=1,
        max_size=12,
    )
)
def test_property_ucx_matched_pairs_always_complete(ops):
    eng, cluster = make_cluster()
    ucx = UcxContext(cluster)
    handles = []
    for i, (src, dst, size, device, recv_first) in enumerate(ops):
        def post_send():
            return ucx.isend(src, dst, size, tag=("t", i), on_device=device)

        def post_recv():
            return ucx.irecv(src, dst, size, tag=("t", i), on_device=device)

        first, second = (post_recv, post_send) if recv_first else (post_send, post_recv)
        handles.append(first())
        handles.append(second())
    eng.run()
    assert all(h.done.processed for h in handles)
    assert ucx.pending_counts() == (0, 0)


@settings(max_examples=10, deadline=None)
@given(
    msgs=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 1_000_000)),
        min_size=1,
        max_size=10,
    )
)
def test_property_simulation_is_deterministic(msgs):
    def run():
        eng, cluster = make_cluster()
        for src, dst, size in msgs:
            cluster.network.transfer(Message(src, dst, size))
        eng.run()
        return eng.now, cluster.network.bytes_sent

    assert run() == run()
