"""The lint engine: file collection, model building, rule dispatch.

One :class:`LintEngine` run parses every ``.py`` file under the given
paths, builds a light semantic model (chare-like classes via transitive
base-name closure from ``Chare``/``MpiProcess``/``AmpiProcess``, generator
methods, message producers/consumers), then applies the rule families of
:mod:`repro.lint.rules`, :mod:`repro.lint.streamdag` and
:mod:`repro.lint.messageflow`.
Findings suppressed by ``# repro-lint: disable=CODE`` comments
(:mod:`repro.lint.suppressions`) are counted but not reported.

Scoping:

* SDAG-protocol, stream/DAG-protocol (RPL030-RPL036) and message-flow
  rules apply to every scanned file;
* determinism rules (RPL020-RPL023) apply only to files inside the
  simulation model packages — path components ``repro`` plus one of
  ``config.determinism_parts`` (default ``sim``/``runtime``/``comm``/
  ``apps``); pass ``determinism_parts=None`` to check everywhere
  (used by the fixture tests);
* directory walks skip ``config.exclude_parts`` (notably the deliberately
  violating fixture corpus under ``tests/lint/fixtures``); explicitly
  listed files are always linted.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .messageflow import FlowModel, collect_flow, resolve_messageflow
from .rules import (
    BASE_CLASS_NAMES,
    DeterminismChecker,
    Finding,
    SdagChecker,
    is_generator_fn,
)
from .streamdag import StreamDagChecker
from .suppressions import is_suppressed, parse_suppressions

__all__ = ["LintConfig", "LintReport", "LintEngine", "run_lint"]

DEFAULT_DETERMINISM_PARTS = ("sim", "runtime", "comm", "apps")
DEFAULT_MAILBOX_ALLOWLIST = frozenset({"_reduction_result", "_gm_post"})
DEFAULT_EXCLUDE_PARTS = ("__pycache__", ".git", ".cache", "fixtures")


@dataclass(frozen=True)
class LintConfig:
    """Knobs for one engine run (defaults match the CI configuration)."""

    messageflow: bool = True
    determinism_parts: Optional[tuple] = DEFAULT_DETERMINISM_PARTS
    mailbox_allowlist: frozenset = DEFAULT_MAILBOX_ALLOWLIST
    exclude_parts: tuple = DEFAULT_EXCLUDE_PARTS


@dataclass
class LintReport:
    """Outcome of one run: surviving findings plus bookkeeping."""

    findings: list[Finding]
    files: int
    suppressed: int

    @property
    def counts(self) -> Counter:
        return Counter(f.code for f in self.findings)

    @property
    def ok(self) -> bool:
        return not self.findings


@dataclass
class MethodInfo:
    name: str
    node: ast.FunctionDef
    is_generator: bool


@dataclass
class ClassInfo:
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, MethodInfo]


@dataclass
class FileModel:
    path: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]]
    classes: list[ClassInfo] = field(default_factory=list)
    module_generators: dict[str, bool] = field(default_factory=dict)
    flow: FlowModel = field(default_factory=FlowModel)


def _base_name(node) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _build_model(path: str, source: str, tree: ast.Module) -> FileModel:
    model = FileModel(path, tree, parse_suppressions(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            methods = {}
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    methods[stmt.name] = MethodInfo(
                        stmt.name, stmt, is_generator_fn(stmt))
            bases = tuple(b for b in map(_base_name, node.bases) if b)
            model.classes.append(ClassInfo(node.name, node, bases, methods))
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            model.module_generators[stmt.name] = is_generator_fn(stmt)
    model.flow = collect_flow(tree)
    return model


class LintEngine:
    """Run the rule families over a set of files/directories."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()

    # -- file collection ---------------------------------------------------
    def collect_files(self, paths: Sequence) -> list[Path]:
        excluded = set(self.config.exclude_parts)
        files: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for candidate in sorted(path.rglob("*.py")):
                    if not excluded.intersection(candidate.parts):
                        files.append(candidate)
            else:
                # Explicit file arguments bypass the exclusion list so the
                # fixture tests can lint deliberately-violating files.
                files.append(path)
        seen: set[str] = set()
        unique = []
        for f in files:
            key = str(f.resolve())
            if key not in seen:
                seen.add(key)
                unique.append(f)
        return unique

    @staticmethod
    def _display_path(path: Path) -> str:
        try:
            return path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            return path.as_posix()

    def _determinism_in_scope(self, path: Path) -> bool:
        parts = self.config.determinism_parts
        if parts is None:
            return True
        file_parts = set(path.resolve().parts)
        return "repro" in file_parts and bool(file_parts.intersection(parts))

    # -- the run -----------------------------------------------------------
    def run(self, paths: Sequence) -> LintReport:
        raw_findings: list[Finding] = []
        add = raw_findings.append
        models: list[tuple[Path, FileModel]] = []

        files = self.collect_files(paths)
        for path in files:
            display = self._display_path(path)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError, ValueError) as exc:
                line = getattr(exc, "lineno", None) or 1
                add(Finding(display, line, 0, "RPL000",
                            f"file could not be parsed: {exc}"))
                continue
            models.append((path, _build_model(display, source, tree)))

        chare_like = self._chare_closure(m for _p, m in models)
        global_methods = self._global_method_registry(
            (m for _p, m in models), chare_like)

        entry_defs: set[str] = set()
        for _path, model in models:
            for cls in model.classes:
                if cls.name in chare_like:
                    entry_defs.update(cls.methods)

        for path, model in models:
            for cls in model.classes:
                if cls.name in chare_like:
                    SdagChecker(model.path, cls, model.module_generators,
                                global_methods, add).check()
            StreamDagChecker(model.path, model.tree, add).check()
            if self._determinism_in_scope(path):
                DeterminismChecker(model.path, model.tree, add).check()

        if self.config.messageflow:
            flows = {m.path: m.flow for _p, m in models}
            raw_findings.extend(resolve_messageflow(
                flows, entry_defs, self.config.mailbox_allowlist))

        suppressions = {m.path: m.suppressions for _p, m in models}
        findings: list[Finding] = []
        suppressed = 0
        for finding in raw_findings:
            file_suppressions = suppressions.get(finding.path, {})
            if is_suppressed(file_suppressions, finding.line, finding.code):
                suppressed += 1
            else:
                findings.append(finding)
        findings.sort()
        return LintReport(findings=findings, files=len(files),
                          suppressed=suppressed)

    # -- global registries -------------------------------------------------
    @staticmethod
    def _chare_closure(models: Iterable[FileModel]) -> set[str]:
        """Class names that are chare-like: the DSL base classes plus
        everything reachable from them through base-name edges."""
        all_classes: list[ClassInfo] = []
        for model in models:
            all_classes.extend(model.classes)
        chare_like = set(BASE_CLASS_NAMES)
        changed = True
        while changed:
            changed = False
            for cls in all_classes:
                if cls.name in chare_like:
                    continue
                if chare_like.intersection(cls.bases):
                    chare_like.add(cls.name)
                    changed = True
        return chare_like

    @staticmethod
    def _global_method_registry(models: Iterable[FileModel],
                                chare_like: set) -> dict[str, str]:
        """method name -> "gen" / "plain" / "ambiguous" over every
        chare-like class in the run (resolves inherited helpers)."""
        tally: dict[str, set] = {}
        for model in models:
            for cls in model.classes:
                if cls.name not in chare_like:
                    continue
                for method in cls.methods.values():
                    kind = "gen" if method.is_generator else "plain"
                    tally.setdefault(method.name, set()).add(kind)
        return {
            name: next(iter(kinds)) if len(kinds) == 1 else "ambiguous"
            for name, kinds in tally.items()
        }


def run_lint(paths: Sequence, config: Optional[LintConfig] = None) -> LintReport:
    """Convenience wrapper: one engine run over ``paths``."""
    return LintEngine(config).run(paths)
