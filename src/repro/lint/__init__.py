"""``repro.lint``: AST-based SDAG-protocol & determinism linter.

The static counterpart of the runtime validation layer
(docs/validation.md): where the :class:`~repro.validate.InvariantChecker`
audits a *running* simulation, the linter proves protocol and determinism
properties of the *source* — before anything runs.  Four rule families
with stable ``RPL0xx`` codes (catalogue: docs/linting.md):

* **SDAG protocol** (RPL001-RPL004): command factories never yielded,
  generator helpers called without ``yield from``, non-Command yields,
  suspend-only APIs in plain entry methods;
* **message flow** (RPL010-RPL011): cross-file matching of ``send``
  deposits against entry methods and ``when`` consumers;
* **determinism** (RPL020-RPL023): wall-clock, unseeded RNG, OS entropy
  and unordered-set iteration inside the simulation model packages;
* **stream/DAG protocol** (RPL030-RPL036): TaskSpace literal-key misuse
  (undeclared/redeclared/never-attached keys, completion-before-declare),
  set-ordered stream launches, and monitors attached after ``run()`` —
  the static counterpart of the runtime sanitizer (docs/sanitizer.md).

Entry points: ``python -m repro lint [--strict] [--format json] PATH...``
or :func:`run_lint` from code.  Stdlib-only (``ast`` + ``tokenize``).
"""

from .engine import (
    DEFAULT_MAILBOX_ALLOWLIST,
    LintConfig,
    LintEngine,
    LintReport,
    run_lint,
)
from .reporting import JSON_SCHEMA_VERSION, render_json, render_text, rules_catalogue
from .rules import RULES, Finding, Rule
from .streamdag import StreamDagChecker

__all__ = [
    "DEFAULT_MAILBOX_ALLOWLIST",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "RULES",
    "Rule",
    "StreamDagChecker",
    "render_json",
    "render_text",
    "rules_catalogue",
    "run_lint",
]
