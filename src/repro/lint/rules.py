"""Rule registry and per-file AST checkers.

Two of the three rule families live here:

* **SDAG protocol** (RPL001–RPL004) — misuse of the chare DSL
  (:mod:`repro.runtime.chare`): command factories whose result is never
  yielded, generator helpers invoked without ``yield from``, yields of
  values that cannot be :class:`~repro.runtime.commands.Command` objects,
  and plain entry methods calling suspend-only APIs.
* **determinism** (RPL020–RPL023) — wall-clock reads, unseeded RNG, OS
  entropy, and unordered-``set`` iteration inside the simulation model
  packages, all of which corrupt trace digests and cache keys (the
  bitwise contracts of docs/validation.md and docs/execution.md).

The cross-file message-flow family (RPL010/RPL011) is in
:mod:`repro.lint.messageflow`.  Every rule has a stable ``RPL0xx`` code;
findings on a line can be silenced with ``# repro-lint: disable=CODE``
(:mod:`repro.lint.suppressions`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "COMMAND_FACTORIES",
    "SUSPEND_ONLY",
    "BASE_CLASS_NAMES",
    "ImportMap",
    "is_generator_fn",
    "SdagChecker",
    "DeterminismChecker",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, anchored to a file position."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    family: str = "sdag"


_RULE_LIST = [
    Rule("RPL000", "parse-error", "file could not be parsed; nothing else was checked",
         family="sdag"),
    Rule("RPL001", "unyielded-command",
         "command factory (work/launch/launch_graph/when/wait/wait_all/"
         "isend/irecv/waitall/sync) called but its result discarded — commands "
         "do nothing unless yielded to the scheduler", family="sdag"),
    Rule("RPL002", "helper-without-yield-from",
         "generator entry method/helper invoked as a plain call — without "
         "'yield from' the body never executes", family="sdag"),
    Rule("RPL003", "yield-of-non-command",
         "generator entry method yields a value that cannot be a Command "
         "(literal, tuple, comparison, bare yield, ...)", family="sdag"),
    Rule("RPL004", "suspend-in-plain-method",
         "plain (non-generator) entry method calls a suspend-only API "
         "(when/wait/wait_all/sync); only generator entry methods can suspend",
         family="sdag"),
    Rule("RPL010", "deposit-never-consumed",
         "send targets a method/mailbox with no entry-method definition and "
         "no when() consumer anywhere — dropped work or deadlock",
         family="messageflow"),
    Rule("RPL011", "when-without-sender",
         "when() waits on a mailbox with no statically-visible sender — "
         "likely deadlock", family="messageflow"),
    Rule("RPL020", "wall-clock-in-model",
         "wall-clock read (time.time/perf_counter/datetime.now/...) in "
         "simulation model code; model time must come from the engine",
         family="determinism"),
    Rule("RPL021", "unseeded-random",
         "global or unseeded RNG (random.*, numpy legacy global, bare "
         "default_rng()); use sim.rng.RandomStreams", family="determinism"),
    Rule("RPL022", "os-entropy",
         "OS entropy source (os.urandom/uuid.uuid4/secrets.*) — "
         "nondeterministic across runs", family="determinism"),
    Rule("RPL023", "unordered-set-iteration",
         "iteration over an unordered set; order varies with hashing and "
         "perturbs trace digests — sort first", family="determinism"),
    Rule("RPL030", "completion-of-undeclared-key",
         "TaskSpace.completion() of a literal task key never declared in "
         "this file — raises KeyError at runtime", family="streamdag"),
    Rule("RPL031", "completion-before-declare",
         "TaskSpace.completion() of a literal task key at a line before the "
         "key's declare — the event cannot exist yet", family="streamdag"),
    Rule("RPL032", "declared-never-attached",
         "literal task key declared but never attached in this file — a "
         "never-launched task passes the finish checks silently",
         family="streamdag"),
    Rule("RPL033", "unordered-stream-launch",
         "stream launch whose wait list is built from an unordered set; "
         "event order varies with hashing and perturbs trace digests",
         family="streamdag"),
    Rule("RPL034", "redeclared-key",
         "the same literal task key declared twice — TaskSpace.declare "
         "raises at runtime", family="streamdag"),
    Rule("RPL035", "attach-of-undeclared-key",
         "TaskSpace.attach() of a literal task key never declared in this "
         "file — raises KeyError at runtime", family="streamdag"),
    Rule("RPL036", "monitor-attach-after-run-start",
         "monitor attached to an engine/runtime after its run() already "
         "executed in the same scope — pure observers see nothing "
         "retroactively", family="streamdag"),
]

RULES: dict[str, Rule] = {r.code: r for r in _RULE_LIST}

# Chare/MpiProcess/AmpiProcess command constructors (use with ``yield``).
COMMAND_FACTORIES = frozenset({
    "work", "launch", "launch_graph", "when", "wait", "wait_all",
    "isend", "irecv", "waitall", "sync",
})
# Factories whose command *suspends* the caller: meaningless outside a
# generator entry method.
SUSPEND_ONLY = frozenset({"when", "wait", "wait_all", "sync"})
# Root classes of the chare-style DSL; subclasses (transitively, within the
# linted tree) are treated as chare-like.
BASE_CLASS_NAMES = frozenset({"Chare", "MpiProcess", "AmpiProcess"})


def is_generator_fn(fn: ast.FunctionDef) -> bool:
    """True if ``fn``'s own body contains yield/yield-from (nested
    functions, lambdas and classes do not count)."""
    stack = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _walk_own(fn: ast.FunctionDef):
    """Walk a function body without descending into nested defs/classes."""
    stack = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _self_call_attr(call: ast.Call) -> Optional[str]:
    """``self.X(...)`` -> ``"X"``, else None."""
    f = call.func
    if (isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name)
            and f.value.id == "self"):
        return f.attr
    return None


# ---------------------------------------------------------------------------
# SDAG protocol rules (RPL001-RPL004)
# ---------------------------------------------------------------------------


class SdagChecker:
    """Per-class checker for the SDAG protocol rules.

    Parameters
    ----------
    class_info:
        The chare-like class under scrutiny (``engine.ClassInfo``).
    module_generators:
        ``{name: is_generator}`` for this file's module-level functions.
    global_methods:
        ``{method name: "gen" | "plain" | "ambiguous"}`` aggregated over
        every chare-like class in the run (resolves inherited helpers like
        ``Chare.allreduce`` across files).
    """

    def __init__(self, path: str, class_info, module_generators: dict,
                 global_methods: dict, add: Callable[[Finding], None]):
        self.path = path
        self.cls = class_info
        self.module_generators = module_generators
        self.global_methods = global_methods
        self.add = add

    def check(self) -> None:
        for method in self.cls.methods.values():
            if method.is_generator:
                self._check_generator_method(method)
            else:
                self._check_plain_method(method)

    # -- resolution -------------------------------------------------------
    def _generator_helper_name(self, call: ast.Call) -> Optional[str]:
        """Name of the generator helper this call invokes, if resolvable."""
        attr = _self_call_attr(call)
        if attr is not None:
            own = self.cls.methods.get(attr)
            if own is not None:
                return attr if own.is_generator else None
            if self.global_methods.get(attr) == "gen":
                return attr
            return None
        if isinstance(call.func, ast.Name):
            if self.module_generators.get(call.func.id):
                return call.func.id
        return None

    # -- generator entry methods / helpers --------------------------------
    def _check_generator_method(self, method) -> None:
        for node in _walk_own(method.node):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                helper = self._generator_helper_name(call)
                if helper is not None:
                    self._emit("RPL002", call,
                               f"generator helper {helper}() called without "
                               f"'yield from' — its body never executes")
                    continue
                attr = _self_call_attr(call)
                if attr in COMMAND_FACTORIES:
                    self._emit("RPL001", call,
                               f"result of self.{attr}(...) is discarded — "
                               f"commands do nothing unless yielded")
            elif isinstance(node, ast.Yield):
                self._check_yield(node)

    def _check_yield(self, node: ast.Yield) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            helper = self._generator_helper_name(value)
            if helper is not None:
                self._emit("RPL002", node,
                           f"'yield {helper}(...)' yields the generator object "
                           f"itself — use 'yield from'")
            return
        if value is None:
            self._emit("RPL003", node,
                       "bare 'yield' sends None to the scheduler; entry "
                       "methods must yield Command objects")
            return
        bad = (ast.Constant, ast.JoinedStr, ast.Tuple, ast.List, ast.Dict,
               ast.Set, ast.Compare, ast.BoolOp, ast.ListComp, ast.SetComp,
               ast.DictComp, ast.GeneratorExp, ast.Lambda)
        if isinstance(value, bad):
            kind = type(value).__name__
            self._emit("RPL003", node,
                       f"yield of a {kind} — entry methods must yield "
                       f"Command objects")

    # -- plain entry methods ----------------------------------------------
    def _check_plain_method(self, method) -> None:
        discarded_helpers = set()
        for node in _walk_own(method.node):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                helper = self._generator_helper_name(node.value)
                if helper is not None:
                    discarded_helpers.add(node.value)
                    self._emit("RPL002", node.value,
                               f"generator helper {helper}() called from a "
                               f"plain method — its body never executes")
        for node in _walk_own(method.node):
            if not isinstance(node, ast.Call) or node in discarded_helpers:
                continue
            attr = _self_call_attr(node)
            if attr in SUSPEND_ONLY:
                self._emit("RPL004", node,
                           f"plain entry method calls suspend-only "
                           f"self.{attr}(...); only generator entry methods "
                           f"can suspend — make this a generator or drop it")

    def _emit(self, code: str, node, message: str) -> None:
        self.add(Finding(self.path, node.lineno, node.col_offset, code, message))


# ---------------------------------------------------------------------------
# Determinism rules (RPL020-RPL023)
# ---------------------------------------------------------------------------


class ImportMap:
    """Resolve attribute/name call targets to dotted module paths using the
    file's imports (``import numpy as np`` makes ``np.random.rand`` resolve
    to ``numpy.random.rand``)."""

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return f"{base}.{node.attr}" if base else None
        return None


_WALLCLOCK = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})
_ENTROPY = frozenset({"os.urandom", "uuid.uuid4", "random.SystemRandom"})
_NUMPY_SEEDED_CTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937",
})


class DeterminismChecker:
    """RPL020-RPL023 on one file (already established to be in scope)."""

    def __init__(self, path: str, tree: ast.Module, add: Callable[[Finding], None]):
        self.path = path
        self.tree = tree
        self.add = add
        self.imports = ImportMap(tree)

    def check(self) -> None:
        set_names = self._infer_set_names()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_call(node, set_names)
            elif isinstance(node, ast.For):
                self._check_iter(node.iter, set_names)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    self._check_iter(gen.iter, set_names)

    # -- RPL020-RPL022 -----------------------------------------------------
    def _check_call(self, node: ast.Call, set_names) -> None:
        dotted = self.imports.resolve(node.func)
        if dotted is None:
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                    and len(node.args) == 1
                    and self._is_set_expr(node.args[0], set_names)):
                self._emit("RPL023", node,
                           f"{node.func.id}() of a set materializes hash "
                           f"order; sort first")
            return
        if dotted in _WALLCLOCK:
            self._emit("RPL020", node,
                       f"wall-clock call {dotted}() in simulation model code; "
                       f"model time must come from the engine")
        elif dotted in _ENTROPY or dotted.startswith("secrets."):
            self._emit("RPL022", node,
                       f"OS entropy source {dotted}() is nondeterministic "
                       f"across runs")
        elif dotted == "random.Random":
            if not node.args and not node.keywords:
                self._emit("RPL021", node,
                           "random.Random() without a seed; pass an explicit "
                           "seed or use sim.rng.RandomStreams")
        elif dotted.startswith("random."):
            self._emit("RPL021", node,
                       f"{dotted}() draws from the global RNG; use "
                       f"sim.rng.RandomStreams (seeded, named streams)")
        elif dotted.startswith("numpy.random."):
            tail = dotted.rsplit(".", 1)[1]
            if tail in _NUMPY_SEEDED_CTORS:
                if not node.args and not node.keywords:
                    self._emit("RPL021", node,
                               f"{dotted}() without a seed is entropy-seeded; "
                               f"pass an explicit seed")
            else:
                self._emit("RPL021", node,
                           f"{dotted}() uses numpy's legacy global RNG; use "
                           f"sim.rng.RandomStreams")

    # -- RPL023 ------------------------------------------------------------
    def _infer_set_names(self) -> set:
        """Names assigned *only* set-valued expressions anywhere in the file."""
        candidates: set[str] = set()
        poisoned: set[str] = set()
        for node in ast.walk(self.tree):
            targets = ()
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = (node.target,), node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = (node.target,), None  # |= etc: keep prior class
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if value is None:
                    continue
                if self._is_set_literalish(value):
                    candidates.add(target.id)
                else:
                    poisoned.add(target.id)
        return candidates - poisoned

    @staticmethod
    def _is_set_literalish(node) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def _is_set_expr(self, node, set_names) -> bool:
        if self._is_set_literalish(node):
            return True
        return isinstance(node, ast.Name) and node.id in set_names

    def _check_iter(self, iter_node, set_names) -> None:
        if self._is_set_expr(iter_node, set_names):
            self._emit("RPL023", iter_node,
                       "iteration over an unordered set; order varies with "
                       "hashing and perturbs trace digests — sort first")

    def _emit(self, code: str, node, message: str) -> None:
        self.add(Finding(self.path, node.lineno, node.col_offset, code, message))
