"""Stream/DAG-protocol lint rules (RPL030-RPL036).

The static counterpart of the runtime sanitizer (docs/sanitizer.md): where
the :class:`~repro.sanitize.Sanitizer` proves happens-before properties of
one *run*, these rules catch protocol misuse of the
:class:`~repro.runtime.taskspace.TaskSpace` ledger and the stream-launch
DSL that is visible in the *source* — before anything runs.

**Literal-key scoping.**  Real apps name tasks with computed keys
(``("gemm", i, j, k)``), which no static checker can resolve; tests and
small drivers use literal keys (``("a",)``).  The TaskSpace rules
therefore reason only about *fully literal* tuple keys, and each rule arms
itself only when the file actually uses literal keys for that operation —
a file with purely computed keys produces no findings.  ``attach`` is also
the name of the monitor-attachment idiom (``Tracer().attach(engine)``);
a non-literal first argument never looks like a task key, so those calls
are naturally out of scope.

Rules:

* **RPL030** ``completion()`` of a key never declared in this file;
* **RPL031** ``completion()`` of a key at a line before its ``declare``;
* **RPL032** a declared key with no ``attach`` anywhere in the file;
* **RPL033** a stream launch whose wait list is built from an unordered
  set (event order varies with hashing — a determinism hazard, same class
  as RPL023);
* **RPL034** the same key declared twice;
* **RPL035** ``attach()`` of a key never declared in this file;
* **RPL036** a monitor attached to an engine/runtime *after* its ``run()``
  already executed in the same scope — pure observers see nothing
  retroactively.
"""

from __future__ import annotations

import ast
from typing import Callable, Optional

from .rules import Finding

__all__ = ["StreamDagChecker", "RUN_RECEIVER_NAMES"]

# Conventional local names for the objects whose ``run()`` starts a
# simulation; RPL036's heuristic keys off them.
RUN_RECEIVER_NAMES = frozenset({"engine", "eng", "runtime", "world"})

# Monitor-style attachment methods whose first argument is the engine (or
# runtime) being observed.
_MONITOR_ATTACH = frozenset({"attach", "watch_runtime", "watch_cluster",
                             "watch_ucx"})


def _literal_key(node) -> Optional[tuple]:
    """``("a", 1)`` -> ``("a", 1)``; anything non-literal -> None."""
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            if not isinstance(elt, ast.Constant):
                return None
            out.append(elt.value)
        return tuple(out)
    if isinstance(node, ast.Constant):
        return (node.value,)
    return None


def _method_call(node: ast.Call) -> Optional[str]:
    """``X.attr(...)`` -> ``attr``, else None."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_set_valued(node) -> bool:
    """Set literal/comprehension, or list()/tuple()/iter() of one."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "sorted", "iter")
            and len(node.args) == 1):
        if node.func.id == "sorted":
            return False  # sorting fixes the order: fine
        return isinstance(node.args[0], (ast.Set, ast.SetComp))
    return False


class StreamDagChecker:
    """RPL030-RPL036 on one file (stream/DAG protocol; see module doc)."""

    def __init__(self, path: str, tree: ast.Module,
                 add: Callable[[Finding], None]):
        self.path = path
        self.tree = tree
        self.add = add

    def check(self) -> None:
        declares: list[tuple[tuple, ast.Call]] = []
        attaches: list[tuple[tuple, ast.Call]] = []
        completions: list[tuple[tuple, ast.Call]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            method = _method_call(node)
            if method in ("declare", "attach", "completion") and node.args:
                key = _literal_key(node.args[0])
                if key is not None:
                    {"declare": declares, "attach": attaches,
                     "completion": completions}[method].append((key, node))
            self._check_launch_waits(node)
        self._check_taskspace(declares, attaches, completions)
        self._check_monitor_after_run()

    # -- RPL030/031/032/034/035 -------------------------------------------
    def _check_taskspace(self, declares, attaches, completions) -> None:
        declared_at: dict[tuple, int] = {}
        for key, node in declares:
            if key in declared_at:
                self._emit("RPL034", node,
                           f"task key {key!r} declared twice (first at line "
                           f"{declared_at[key]}) — TaskSpace.declare raises "
                           f"at runtime")
            else:
                declared_at[key] = node.lineno
        if declared_at:
            for key, node in completions:
                if key not in declared_at:
                    self._emit("RPL030", node,
                               f"completion() of task key {key!r} which is "
                               f"never declared in this file")
                elif node.lineno < declared_at[key]:
                    self._emit("RPL031", node,
                               f"completion() of task key {key!r} before its "
                               f"declare at line {declared_at[key]}")
            for key, node in attaches:
                if key not in declared_at:
                    self._emit("RPL035", node,
                               f"attach() of task key {key!r} which is never "
                               f"declared in this file")
        if attaches:
            attached = {key for key, _node in attaches}
            for key, lineno in declared_at.items():
                if key not in attached:
                    first = next(n for k, n in declares if k == key)
                    self._emit("RPL032", first,
                               f"task key {key!r} declared but never "
                               f"attached in this file — a never-launched "
                               f"task passes the finish checks silently")

    # -- RPL033 ------------------------------------------------------------
    def _check_launch_waits(self, node: ast.Call) -> None:
        if _method_call(node) not in ("launch", "enqueue"):
            return
        for kw in node.keywords:
            if kw.arg in ("wait", "wait_events") and _is_set_valued(kw.value):
                self._emit("RPL033", kw.value,
                           "stream launch waits on events collected in an "
                           "unordered set; event order varies with hashing "
                           "and perturbs trace digests — use a list")

    # -- RPL036 ------------------------------------------------------------
    def _check_monitor_after_run(self) -> None:
        scopes: list[list[ast.stmt]] = [self.tree.body]
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            self._check_scope(body)

    def _scope_nodes(self, body):
        """Walk one scope without descending into nested defs/classes."""
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, body) -> None:
        run_line = None
        for node in self._scope_nodes(body):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "run"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in RUN_RECEIVER_NAMES):
                if run_line is None or node.lineno < run_line:
                    run_line = node.lineno
        if run_line is None:
            return
        for node in self._scope_nodes(body):
            if not isinstance(node, ast.Call) or node.lineno <= run_line:
                continue
            method = _method_call(node)
            if (method in _MONITOR_ATTACH and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in RUN_RECEIVER_NAMES):
                self._emit("RPL036", node,
                           f"monitor {method}() after the run() at line "
                           f"{run_line} already executed — pure observers "
                           f"see nothing retroactively")

    def _emit(self, code: str, node, message: str) -> None:
        self.add(Finding(self.path, node.lineno, node.col_offset, code,
                         message))
