"""Per-line lint suppressions.

A finding reported on line *L* is silenced when line *L* carries a comment
of the form::

    risky_call()  # repro-lint: disable=RPL003
    other_call()  # repro-lint: disable=RPL010,RPL011 -- deliberate deadlock test
    anything()    # repro-lint: disable=all

Everything after the code list is free-form justification text (encouraged:
a suppression without a *why* is a lie waiting to rot).  Codes are
case-insensitive.  Suppressions are strictly per-physical-line — put the
comment on the line the finding is reported at (the statement's first
line).
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["ALL", "parse_suppressions", "is_suppressed"]

ALL = "ALL"

_DIRECTIVE = re.compile(
    r"repro-lint:\s*disable\s*=\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> set of suppressed codes (``{"ALL"}`` for blanket)."""
    out: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(tok.string)
            if not match:
                continue
            codes = frozenset(
                code.strip().upper() for code in match.group(1).split(",")
            )
            out[tok.start[0]] = out.get(tok.start[0], frozenset()) | codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # An unparsable file is reported as RPL000 by the engine; comments
        # scanned up to the error point still count.
        pass
    return out


def is_suppressed(suppressions: dict[int, frozenset[str]], line: int,
                  code: str) -> bool:
    codes = suppressions.get(line)
    return codes is not None and (code.upper() in codes or ALL in codes)
