"""Text and JSON rendering of lint reports."""

from __future__ import annotations

import json

from .engine import LintReport
from .rules import RULES

__all__ = ["render_text", "render_json", "rules_catalogue", "JSON_SCHEMA_VERSION"]

# v2 added the per-finding "family" field (sdag / messageflow /
# determinism / streamdag); every v1 field is unchanged, so v1 consumers
# keep working.
JSON_SCHEMA_VERSION = 2


def render_text(report: LintReport) -> str:
    lines = [f.render() for f in report.findings]
    if report.findings:
        per_code = ", ".join(
            f"{code} x{count}" for code, count in sorted(report.counts.items())
        )
        lines.append("")
        lines.append(
            f"{len(report.findings)} finding(s) [{per_code}] in "
            f"{report.files} file(s), {report.suppressed} suppressed"
        )
    else:
        lines.append(
            f"clean: 0 findings in {report.files} file(s), "
            f"{report.suppressed} suppressed"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files": report.files,
        "suppressed": report.suppressed,
        "counts": dict(sorted(report.counts.items())),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "rule": RULES[f.code].name if f.code in RULES else f.code,
                "family": RULES[f.code].family if f.code in RULES else "unknown",
                "message": f.message,
            }
            for f in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def rules_catalogue() -> str:
    """The rule table printed by ``repro lint --rules``."""
    lines = ["code    family       name                        summary",
             "------  -----------  --------------------------  " + "-" * 44]
    for rule in RULES.values():
        lines.append(
            f"{rule.code}  {rule.family:11s}  {rule.name:26s}  {rule.summary}")
    lines.append("")
    lines.append("suppress per line with:  # repro-lint: disable=CODE[,CODE] -- why")
    lines.append("full catalogue with rationale: docs/linting.md")
    return "\n".join(lines)
