"""Cross-file message-flow analysis (RPL010/RPL011).

The runtime's rendezvous protocol is stringly typed: a ``send`` whose
``method`` names neither a real entry method nor a mailbox someone
``when``-waits on is silently buffered forever; a ``when`` whose mailbox
nobody ever fills deadlocks the chare.  Both only surface at runtime (if
at all — a dropped deposit may just skew the schedule).  This module
matches **producers** against **consumers** over the whole linted tree:

producers (strong — checked by RPL010)
    ``self.send(idx, "m", ...)``, ``array.send(sender, idx, "m", ...)``,
    ``self.gpu_send(idx, "m", ...)``, ``proxy.broadcast("m")``,
    ``array.inject(idx, "m")``, channel ``send``/``recv`` (explicit
    ``mailbox=`` or the ``ch_send``/``ch_recv`` defaults on receivers
    traced to ``channel_to``), and literal ``EntryMessage(method="m")``
    constructions.

producers (weak — satisfy RPL011 only)
    Proxy-sugar invocations whose receiver is a subscript or call
    (``array[idx].m(...)``, ``array.proxy(i, j).m(...)``): the runtime
    builds these dynamically, so they count as senders but are too
    pattern-shaped to *assert* a consumer exists for them.

consumers
    ``self.when("m", ...)`` sites, plus every method defined on a
    chare-like class (a send to a real entry method is always consumable).

Names on the engine's mailbox allowlist (runtime-internal deposits wired
up dynamically, e.g. ``_reduction_result`` from the reduction manager and
``_gm_post`` installed by ``install_gm_post``) are exempt from both rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .rules import Finding

__all__ = ["FlowModel", "collect_flow", "resolve_messageflow"]


@dataclass(frozen=True)
class _Site:
    name: str
    line: int
    col: int


@dataclass
class FlowModel:
    """Producers/consumers harvested from one file."""

    consumers: list[_Site] = field(default_factory=list)
    strong_producers: list[_Site] = field(default_factory=list)
    weak_names: set[str] = field(default_factory=set)


def _literal_pos(call: ast.Call, index: int) -> Optional[str]:
    if index < len(call.args):
        arg = call.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _literal_kw(call: ast.Call, name: str) -> Optional[str]:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            return kw.value.value
    return None


def _collect_channel_receivers(tree: ast.Module) -> tuple[set, set]:
    """Names / ``self.<attr>`` slots assigned from ``channel_to(...)``."""

    def is_channel_expr(value) -> bool:
        if isinstance(value, ast.IfExp):
            return is_channel_expr(value.body) or is_channel_expr(value.orelse)
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "channel_to")

    names: set[str] = set()
    attrs: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not is_channel_expr(node.value):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif (isinstance(target, ast.Attribute)
                  and isinstance(target.value, ast.Name)
                  and target.value.id == "self"):
                attrs.add(target.attr)
    return names, attrs


def collect_flow(tree: ast.Module) -> FlowModel:
    flow = FlowModel()
    channel_names, channel_attrs = _collect_channel_receivers(tree)

    def receiver_is_channel(expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in channel_names
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self":
            return expr.attr in channel_attrs
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            return expr.func.attr == "channel_to"
        return False

    def site(name: str, node) -> _Site:
        return _Site(name, node.lineno, node.col_offset)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "EntryMessage":
                name = _literal_kw(node, "method")
                if name:
                    flow.strong_producers.append(site(name, node))
            continue
        if not isinstance(func, ast.Attribute):
            continue
        attr = func.attr
        if attr == "when":
            name = _literal_pos(node, 0) or _literal_kw(node, "method")
            if name:
                flow.consumers.append(site(name, node))
        elif attr == "send":
            name = (_literal_kw(node, "mailbox") or _literal_kw(node, "method")
                    or _literal_pos(node, 1) or _literal_pos(node, 2))
            if name:
                flow.strong_producers.append(site(name, node))
            elif receiver_is_channel(func.value):
                flow.strong_producers.append(site("ch_send", node))
        elif attr == "recv":
            name = _literal_kw(node, "mailbox")
            if name:
                flow.strong_producers.append(site(name, node))
            elif receiver_is_channel(func.value):
                flow.strong_producers.append(site("ch_recv", node))
        elif attr == "gpu_send":
            name = _literal_kw(node, "method") or _literal_pos(node, 1)
            if name:
                flow.strong_producers.append(site(name, node))
        elif attr == "broadcast":
            name = _literal_kw(node, "method") or _literal_pos(node, 0)
            if name:
                flow.strong_producers.append(site(name, node))
        elif attr == "inject":
            name = _literal_kw(node, "method") or _literal_pos(node, 1)
            if name:
                flow.strong_producers.append(site(name, node))
        elif isinstance(func.value, (ast.Subscript, ast.Call)):
            # Proxy sugar: array[idx].m(...) / array.proxy(i, j).m(...)
            if not attr.startswith("_"):
                flow.weak_names.add(attr)
    return flow


def resolve_messageflow(flows: dict[str, FlowModel], entry_defs: set,
                        allowlist: Iterable[str]) -> list[Finding]:
    """Match producers to consumers across every linted file."""
    allow = set(allowlist)
    when_names = {c.name for path, f in flows.items() for c in f.consumers}
    produced = {p.name for path, f in flows.items() for p in f.strong_producers}
    for flow in flows.values():
        produced |= flow.weak_names

    findings: list[Finding] = []
    consumable = when_names | entry_defs | allow
    for path, flow in flows.items():
        for producer in flow.strong_producers:
            if producer.name not in consumable:
                findings.append(Finding(
                    path, producer.line, producer.col, "RPL010",
                    f"deposit to {producer.name!r} is never consumed: no "
                    f"entry method of that name and no when({producer.name!r}) "
                    f"anywhere — dropped work or deadlock"))
        for consumer in flow.consumers:
            if consumer.name not in produced and consumer.name not in allow:
                findings.append(Finding(
                    path, consumer.line, consumer.col, "RPL011",
                    f"when({consumer.name!r}) has no statically-visible "
                    f"sender — likely deadlock"))
    return findings
