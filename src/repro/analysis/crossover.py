"""Best-configuration and crossover analysis.

The paper's §IV-C reports *crossover points*: the node count at which the
best overdecomposition factor drops (e.g. Charm-H's best ODF goes 4 -> 2 at
16 nodes, Charm-D's at 128 nodes).  These helpers compute the same from a
family of per-ODF series.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .series import Series

__all__ = ["best_label_per_x", "crossover_x", "speedup_series"]


def best_label_per_x(series: dict[str, Series]) -> dict[float, str]:
    """For each x present in all series, the label with the lowest y."""
    if not series:
        return {}
    common = set.intersection(*(set(s.xs()) for s in series.values()))
    out = {}
    for x in sorted(common):
        out[x] = min(series, key=lambda lb: series[lb].y_at(x))
    return out


def crossover_x(
    series: dict[str, Series], from_label: str, to_label: str
) -> Optional[float]:
    """Smallest x where ``to_label`` beats ``from_label`` and stays at
    least as good for all larger common x (None if never)."""
    common = sorted(
        set(series[from_label].xs()) & set(series[to_label].xs())
    )
    for i, x in enumerate(common):
        if series[to_label].y_at(x) < series[from_label].y_at(x):
            tail = common[i:]
            if all(series[to_label].y_at(t) <= series[from_label].y_at(t) for t in tail):
                return x
    return None


def speedup_series(baseline: Series, other: Series, label: Optional[str] = None) -> Series:
    """Per-x speedup of ``other`` relative to ``baseline`` (>1 = faster)."""
    out = Series(label or f"{baseline.label}/{other.label}")
    for x in baseline.xs():
        try:
            out.add(x, baseline.y_at(x) / other.y_at(x))
        except KeyError:
            continue
    return out
