"""Analysis utilities: series containers, rendering, crossover detection."""

from .ascii_plot import render_figure, render_plot, render_table
from .crossover import best_label_per_x, crossover_x, speedup_series
from .series import FigureData, Series

__all__ = [
    "render_figure",
    "render_plot",
    "render_table",
    "best_label_per_x",
    "crossover_x",
    "speedup_series",
    "FigureData",
    "Series",
]
