"""Series containers for scaling studies and figure data."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

__all__ = ["Series", "FigureData"]


@dataclass
class Series:
    """One curve: label + ``(x, y)`` points (+ free-form per-point meta)."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)
    meta: list[dict] = field(default_factory=list)

    def add(self, x: float, y: float, **meta: Any) -> None:
        self.points.append((x, y))
        self.meta.append(meta)

    def xs(self) -> list[float]:
        return [p[0] for p in self.points]

    def ys(self) -> list[float]:
        return [p[1] for p in self.points]

    def y_at(self, x: float) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"no point at x={x} in series {self.label!r}")

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class FigureData:
    """All series of one reproduced figure, plus provenance."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: dict[str, Series] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        if label in self.series:
            raise ValueError(f"duplicate series {label!r}")
        s = Series(label)
        self.series[label] = s
        return s

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -- persistence -------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "series": {
                label: {"points": s.points, "meta": s.meta} for label, s in self.series.items()
            },
            "notes": self.notes,
        }

    def save_json(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def from_dict(cls, d: dict) -> "FigureData":
        fig = cls(d["figure_id"], d["title"], d["xlabel"], d["ylabel"], notes=list(d["notes"]))
        for label, sd in d["series"].items():
            s = fig.new_series(label)
            s.points = [tuple(p) for p in sd["points"]]
            s.meta = list(sd["meta"])
        return fig

    @classmethod
    def load_json(cls, path) -> "FigureData":
        return cls.from_dict(json.loads(Path(path).read_text()))
