"""Terminal rendering of figure data: tables and log-log ASCII charts."""

from __future__ import annotations

import math
from typing import Optional

from .series import FigureData, Series

__all__ = ["render_table", "render_plot", "render_figure"]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3g}"


def render_table(fig: FigureData) -> str:
    """A markdown-ish table: one row per x, one column per series."""
    xs = sorted({x for s in fig.series.values() for x in s.xs()})
    labels = list(fig.series)
    widths = [max(8, len(fig.xlabel))] + [max(10, len(lb)) for lb in labels]
    header = " | ".join(
        [fig.xlabel.ljust(widths[0])] + [lb.rjust(w) for lb, w in zip(labels, widths[1:])]
    )
    sep = "-+-".join("-" * w for w in widths)
    rows = [header, sep]
    for x in xs:
        cells = [_fmt(x).ljust(widths[0])]
        for lb, w in zip(labels, widths[1:]):
            try:
                cells.append(_fmt(fig.series[lb].y_at(x)).rjust(w))
            except KeyError:
                cells.append("-".rjust(w))
        rows.append(" | ".join(cells))
    return "\n".join(rows)


_MARKS = "ox+*#@%&"


def render_plot(fig: FigureData, width: int = 68, height: int = 18,
                logx: bool = True, logy: bool = True) -> str:
    """A crude log-log scatter chart of every series (terminal friendly)."""
    pts = [(x, y) for s in fig.series.values() for x, y in s.points if y > 0 and x > 0]
    if not pts:
        return "(no data)"

    def tx(v, lo, hi, n, log):
        if log:
            v, lo, hi = math.log10(v), math.log10(lo), math.log10(hi)
        if hi == lo:
            return 0
        return int(round((v - lo) / (hi - lo) * (n - 1)))

    x_lo, x_hi = min(p[0] for p in pts), max(p[0] for p in pts)
    y_lo, y_hi = min(p[1] for p in pts), max(p[1] for p in pts)
    grid = [[" "] * width for _ in range(height)]
    for i, (label, s) in enumerate(fig.series.items()):
        mark = _MARKS[i % len(_MARKS)]
        for x, y in s.points:
            if x <= 0 or y <= 0:
                continue
            col = tx(x, x_lo, x_hi, width, logx)
            row = height - 1 - tx(y, y_lo, y_hi, height, logy)
            grid[row][col] = mark
    lines = ["".join(row) for row in grid]
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={label}" for i, label in enumerate(fig.series)
    )
    frame = [f"{fig.title}  [{fig.ylabel} vs {fig.xlabel}, log-log]"]
    frame += ["  +" + "-" * width + "+"]
    frame += ["  |" + ln + "|" for ln in lines]
    frame += ["  +" + "-" * width + "+"]
    frame += [f"  x: {_fmt(x_lo)} .. {_fmt(x_hi)}   y: {_fmt(y_lo)} .. {_fmt(y_hi)}"]
    frame += ["  " + legend]
    return "\n".join(frame)


def render_figure(fig: FigureData, plot: bool = True) -> str:
    """Table + optional chart + notes, ready to print."""
    parts = [f"== {fig.figure_id}: {fig.title} ==", render_table(fig)]
    if plot:
        parts.append("")
        parts.append(render_plot(fig))
    for note in fig.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)
