"""AMPI: Adaptive MPI — MPI programs virtualized as chares.

The paper (§II-A) notes that automatic overlap "can also be achieved with
Adaptive MPI (AMPI) ... MPI processes are virtualized as chare objects,
allowing an arbitrary number of 'processes' to be run on a set number of
PEs", and leaves its exploration as future work.  This subpackage is that
exploration: the :mod:`repro.mpi` programming surface (``isend``/``irecv``/
``waitall``/``sync``/collectives), but each *virtual rank* is a chare on
the Charm++-like runtime — so a rank blocked in ``MPI_Wait`` yields the PE
to other ranks instead of spinning, and ranks can be overdecomposed and
migrated.
"""

from .world import AmpiProcess, AmpiWorld

__all__ = ["AmpiProcess", "AmpiWorld"]
