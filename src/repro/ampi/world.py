"""AMPI: virtualized MPI ranks running as chares.

Same programming surface as :class:`repro.mpi.MpiProcess` — but an
:class:`AmpiProcess` is hosted by a chare on the Charm++-like runtime, so:

* ``waitall``/``wait``/``sync`` *suspend the chare* instead of spinning the
  CPU: other virtual ranks on the same PE keep working (automatic
  computation-communication overlap, no code changes);
* the number of ranks is decoupled from the number of PEs
  (*virtualization ratio* = ranks per PE, AMPI's +vp option);
* ranks inherit the runtime's scheduling, priorities and (between phases)
  migratability.

Limitations (faithful to the scope of the paper's future-work remark):
collectives and point-to-point work across any virtualization ratio, but
ranks must not migrate while communication is in flight.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..comm.ucx import PRIORITY_COMM
from ..hardware import Cluster
from ..mpi.api import MpiCosts, Request, _Irecv, _Isend, _WaitAll
from ..mpi.api import allreduce_algorithm, barrier_algorithm
from ..runtime import Chare, CharmRuntime
from ..runtime.commands import Await, Launch, LaunchGraph, Work
from ..sim import SimulationError

__all__ = ["AmpiProcess", "AmpiWorld"]


class AmpiProcess:
    """Base class for AMPI rank programs; subclass and implement ``main()``.

    The command constructors are identical to :class:`repro.mpi.MpiProcess`
    (the same ``main()`` generator usually runs under both worlds).
    """

    def __init__(self, world: "AmpiWorld", rank: int):
        self.world = world
        self.rank = rank
        self._chare: Optional[Chare] = None  # bound by the hosting chare
        self._coll_seq = 0
        self.init()

    def init(self) -> None:
        """Subclass hook (note: ``pe``/``gpu`` are bound *after* init when
        the hosting chare attaches; allocate device state in ``main``)."""

    def main(self, msg=None):  # pragma: no cover - must be overridden
        raise NotImplementedError
        yield  # repro-lint: disable=RPL003 -- unreachable generator-marker idiom

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def pe(self):
        return self._chare.pe

    @property
    def gpu(self):
        return self._chare.gpu

    # -- command constructors (identical surface to MpiProcess) ----------------
    def work(self, seconds: float) -> Work:
        return Work(seconds)

    def launch(self, stream, work, name: str = "", wait=(), reads=(),
               writes=()) -> Launch:
        return Launch(stream, work, name=name, wait_events=tuple(wait),
                      reads=tuple(reads), writes=tuple(writes))

    def launch_graph(self, graph_exec, priority: int = 0, after=()) -> LaunchGraph:
        return LaunchGraph(graph_exec, priority=priority, after=tuple(after))

    def isend(self, dest: int, size: int, tag=0, device: bool = False,
              payload=None) -> _Isend:
        return _Isend(dest, size, tag, device, payload)

    def irecv(self, source: int, size: int, tag=0, device: bool = False) -> _Irecv:
        return _Irecv(source, size, tag, device)

    def wait(self, request: Request) -> _WaitAll:
        return _WaitAll((request,))

    def waitall(self, requests) -> _WaitAll:
        return _WaitAll(tuple(requests))

    def sync(self, event) -> Await:
        return Await(event)

    def barrier(self):
        gen = ("ampi-bar", self._coll_seq)
        self._coll_seq += 1
        yield from barrier_algorithm(self, gen)

    def allreduce(self, value, op: Optional[Callable] = None, bytes_per_item: int = 8):
        gen = ("ampi-ared", self._coll_seq)
        self._coll_seq += 1
        result = yield from allreduce_algorithm(self, gen, value, op, bytes_per_item)
        return result

    def notify(self, event: str, **data) -> None:
        self.world._notify(event, self, **data)


def _make_rank_chare(world: "AmpiWorld"):
    """A chare class hosting one virtual rank each."""

    class AmpiRank(Chare):
        def init(self):
            self.vrank = self.index[0]
            self.proc = world.ranks[self.vrank]
            self.proc._chare = self

        def run(self, msg):
            proc = self.proc
            costs = world.costs
            ucx = self.runtime.ucx
            engine = self.runtime.engine
            coroutine = proc.main()
            value = None
            while True:
                try:
                    cmd = coroutine.send(value)
                except StopIteration:
                    world._finished += 1
                    return
                value = None
                if isinstance(cmd, (Work, Launch, LaunchGraph)):
                    value = yield cmd  # the scheduler handles these natively
                elif isinstance(cmd, _Isend):
                    yield self.work(costs.call_overhead_s)
                    handle = ucx.isend(
                        self.pe.index,
                        world.pe_of(cmd.dest),
                        cmd.size,
                        tag=("ampi", proc.rank, cmd.dest, cmd.tag),
                        on_device=cmd.device,
                        priority=PRIORITY_COMM,
                        payload=cmd.payload,
                    )
                    if engine.sanitizer is not None:
                        engine.sanitizer.on_transfer_posted(handle, self)
                    value = Request(handle, "send")
                elif isinstance(cmd, _Irecv):
                    yield self.work(costs.call_overhead_s)
                    handle = ucx.irecv(
                        world.pe_of(cmd.source),
                        self.pe.index,
                        cmd.size,
                        tag=("ampi", cmd.source, proc.rank, cmd.tag),
                        on_device=cmd.device,
                    )
                    if engine.sanitizer is not None:
                        engine.sanitizer.on_transfer_posted(handle, self)
                    value = Request(handle, "recv")
                elif isinstance(cmd, _WaitAll):
                    yield self.work(costs.completion_s * max(1, len(cmd.requests)))
                    pending = [r.done for r in cmd.requests if not r.done.processed]
                    if pending:
                        # The AMPI difference: suspend, don't spin — the PE
                        # is free for other virtual ranks meanwhile.
                        yield self.wait_all(pending)
                    if engine.sanitizer is not None:
                        for r in cmd.requests:
                            engine.sanitizer.on_wake(self, r.done)
                    value = [r.data for r in cmd.requests]
                elif isinstance(cmd, Await):
                    if not cmd.event.processed:
                        yield self.wait(cmd.event)
                    elif engine.sanitizer is not None:
                        engine.sanitizer.on_wake(self, cmd.event)
                    value = cmd.event.value
                else:
                    raise SimulationError(
                        f"virtual rank {proc.rank} yielded unknown command {cmd!r}"
                    )

    return AmpiRank


class AmpiWorld:
    """All virtual ranks of one AMPI job.

    Parameters
    ----------
    cluster:
        The machine.
    vranks:
        Total virtual ranks; the virtualization ratio is ``vranks / n_pes``
        (need not be an integer multiple, but usually is).
    """

    def __init__(self, cluster: Cluster, vranks: Optional[int] = None,
                 costs: Optional[MpiCosts] = None,
                 runtime: Optional[CharmRuntime] = None):
        self.cluster = cluster
        self.engine = cluster.engine
        self.costs = costs or MpiCosts()
        self.runtime = runtime or CharmRuntime(cluster)
        self.size = vranks if vranks is not None else cluster.n_pes
        if self.size < 1:
            raise ValueError("need at least one virtual rank")
        self.ranks: list[AmpiProcess] = []
        self._array = None
        self._observers: list[Callable] = []
        self._finished = 0

    @property
    def virtualization_ratio(self) -> float:
        return self.size / self.cluster.n_pes

    def pe_of(self, vrank: int) -> int:
        if self._array is None:
            raise SimulationError("launch() before communication")
        return self._array.mapping[(vrank,)]

    def launch(self, process_cls, **kwargs) -> list[AmpiProcess]:
        if self.ranks:
            raise SimulationError("AmpiWorld.launch called twice")
        self.ranks = [process_cls(self, r, **kwargs) for r in range(self.size)]
        self._array = self.runtime.create_array(
            _make_rank_chare(self), shape=(self.size,), mapping="block", name="ampi"
        )
        self._array.broadcast("run")
        return self.ranks

    def run(self, max_events: Optional[int] = None) -> None:
        """Run to completion of every virtual rank (raises on deadlock)."""
        if self._array is None:
            raise SimulationError("launch() before run()")
        self.runtime.run(max_events=max_events)
        if self._finished != self.size:
            raise SimulationError(
                f"AMPI deadlock: {self.size - self._finished} virtual ranks unfinished"
            )

    def observe(self, fn: Callable) -> None:
        self._observers.append(fn)

    def _notify(self, event: str, proc: AmpiProcess, **data) -> None:
        for fn in self._observers:
            fn(event, proc, **data)
