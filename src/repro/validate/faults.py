"""Test-only fault injection.

These helpers deliberately corrupt live simulation state so tests can prove
the :class:`~repro.validate.invariants.InvariantChecker` catches real bugs
(rather than vacuously passing).  Nothing in the production paths imports
this module.
"""

from __future__ import annotations

from ..sim.resources import Request, Resource

__all__ = ["inject_double_grant", "inject_phantom_release", "inject_lost_message"]


def inject_double_grant(resource: Resource, amount: int = 1) -> Request:
    """Grant ``amount`` units of ``resource`` *bypassing* the capacity
    check — models a broken arbiter that lets two exclusive intervals
    overlap.  Returns the forged request (releasable normally)."""
    req = Request(resource, priority=0.0, amount=amount)
    resource.in_use += amount
    resource.users.append(req)
    if resource.monitor is not None:
        resource.monitor.on_grant(resource, amount)
    req.succeed(req)
    return req


def inject_phantom_release(resource: Resource, amount: int = 1) -> None:
    """Report a release that never had a matching grant."""
    resource.in_use -= amount
    if resource.monitor is not None:
        resource.monitor.on_release(resource, amount)


def inject_lost_message(network, src_pe: int, dst_pe: int, size: int = 64) -> None:
    """Count a message as sent without ever delivering it (a dropped wire
    transfer)."""
    from ..hardware.network import Message

    msg = Message(src_pe, dst_pe, size)
    network.messages_sent += 1
    network.bytes_sent += size
    if network.monitor is not None:
        network.monitor.on_send(msg)
