"""Live invariant auditing for simulation runs.

The :class:`InvariantChecker` is an *independent* observer: it keeps its own
books (event times, per-resource grant counts, per-channel message counts,
posted communication handles) via the monitor hooks on
:class:`~repro.sim.Engine`, :class:`~repro.sim.Resource`,
:class:`~repro.hardware.network.Network` and
:class:`~repro.comm.ucx.UcxContext`, and cross-checks them against what the
components claim.  A bug in the engine's bookkeeping therefore cannot hide
itself — the double-entry principle.

Checked while running
---------------------
* **Time monotonicity** — no processed event may carry a timestamp earlier
  than the previous one.
* **Resource exclusivity / capacity** — a unit resource (a GPU D2D engine,
  a NIC injection port, a PE core) never holds two grants at once; counted
  resources never exceed capacity; releases never outnumber grants.

Checked at :meth:`InvariantChecker.finish`
------------------------------------------
* **No dangling events** — the event heap drained; every posted UCX
  operation completed; no unmatched sends/receives; scheduler queues and
  chare mailboxes empty; GPU stream queues empty.
* **Message conservation** — per ``(src_pe, dst_pe)`` channel, every
  message sent was delivered (and the network's own counters agree).
* **Interval hygiene** — every busy interval that was opened was closed
  (GPU engine trackers, PE busy trackers, the in-flight network tracker).
* **Resources quiescent** — every watched resource ends with zero grants
  outstanding.

Violations are recorded as :class:`Violation` entries with the simulated
time and the offending actor; ``finish(raise_on_violation=True)`` raises
:class:`InvariantError` carrying the full report.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Optional

from ..sim import Engine, SimulationError
from ..sim.resources import Resource

__all__ = ["Violation", "InvariantError", "InvariantChecker"]


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    time: float
    rule: str
    actor: str
    detail: str

    def __str__(self) -> str:
        return f"[t={self.time:.9f}] {self.rule} @ {self.actor}: {self.detail}"


class InvariantError(SimulationError):
    """Raised by :meth:`InvariantChecker.finish` when violations were found."""

    def __init__(self, violations: list[Violation]):
        self.violations = violations
        lines = "\n".join(f"  {v}" for v in violations[:20])
        extra = f"\n  ... and {len(violations) - 20} more" if len(violations) > 20 else ""
        super().__init__(f"{len(violations)} invariant violation(s):\n{lines}{extra}")


class InvariantChecker:
    """Attachable auditor for one simulation run.

    Typical wiring (what ``run_jacobi3d(..., validate=True)`` does)::

        checker = InvariantChecker().attach(engine)
        checker.watch_cluster(cluster)
        checker.watch_ucx(runtime.ucx)
        checker.watch_runtime(runtime)      # charm/ampi only
        ...  # run the simulation
        checker.finish()                    # raises InvariantError on breach
    """

    def __init__(self, max_violations: int = 200):
        self.engine: Optional[Engine] = None
        self.violations: list[Violation] = []
        self.max_violations = max_violations
        self.events_processed = 0
        self._last_time = float("-inf")
        # Independent per-resource grant accounting.
        self._held: dict[int, int] = {}        # id(resource) -> our grant count
        self._resources: dict[int, Resource] = {}
        # Per-channel network accounting.
        self._chan_sent: Counter = Counter()   # (src_pe, dst_pe) -> messages
        self._chan_delivered: Counter = Counter()
        self._net = None
        # Posted UCX handles (to verify completion at finish).
        self._ucx = None
        self._posted: list = []
        # Runtime components for finish-time emptiness checks.
        self._runtime = None
        self._cluster = None
        self._finished = False

    # -- wiring -------------------------------------------------------------
    def attach(self, engine: Engine) -> "InvariantChecker":
        """Audit ``engine``'s event stream (time monotonicity)."""
        self.engine = engine
        engine.add_monitor(self._on_event)
        return self

    def watch_resource(self, resource: Resource) -> None:
        """Independently track ``resource``'s grants and releases."""
        key = id(resource)
        self._held.setdefault(key, 0)
        self._resources[key] = resource
        resource.monitor = self

    def watch_cluster(self, cluster) -> None:
        """Watch every exclusive/counted resource of the machine: GPU
        engines, PE cores, NIC ports and the intra-node transport — plus the
        network's message flow."""
        self._cluster = cluster
        for node in cluster.nodes:
            for gpu in node.gpus:
                for resource in gpu.engines.values():
                    self.watch_resource(resource)
        for pe in cluster.all_pes():
            self.watch_resource(pe.core)
        net = cluster.network
        for port in (*net.inject, *net.eject, *net.intra):
            self.watch_resource(port)
        net.monitor = self
        self._net = net

    def watch_ucx(self, ucx) -> None:
        """Record every posted isend/irecv to verify completion at finish."""
        ucx.monitor = self
        self._ucx = ucx

    def watch_runtime(self, runtime) -> None:
        """Remember the Charm runtime for finish-time queue/mailbox checks."""
        self._runtime = runtime

    # -- live hooks (engine / resource / network / ucx monitors) -----------
    def _on_event(self, time: float, event) -> None:
        self.events_processed += 1
        if time < self._last_time:
            self._record(
                "time-monotonicity",
                getattr(event, "name", "") or type(event).__name__,
                f"event at t={time!r} after t={self._last_time!r}",
                time=time,
            )
        else:
            self._last_time = time

    def on_grant(self, resource: Resource, amount: int) -> None:
        held = self._held.get(id(resource), 0) + amount
        self._held[id(resource)] = held
        if held > resource.capacity:
            rule = ("resource-exclusivity" if resource.capacity == 1
                    else "resource-capacity")
            self._record(
                rule, resource.name,
                f"{held} concurrent grant(s) on capacity {resource.capacity}",
            )

    def on_release(self, resource: Resource, amount: int) -> None:
        held = self._held.get(id(resource), 0) - amount
        self._held[id(resource)] = held
        if held < 0:
            self._record(
                "resource-release", resource.name,
                f"release without matching grant (balance {held})",
            )

    def on_send(self, message) -> None:
        self._chan_sent[(message.src_pe, message.dst_pe)] += 1

    def on_deliver(self, message) -> None:
        self._chan_delivered[(message.src_pe, message.dst_pe)] += 1

    def on_post(self, handle) -> None:
        self._posted.append(handle)

    # -- finish-time checks -------------------------------------------------
    def finish(self, raise_on_violation: bool = True) -> "InvariantChecker":
        """Run the end-of-run checks; optionally raise on any violation."""
        if self._finished:
            raise SimulationError("InvariantChecker.finish called twice")
        self._finished = True
        eng = self.engine
        if eng is not None and eng._heap:
            self._record(
                "dangling-events", "engine",
                f"{len(eng._heap)} event(s) still scheduled at termination",
            )
        for key, held in self._held.items():
            if held != 0:
                res = self._resources[key]
                self._record(
                    "resource-leak", res.name,
                    f"{held} grant(s) never released", )
            res = self._resources[key]
            if res.in_use != self._held[key]:
                self._record(
                    "resource-books-disagree", res.name,
                    f"resource reports in_use={res.in_use}, "
                    f"monitor counted {self._held[key]}",
                )
        self._check_channels()
        self._check_ucx()
        self._check_runtime()
        self._check_intervals()
        if raise_on_violation and self.violations:
            raise InvariantError(self.violations)
        return self

    def _check_channels(self) -> None:
        for chan in sorted(set(self._chan_sent) | set(self._chan_delivered)):
            sent = self._chan_sent[chan]
            got = self._chan_delivered[chan]
            if sent != got:
                self._record(
                    "message-conservation", f"pe{chan[0]}->pe{chan[1]}",
                    f"{sent} sent but {got} delivered",
                )
        net = self._net
        if net is not None:
            if net.messages_sent != net.messages_delivered:
                self._record(
                    "message-conservation", "network",
                    f"{net.messages_sent} sent, {net.messages_delivered} delivered",
                )
            my_sent = sum(self._chan_sent.values())
            if my_sent != net.messages_sent:
                self._record(
                    "message-books-disagree", "network",
                    f"network counted {net.messages_sent} sends, monitor {my_sent}",
                )

    def _check_ucx(self) -> None:
        ucx = self._ucx
        if ucx is None:
            return
        sends, recvs = ucx.pending_counts()
        if sends or recvs:
            self._record(
                "unmatched-transfers", "ucx",
                f"{sends} send(s) and {recvs} recv(s) never matched",
            )
        incomplete = [h for h in self._posted if not h.done.triggered]
        if incomplete:
            sample = incomplete[0]
            self._record(
                "unfinished-transfers", "ucx",
                f"{len(incomplete)} posted op(s) never completed "
                f"(first: {sample.kind} pe{sample.src_pe}->pe{sample.dst_pe} "
                f"tag={sample.tag!r})",
            )

    def _check_runtime(self) -> None:
        runtime = self._runtime
        if runtime is None:
            return
        for sched in runtime.schedulers:
            if len(sched.queue):
                self._record(
                    "unconsumed-messages", sched.pe.name,
                    f"{len(sched.queue)} message(s) left in the scheduler queue",
                )
        for array in runtime._arrays.values():
            for chare in array.elements.values():
                leftovers = {m: len(box) for m, box in chare._mailboxes.items() if box}
                if leftovers:
                    self._record(
                        "unconsumed-mailbox", repr(chare),
                        f"undelivered deposits: {leftovers}",
                    )

    def _check_intervals(self) -> None:
        cluster = self._cluster
        if cluster is None:
            return
        trackers = []
        for node in cluster.nodes:
            for gpu in node.gpus:
                trackers.extend(gpu.trackers.values())
                for stream in gpu._streams:
                    if len(stream._queue):
                        self._record(
                            "dangling-gpu-work", stream.name,
                            f"{len(stream._queue)} op(s) still queued",
                        )
        for pe in cluster.all_pes():
            trackers.append(pe.busy)
        trackers.append(cluster.network.inflight)
        for tracker in trackers:
            open_spans = sum(1 for start in tracker._open if start is not None)
            if open_spans:
                self._record(
                    "unclosed-interval", tracker.name,
                    f"{open_spans} busy span(s) never closed",
                )

    # -- reporting ----------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        """Human-readable audit summary."""
        head = (
            f"invariant audit: {self.events_processed} events, "
            f"{len(self._resources)} resources, "
            f"{sum(self._chan_sent.values())} messages, "
            f"{len(self._posted)} transfers"
        )
        if not self.violations:
            return f"{head} — OK"
        lines = "\n".join(f"  {v}" for v in self.violations)
        return f"{head} — {len(self.violations)} VIOLATION(S)\n{lines}"

    def _record(self, rule: str, actor: str, detail: str,
                time: Optional[float] = None) -> None:
        if len(self.violations) >= self.max_violations:
            return
        now = time if time is not None else (
            self.engine.now if self.engine is not None else float("nan"))
        self.violations.append(Violation(now, rule, actor, detail))
