"""Simulation correctness tooling.

Three layers (docs/validation.md):

* :mod:`~repro.validate.invariants` — :class:`InvariantChecker`, a live
  auditor attached to the DES engine, every exclusive resource, the network
  and the UCX engine; asserts time monotonicity, capacity conservation, and
  message conservation, plus end-of-run "nothing dangling" checks.
* :mod:`~repro.validate.differential` — runs one physical problem through
  the Charm++, AMPI and MPI frontends (× fusion strategies × CUDA graphs)
  and asserts bitwise-identical physics, for every registered app.
* :mod:`~repro.validate.golden` — golden-trace regression store: canonical
  configs hashed to trace digests + result summaries under ``tests/golden``.

:mod:`~repro.validate.faults` holds test-only fault injectors used to prove
the checker actually catches violations.

The submodules are loaded lazily (PEP 562): the app drivers import
:mod:`~repro.validate.invariants` at module level, while the differential
and golden layers import the app package — resolving attributes on demand
keeps that from ever becoming an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_INVARIANTS = ("InvariantChecker", "InvariantError", "Violation")
_DIFFERENTIAL = (
    "CaseDiff",
    "DifferentialReport",
    "default_base",
    "default_matrix",
    "diff_histories",
    "run_differential_matrix",
)
_GOLDEN = (
    "CANONICAL_CONFIGS",
    "GoldenStore",
    "canonical_configs",
    "default_golden_dir",
    "golden_entry",
    "golden_worker",
    "trace_digest",
)

__all__ = [*_INVARIANTS, *_DIFFERENTIAL, *_GOLDEN]

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .differential import (
        CaseDiff,
        DifferentialReport,
        default_base,
        default_matrix,
        diff_histories,
        run_differential_matrix,
    )
    from .golden import (
        CANONICAL_CONFIGS,
        GoldenStore,
        canonical_configs,
        default_golden_dir,
        golden_entry,
        golden_worker,
        trace_digest,
    )
    from .invariants import InvariantChecker, InvariantError, Violation


def __getattr__(name: str):
    if name in _INVARIANTS:
        from . import invariants as mod
    elif name in _DIFFERENTIAL:
        from . import differential as mod
    elif name in _GOLDEN:
        from . import golden as mod
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(mod, name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
