"""Simulation correctness tooling.

Three layers (docs/validation.md):

* :mod:`~repro.validate.invariants` — :class:`InvariantChecker`, a live
  auditor attached to the DES engine, every exclusive resource, the network
  and the UCX engine; asserts time monotonicity, capacity conservation, and
  message conservation, plus end-of-run "nothing dangling" checks.
* :mod:`~repro.validate.differential` — runs one physical problem through
  the Charm++, AMPI and MPI frontends (× fusion strategies × CUDA graphs)
  and asserts bitwise-identical physics.
* :mod:`~repro.validate.golden` — golden-trace regression store: canonical
  configs hashed to trace digests + result summaries under ``tests/golden``.

:mod:`~repro.validate.faults` holds test-only fault injectors used to prove
the checker actually catches violations.
"""

from .invariants import InvariantChecker, InvariantError, Violation
from .differential import (
    CaseDiff,
    DifferentialReport,
    default_base,
    default_matrix,
    diff_histories,
    run_differential_matrix,
)
from .golden import (
    CANONICAL_CONFIGS,
    GoldenStore,
    default_golden_dir,
    golden_entry,
    golden_worker,
    trace_digest,
)

__all__ = [
    "InvariantChecker",
    "InvariantError",
    "Violation",
    "CaseDiff",
    "DifferentialReport",
    "default_base",
    "default_matrix",
    "diff_histories",
    "run_differential_matrix",
    "CANONICAL_CONFIGS",
    "GoldenStore",
    "default_golden_dir",
    "golden_entry",
    "golden_worker",
    "trace_digest",
]
