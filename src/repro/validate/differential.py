"""Cross-backend differential validation.

One physical problem, many execution paths: the Charm++, AMPI and plain-MPI
Jacobi3D frontends differ in decomposition (overdecomposition vs. one block
per rank), scheduling (suspending chares vs. spinning CPUs), communication
protocol (host staging vs. GPUDirect vs. device IPC), kernel organisation
(fusion strategies A/B/C, CUDA graphs) — yet they integrate the *same*
PDE.  Because the functional kernels use a fixed operand order and the
residual combiner is an exact ``max`` (:class:`~repro.apps.jacobi3d.context.
ResidualHistory`), every path must produce **bitwise identical** residual
histories and final grids.  Any drift — a halo applied twice, an iteration
skipped, a mis-tagged message — shows up as a first differing iteration.

Every case also runs with the :class:`~repro.validate.invariants.
InvariantChecker` attached, so scheduling-level breakage is caught even
when the physics happens to survive it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..apps.jacobi3d import Jacobi3DConfig, run_jacobi3d
from ..hardware.specs import MachineSpec

__all__ = [
    "CaseDiff",
    "DifferentialReport",
    "default_base",
    "default_matrix",
    "diff_histories",
    "run_differential_matrix",
]


def _bits(x: float) -> bytes:
    return struct.pack("<d", x)


def diff_histories(a: Sequence[float], b: Sequence[float]) -> Optional[int]:
    """Index of the first *bitwise* difference between two residual
    histories (length mismatch counts at the shorter length); ``None`` if
    identical.  Bitwise, not ``==``: ``0.0 == -0.0`` would hide a sign
    drift."""
    n = min(len(a), len(b))
    for i in range(n):
        if _bits(a[i]) != _bits(b[i]):
            return i
    if len(a) != len(b):
        return n
    return None


def _grids_identical(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(a.view(np.int64), b.view(np.int64)))


@dataclass(frozen=True)
class CaseDiff:
    """One matrix case compared against the reference run."""

    label: str
    config: Jacobi3DConfig
    ok: bool
    iterations: int
    first_diff_iteration: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        if self.ok:
            return f"{self.label}: OK ({self.iterations} iterations bit-identical)"
        where = ("" if self.first_diff_iteration is None
                 else f" (first differing iteration: {self.first_diff_iteration})")
        return f"{self.label}: MISMATCH{where} — {self.detail}"


@dataclass
class DifferentialReport:
    """Outcome of one differential-matrix run."""

    reference: str
    cases: list[CaseDiff] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    def failures(self) -> list[CaseDiff]:
        return [c for c in self.cases if not c.ok]

    def report(self) -> str:
        head = (f"differential matrix vs {self.reference}: "
                f"{len(self.cases)} case(s), {len(self.failures())} failure(s)")
        lines = "\n".join(f"  {c}" for c in self.cases)
        return f"{head}\n{lines}"


def default_base() -> Jacobi3DConfig:
    """A functional-mode problem small enough to run the full matrix in
    seconds, large enough that every block has interior cells and real
    halo traffic on all six faces."""
    return Jacobi3DConfig(
        version="charm-d",
        nodes=1,
        grid=(16, 16, 16),
        odf=2,
        iterations=4,
        warmup=1,
        data_mode="functional",
        machine=MachineSpec.small_debug(),
    )


def default_matrix(base: Jacobi3DConfig,
                   quick: bool = False) -> list[tuple[str, Jacobi3DConfig]]:
    """The comparison cases for ``base``.  The first entry is the
    reference (charm-d, the paper's best version).  ``quick`` keeps only
    the cross-runtime cases; the full matrix adds fusion A/B/C and CUDA
    graphs on/off."""
    base = base.with_(version="charm-d", fusion="none", cuda_graphs=False)
    cases = [
        ("charm-d", base),
        ("charm-h", base.with_(version="charm-h")),
        ("ampi-d", base.with_(version="ampi-d")),
        ("ampi-h", base.with_(version="ampi-h")),
        ("mpi-d", base.with_(version="mpi-d", odf=1)),
        ("mpi-h", base.with_(version="mpi-h", odf=1)),
    ]
    if not quick:
        for strategy in ("A", "B", "C"):
            cases.append((f"charm-d fusion={strategy}",
                          base.with_(fusion=strategy)))
        cases.append(("charm-d graphs", base.with_(cuda_graphs=True)))
        for strategy in ("A", "B", "C"):
            cases.append((f"charm-d fusion={strategy} graphs",
                          base.with_(fusion=strategy, cuda_graphs=True)))
    return cases


def run_differential_matrix(
    base: Optional[Jacobi3DConfig] = None,
    cases: Optional[list[tuple[str, Jacobi3DConfig]]] = None,
    quick: bool = False,
    validate: bool = True,
    progress=None,
) -> DifferentialReport:
    """Run every case and compare residual histories + final grids bitwise
    against the first case (the reference).

    ``progress`` (optional): ``fn(label, case_diff_or_None)`` called before
    (with ``None``) and after each case.
    """
    if base is None:
        base = default_base()
    if not base.functional:
        raise ValueError("the differential matrix needs data_mode='functional'")
    if cases is None:
        cases = default_matrix(base, quick=quick)

    report = DifferentialReport(reference=cases[0][0])
    reference = None
    ref_grid = None
    for label, config in cases:
        if progress is not None:
            progress(label, None)
        result = run_jacobi3d(config, validate=validate)
        grid = result.assemble_grid(_geometry_of(config))
        if reference is None:
            reference = result
            ref_grid = grid
            diff = CaseDiff(label, config, True, len(result.residuals))
        else:
            diff = _compare(label, config, reference, ref_grid, result, grid)
        report.cases.append(diff)
        if progress is not None:
            progress(label, diff)
    return report


def _geometry_of(config: Jacobi3DConfig):
    from ..apps.decomposition import BlockGeometry

    return BlockGeometry.auto(config.n_blocks(), config.grid)


def _compare(label, config, reference, ref_grid, result, grid) -> CaseDiff:
    n_iter = len(result.residuals)
    where = diff_histories(reference.residuals, result.residuals)
    if len(reference.residuals) != n_iter:
        return CaseDiff(
            label, config, False, n_iter, first_diff_iteration=where,
            detail=(f"iteration count {n_iter} != "
                    f"reference {len(reference.residuals)}"),
        )
    if where is not None:
        return CaseDiff(
            label, config, False, n_iter, first_diff_iteration=where,
            detail=(f"residual {result.residuals[where]!r} != "
                    f"reference {reference.residuals[where]!r}"),
        )
    if not _grids_identical(ref_grid, grid):
        if ref_grid.shape != grid.shape:
            detail = f"grid shape {grid.shape} != reference {ref_grid.shape}"
        else:
            mism = int(np.sum(ref_grid.view(np.int64) != grid.view(np.int64)))
            detail = f"final grid differs in {mism} cell(s)"
        return CaseDiff(label, config, False, n_iter, detail=detail)
    return CaseDiff(label, config, True, n_iter)
