"""Cross-backend differential validation.

One physical problem, many execution paths: an app's Charm++, AMPI and
plain-MPI frontends differ in decomposition (overdecomposition vs. one
block per rank), scheduling (suspending chares vs. spinning CPUs),
communication protocol (host staging vs. GPUDirect vs. device IPC), kernel
organisation (fusion strategies A/B/C, CUDA graphs) — yet they integrate
the *same* PDE.  Because the functional kernels use a fixed operand order
and the residual combiner is an exact ``max`` (:class:`~repro.apps.stencil.
context.ResidualHistory`), every path must produce **bitwise identical**
residual histories and final grids.  Any drift — a halo applied twice, an
iteration skipped, a mis-tagged message — shows up as a first differing
iteration.

The matrix runs for any registered app (each :class:`~repro.apps.registry.
AppSpec` contributes its ``differential_base``); every case also runs with
the :class:`~repro.validate.invariants.InvariantChecker` attached, so
scheduling-level breakage is caught even when the physics happens to
survive it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..apps import StencilConfig, get_app, run_app

__all__ = [
    "CaseDiff",
    "DifferentialReport",
    "default_base",
    "default_matrix",
    "diff_histories",
    "run_differential_matrix",
]


def _bits(x: float) -> bytes:
    return struct.pack("<d", x)


def diff_histories(a: Sequence[float], b: Sequence[float]) -> Optional[int]:
    """Index of the first *bitwise* difference between two residual
    histories (length mismatch counts at the shorter length); ``None`` if
    identical.  Bitwise, not ``==``: ``0.0 == -0.0`` would hide a sign
    drift."""
    n = min(len(a), len(b))
    for i in range(n):
        if _bits(a[i]) != _bits(b[i]):
            return i
    if len(a) != len(b):
        return n
    return None


def _grids_identical(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(a.view(np.int64), b.view(np.int64)))


@dataclass(frozen=True)
class CaseDiff:
    """One matrix case compared against the reference run."""

    label: str
    config: StencilConfig
    ok: bool
    iterations: int
    first_diff_iteration: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        if self.ok:
            return f"{self.label}: OK ({self.iterations} iterations bit-identical)"
        where = ("" if self.first_diff_iteration is None
                 else f" (first differing iteration: {self.first_diff_iteration})")
        return f"{self.label}: MISMATCH{where} — {self.detail}"


@dataclass
class DifferentialReport:
    """Outcome of one differential-matrix run."""

    reference: str
    cases: list[CaseDiff] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    def failures(self) -> list[CaseDiff]:
        return [c for c in self.cases if not c.ok]

    def report(self) -> str:
        head = (f"differential matrix vs {self.reference}: "
                f"{len(self.cases)} case(s), {len(self.failures())} failure(s)")
        lines = "\n".join(f"  {c}" for c in self.cases)
        return f"{head}\n{lines}"


def default_base(app: str = "jacobi3d") -> StencilConfig:
    """The registered app's functional-mode base problem: small enough to
    run the full matrix in seconds, large enough that every block has
    interior cells and real halo traffic on every face."""
    return get_app(app).differential_base()


def default_matrix(base: StencilConfig,
                   quick: bool = False) -> list[tuple[str, StencilConfig]]:
    """The stencil-shaped comparison cases for ``base``.  The first entry
    is the reference (charm-d, the paper's best version).  ``quick`` keeps
    only the cross-runtime cases; the full matrix adds fusion A/B/C and
    CUDA graphs on/off.  Apps without those axes register their own
    ``differential_cases`` on their :class:`~repro.apps.registry.AppSpec`
    instead of using this default."""
    base = base.with_(version="charm-d", fusion="none", cuda_graphs=False)
    cases = [
        ("charm-d", base),
        ("charm-h", base.with_(version="charm-h")),
        ("ampi-d", base.with_(version="ampi-d")),
        ("ampi-h", base.with_(version="ampi-h")),
        ("mpi-d", base.with_(version="mpi-d", odf=1)),
        ("mpi-h", base.with_(version="mpi-h", odf=1)),
    ]
    if not quick:
        for strategy in ("A", "B", "C"):
            cases.append((f"charm-d fusion={strategy}",
                          base.with_(fusion=strategy)))
        cases.append(("charm-d graphs", base.with_(cuda_graphs=True)))
        for strategy in ("A", "B", "C"):
            cases.append((f"charm-d fusion={strategy} graphs",
                          base.with_(fusion=strategy, cuda_graphs=True)))
    return cases


def run_differential_matrix(
    base: Optional[StencilConfig] = None,
    cases: Optional[list[tuple[str, StencilConfig]]] = None,
    quick: bool = False,
    validate: bool = True,
    progress=None,
    app: str = "jacobi3d",
) -> DifferentialReport:
    """Run every case and compare residual histories + final grids bitwise
    against the first case (the reference).

    ``app`` selects the registered app's base problem when ``base`` is not
    given.  ``progress`` (optional): ``fn(label, case_diff_or_None)`` called
    before (with ``None``) and after each case.
    """
    if base is None:
        base = default_base(app)
    if not base.functional:
        raise ValueError("the differential matrix needs data_mode='functional'")
    if cases is None:
        make_cases = get_app(base.app).differential_cases
        if make_cases is not None:
            cases = make_cases(base, quick)
        else:
            cases = default_matrix(base, quick=quick)

    report = DifferentialReport(reference=cases[0][0])
    reference = None
    ref_grid = None
    for label, config in cases:
        if progress is not None:
            progress(label, None)
        result = run_app(config, validate=validate)
        grid = result.assemble_state()
        if reference is None:
            reference = result
            ref_grid = grid
            diff = CaseDiff(label, config, True, len(result.residuals))
        else:
            diff = _compare(label, config, reference, ref_grid, result, grid)
        report.cases.append(diff)
        if progress is not None:
            progress(label, diff)
    return report


def _compare(label, config, reference, ref_grid, result, grid) -> CaseDiff:
    n_iter = len(result.residuals)
    where = diff_histories(reference.residuals, result.residuals)
    if len(reference.residuals) != n_iter:
        return CaseDiff(
            label, config, False, n_iter, first_diff_iteration=where,
            detail=(f"iteration count {n_iter} != "
                    f"reference {len(reference.residuals)}"),
        )
    if where is not None:
        return CaseDiff(
            label, config, False, n_iter, first_diff_iteration=where,
            detail=(f"residual {result.residuals[where]!r} != "
                    f"reference {reference.residuals[where]!r}"),
        )
    if not _grids_identical(ref_grid, grid):
        if ref_grid.shape != grid.shape:
            detail = f"grid shape {grid.shape} != reference {ref_grid.shape}"
        else:
            mism = int(np.sum(ref_grid.view(np.int64) != grid.view(np.int64)))
            detail = f"final grid differs in {mism} cell(s)"
        return CaseDiff(label, config, False, n_iter, detail=detail)
    return CaseDiff(label, config, True, n_iter)
