"""Golden-trace regression store.

A canonical set of small configurations is pinned to *trace digests*
(sha256 over the canonical JSON form of every trace record) plus a result
summary, stored as one JSON file per config under ``tests/golden/``.  The
simulator is deterministic, so a digest change means the schedule itself
changed — the strongest regression signal available short of diffing whole
traces.  When a change is intentional (a new optimisation, a model-version
bump), refresh with ``repro validate --update-golden``.

Every registered app contributes its canonical configs (its
:class:`~repro.apps.registry.AppSpec`'s ``golden_configs``); names must be
unique across apps, so newer apps prefix theirs (``jacobi2d-charm-d``).

Golden entries record the :data:`~repro.exec.cache.MODEL_VERSION` they were
taken at; entries from another model version are reported as stale rather
than failed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from ..apps import app_names, config_from_dict, get_app, run_app
from ..exec.cache import MODEL_VERSION, config_key
from ..sim import Tracer

__all__ = [
    "CANONICAL_CONFIGS",
    "GoldenStore",
    "canonical_configs",
    "default_golden_dir",
    "golden_entry",
    "golden_worker",
    "trace_digest",
]


def default_golden_dir() -> Path:
    """``tests/golden`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def canonical_configs(app: Optional[str] = None) -> dict:
    """``name -> config`` for one registered app, or merged across all of
    them (names must not collide across apps)."""
    merged: dict = {}
    for name in [app] if app is not None else app_names():
        for key, config in get_app(name).golden_configs().items():
            if key in merged:
                raise ValueError(
                    f"golden config name {key!r} is claimed by two apps"
                )
            merged[key] = config
    return merged


#: name -> config pinned under ``tests/golden/<name>.json`` (all apps).
CANONICAL_CONFIGS = canonical_configs()


def trace_digest(tracer: Tracer) -> str:
    """sha256 over the canonical JSON form of every trace record.  All
    payloads are numbers, strings and tuples (tuples serialize as JSON
    arrays; anything exotic goes through ``repr``, which is stable for the
    enums the simulator traces), so the digest is identical across
    processes and platforms."""
    payload = [
        [rec.time, rec.category, rec.actor,
         {k: rec.data[k] for k in sorted(rec.data)}]
        for rec in tracer.records
    ]
    blob = json.dumps(payload, sort_keys=True, default=repr,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def golden_entry(config) -> dict:
    """Run ``config`` (any registered app) fully traced + invariant-checked
    and distil the golden record (JSON-ready)."""
    tracer = Tracer()
    result = run_app(config, tracer=tracer, validate=True)
    return {
        "key": config_key(config),
        "model_version": MODEL_VERSION,
        "config": config.to_dict(),
        "trace_digest": trace_digest(tracer),
        "trace_records": len(tracer.records),
        "summary": {
            "total_time": result.total_time,
            "warmup_boundary": result.warmup_boundary,
            "time_per_iteration": result.time_per_iteration,
            "gpu_busy_s": result.gpu_busy_s,
            "pe_busy_s": result.pe_busy_s,
            "messages_sent": result.messages_sent,
            "bytes_sent": result.bytes_sent,
            "overlap_s": result.overlap_s,
        },
    }


def golden_worker(config_dict: dict) -> dict:
    """:func:`golden_entry` from a plain config dict — module-level so the
    exec layer's process pool can pickle it (the determinism tests run the
    same golden configs serially and with ``jobs=4`` and require identical
    digests)."""
    return golden_entry(config_from_dict(config_dict))


class GoldenStore:
    """One directory of ``<name>.json`` golden entries."""

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_golden_dir()

    def path_for(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def names(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def load(self, name: str) -> Optional[dict]:
        try:
            return json.loads(self.path_for(name).read_text())
        except (OSError, ValueError):
            return None

    def save(self, name: str, entry: dict) -> Path:
        path = self.path_for(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
        return path

    def check(self, name: str, entry: dict) -> list[str]:
        """Mismatches between ``entry`` (a fresh :func:`golden_entry`) and
        the stored golden record; empty list means clean.  A missing entry
        or one taken at another MODEL_VERSION reports as stale, not as a
        schedule regression."""
        stored = self.load(name)
        if stored is None:
            return [f"{name}: no golden entry (run --update-golden)"]
        if stored.get("model_version") != entry["model_version"]:
            return [
                f"{name}: golden entry is for MODEL_VERSION "
                f"{stored.get('model_version')}, current is "
                f"{entry['model_version']} (run --update-golden)"
            ]
        problems = []
        if stored.get("key") != entry["key"]:
            problems.append(f"{name}: config key changed "
                            f"{stored.get('key')} -> {entry['key']}")
        if stored.get("trace_digest") != entry["trace_digest"]:
            problems.append(
                f"{name}: trace digest changed "
                f"({stored.get('trace_records')} -> {entry['trace_records']} "
                "records) — the event schedule is different"
            )
        for field, want in (stored.get("summary") or {}).items():
            got = entry["summary"].get(field)
            if got != want:
                problems.append(f"{name}: summary.{field} {want!r} -> {got!r}")
        return problems

    def check_all(self, configs: Optional[dict] = None) -> list[str]:
        """Re-run every canonical config and collect mismatches."""
        problems = []
        for name, config in (configs or CANONICAL_CONFIGS).items():
            problems.extend(self.check(name, golden_entry(config)))
        return problems

    def update_all(self, configs: Optional[dict] = None) -> list[Path]:
        """Refresh (or create) every canonical entry."""
        return [
            self.save(name, golden_entry(config))
            for name, config in (configs or CANONICAL_CONFIGS).items()
        ]
