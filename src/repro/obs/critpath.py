"""Critical-path analysis over a finished run's activity intervals.

"Why didn't ODF=4 help" is a question about the *longest dependent chain*:
if the makespan is an unbroken chain of NIC transfers, more overlap cannot
shorten it; if the chain is mostly PE scheduling overhead, overdecomposition
itself is the cost.  This module reconstructs that chain from the run's
recorded activity intervals with the standard backward attribution walk:

1. Start at the makespan ``t_end``.
2. The path step at time ``t`` is the activity interval still running (or
   just finishing) at ``t`` that began *earliest* — the longest continuous
   activity whose completion gated ``t``.  Move ``t`` to its start.
3. If *nothing* was active at ``t``, the gap back to the latest earlier
   completion is attributed to ``wait`` (dependency latency that no
   recorded resource explains, e.g. the rendezvous RTT or HAPI polling).
4. Repeat until ``t_start``.

The walk partitions ``[t_start, t_end]`` exactly, so the reported path
length always equals the analysed window (the acceptance check: path
length == simulated makespan) and the *composition* — seconds per resource
category along the path — is the actionable output.  This is the interval
approximation of a full event-graph longest path: activity intervals are
recorded with zero model overhead, and simultaneous-activity selection uses
earliest-start, which on this simulator's FIFO resources matches the true
dependency chain except where two resources genuinely race (both ends then
appear in the composition across steps).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim import Tracer, merge_intervals
from .timeline import _stencil_phase_decl

__all__ = ["PathSegment", "CriticalPath", "collect_segments", "critical_path"]

#: Composition category for unattributed dependency gaps.
WAIT = "wait"


@dataclass(frozen=True)
class PathSegment:
    """One maximal stretch of the critical path on a single category."""

    start: float
    end: float
    category: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The reconstructed longest chain for one window of a run."""

    t_start: float
    t_end: float
    segments: list[PathSegment]  # in time order

    @property
    def length_s(self) -> float:
        return self.t_end - self.t_start

    @property
    def wait_s(self) -> float:
        return sum(s.duration for s in self.segments if s.category == WAIT)

    def composition(self) -> dict[str, float]:
        """Seconds per category along the path, descending."""
        comp: dict[str, float] = {}
        for seg in self.segments:
            comp[seg.category] = comp.get(seg.category, 0.0) + seg.duration
        return dict(sorted(comp.items(), key=lambda kv: (-kv[1], kv[0])))

    def to_dict(self, max_segments: int = 50) -> dict:
        longest = sorted(self.segments, key=lambda s: -s.duration)[:max_segments]
        return {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "length_s": self.length_s,
            "wait_s": self.wait_s,
            "n_segments": len(self.segments),
            "composition": self.composition(),
            "longest_segments": [
                {"start": s.start, "end": s.end, "category": s.category,
                 "duration": s.duration}
                for s in longest
            ],
        }

    def render_text(self) -> str:
        lines = [f"critical path: {self.length_s * 1e3:.3f} ms over "
                 f"[{self.t_start:g}, {self.t_end:g}] in {len(self.segments)} segments"]
        for cat, secs in self.composition().items():
            pct = 100.0 * secs / self.length_s if self.length_s > 0 else 0.0
            lines.append(f"  {cat:12s} {secs * 1e3:10.3f} ms  {pct:5.1f}%")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Interval collection
# ---------------------------------------------------------------------------


def collect_segments(cluster, tracer: Optional[Tracer] = None,
                     classify=None) -> list[tuple[float, float, str]]:
    """Every recorded activity interval of a run as ``(start, end, category)``.

    PE-core busy time and the network in-flight tracker come from the
    cluster's interval trackers; GPU activity comes from the trace when one
    was attached (phase-classified per operation through ``classify``, the
    app's trace classifier — default: the stencil declaration) and falls
    back to the per-engine trackers (category ``gpu.<engine>``) otherwise.
    """
    if classify is None:
        classify = _stencil_phase_decl()[1]
    segments: list[tuple[float, float, str]] = []
    for pe in cluster.all_pes():
        segments.extend((a, b, "pe") for a, b in pe.busy.spans)
    segments.extend((a, b, "nic") for a, b in cluster.network.inflight.spans)
    traced_gpu = False
    if tracer is not None:
        for rec in tracer.records:
            if not rec.category.startswith("gpu."):
                continue
            duration = rec.data.get("duration")
            if duration is None:
                continue
            start = float(rec.data.get("start", rec.time))
            phase = classify(rec.category, str(rec.data.get("op", "")))
            segments.append((start, start + float(duration), phase))
            traced_gpu = True
    if not traced_gpu:
        for node in cluster.nodes:
            for gpu in node.gpus:
                for kind, tracker in gpu.trackers.items():
                    segments.extend((a, b, f"gpu.{kind}") for a, b in tracker.spans)
    return segments


# ---------------------------------------------------------------------------
# The backward walk
# ---------------------------------------------------------------------------


def critical_path(
    segments: Iterable[tuple[float, float, str]],
    t_start: float = 0.0,
    t_end: Optional[float] = None,
) -> CriticalPath:
    """Backward-walk attribution of ``[t_start, t_end]`` over ``segments``.

    ``segments`` are ``(start, end, category)`` activity intervals (any
    order, overlaps fine).  ``t_end`` defaults to the latest interval end.
    The returned path tiles the window exactly: its ``length_s`` equals
    ``t_end - t_start`` by construction, and unexplained time appears as
    ``wait`` segments rather than being dropped.
    """
    by_cat: dict[str, list[tuple[float, float]]] = {}
    for a, b, cat in segments:
        if b > a:
            by_cat.setdefault(cat, []).append((a, b))
    merged = {cat: merge_intervals(spans) for cat, spans in by_cat.items()}
    starts = {cat: [a for a, _ in spans] for cat, spans in merged.items()}
    categories = sorted(merged)

    if t_end is None:
        t_end = max((spans[-1][1] for spans in merged.values() if spans), default=t_start)
    if t_end <= t_start:
        return CriticalPath(t_start, t_end, [])

    eps = 1e-12 * max(1.0, abs(t_end))
    path: list[PathSegment] = []
    t = t_end
    while t > t_start + eps:
        chosen: Optional[tuple[float, str]] = None  # (interval start, category)
        latest_end = t_start
        for cat in categories:
            idx = bisect_left(starts[cat], t) - 1  # greatest start < t
            if idx < 0:
                continue
            a, b = merged[cat][idx]
            if b >= t - eps:
                # Active at (or finishing at) t: a path candidate.
                if chosen is None or a < chosen[0]:
                    chosen = (a, cat)
            elif b > latest_end:
                latest_end = b
        if chosen is not None:
            seg_start = max(chosen[0], t_start)
            path.append(PathSegment(seg_start, t, chosen[1]))
            t = seg_start
        else:
            # Nothing active: dependency gap back to the latest completion.
            path.append(PathSegment(latest_end, t, WAIT))
            t = latest_end
    path.reverse()
    return CriticalPath(t_start, t_end, path)
