"""Perf-trend dashboard: ``results/bench_meta.json`` → static HTML.

:func:`~repro.obs.report.append_bench_history` records every benchmark run
as a timestamped trajectory; this module renders those trajectories as a
self-contained HTML page (inline SVG, inline CSS/JS, zero external
dependencies) so CI can publish "is the harness getting slower?" as an
artifact.  ``repro perf trend`` is the CLI entry point.

Per bench-meta key the dashboard shows one card with:

* a line chart per **unit group** — figure wall-clock (``wall_s``) and the
  engine microbenchmark's per-mix event cost (``us_per_event.<mix>``) are
  different units, so they never share an axis;
* **regression annotations** — a point slower than its predecessor by more
  than the tolerance (the same ``current > previous * (1 + tol)`` rule as
  the ``repro perf compare`` gate) is flagged with a marker, named in the
  tooltip, and called out in the table view;
* **per-PR markers** — when consecutive entries carry different ``commit``
  stamps (see ``benchmarks/conftest.py``), a vertical rule marks the
  boundary so a step change can be pinned to the PR that caused it;
* a **table view** — every charted value reachable without hovering.

The analysis half (:func:`trend_series`) is pure data-in/data-out so tests
can pin the regression/PR-marker logic without parsing HTML.
"""

from __future__ import annotations

import html as _html
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = [
    "DEFAULT_TREND_TOLERANCE",
    "TREND_SCHEMA",
    "TrendPoint",
    "TrendSeries",
    "load_bench_meta",
    "render_dashboard",
    "trend_series",
    "write_dashboard",
]

#: Schema tag embedded in the generated page (``<meta name="generator">``).
TREND_SCHEMA = "repro.trend/1"

#: Default regression threshold for trend annotations — the same default
#: slowdown fraction as the ``repro perf compare`` gate.
DEFAULT_TREND_TOLERANCE = 0.05

#: Metric suffix → axis unit label.  ``wall_s`` is the runner's wall-clock
#: per figure; ``us_per_event.*`` is the engine microbenchmark's cost.
_UNITS = {"wall_s": "s", "us_per_event": "µs/event"}


@dataclass(frozen=True)
class TrendPoint:
    """One history entry's value for one metric."""

    at: str  #: ISO timestamp (``""`` for legacy entries without one)
    value: float
    commit: Optional[str] = None  #: short git rev, when stamped
    regressed: bool = False  #: slower than the previous point beyond tolerance
    pr_boundary: bool = False  #: first entry of a new commit stamp


@dataclass(frozen=True)
class TrendSeries:
    """One metric's trajectory under one bench-meta key."""

    key: str  #: bench-meta slot ("engine", "fig6a", ...)
    metric: str  #: "wall_s" or "us_per_event.<mix>"
    points: tuple

    @property
    def unit(self) -> str:
        return _UNITS.get(self.metric.split(".")[0], "")

    @property
    def group(self) -> str:
        """Unit group — series in the same group share one chart/axis."""
        return self.metric.split(".")[0]

    @property
    def label(self) -> str:
        """Short in-chart name: the mix for per-mix series, else the metric."""
        return self.metric.split(".", 1)[1] if "." in self.metric else self.metric

    @property
    def latest(self) -> Optional[TrendPoint]:
        return self.points[-1] if self.points else None


# ---------------------------------------------------------------------------
# Analysis (pure)
# ---------------------------------------------------------------------------


def load_bench_meta(path) -> dict:
    """Parse a ``bench_meta.json`` file; raises ``ValueError`` when the file
    is missing or not a JSON object (``repro perf trend`` maps that to exit
    code 2 — bad input, not a regression)."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read bench meta {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: bench meta must be a JSON object")
    return doc


def _entry_metrics(entry: dict) -> dict[str, float]:
    """Time-like scalars of one history entry — the per-entry analogue of
    :func:`repro.obs.report.extract_comparable`'s bench-meta branch."""
    out: dict[str, float] = {}
    wall = entry.get("wall_s")
    if isinstance(wall, (int, float)):
        out["wall_s"] = float(wall)
    upe = entry.get("us_per_event")
    if isinstance(upe, dict):
        for mix, cost in sorted(upe.items()):
            if isinstance(cost, (int, float)):
                out[f"us_per_event.{mix}"] = float(cost)
    return out


def _histories(meta: dict) -> dict[str, list[dict]]:
    """Normalized oldest→newest history per key (legacy flat entries become
    a one-item history, matching ``append_bench_history``'s migration)."""
    out: dict[str, list[dict]] = {}
    for key, slot in meta.items():
        if not isinstance(slot, dict):
            continue
        if isinstance(slot.get("history"), list):
            history = [e for e in slot["history"] if isinstance(e, dict)]
        else:
            history = [slot]
        if history:
            out[key] = history
    return out


def trend_series(meta: dict,
                 tolerance: float = DEFAULT_TREND_TOLERANCE) -> list[TrendSeries]:
    """Flatten a bench-meta document into per-(key, metric) trajectories
    with regression and PR-boundary flags attached.

    A point regresses when it is slower than its immediate predecessor by
    more than ``tolerance`` (lower is better for every charted metric); a
    point is a PR boundary when its ``commit`` stamp differs from the
    previous entry's.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    series: list[TrendSeries] = []
    for key, history in sorted(_histories(meta).items()):
        metrics: dict[str, list[TrendPoint]] = {}
        prev_commit = None
        for i, entry in enumerate(history):
            commit = entry.get("commit")
            commit = str(commit) if commit is not None else None
            boundary = i > 0 and commit is not None and commit != prev_commit
            if commit is not None:
                prev_commit = commit
            for metric, value in _entry_metrics(entry).items():
                points = metrics.setdefault(metric, [])
                prev = points[-1].value if points else None
                regressed = (prev is not None and prev > 0
                             and value > prev * (1.0 + tolerance)
                             and value - prev > 1e-12)
                points.append(TrendPoint(
                    at=str(entry.get("at", "")), value=value, commit=commit,
                    regressed=regressed, pr_boundary=boundary))
        for metric in sorted(metrics):
            series.append(TrendSeries(key=key, metric=metric,
                                      points=tuple(metrics[metric])))
    return series


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

# Chart geometry (SVG user units == CSS px at width 100%).
_W, _H = 640, 230
_ML, _MR, _MT, _MB = 52, 16, 18, 30


def _fmt(value: float) -> str:
    """Three significant digits, no exponent noise for the common ranges."""
    if value == 0:
        return "0"
    if 0.001 <= abs(value) < 10000:
        digits = max(0, 3 - 1 - math.floor(math.log10(abs(value))))
        return f"{value:.{digits}f}"
    return f"{value:.3g}"


def _nice_step(span: float, divisions: int = 4) -> float:
    """A clean tick step (1/2/2.5/5 × 10^k) covering span/divisions."""
    raw = span / divisions if span > 0 else 1.0
    exp = math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * 10.0 ** exp
        if step >= raw - 1e-12:
            return step
    return 10.0 ** (exp + 1)


def _short_time(at: str) -> str:
    """``2026-08-08T00:15:50+00:00`` → ``08-08 00:15`` (axis-tick sized)."""
    if len(at) >= 16 and at[4] == "-":
        return at[5:16].replace("T", " ")
    return at[:16]


def _esc(text) -> str:
    return _html.escape(str(text), quote=True)


def _chart_svg(group: list[TrendSeries], chart_id: str) -> str:
    """One unit-group chart: 2px lines, ≥8px ring-backed markers, hairline
    grid, PR-boundary rules, regression markers, sparse direct labels."""
    n = max(len(s.points) for s in group)
    vmax = max((p.value for s in group for p in s.points), default=1.0)
    step = _nice_step(vmax * 1.05 if vmax > 0 else 1.0)
    top = step * max(1, math.ceil((vmax * 1.05 if vmax > 0 else 1.0) / step))
    plot_w, plot_h = _W - _ML - _MR, _H - _MT - _MB

    def x_of(i: int) -> float:
        return _ML + (plot_w / 2 if n == 1 else plot_w * i / (n - 1))

    def y_of(v: float) -> float:
        return _MT + plot_h * (1.0 - v / top)

    out = [f'<svg viewBox="0 0 {_W} {_H}" role="img" '
           f'aria-labelledby="{chart_id}-t" preserveAspectRatio="none">',
           f'<title id="{chart_id}-t">trend chart</title>']
    # Hairline grid + y ticks (solid, recessive; ticks carry the values).
    v = 0.0
    while v <= top + 1e-12:
        y = y_of(v)
        out.append(f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" y2="{y:.1f}" '
                   f'stroke="var(--grid)" stroke-width="1"/>')
        out.append(f'<text x="{_ML - 6}" y="{y + 3:.1f}" text-anchor="end" '
                   f'class="tick">{_fmt(v)}</text>')
        v += step
    # Baseline.
    out.append(f'<line x1="{_ML}" y1="{_MT + plot_h}" x2="{_W - _MR}" '
               f'y2="{_MT + plot_h}" stroke="var(--axis)" stroke-width="1"/>')
    # Per-PR boundary rules (from any series; they share the history).
    ref = max(group, key=lambda s: len(s.points))
    boundaries = [i for i, p in enumerate(ref.points) if p.pr_boundary]
    for i in boundaries:
        x = x_of(i)
        out.append(f'<line x1="{x:.1f}" y1="{_MT}" x2="{x:.1f}" '
                   f'y2="{_MT + plot_h}" stroke="var(--axis)" stroke-width="1"/>')
        if len(boundaries) <= 6 and ref.points[i].commit:
            out.append(f'<text x="{x + 3:.1f}" y="{_MT + 9}" class="tick">'
                       f'{_esc(ref.points[i].commit)}</text>')
    # X tick labels: first and last timestamp (sparse by design).
    labels = [(0, ref.points[0].at)] + ([(n - 1, ref.points[-1].at)] if n > 1 else [])
    for i, at in labels:
        if not at:
            continue
        anchor = "start" if i == 0 else "end"
        out.append(f'<text x="{x_of(i):.1f}" y="{_H - 10}" '
                   f'text-anchor="{anchor}" class="tick">{_short_time(at)}</text>')
    # Series: 2px round lines, r=4 markers with a 2px surface ring.
    end_labels: list[tuple[float, str, float]] = []
    for idx, s in enumerate(group):
        slot = idx % 8 + 1
        pts = [(x_of(i), y_of(p.value)) for i, p in enumerate(s.points)]
        if len(pts) > 1:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
            out.append(f'<polyline points="{path}" fill="none" '
                       f'stroke="var(--s{slot})" stroke-width="2" '
                       f'stroke-linejoin="round" stroke-linecap="round"/>')
        for (x, y), p in zip(pts, s.points):
            if p.regressed:
                # Regression marker: triangle in the reserved critical
                # color, ring-backed; never color-alone (tooltip + table
                # name it).
                out.append(
                    f'<path d="M {x:.1f} {y - 6:.1f} L {x + 5.5:.1f} {y + 4:.1f} '
                    f'L {x - 5.5:.1f} {y + 4:.1f} Z" fill="var(--critical)" '
                    f'stroke="var(--surface)" stroke-width="2"/>')
            else:
                out.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                           f'fill="var(--s{slot})" stroke="var(--surface)" '
                           f'stroke-width="2"/>')
        end_labels.append((pts[-1][1], _fmt(s.points[-1].value), pts[-1][0]))
    # Direct end labels, only when they don't collide (legend + tooltip
    # carry identity otherwise).
    ys = sorted(y for y, _, _ in end_labels)
    if all(b - a >= 12 for a, b in zip(ys, ys[1:])):
        for y, text, x in end_labels:
            out.append(f'<text x="{min(x + 8, _W - 2):.1f}" y="{y + 3:.1f}" '
                       f'class="endlabel">{text}</text>')
    out.append('<line class="xhair" y1="%d" y2="%d" stroke="var(--axis)" '
               'stroke-width="1" visibility="hidden"/>' % (_MT, _MT + plot_h))
    out.append("</svg>")
    return "".join(out)


def _chart_payload(group: list[TrendSeries]) -> dict:
    """The hover layer's data: x positions + per-series formatted values."""
    ref = max(group, key=lambda s: len(s.points))
    n = len(ref.points)
    plot_w = _W - _ML - _MR

    def x_of(i: int) -> float:
        return _ML + (plot_w / 2 if n == 1 else plot_w * i / (n - 1))

    return {
        "w": _W,
        "xs": [round(x_of(i), 1) for i in range(n)],
        "at": [_short_time(p.at) or f"run {i + 1}"
               for i, p in enumerate(ref.points)],
        "commit": [p.commit or "" for p in ref.points],
        "series": [
            {
                "name": s.label,
                "slot": idx % 8 + 1,
                "values": [_fmt(p.value) + (f" {s.unit}" if s.unit else "")
                           for p in s.points],
                "reg": [bool(p.regressed) for p in s.points],
            }
            for idx, s in enumerate(group)
        ],
    }


def _headline(group: list[TrendSeries]) -> str:
    """Latest value + signed delta vs previous (direction × lower-is-better
    picks the color; the arrow + wording keep it non-color-alone)."""
    s = max(group, key=lambda g: len(g.points))
    latest = s.latest
    unit = f" {s.unit}" if s.unit else ""
    bits = [f'<span class="stat">{_fmt(latest.value)}{unit}</span>']
    if len(s.points) > 1 and s.points[-2].value > 0:
        pct = 100.0 * (latest.value / s.points[-2].value - 1.0)
        if latest.regressed:
            bits.append(f'<span class="delta bad">▲ {pct:+.1f}% vs '
                        f'previous (regression)</span>')
        elif pct < 0:
            bits.append(f'<span class="delta good">▼ {pct:+.1f}% vs '
                        f'previous</span>')
        else:
            bits.append(f'<span class="delta">{pct:+.1f}% vs previous</span>')
    return " ".join(bits)


def _legend(group: list[TrendSeries]) -> str:
    """Line-key legend; present whenever a chart has two or more series."""
    if len(group) < 2:
        return ""
    rows = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:var(--s{idx % 8 + 1})"></span>{_esc(s.label)}</span>'
        for idx, s in enumerate(group))
    return f'<div class="legend">{rows}</div>'


def _table(key: str, groups: dict[str, list[TrendSeries]]) -> str:
    """The WCAG-clean twin: every charted value, no hover required."""
    all_series = [s for group in groups.values() for s in group]
    ref = max(all_series, key=lambda s: len(s.points))
    heads = "".join(
        f"<th>{_esc(s.metric)}{f' ({s.unit})' if s.unit else ''}</th>"
        for s in all_series)
    rows = []
    for i, rp in enumerate(ref.points):
        cells = [f"<td>{_esc(_short_time(rp.at) or i + 1)}</td>",
                 f"<td>{_esc(rp.commit or '—')}</td>"]
        for s in all_series:
            if i < len(s.points):
                p = s.points[i]
                flag = (' <span class="delta bad">▲ regression</span>'
                        if p.regressed else "")
                cells.append(f"<td>{_fmt(p.value)}{flag}</td>")
            else:
                cells.append("<td>—</td>")
        rows.append(f"<tr>{''.join(cells)}</tr>")
    return (f'<details><summary>table view ({len(ref.points)} runs)</summary>'
            f'<table><thead><tr><th>run</th><th>commit</th>{heads}</tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table></details>')


_CSS = """
:root { color-scheme: light;
  --page:#f9f9f7; --surface:#fcfcfb; --ink:#0b0b0b; --ink2:#52514e;
  --muted:#898781; --grid:#e1e0d9; --axis:#c3c2b7;
  --border:rgba(11,11,11,0.10); --critical:#d03b3b; --goodtext:#006300;
  --s1:#2a78d6; --s2:#eb6834; --s3:#1baf7a; --s4:#eda100;
  --s5:#e87ba4; --s6:#008300; --s7:#4a3aa7; --s8:#e34948; }
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) { color-scheme: dark;
    --page:#0d0d0d; --surface:#1a1a19; --ink:#ffffff; --ink2:#c3c2b7;
    --muted:#898781; --grid:#2c2c2a; --axis:#383835;
    --border:rgba(255,255,255,0.10); --critical:#d03b3b; --goodtext:#0ca30c;
    --s1:#3987e5; --s2:#d95926; --s3:#199e70; --s4:#c98500;
    --s5:#d55181; --s6:#008300; --s7:#9085e9; --s8:#e66767; } }
:root[data-theme="dark"] { color-scheme: dark;
  --page:#0d0d0d; --surface:#1a1a19; --ink:#ffffff; --ink2:#c3c2b7;
  --muted:#898781; --grid:#2c2c2a; --axis:#383835;
  --border:rgba(255,255,255,0.10); --critical:#d03b3b; --goodtext:#0ca30c;
  --s1:#3987e5; --s2:#d95926; --s3:#199e70; --s4:#c98500;
  --s5:#d55181; --s6:#008300; --s7:#9085e9; --s8:#e66767; }
* { box-sizing: border-box; }
body { margin:0; padding:24px; background:var(--page); color:var(--ink);
  font:14px/1.45 system-ui,-apple-system,"Segoe UI",sans-serif; }
header { display:flex; align-items:baseline; gap:12px; margin-bottom:8px; }
h1 { font-size:20px; margin:0; }
.sub { color:var(--ink2); font-size:13px; }
#theme { margin-left:auto; border:1px solid var(--border); border-radius:6px;
  background:var(--surface); color:var(--ink2); padding:4px 10px; cursor:pointer; }
.grid { display:grid; gap:16px;
  grid-template-columns:repeat(auto-fit,minmax(380px,1fr)); }
.card { background:var(--surface); border:1px solid var(--border);
  border-radius:8px; padding:16px 16px 12px; }
.card h2 { font-size:15px; margin:0 0 2px; }
.stat { font-size:22px; font-weight:600; }
.delta { font-size:12px; color:var(--ink2); }
.delta.bad { color:var(--critical); font-weight:600; }
.delta.good { color:var(--goodtext); font-weight:600; }
.unit { color:var(--muted); font-size:12px; margin:8px 0 0; }
figure.chart { margin:2px 0 0; position:relative; }
figure.chart:focus { outline:2px solid var(--s1); outline-offset:2px; }
svg { display:block; width:100%; height:auto; }
.tick { font:10px system-ui,sans-serif; fill:var(--muted);
  font-variant-numeric:tabular-nums; }
.endlabel { font:11px system-ui,sans-serif; fill:var(--ink2);
  font-variant-numeric:tabular-nums; }
.legend { display:flex; gap:14px; flex-wrap:wrap; margin-top:4px;
  font-size:12px; color:var(--ink2); }
.key { display:inline-flex; align-items:center; gap:6px; }
.swatch { width:14px; height:2px; display:inline-block; }
.tip { position:absolute; pointer-events:none; background:var(--surface);
  border:1px solid var(--border); border-radius:6px; padding:6px 10px;
  font-size:12px; box-shadow:0 2px 8px rgba(0,0,0,0.12); display:none;
  min-width:120px; z-index:2; }
.tip .when { color:var(--muted); margin-bottom:2px; }
.tip .row { display:flex; align-items:center; gap:6px; }
.tip .row b { font-variant-numeric:tabular-nums; }
.tip .row .k { width:10px; height:2px; display:inline-block; }
.tip .row .n { color:var(--ink2); }
.tip .reg { color:var(--critical); font-weight:600; }
details { margin-top:8px; }
summary { color:var(--ink2); font-size:12px; cursor:pointer; }
table { border-collapse:collapse; margin-top:6px; font-size:12px; width:100%; }
th,td { border-bottom:1px solid var(--grid); padding:3px 8px; text-align:left;
  font-variant-numeric:tabular-nums; }
th { color:var(--ink2); font-weight:600; }
footer { margin-top:18px; color:var(--muted); font-size:12px; }
"""

# The hover layer: a crosshair that snaps to the nearest run, one tooltip
# listing every series at that X (keyboard: arrows move, Escape hides).
# Series/commit labels are inserted with textContent — never innerHTML.
_JS = """
document.getElementById('theme').addEventListener('click', function () {
  var r = document.documentElement;
  var dark = r.dataset.theme === 'dark' ||
    (!r.dataset.theme && matchMedia('(prefers-color-scheme: dark)').matches);
  r.dataset.theme = dark ? 'light' : 'dark';
});
document.querySelectorAll('figure.chart').forEach(function (fig) {
  var data = JSON.parse(fig.querySelector('script').textContent);
  var svg = fig.querySelector('svg'), tip = fig.querySelector('.tip');
  var hair = svg.querySelector('.xhair');
  function nearest(px) {
    var best = 0, d = Infinity;
    data.xs.forEach(function (x, i) {
      var dd = Math.abs(x - px); if (dd < d) { d = dd; best = i; }
    });
    return best;
  }
  function show(i) {
    var rect = svg.getBoundingClientRect(), sx = rect.width / data.w;
    hair.setAttribute('x1', data.xs[i]); hair.setAttribute('x2', data.xs[i]);
    hair.setAttribute('visibility', 'visible');
    while (tip.firstChild) tip.removeChild(tip.firstChild);
    var when = document.createElement('div'); when.className = 'when';
    when.textContent = data.at[i] + (data.commit[i] ? ' @ ' + data.commit[i] : '');
    tip.appendChild(when);
    data.series.forEach(function (s) {
      if (i >= s.values.length) return;
      var row = document.createElement('div'); row.className = 'row';
      var k = document.createElement('span'); k.className = 'k';
      k.style.background = 'var(--s' + s.slot + ')';
      var v = document.createElement('b'); v.textContent = s.values[i];
      var n = document.createElement('span'); n.className = 'n';
      n.textContent = s.name;
      row.appendChild(k); row.appendChild(v); row.appendChild(n);
      if (s.reg[i]) {
        var r = document.createElement('span'); r.className = 'reg';
        r.textContent = '\\u25b2 regression';
        row.appendChild(r);
      }
      tip.appendChild(row);
    });
    tip.style.display = 'block';
    var x = data.xs[i] * sx + 12;
    if (x + tip.offsetWidth > rect.width) x = data.xs[i] * sx - tip.offsetWidth - 12;
    tip.style.left = Math.max(0, x) + 'px';
    tip.style.top = '12px';
    fig.dataset.idx = i;
  }
  function hide() {
    tip.style.display = 'none'; hair.setAttribute('visibility', 'hidden');
  }
  svg.addEventListener('pointermove', function (ev) {
    var rect = svg.getBoundingClientRect();
    show(nearest((ev.clientX - rect.left) * data.w / rect.width));
  });
  svg.addEventListener('pointerleave', hide);
  fig.addEventListener('focus', function () { show(data.xs.length - 1); });
  fig.addEventListener('blur', hide);
  fig.addEventListener('keydown', function (ev) {
    var i = +(fig.dataset.idx || data.xs.length - 1);
    if (ev.key === 'ArrowLeft') { show(Math.max(0, i - 1)); ev.preventDefault(); }
    if (ev.key === 'ArrowRight') {
      show(Math.min(data.xs.length - 1, i + 1)); ev.preventDefault();
    }
    if (ev.key === 'Escape') hide();
  });
});
"""


def _json_for_html(payload: dict) -> str:
    return json.dumps(payload, separators=(",", ":")).replace("</", "<\\/")


def render_dashboard(meta: dict,
                     tolerance: float = DEFAULT_TREND_TOLERANCE,
                     source: str = "results/bench_meta.json",
                     generated: str = "") -> str:
    """The complete dashboard page for one bench-meta document."""
    series = trend_series(meta, tolerance=tolerance)
    by_key: dict[str, dict[str, list[TrendSeries]]] = {}
    for s in series:
        by_key.setdefault(s.key, {}).setdefault(s.group, []).append(s)

    cards = []
    chart_no = 0
    for key, groups in sorted(by_key.items()):
        parts = [f"<h2>{_esc(key)}</h2>"]
        parts.append(f"<div>{_headline(list(groups.values())[0])}</div>")
        for gname, group in sorted(groups.items()):
            chart_no += 1
            unit = group[0].unit
            parts.append(f'<p class="unit">{_esc(gname)}'
                         f'{f" ({_esc(unit)})" if unit else ""}</p>')
            parts.append(
                f'<figure class="chart" tabindex="0" '
                f'aria-label="{_esc(key)} {_esc(gname)} trend">'
                f'{_chart_svg(group, f"c{chart_no}")}'
                f'<div class="tip" role="status"></div>'
                f'<script type="application/json">'
                f'{_json_for_html(_chart_payload(group))}</script>'
                f"</figure>")
            parts.append(_legend(group))
        parts.append(_table(key, groups))
        cards.append(f'<section class="card">{"".join(parts)}</section>')

    if not cards:
        cards.append('<section class="card"><h2>no trajectories</h2>'
                     "<p>the bench meta file has no history entries yet — "
                     "run the benchmarks to seed it.</p></section>")

    n_reg = sum(1 for s in series for p in s.points if p.regressed)
    sub = (f"{len(by_key)} benchmark(s), {len(series)} series · "
           f"regression threshold {tolerance * 100:.0f}% vs previous run · "
           f"{n_reg} regression point(s) flagged")
    gen = f" · generated {_esc(generated)}" if generated else ""
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<meta name="generator" content="{TREND_SCHEMA}">
<title>repro perf trend</title>
<style>{_CSS}</style>
</head><body>
<header><h1>repro perf trend</h1>
<span class="sub">{_esc(source)}{gen}</span>
<button id="theme" type="button">light/dark</button></header>
<p class="sub">{sub}</p>
<div class="grid">{"".join(cards)}</div>
<footer>wall-clock trajectories from <code>append_bench_history</code>;
lower is better everywhere. ▲ marks a run slower than its predecessor
beyond the threshold; vertical rules mark commit boundaries.</footer>
<script>{_JS}</script>
</body></html>
"""


def write_dashboard(meta_path, out_path,
                    tolerance: float = DEFAULT_TREND_TOLERANCE,
                    generated: str = "") -> Path:
    """Render ``meta_path`` to ``out_path`` and return the written path."""
    meta = load_bench_meta(meta_path)
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dashboard(
        meta, tolerance=tolerance, source=str(meta_path), generated=generated))
    return out
