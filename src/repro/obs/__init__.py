"""Projections-style observability: metrics, timeline analysis, critical path,
perf reports, and the perf-regression gate.

The package layers on the simulator's monitor hooks and
:class:`~repro.sim.tracing.Tracer` without importing the application stack;
:func:`~repro.obs.report.collect_perf` lazy-imports the app driver.
"""

from .critpath import WAIT, CriticalPath, PathSegment, collect_segments, critical_path
from .metrics import (
    MAX_SERIES,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    size_bucket,
)
from .report import (
    Comparison,
    Observatory,
    PerfReport,
    Regression,
    append_bench_history,
    collect_perf,
    compare_perf,
    extract_comparable,
)
from .timeline import (
    ResourceUsage,
    compute_comm_overlap,
    gpu_compute_spans,
    iteration_boundaries,
    per_iteration_phases,
    phase_breakdown,
    phase_intervals,
    resource_usage,
)


def __getattr__(name: str):
    # PHASES / classify_op are the stencil core's declaration, resolved
    # lazily so importing repro.obs never pulls in the application stack.
    if name in ("PHASES", "classify_op"):
        from . import timeline

        return getattr(timeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "MAX_SERIES",
    "PHASES",
    "SIZE_BUCKETS",
    "WAIT",
    "Comparison",
    "Counter",
    "CriticalPath",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observatory",
    "PathSegment",
    "PerfReport",
    "Regression",
    "ResourceUsage",
    "append_bench_history",
    "classify_op",
    "collect_perf",
    "collect_segments",
    "compare_perf",
    "compute_comm_overlap",
    "critical_path",
    "extract_comparable",
    "gpu_compute_spans",
    "iteration_boundaries",
    "per_iteration_phases",
    "phase_breakdown",
    "phase_intervals",
    "resource_usage",
    "size_bucket",
]
