"""Projections-style observability: metrics, timeline analysis, critical path,
perf reports, and the perf-regression gate.

The package layers on the simulator's monitor hooks and
:class:`~repro.sim.tracing.Tracer` without importing the application stack;
:func:`~repro.obs.report.collect_perf` lazy-imports the app driver.
"""

from .critpath import WAIT, CriticalPath, PathSegment, collect_segments, critical_path
from .diff import DeltaEntry, DiffReport, SchemaMismatch, diff_reports, diff_sidecar_dirs
from .metrics import (
    MAX_SERIES,
    OVERFLOW_METRIC,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    size_bucket,
)
from .report import (
    COMPARE_SCHEMA,
    Comparison,
    Observatory,
    PerfReport,
    Regression,
    append_bench_history,
    collect_perf,
    compare_perf,
    extract_comparable,
)
from .trend import (
    TREND_SCHEMA,
    TrendPoint,
    TrendSeries,
    load_bench_meta,
    render_dashboard,
    trend_series,
    write_dashboard,
)
from .whatif import (
    DEFAULT_TOLERANCE,
    Intervention,
    OdfAdvice,
    WhatIfModel,
    WhatIfPrediction,
    WhatIfValidation,
    advise_odf,
    apply_to_machine,
    odf_sweep,
    record_run,
    resolve_targets,
    validate_intervention,
)
from .timeline import (
    ResourceUsage,
    compute_comm_overlap,
    gpu_compute_spans,
    iteration_boundaries,
    per_iteration_phases,
    phase_breakdown,
    phase_intervals,
    resource_usage,
)


def __getattr__(name: str):
    # PHASES / classify_op are the stencil core's declaration, resolved
    # lazily so importing repro.obs never pulls in the application stack.
    if name in ("PHASES", "classify_op"):
        from . import timeline

        return getattr(timeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "COMPARE_SCHEMA",
    "DEFAULT_TOLERANCE",
    "MAX_SERIES",
    "OVERFLOW_METRIC",
    "PHASES",
    "SIZE_BUCKETS",
    "WAIT",
    "Comparison",
    "Counter",
    "CriticalPath",
    "DeltaEntry",
    "DiffReport",
    "Gauge",
    "Histogram",
    "Intervention",
    "MetricsRegistry",
    "Observatory",
    "OdfAdvice",
    "PathSegment",
    "PerfReport",
    "Regression",
    "ResourceUsage",
    "SchemaMismatch",
    "TREND_SCHEMA",
    "TrendPoint",
    "TrendSeries",
    "WhatIfModel",
    "WhatIfPrediction",
    "WhatIfValidation",
    "advise_odf",
    "append_bench_history",
    "apply_to_machine",
    "classify_op",
    "collect_perf",
    "collect_segments",
    "compare_perf",
    "compute_comm_overlap",
    "critical_path",
    "diff_reports",
    "diff_sidecar_dirs",
    "extract_comparable",
    "gpu_compute_spans",
    "iteration_boundaries",
    "load_bench_meta",
    "odf_sweep",
    "per_iteration_phases",
    "phase_breakdown",
    "phase_intervals",
    "record_run",
    "render_dashboard",
    "resolve_targets",
    "resource_usage",
    "size_bucket",
    "trend_series",
    "validate_intervention",
    "write_dashboard",
]
