"""Labelled counters, gauges, and histograms for simulated runs.

The registry plays the role of Charm++'s Projections summary counters: a
cheap, always-consistent tally of *what happened* (events scheduled,
messages by protocol path, bytes by size bucket, launches per PE), as
opposed to the tracer's *when it happened* timeline.

Attachment mirrors :class:`~repro.sim.tracing.Tracer`: ``registry.attach
(engine)`` sets ``engine.metrics``, and every instrumentation point in the
simulator guards with a single ``if engine.metrics is not None`` check — a
run without a registry pays one attribute test per instrumented site and
allocates nothing.

Label discipline
----------------
Metrics are keyed by ``(name, sorted label items)``.  Label values come
from small enumerable domains (pe index, protocol name, msg-size bucket);
a per-metric cardinality cap (default :data:`MAX_SERIES`) guards against a
bug introducing an unbounded label (e.g. a per-message id): past the cap,
samples are folded into a single ``(overflow)`` series instead of growing
memory without bound, and ``dropped_series`` records how many distinct
label sets were folded.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left
from typing import Any, Iterable, Optional

__all__ = [
    "MAX_SERIES",
    "OVERFLOW_METRIC",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "size_bucket",
]

#: Per-metric cap on distinct label sets (series).
MAX_SERIES = 1024

#: Synthetic counter name under which the registry exposes how many label
#: sets each metric folded into its ``(overflow)`` series — present in
#: ``snapshot()`` / ``scalar_totals()`` only when folding happened, so a
#: cardinality bug is visible in the perf report instead of silent.
OVERFLOW_METRIC = "repro_metrics_overflow_total"

#: Power-of-4 byte buckets for message-size histograms: "64", "256", ...,
#: "(2^30)+" — coarse enough to stay readable, fine enough to separate the
#: eager / rendezvous / pipelined protocol regimes.
SIZE_BUCKETS = tuple(4 ** k for k in range(3, 16))

_OVERFLOW_KEY = (("_overflow", "true"),)


def size_bucket(size: float) -> str:
    """The histogram bucket label for a byte count (upper edge, or ``+inf``)."""
    idx = bisect_left(SIZE_BUCKETS, size)
    if idx >= len(SIZE_BUCKETS):
        return "+inf"
    return str(SIZE_BUCKETS[idx])


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared storage: one value cell per distinct label set."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", max_series: int = MAX_SERIES):
        self.name = name
        self.help = help
        self.max_series = max_series
        self.series: dict[tuple, Any] = {}
        self.dropped_series = 0
        self._overflow_warned = False

    def _cell_key(self, labels: dict) -> tuple:
        # Unlabelled series (the engine's per-event counters) skip the
        # sort/str tuple build entirely — the enabled path must stay
        # append-only with no per-call allocation beyond the cell update.
        key = _label_key(labels) if labels else ()
        if key not in self.series and len(self.series) >= self.max_series:
            self.dropped_series += 1
            if not self._overflow_warned:
                # Warn once per metric: the first fold is the signal (an
                # unbounded label leaked in); repeating it per sample
                # would bury the run's output.
                self._overflow_warned = True
                warnings.warn(
                    f"metric {self.name!r} exceeded {self.max_series} label "
                    f"sets; folding further series into (overflow) — see "
                    f"{OVERFLOW_METRIC}", RuntimeWarning, stacklevel=4)
            return _OVERFLOW_KEY
        return key

    def labels_of(self, key: tuple) -> dict:
        return dict(key)

    def snapshot(self) -> dict:
        out = {
            "kind": self.kind,
            "series": [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self.series.items())
            ],
        }
        if self.help:
            out["help"] = self.help
        if self.dropped_series:
            out["dropped_series"] = self.dropped_series
        return out


class Counter(_Metric):
    """A monotonically increasing sum (events, messages, bytes, seconds)."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name}: negative increment {value}")
        key = self._cell_key(labels)
        self.series[key] = self.series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return self.series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self.series.values())


class Gauge(_Metric):
    """A point-in-time level (queue depth, live frames); tracks the max seen."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._cell_key(labels)
        cell = self.series.get(key)
        if cell is None:
            self.series[key] = {"value": value, "max": value}
        else:
            cell["value"] = value
            if value > cell["max"]:
                cell["max"] = value

    def value(self, **labels) -> float:
        cell = self.series.get(_label_key(labels))
        return cell["value"] if cell else 0.0

    def max(self, **labels) -> float:
        cell = self.series.get(_label_key(labels))
        return cell["max"] if cell else 0.0


class Histogram(_Metric):
    """Bucketed distribution; buckets are *upper edges* (last bucket +inf).

    Defaults to the message-size buckets of :data:`SIZE_BUCKETS`.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: Optional[Iterable[float]] = None,
                 max_series: int = MAX_SERIES):
        super().__init__(name, help=help, max_series=max_series)
        edges = tuple(buckets) if buckets is not None else SIZE_BUCKETS
        if list(edges) != sorted(edges):
            raise ValueError(f"histogram {name}: bucket edges must be sorted")
        self.edges = edges

    def observe(self, value: float, **labels) -> None:
        key = self._cell_key(labels)
        cell = self.series.get(key)
        if cell is None:
            cell = self.series[key] = {
                "count": 0, "sum": 0.0, "buckets": [0] * (len(self.edges) + 1)
            }
        cell["count"] += 1
        cell["sum"] += value
        cell["buckets"][bisect_left(self.edges, value)] += 1

    def count(self, **labels) -> int:
        cell = self.series.get(_label_key(labels))
        return cell["count"] if cell else 0

    def sum(self, **labels) -> float:
        cell = self.series.get(_label_key(labels))
        return cell["sum"] if cell else 0.0


class MetricsRegistry:
    """A named collection of metrics, attachable to one :class:`Engine`.

    Instrumented components use the auto-creating helpers (:meth:`inc`,
    :meth:`set`, :meth:`observe`), so a site never has to pre-declare its
    metric; analysis code can also :meth:`declare` metrics up front with
    help strings for the catalogue.
    """

    def __init__(self, max_series: int = MAX_SERIES):
        self._metrics: dict[str, _Metric] = {}
        self.max_series = max_series
        self._engine = None

    # -- attachment (mirrors Tracer) --------------------------------------
    def attach(self, engine) -> "MetricsRegistry":
        """Register as ``engine.metrics``; idempotent on the same engine."""
        if self._engine is engine:
            return self
        if self._engine is not None:
            self._engine.metrics = None
        self._engine = engine
        engine.metrics = self
        return self

    def detach(self) -> None:
        """Unregister from the current engine (no-op when unattached)."""
        if self._engine is not None:
            if getattr(self._engine, "metrics", None) is self:
                self._engine.metrics = None
            self._engine = None

    def __enter__(self) -> "MetricsRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- declaration ------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._declare(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._declare(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(
                name, help=help, buckets=buckets, max_series=self.max_series)
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} already declared as {metric.kind}")
        return metric

    def _declare(self, cls, name, help):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help=help, max_series=self.max_series)
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already declared as {metric.kind}")
        return metric

    # -- instrumentation-site helpers (auto-create) ------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        metric = self._metrics.get(name)
        if metric is None or metric.__class__ is not Counter:
            metric = self.counter(name)  # create, or raise on kind clash
        metric.inc(value, **labels)

    def set(self, name: str, value: float, **labels) -> None:
        metric = self._metrics.get(name)
        if metric is None or metric.__class__ is not Gauge:
            metric = self.gauge(name)
        metric.set(value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        metric = self._metrics.get(name)
        if metric is None or metric.__class__ is not Histogram:
            metric = self.histogram(name)
        metric.observe(value, **labels)

    # -- queries -----------------------------------------------------------
    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def overflow_total(self) -> int:
        """Label sets folded into ``(overflow)`` across every metric."""
        return sum(m.dropped_series for m in self._metrics.values())

    def snapshot(self) -> dict:
        """JSON-ready dump of every metric (stable ordering), plus the
        synthetic :data:`OVERFLOW_METRIC` counter when any metric folded."""
        out = {name: self._metrics[name].snapshot() for name in self.names()}
        if self.overflow_total():
            out[OVERFLOW_METRIC] = {
                "kind": "counter",
                "help": "label sets folded into (overflow), per metric",
                "series": [
                    {"labels": {"metric": name}, "value": metric.dropped_series}
                    for name, metric in sorted(self._metrics.items())
                    if metric.dropped_series
                ],
            }
        return out

    def scalar_totals(self) -> dict[str, float]:
        """Counter totals across labels — the compact summary used by
        :class:`~repro.obs.report.PerfReport`.  Includes
        :data:`OVERFLOW_METRIC` when any metric hit its cardinality cap."""
        out = {
            name: metric.total()
            for name, metric in sorted(self._metrics.items())
            if isinstance(metric, Counter)
        }
        overflow = self.overflow_total()
        if overflow:
            out[OVERFLOW_METRIC] = float(overflow)
        return out

    def render_text(self) -> str:
        lines = []
        for name in self.names():
            metric = self._metrics[name]
            lines.append(f"{name} ({metric.kind})")
            for key, value in sorted(metric.series.items()):
                label_txt = ", ".join(f"{k}={v}" for k, v in key) or "-"
                if metric.kind == "counter":
                    shown = f"{value:g}"
                elif metric.kind == "gauge":
                    shown = f"{value['value']:g} (max {value['max']:g})"
                else:
                    shown = f"count={value['count']} sum={value['sum']:g}"
                lines.append(f"  {label_txt:40s} {shown}")
            if metric.dropped_series:
                lines.append(f"  (overflow: {metric.dropped_series} label sets folded)")
        return "\n".join(lines)
