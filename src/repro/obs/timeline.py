"""Timeline analysis: per-resource busy/idle and per-iteration phase attribution.

This is the analysis half of the paper's Nsight-Systems methodology: given
a finished run's cluster (interval trackers) and optional trace, answer

* **where did the time go per resource** — busy/idle/utilization for every
  PE core, every GPU engine (compute, D2H, H2D, D2D), and the network;
* **what was each iteration spent on** — pack / D2H / NIC / H2D / unpack /
  update attribution, computed from trace intervals and the per-iteration
  ``app.iter_done`` markers the driver emits;
* **did overlap happen** — the quantitative computation/communication
  overlap definition shared by the driver, tests, and reports
  (:func:`compute_comm_overlap` is the single implementation; call sites
  no longer hand-roll ``merge_intervals`` + ``overlap_seconds``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hardware.gpu import COMPUTE
from ..sim import Tracer, merge_intervals, overlap_seconds

__all__ = [
    "PHASES",
    "ResourceUsage",
    "classify_op",
    "compute_comm_overlap",
    "gpu_compute_spans",
    "iteration_boundaries",
    "per_iteration_phases",
    "phase_breakdown",
    "phase_intervals",
    "resource_usage",
]

#: The per-iteration cost phases of a halo-exchange iteration, in pipeline
#: order (paper Figs. 3-5): produce halos, stage them down, move them,
#: stage them up, consume them, update.
PHASES = ("pack", "d2h", "nic", "h2d", "unpack", "update", "other")


@dataclass(frozen=True)
class ResourceUsage:
    """Busy/idle accounting for one resource over a window."""

    name: str
    kind: str  # "pe" | "gpu.compute" | "gpu.copy_d2h" | ... | "net"
    busy_s: float
    window_s: float

    @property
    def idle_s(self) -> float:
        return max(0.0, self.window_s - self.busy_s)

    @property
    def utilization(self) -> float:
        return self.busy_s / self.window_s if self.window_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "busy_s": self.busy_s,
            "window_s": self.window_s,
            "utilization": self.utilization,
        }


# ---------------------------------------------------------------------------
# Resource busy/idle
# ---------------------------------------------------------------------------


def resource_usage(cluster, t0: float = 0.0, t1: Optional[float] = None) -> list[ResourceUsage]:
    """Per-resource busy time within ``[t0, t1]`` for every PE core, GPU
    engine, and the network's in-flight tracker."""
    if t1 is None:
        t1 = cluster.engine.now
    window = max(0.0, t1 - t0)
    out: list[ResourceUsage] = []
    for pe in cluster.all_pes():
        out.append(ResourceUsage(pe.name, "pe", pe.busy.busy_seconds(t0, t1), window))
    for node in cluster.nodes:
        for gpu in node.gpus:
            for kind, tracker in gpu.trackers.items():
                out.append(ResourceUsage(
                    f"{gpu.name}.{kind}", f"gpu.{kind}",
                    tracker.busy_seconds(t0, t1), window))
    net = cluster.network
    out.append(ResourceUsage("net.inflight", "net", net.inflight.busy_seconds(t0, t1), window))
    return out


def gpu_compute_spans(cluster) -> list[tuple[float, float]]:
    """Merged busy intervals of every GPU compute engine in the cluster."""
    spans: list[tuple[float, float]] = []
    for node in cluster.nodes:
        for gpu in node.gpus:
            spans.extend(gpu.trackers[COMPUTE].spans)
    return merge_intervals(spans)


def compute_comm_overlap(cluster) -> float:
    """Seconds during which any GPU computes *while* any message is in
    flight — the paper's computation/communication overlap.  The single
    shared implementation behind :class:`~repro.apps.jacobi3d` results and
    perf reports."""
    return overlap_seconds(gpu_compute_spans(cluster), cluster.network.inflight.spans)


# ---------------------------------------------------------------------------
# Phase attribution from trace intervals
# ---------------------------------------------------------------------------


def classify_op(category: str, op_name: str) -> str:
    """Map one traced operation to its cost phase.

    GPU copy engines map directly (D2H/H2D); D2D copies are the transport
    leg of same-device IPC sends and count as ``nic``.  Compute-kernel
    names follow the app conventions (``pack*``, ``unpack*``, ``update`` /
    ``interior`` / ``exterior`` / ``fused*``), with the ``graph.`` prefix
    of CUDA-graph nodes stripped first.
    """
    if category.startswith("gpu.copy_d2h"):
        return "d2h"
    if category.startswith("gpu.copy_h2d"):
        return "h2d"
    if category.startswith("gpu.copy_d2d"):
        return "nic"
    if category.startswith("net."):
        return "nic"
    if category.startswith("gpu.compute"):
        name = op_name
        if name.startswith("graph."):
            name = name[len("graph."):]
        if name.startswith("pack"):
            return "pack"
        if name.startswith("unpack"):
            return "unpack"
        if name.startswith(("update", "interior", "exterior", "fused")):
            return "update"
        return "other"
    return "other"


def phase_intervals(tracer: Tracer) -> dict[str, list[tuple[float, float]]]:
    """Raw (unmerged) busy intervals per phase from a run's trace.

    Uses the duration-carrying ``gpu.*`` records and the ``net.deliver``
    records (whose ``latency`` payload reconstructs the in-flight window).
    """
    out: dict[str, list[tuple[float, float]]] = {phase: [] for phase in PHASES}
    for rec in tracer.records:
        if rec.category.startswith("gpu."):
            duration = rec.data.get("duration")
            if duration is None:
                continue
            start = rec.data.get("start", rec.time)
            phase = classify_op(rec.category, str(rec.data.get("op", "")))
            out[phase].append((start, start + float(duration)))
        elif rec.category == "net.deliver":
            latency = float(rec.data.get("latency", 0.0))
            if latency > 0.0:
                out["nic"].append((rec.time - latency, rec.time))
    return out


def _clipped_busy(spans: list[tuple[float, float]], t0: float, t1: float) -> float:
    total = 0.0
    for a, b in merge_intervals(spans):
        lo, hi = max(a, t0), min(b, t1)
        if hi > lo:
            total += hi - lo
    return total


def phase_breakdown(tracer: Tracer, t0: float = 0.0,
                    t1: Optional[float] = None) -> dict[str, float]:
    """Busy seconds per phase within ``[t0, t1]`` (union per phase, so
    concurrent same-phase work on different devices counts once per unit
    of wall-clock — the *footprint* of the phase, matching how an Nsight
    timeline reads)."""
    intervals = phase_intervals(tracer)
    if t1 is None:
        t1 = max((b for spans in intervals.values() for _, b in spans), default=t0)
    return {phase: _clipped_busy(spans, t0, t1) for phase, spans in intervals.items()}


def iteration_boundaries(tracer: Tracer) -> list[float]:
    """``boundaries[i]`` = time the *last* unit finished iteration ``i``
    (from the driver's ``app.iter_done`` markers); empty without markers."""
    latest: dict[int, float] = {}
    for rec in tracer.records:
        if rec.category != "app.iter_done":
            continue
        it = int(rec.data["iter"])
        if rec.time > latest.get(it, float("-inf")):
            latest[it] = rec.time
    return [latest[it] for it in sorted(latest)]


def per_iteration_phases(tracer: Tracer) -> list[dict]:
    """Phase attribution per iteration window.

    Iteration ``i``'s window runs from the previous iteration's boundary
    (0 for the first) to its own — the same global-progress windows
    Projections uses for its time-profile view.  Returns one dict per
    iteration: ``{"iteration", "t0", "t1", "phases": {phase: seconds}}``.
    """
    boundaries = iteration_boundaries(tracer)
    if not boundaries:
        return []
    intervals = phase_intervals(tracer)
    out = []
    t_prev = 0.0
    for i, t_end in enumerate(boundaries):
        out.append({
            "iteration": i,
            "t0": t_prev,
            "t1": t_end,
            "phases": {
                phase: _clipped_busy(spans, t_prev, t_end)
                for phase, spans in intervals.items()
            },
        })
        t_prev = t_end
    return out
