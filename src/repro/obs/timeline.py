"""Timeline analysis: per-resource busy/idle and per-iteration phase attribution.

This is the analysis half of the paper's Nsight-Systems methodology: given
a finished run's cluster (interval trackers) and optional trace, answer

* **where did the time go per resource** — busy/idle/utilization for every
  PE core, every GPU engine (compute, D2H, H2D, D2D), and the network;
* **what was each iteration spent on** — per-phase attribution, computed
  from trace intervals and the per-iteration ``app.iter_done`` markers the
  driver emits.  The phase vocabulary is *app-declared*: every analysis
  function takes ``phases`` (display-ordered tuple) and ``classify``
  (``(category, op_name) -> phase``), normally supplied from the app's
  :class:`~repro.apps.registry.AppSpec`; they default to the shared stencil
  core's declaration, which is also re-exported here as the historical
  module attributes ``PHASES`` and ``classify_op``;
* **did overlap happen** — the quantitative computation/communication
  overlap definition shared by the driver, tests, and reports
  (:func:`compute_comm_overlap` is the single implementation; call sites
  no longer hand-roll ``merge_intervals`` + ``overlap_seconds``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hardware.gpu import COMPUTE
from ..sim import Tracer, merge_intervals, overlap_seconds

__all__ = [
    "PHASES",
    "ResourceUsage",
    "classify_op",
    "compute_comm_overlap",
    "gpu_compute_spans",
    "iteration_boundaries",
    "per_iteration_phases",
    "phase_breakdown",
    "phase_intervals",
    "resource_usage",
]


def _stencil_phase_decl():
    """The stencil core's phase declaration — the default vocabulary and
    the back-compat ``PHASES``/``classify_op`` module attributes.  Imported
    lazily so :mod:`repro.obs` stays importable without the app stack."""
    from ..apps.stencil.phases import STENCIL_PHASES, classify_stencil_op

    return STENCIL_PHASES, classify_stencil_op


def __getattr__(name: str):
    if name == "PHASES":
        return _stencil_phase_decl()[0]
    if name == "classify_op":
        return _stencil_phase_decl()[1]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class ResourceUsage:
    """Busy/idle accounting for one resource over a window."""

    name: str
    kind: str  # "pe" | "gpu.compute" | "gpu.copy_d2h" | ... | "net"
    busy_s: float
    window_s: float

    @property
    def idle_s(self) -> float:
        return max(0.0, self.window_s - self.busy_s)

    @property
    def utilization(self) -> float:
        return self.busy_s / self.window_s if self.window_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "busy_s": self.busy_s,
            "window_s": self.window_s,
            "utilization": self.utilization,
        }


# ---------------------------------------------------------------------------
# Resource busy/idle
# ---------------------------------------------------------------------------


def resource_usage(cluster, t0: float = 0.0, t1: Optional[float] = None) -> list[ResourceUsage]:
    """Per-resource busy time within ``[t0, t1]`` for every PE core, GPU
    engine, and the network's in-flight tracker."""
    if t1 is None:
        t1 = cluster.engine.now
    window = max(0.0, t1 - t0)
    out: list[ResourceUsage] = []
    for pe in cluster.all_pes():
        out.append(ResourceUsage(pe.name, "pe", pe.busy.busy_seconds(t0, t1), window))
    for node in cluster.nodes:
        for gpu in node.gpus:
            for kind, tracker in gpu.trackers.items():
                out.append(ResourceUsage(
                    f"{gpu.name}.{kind}", f"gpu.{kind}",
                    tracker.busy_seconds(t0, t1), window))
    net = cluster.network
    out.append(ResourceUsage("net.inflight", "net", net.inflight.busy_seconds(t0, t1), window))
    return out


def gpu_compute_spans(cluster) -> list[tuple[float, float]]:
    """Merged busy intervals of every GPU compute engine in the cluster."""
    spans: list[tuple[float, float]] = []
    for node in cluster.nodes:
        for gpu in node.gpus:
            spans.extend(gpu.trackers[COMPUTE].spans)
    return merge_intervals(spans)


def compute_comm_overlap(cluster) -> float:
    """Seconds during which any GPU computes *while* any message is in
    flight — the paper's computation/communication overlap.  The single
    shared implementation behind :class:`~repro.apps.jacobi3d` results and
    perf reports."""
    return overlap_seconds(gpu_compute_spans(cluster), cluster.network.inflight.spans)


# ---------------------------------------------------------------------------
# Phase attribution from trace intervals
# ---------------------------------------------------------------------------


def _resolve_phase_decl(phases, classify):
    if phases is None or classify is None:
        default_phases, default_classify = _stencil_phase_decl()
        phases = default_phases if phases is None else phases
        classify = default_classify if classify is None else classify
    return phases, classify


def phase_intervals(tracer: Tracer, phases=None,
                    classify=None) -> dict[str, list[tuple[float, float]]]:
    """Raw (unmerged) busy intervals per phase from a run's trace.

    Uses the duration-carrying ``gpu.*`` records and the ``net.deliver``
    records (whose ``latency`` payload reconstructs the in-flight window).
    ``phases``/``classify`` come from the app's spec; default: the stencil
    declaration.  Network in-flight windows land in ``nic`` when the
    vocabulary declares it, else in the last phase (the catch-all).
    """
    phases, classify = _resolve_phase_decl(phases, classify)
    out: dict[str, list[tuple[float, float]]] = {phase: [] for phase in phases}
    net_phase = "nic" if "nic" in out else phases[-1]
    for rec in tracer.records:
        if rec.category.startswith("gpu."):
            duration = rec.data.get("duration")
            if duration is None:
                continue
            start = rec.data.get("start", rec.time)
            phase = classify(rec.category, str(rec.data.get("op", "")))
            out[phase].append((start, start + float(duration)))
        elif rec.category == "net.deliver":
            latency = float(rec.data.get("latency", 0.0))
            if latency > 0.0:
                out[net_phase].append((rec.time - latency, rec.time))
    return out


def _clipped_busy(spans: list[tuple[float, float]], t0: float, t1: float) -> float:
    total = 0.0
    for a, b in merge_intervals(spans):
        lo, hi = max(a, t0), min(b, t1)
        if hi > lo:
            total += hi - lo
    return total


def phase_breakdown(tracer: Tracer, t0: float = 0.0,
                    t1: Optional[float] = None, phases=None,
                    classify=None) -> dict[str, float]:
    """Busy seconds per phase within ``[t0, t1]`` (union per phase, so
    concurrent same-phase work on different devices counts once per unit
    of wall-clock — the *footprint* of the phase, matching how an Nsight
    timeline reads)."""
    intervals = phase_intervals(tracer, phases, classify)
    if t1 is None:
        t1 = max((b for spans in intervals.values() for _, b in spans), default=t0)
    return {phase: _clipped_busy(spans, t0, t1) for phase, spans in intervals.items()}


def iteration_boundaries(tracer: Tracer) -> list[float]:
    """``boundaries[i]`` = time the *last* unit finished iteration ``i``
    (from the driver's ``app.iter_done`` markers); empty without markers."""
    latest: dict[int, float] = {}
    for rec in tracer.records:
        if rec.category != "app.iter_done":
            continue
        it = int(rec.data["iter"])
        if rec.time > latest.get(it, float("-inf")):
            latest[it] = rec.time
    return [latest[it] for it in sorted(latest)]


def per_iteration_phases(tracer: Tracer, phases=None, classify=None) -> list[dict]:
    """Phase attribution per iteration window.

    Iteration ``i``'s window runs from the previous iteration's boundary
    (0 for the first) to its own — the same global-progress windows
    Projections uses for its time-profile view.  Returns one dict per
    iteration: ``{"iteration", "t0", "t1", "phases": {phase: seconds}}``.
    """
    boundaries = iteration_boundaries(tracer)
    if not boundaries:
        return []
    intervals = phase_intervals(tracer, phases, classify)
    out = []
    t_prev = 0.0
    for i, t_end in enumerate(boundaries):
        out.append({
            "iteration": i,
            "t0": t_prev,
            "t1": t_end,
            "phases": {
                phase: _clipped_busy(spans, t_prev, t_end)
                for phase, spans in intervals.items()
            },
        })
        t_prev = t_end
    return out
