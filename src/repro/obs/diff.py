"""Differential analysis of two perf reports: who to blame for a delta.

:func:`compare_perf <repro.obs.report.compare_perf>` says *that* a run got
slower; this module says *why*.  :func:`diff_reports` aligns two
:class:`~repro.obs.report.PerfReport` documents and attributes the makespan
delta three ways:

* **per critical-path category** — the headline.  The critical path tiles
  ``[0, makespan]`` exactly, so its composition sums to the makespan and
  the per-category deltas sum to the makespan delta *exactly*: the blame
  summary ("+38% from wire, −12% from update") is a decomposition, not a
  heuristic;
* **per phase footprint** — total busy seconds in the app's declared phase
  vocabulary (these overlap in time, so their deltas explain *activity*
  changes rather than summing to the makespan delta);
* **per resource kind** — busy-second rollups over PEs, GPU engines and
  the wire.

``repro perf compare`` appends the blame summary when a gate trips;
``repro perf diff`` renders the full differential and exits 2 (distinct
from gate-fail 1) when either document is not a diffable perf report —
see :class:`SchemaMismatch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "DeltaEntry",
    "DiffReport",
    "SchemaMismatch",
    "diff_reports",
    "diff_sidecar_dirs",
    "ensure_diffable",
]

#: Diff schema identifier pinned in tests (``repro perf diff --format json``).
DIFF_SCHEMA = "repro.perf-diff/1"


class SchemaMismatch(ValueError):
    """One of the inputs is not a diffable ``repro.perf/1`` report.

    Raised for documents missing the schema tag or the fields the
    differential needs (``makespan``, ``critical_path``), and for reports
    written before the app registry existed (no ``config.app``): those
    predate the per-app phase vocabulary, so their phase footprints are
    not comparable.  ``repro perf diff`` maps this to exit code 2 so CI
    can tell "incomparable inputs" from "gate failed" (exit 1).
    """


def ensure_diffable(doc: dict, label: str = "report") -> dict:
    """Validate one perf-gate document for differential analysis."""
    if not isinstance(doc, dict):
        raise SchemaMismatch(f"{label}: not a JSON object")
    schema = doc.get("schema")
    if schema != "repro.perf/1":
        raise SchemaMismatch(
            f"{label}: schema {schema!r} is not diffable (expected "
            f"'repro.perf/1'; bench_meta trajectories have no critical path)")
    if "makespan" not in doc:
        raise SchemaMismatch(f"{label}: missing 'makespan'")
    if not isinstance(doc.get("critical_path"), dict) or \
            "composition" not in doc["critical_path"]:
        raise SchemaMismatch(f"{label}: missing critical_path.composition")
    config = doc.get("config") or {}
    if "app" not in config:
        raise SchemaMismatch(
            f"{label}: config has no 'app' field (pre-app report shape; "
            f"its phase vocabulary is not comparable)")
    return doc


@dataclass(frozen=True)
class DeltaEntry:
    """One named quantity in both reports."""

    name: str
    baseline: float
    current: float

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    def pct_of(self, denom: float) -> float:
        """The delta as a signed percentage of ``denom`` (0 when empty)."""
        return 100.0 * self.delta / denom if denom > 0 else 0.0


@dataclass
class DiffReport:
    """The aligned differential between two perf reports."""

    baseline_makespan: float
    current_makespan: float
    critpath: list[DeltaEntry] = field(default_factory=list)
    phases: list[DeltaEntry] = field(default_factory=list)
    resources: list[DeltaEntry] = field(default_factory=list)

    @property
    def makespan_delta(self) -> float:
        return self.current_makespan - self.baseline_makespan

    def blame(self, top: int = 4, min_pct: float = 0.5) -> str:
        """The one-line exact decomposition of the makespan delta:
        critical-path categories sorted by absolute contribution, as
        signed percentages of the baseline makespan."""
        parts = []
        for entry in sorted(self.critpath, key=lambda e: -abs(e.delta)):
            pct = entry.pct_of(self.baseline_makespan)
            if abs(pct) < min_pct or len(parts) >= top:
                continue
            parts.append(f"{pct:+.1f}% from {entry.name}")
        if not parts:
            return "no single critical-path category moved"
        return ", ".join(parts)

    def to_dict(self) -> dict:
        def rows(entries):
            return [
                {"name": e.name, "baseline": e.baseline, "current": e.current,
                 "delta": e.delta}
                for e in entries
            ]

        return {
            "schema": DIFF_SCHEMA,
            "baseline_makespan": self.baseline_makespan,
            "current_makespan": self.current_makespan,
            "makespan_delta": self.makespan_delta,
            "blame": self.blame(),
            "critical_path": rows(self.critpath),
            "phases": rows(self.phases),
            "resources": rows(self.resources),
        }

    def render_text(self) -> str:
        base = self.baseline_makespan
        pct = 100.0 * self.makespan_delta / base if base > 0 else 0.0
        lines = [
            f"perf diff: makespan {base * 1e3:.3f} ms -> "
            f"{self.current_makespan * 1e3:.3f} ms ({pct:+.1f}%)",
            f"  blame: {self.blame()}",
            "  critical path (exact decomposition of the delta):",
        ]
        for e in sorted(self.critpath, key=lambda e: -abs(e.delta)):
            lines.append(
                f"    {e.name:14s} {e.baseline * 1e3:9.3f} -> "
                f"{e.current * 1e3:9.3f} ms  "
                f"({e.pct_of(base):+6.1f}% of baseline)")
        if self.phases:
            lines.append("  phase footprint:")
            for e in sorted(self.phases, key=lambda e: -abs(e.delta)):
                if e.baseline == 0.0 and e.current == 0.0:
                    continue
                lines.append(
                    f"    {e.name:14s} {e.baseline * 1e3:9.3f} -> "
                    f"{e.current * 1e3:9.3f} ms")
        if self.resources:
            lines.append("  resource busy (by kind):")
            for e in sorted(self.resources, key=lambda e: -abs(e.delta)):
                lines.append(
                    f"    {e.name:14s} {e.baseline * 1e3:9.3f} -> "
                    f"{e.current * 1e3:9.3f} ms")
        return "\n".join(lines)


def _aligned(base: dict, curr: dict) -> list[DeltaEntry]:
    names = sorted(set(base) | set(curr))
    return [
        DeltaEntry(name, float(base.get(name, 0.0)), float(curr.get(name, 0.0)))
        for name in names
    ]


def _resource_busy_by_kind(doc: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for r in doc.get("resources", []):
        if isinstance(r, dict) and isinstance(r.get("busy_s"), (int, float)):
            kind = str(r.get("kind", "?"))
            out[kind] = out.get(kind, 0.0) + float(r["busy_s"])
    return out


def diff_reports(baseline, current) -> DiffReport:
    """Differential between two perf reports (dicts or
    :class:`~repro.obs.report.PerfReport` instances).

    Raises :class:`SchemaMismatch` unless both are ``repro.perf/1``
    documents with a critical path and an app-tagged config.
    """
    docs = []
    for label, doc in (("baseline", baseline), ("current", current)):
        if hasattr(doc, "to_dict"):
            doc = doc.to_dict()
        docs.append(ensure_diffable(doc, label))
    base, curr = docs
    return DiffReport(
        baseline_makespan=float(base["makespan"]),
        current_makespan=float(curr["makespan"]),
        critpath=_aligned(base["critical_path"].get("composition", {}),
                          curr["critical_path"].get("composition", {})),
        phases=_aligned(base.get("phases", {}), curr.get("phases", {})),
        resources=_aligned(_resource_busy_by_kind(base),
                           _resource_busy_by_kind(curr)),
    )


def diff_sidecar_dirs(baseline_dir, current_dir) -> dict[str, Optional[DiffReport]]:
    """Differentials for every config key present in both sweep sidecar
    directories (``<key>.perf.json`` files written by
    :class:`~repro.exec.runner.ParallelRunner` with ``perf_dir=``).
    Keys whose reports are not diffable map to ``None``."""
    from ..exec.runner import perf_sidecar_reports

    base = perf_sidecar_reports(baseline_dir)
    curr = perf_sidecar_reports(current_dir)
    out: dict[str, Optional[DiffReport]] = {}
    for key in sorted(set(base) & set(curr)):
        try:
            out[key] = diff_reports(base[key], curr[key])
        except SchemaMismatch:
            out[key] = None
    return out
