"""Causal what-if projection over a recorded run.

The critical-path walk (:mod:`repro.obs.critpath`) *attributes* a makespan;
this module answers the counterfactual the paper's figures pose: "how much
faster would this run be if communication were free, GPU compute halved,
packing removed?"  The engine takes one profiled run, applies a virtual
**intervention** — scale (or zero) one cost category — and projects the new
makespan from the recorded dependency structure:

* every recorded activity interval is re-labelled with a *what-if category*
  (the app's compute phases for kernels; ``d2h``/``h2d``/``d2d`` for copy
  engines; ``wire`` for network in-flight windows; ``pe`` for host cores);
* the recorded critical path is re-costed segment by segment — a path
  segment on a scaled category contributes ``duration × factor``, anything
  else (including dependency ``wait`` gaps) is untouched;
* the projection is clamped from below by per-lane serial floors: each
  GPU engine and each PE is a serial resource, so its scaled busy total is
  a lower bound on any feasible schedule.

Because the backend is a simulator, every projection is *checkable*: each
intervention has an equivalent machine-level knob (``GpuSpec.op_scales`` /
``*_scale``, ``NicSpec.wire_scale``) that scales exactly the traced
durations the projection scaled, so :func:`validate_intervention` re-runs
the config on the modified machine and reports the prediction error — the
rigor causal profilers on real systems (Coz) can only approximate.

The :func:`advise_odf` mode fits a pipeline-overlap model
(``max(C,N) + min(C,N)/b + overhead·b``) to one profiled run and ranks
overdecomposition factors without running the sweep.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Optional

from ..sim import Tracer, merge_intervals
from .critpath import CriticalPath, critical_path

__all__ = [
    "DEFAULT_TOLERANCE",
    "Intervention",
    "OdfAdvice",
    "TargetKnobs",
    "WhatIfModel",
    "WhatIfPrediction",
    "WhatIfValidation",
    "advise_odf",
    "apply_to_machine",
    "odf_sweep",
    "record_run",
    "resolve_targets",
    "validate_intervention",
]

#: Pinned prediction-error tolerance (relative) for the validation suite:
#: every intervention in the acceptance matrix must re-run within this of
#: its projection.  The simulator is deterministic, so observed errors are
#: stable; this bound was pinned above the worst case measured across the
#: 6-intervention × 4-app × charm/mpi matrix (15.4%, cholesky/charm-d
#: net×2 — see tests/obs/test_whatif.py).
DEFAULT_TOLERANCE = 0.2

#: Copy-engine lanes (GPU trace categories ``gpu.copy_<kind>``).
COPY_KINDS = ("d2h", "h2d", "d2d")
#: What-if category for network in-flight windows.
WIRE = "wire"
#: What-if category for host-core busy time.
PE = "pe"

_PARSE_RE = re.compile(
    r"^\s*([A-Za-z][A-Za-z0-9_.\-]*)\s*[*×=]\s*"
    r"([0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)\s*$")


@dataclass(frozen=True)
class Intervention:
    """One virtual change: multiply cost category ``target`` by ``scale``.

    ``scale=0`` zeroes the category ("what if packing were free"),
    ``scale=2`` doubles it ("what if the network were twice as slow").
    Targets are resolved per app (:func:`resolve_targets`): the app's
    declared phases plus the generic aliases ``net``, ``gpu``, ``d2h``,
    ``h2d``.
    """

    target: str
    scale: float

    def __post_init__(self):
        if not self.target:
            raise ValueError("intervention needs a target category")
        if self.scale < 0:
            raise ValueError(f"intervention scale must be >= 0, got {self.scale}")

    def __str__(self) -> str:
        return f"{self.target}x{self.scale:g}"

    @classmethod
    def parse(cls, text: str) -> "Intervention":
        """Parse ``"net*0"``, ``"h2d×0.5"``, or ``"pack=0"``."""
        m = _PARSE_RE.match(text)
        if m is None:
            raise ValueError(
                f"cannot parse intervention {text!r} (expected TARGET*SCALE, "
                f"e.g. net*0, h2d*0.5, pack=0)")
        return cls(target=m.group(1), scale=float(m.group(2)))


@dataclass(frozen=True)
class TargetKnobs:
    """The machine-level footprint of one intervention target: which
    compute-kernel prefixes, copy engines, and/or the wire it scales.
    ``trace_cats`` is the matching set of what-if categories; the sentinel
    ``"<compute>"`` means "every compute phase" (the ``gpu`` alias)."""

    compute_prefixes: tuple = ()
    copy_kinds: tuple = ()
    wire: bool = False
    trace_cats: tuple = ()


def resolve_targets(app_spec) -> dict[str, TargetKnobs]:
    """Every valid intervention target for ``app_spec`` and its knobs.

    Compute phases come from the app's declared ``phase_kernels``; copy
    engines and the wire attach to whatever phase the app's classifier
    assigns them (probed with empty op names), so e.g. allreduce's
    ``chunk`` phase resolves to both staging copy engines.  Generic
    aliases — ``net`` (wire + same-device transport), ``gpu`` (all compute
    kernels), ``d2h``/``h2d`` — are added when the app does not already
    declare a phase of that name.
    """
    acc: dict[str, dict] = {}

    def slot(name: str) -> dict:
        return acc.setdefault(
            name, {"compute": [], "copies": [], "wire": False, "cats": []})

    for phase, prefixes in app_spec.phase_kernels:
        s = slot(phase)
        s["compute"].extend(prefixes)
        s["cats"].append(phase)
    classify = app_spec.classify_op
    for kind in COPY_KINDS:
        phase = classify(f"gpu.copy_{kind}", "")
        if phase != "other":
            s = slot(phase)
            s["copies"].append(kind)
            s["cats"].append(kind)
    net_phase = classify("net.deliver", "")
    if net_phase != "other":
        s = slot(net_phase)
        s["wire"] = True
        s["cats"].append(WIRE)
    if "net" not in acc and net_phase in acc:
        acc["net"] = dict(acc[net_phase])
    if "gpu" not in acc:
        acc["gpu"] = {"compute": [""], "copies": [], "wire": False,
                      "cats": ["<compute>"]}
    for kind in ("d2h", "h2d"):
        if kind not in acc:
            acc[kind] = {"compute": [], "copies": [kind], "wire": False,
                         "cats": [kind]}
    return {
        name: TargetKnobs(
            compute_prefixes=tuple(s["compute"]),
            copy_kinds=tuple(s["copies"]),
            wire=s["wire"],
            trace_cats=tuple(s["cats"]),
        )
        for name, s in acc.items()
    }


def apply_to_machine(intervention: Intervention, app_spec, machine):
    """The :class:`~repro.hardware.specs.MachineSpec` whose runs differ
    from ``machine``'s by exactly the intervention: matching traced
    durations are multiplied by ``scale``, everything else (host launch
    costs, per-message CPU overheads, rendezvous handshakes) unchanged.

    New ``op_scales`` entries are prepended, so the most recent
    intervention wins where prefixes overlap (first match wins).
    """
    targets = resolve_targets(app_spec)
    knobs = targets.get(intervention.target)
    if knobs is None:
        raise ValueError(
            f"unknown intervention target {intervention.target!r} for app "
            f"{app_spec.name!r}; valid targets: {', '.join(sorted(targets))}")
    out = machine
    gpu = machine.node.gpu
    gpu_kwargs = {}
    if knobs.compute_prefixes:
        new = tuple((p, intervention.scale) for p in knobs.compute_prefixes)
        gpu_kwargs["op_scales"] = new + gpu.op_scales
    for kind in knobs.copy_kinds:
        attr = f"{kind}_scale"
        gpu_kwargs[attr] = getattr(gpu, attr) * intervention.scale
    if gpu_kwargs:
        out = out.with_gpu(**gpu_kwargs)
    if knobs.wire:
        out = out.with_nic(
            wire_scale=machine.node.nic.wire_scale * intervention.scale)
    return out


# ---------------------------------------------------------------------------
# The projection model
# ---------------------------------------------------------------------------


@dataclass
class WhatIfPrediction:
    """One intervention's projected outcome."""

    intervention: Intervention
    baseline_makespan: float
    makespan: float
    path_s: float  #: re-costed critical-path length
    floor_s: float  #: tightest serial-lane lower bound
    overlap_s: float  #: coarse overlap estimate (not tolerance-validated)
    scales: dict = field(default_factory=dict)  #: category -> factor applied

    @property
    def speedup(self) -> float:
        return self.baseline_makespan / self.makespan if self.makespan > 0 \
            else float("inf")

    def to_dict(self) -> dict:
        return {
            "intervention": str(self.intervention),
            "target": self.intervention.target,
            "scale": self.intervention.scale,
            "baseline_makespan": self.baseline_makespan,
            "makespan": self.makespan,
            "speedup": self.speedup,
            "path_s": self.path_s,
            "floor_s": self.floor_s,
            "overlap_s": self.overlap_s,
            "scaled_categories": dict(self.scales),
        }

    def render_text(self) -> str:
        cats = ", ".join(sorted(self.scales)) or "(none)"
        return (f"what-if {self.intervention}: "
                f"{self.baseline_makespan * 1e3:.3f} ms -> "
                f"{self.makespan * 1e3:.3f} ms "
                f"({self.speedup:.2f}x; scaled: {cats})")


class WhatIfModel:
    """The projection engine for one recorded run.

    Build with :meth:`from_run` (or :func:`record_run`); then
    :meth:`predict` any number of interventions without re-simulating.
    """

    def __init__(self, app_spec, makespan: float,
                 segments: list[tuple[float, float, str]],
                 lane_sums: dict[tuple, dict[str, float]],
                 overlap_s: float = 0.0,
                 iterations: int = 1,
                 odf: int = 1):
        self.app_spec = app_spec
        self.makespan = makespan
        self.segments = segments
        self.lane_sums = lane_sums
        self.overlap_s = overlap_s
        self.iterations = max(1, iterations)
        self.odf = max(1, odf)
        self.targets = resolve_targets(app_spec)
        #: Compute phases actually observed in the trace (the ``gpu``
        #: alias's ``<compute>`` sentinel expands to these).
        self.compute_cats = {
            cat for (_, lane), sums in lane_sums.items() if lane == "compute"
            for cat in sums
        }
        self._path: Optional[CriticalPath] = None

    # -- construction --------------------------------------------------------
    @classmethod
    def from_run(cls, config, cluster, tracer: Tracer, makespan: float,
                 overlap_s: float = 0.0) -> "WhatIfModel":
        """Relabel one finished run's activity into what-if categories.

        GPU trace records keep their device and engine lane so serial
        floors stay per-resource; PE busy and the network in-flight
        tracker come from the cluster, as in
        :func:`~repro.obs.critpath.collect_segments`.
        """
        from ..apps import spec_for

        spec = spec_for(config)
        classify = spec.classify_op
        segments: list[tuple[float, float, str]] = []
        lane_sums: dict[tuple, dict[str, float]] = {}

        def charge(actor, lane, cat, duration):
            sums = lane_sums.setdefault((actor, lane), {})
            sums[cat] = sums.get(cat, 0.0) + duration

        for rec in tracer.records:
            if not rec.category.startswith("gpu."):
                continue
            duration = rec.data.get("duration")
            if duration is None:
                continue
            duration = float(duration)
            start = float(rec.data.get("start", rec.time))
            kind = rec.category[len("gpu."):]
            if kind.startswith("copy_"):
                cat = kind[len("copy_"):]  # d2h / h2d / d2d
                lane = cat
            else:
                cat = classify(rec.category, str(rec.data.get("op", "")))
                lane = "compute"
            segments.append((start, start + duration, cat))
            charge(rec.actor, lane, cat, duration)
        for pe in cluster.all_pes():
            for a, b in pe.busy.spans:
                segments.append((a, b, PE))
                charge(pe.name, PE, PE, b - a)
        for a, b in cluster.network.inflight.spans:
            segments.append((a, b, WIRE))
        # The in-flight tracker is cluster-wide (windows overlap freely),
        # so its *footprint* — not its sum — is the wire lane floor.
        wire_busy = sum(
            b - a for a, b in merge_intervals(cluster.network.inflight.spans))
        if wire_busy > 0:
            lane_sums[("net", WIRE)] = {WIRE: wire_busy}
        return cls(
            spec, makespan, segments, lane_sums,
            overlap_s=overlap_s,
            iterations=getattr(config, "total_iterations", 1),
            odf=getattr(config, "odf", 1),
        )

    # -- projection ----------------------------------------------------------
    @property
    def path(self) -> CriticalPath:
        """The recorded critical path over what-if categories (cached)."""
        if self._path is None:
            self._path = critical_path(self.segments, 0.0, self.makespan)
        return self._path

    def category_scales(self, intervention: Intervention) -> dict[str, float]:
        """Per-category factors the intervention applies to the trace."""
        knobs = self.targets.get(intervention.target)
        if knobs is None:
            raise ValueError(
                f"unknown intervention target {intervention.target!r} for "
                f"app {self.app_spec.name!r}; valid targets: "
                f"{', '.join(sorted(self.targets))}")
        cats = set(knobs.trace_cats)
        if "<compute>" in cats:
            cats.discard("<compute>")
            cats.update(self.compute_cats)
        return {cat: intervention.scale for cat in cats}

    def predict(self, intervention: Intervention) -> WhatIfPrediction:
        """Project ``intervention``'s makespan and overlap.

        The projection is ``max(re-costed path, serial-lane floor)``:
        scaling a category off the critical path cannot help, and no
        schedule beats its busiest serial resource.  A no-op
        (``scale=1``) re-costs every segment by 1 and the path tiles
        ``[0, makespan]``, so it predicts the recorded makespan exactly.
        """
        scales = self.category_scales(intervention)
        path_s = math.fsum(
            seg.duration * scales.get(seg.category, 1.0)
            for seg in self.path.segments)
        floor_s = 0.0
        for sums in self.lane_sums.values():
            lane_total = math.fsum(
                secs * scales.get(cat, 1.0) for cat, secs in sums.items())
            floor_s = max(floor_s, lane_total)
        return WhatIfPrediction(
            intervention=intervention,
            baseline_makespan=self.makespan,
            makespan=max(path_s, floor_s),
            path_s=path_s,
            floor_s=floor_s,
            overlap_s=self._predict_overlap(scales),
            scales=scales,
        )

    def _predict_overlap(self, scales: dict[str, float]) -> float:
        """Coarse overlap estimate: recorded overlap tracks the smaller of
        the comm/compute footprints, so scale it by the communication
        factor and cap at the scaled compute total."""
        comm_cats = set(COPY_KINDS) | {WIRE}
        comm = {cat: 0.0 for cat in comm_cats}
        compute_scaled = 0.0
        for (_, lane), sums in self.lane_sums.items():
            for cat, secs in sums.items():
                if cat in comm_cats:
                    comm[cat] += secs
                elif lane == "compute":
                    compute_scaled += secs * scales.get(cat, 1.0)
        comm_total = sum(comm.values())
        if comm_total <= 0:
            return 0.0
        f_comm = sum(
            secs * scales.get(cat, 1.0) for cat, secs in comm.items()
        ) / comm_total
        return min(self.overlap_s * f_comm, compute_scaled)


# ---------------------------------------------------------------------------
# Prediction-vs-actual validation
# ---------------------------------------------------------------------------


@dataclass
class WhatIfValidation:
    """One prediction held against its actual re-run."""

    intervention: Intervention
    predicted: float
    actual: float
    baseline: float

    @property
    def rel_error(self) -> float:
        if self.actual > 0:
            return abs(self.predicted - self.actual) / self.actual
        return 0.0 if self.predicted == self.actual else float("inf")

    def ok(self, tolerance: float = DEFAULT_TOLERANCE) -> bool:
        return self.rel_error <= tolerance

    def to_dict(self) -> dict:
        return {
            "intervention": str(self.intervention),
            "predicted": self.predicted,
            "actual": self.actual,
            "baseline": self.baseline,
            "rel_error": self.rel_error,
        }

    def render_text(self) -> str:
        return (f"{str(self.intervention):14s} predicted "
                f"{self.predicted * 1e3:9.3f} ms  actual "
                f"{self.actual * 1e3:9.3f} ms  error {self.rel_error * 100:5.1f}%")


def record_run(config, validate: bool = False):
    """Run ``config`` once under a fresh probe and build its projection
    model; returns ``(result, model)``.  (App import is lazy so
    ``repro.obs`` stays importable without the application stack.)"""
    from ..apps import run_app
    from .report import Observatory

    obs = Observatory(include_metrics=False)
    result = run_app(config, observatory=obs, validate=validate)
    model = WhatIfModel.from_run(config, obs.cluster, obs.tracer,
                                 makespan=result.total_time,
                                 overlap_s=result.overlap_s)
    return result, model


def validate_intervention(config, intervention: Intervention,
                          model: Optional[WhatIfModel] = None) -> WhatIfValidation:
    """Predict ``intervention`` on ``config``'s recorded run, then actually
    re-run on the equivalently modified machine and report the error."""
    from ..apps import run_app, spec_for

    if model is None:
        _, model = record_run(config)
    prediction = model.predict(intervention)
    machine = apply_to_machine(intervention, spec_for(config), config.machine)
    actual = run_app(config.with_(machine=machine))
    return WhatIfValidation(
        intervention=intervention,
        predicted=prediction.makespan,
        actual=actual.total_time,
        baseline=model.makespan,
    )


# ---------------------------------------------------------------------------
# ODF advisor
# ---------------------------------------------------------------------------


@dataclass
class OdfAdvice:
    """One ODF's projected per-run time under the pipeline-overlap model."""

    odf: int
    predicted_s: float

    def to_dict(self) -> dict:
        return {"odf": self.odf, "predicted_s": self.predicted_s}


def advise_odf(model: WhatIfModel, odfs) -> list[OdfAdvice]:
    """Rank overdecomposition factors from one profiled run.

    Fits the classic pipeline-overlap model to the recorded aggregates:
    with ``b`` blocks per PE, per-iteration time is approximately
    ``max(C, N) + min(C, N)/b + o·b`` — the larger of compute and
    communication, a pipeline-fill term that overlap amortizes away, and
    per-task fixed costs that grow with the block count.  ``C`` is the
    busiest device's compute total, ``N`` the network in-flight footprint
    and ``o`` the busiest PE's per-block host cost, all per iteration; a
    constant calibrated at the recorded ODF absorbs what the model does
    not capture.  Returns advice sorted fastest-first.
    """
    iters = model.iterations
    b0 = model.odf
    compute = max(
        (math.fsum(sums.values())
         for (_, lane), sums in model.lane_sums.items() if lane == "compute"),
        default=0.0)
    wire = model.lane_sums.get(("net", WIRE), {}).get(WIRE, 0.0)
    pe_busy = max(
        (math.fsum(sums.values())
         for (_, lane), sums in model.lane_sums.items() if lane == PE),
        default=0.0)
    c = compute / iters
    n = wire / iters
    o = pe_busy / iters / b0

    def t_model(b: int) -> float:
        return max(c, n) + min(c, n) / b + o * b

    c0 = model.makespan / iters - t_model(b0)
    advice = [
        OdfAdvice(odf=b, predicted_s=(t_model(b) + c0) * iters)
        for b in odfs
    ]
    advice.sort(key=lambda a: (a.predicted_s, a.odf))
    return advice


def odf_sweep(config, odfs) -> dict[int, float]:
    """The ground truth for :func:`advise_odf`: actually run every ODF and
    return ``{odf: makespan}``."""
    from ..apps import run_app

    return {b: run_app(config.with_(odf=b)).total_time for b in odfs}
