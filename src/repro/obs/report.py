"""Perf reports: collection, rendering, persistence, and the regression gate.

:class:`Observatory` bundles the tracer and the metrics registry into one
attachable probe; :func:`run_app(config, observatory=obs)
<repro.apps.driver.run_app>` wires it into a run, and ``obs.report(result)``
then answers the paper's evaluation questions in one object: per-resource
utilization, per-iteration phase attribution (in the app's declared phase
vocabulary), the critical path, overlap, and the counter catalogue.

Reports serialize to JSON (``save``/``load``), render as text or a
self-contained HTML page, and feed the perf-regression gate:
:func:`compare_perf` flags any time-like metric that got slower than
``baseline * (1 + tolerance)``.  The gate understands both perf-report
JSON (simulated, deterministic — the strict CI gate) and
``results/bench_meta.json`` trajectories (wall-clock — the loose gate).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..sim import Tracer, to_chrome_trace
from .critpath import collect_segments, critical_path
from .metrics import MetricsRegistry
from .timeline import per_iteration_phases, phase_breakdown, resource_usage

__all__ = [
    "COMPARE_SCHEMA",
    "Observatory",
    "PerfReport",
    "Comparison",
    "Regression",
    "append_bench_history",
    "collect_perf",
    "compare_perf",
    "extract_comparable",
]


class Observatory:
    """One run's observability probe: a tracer plus a metrics registry.

    Pass to :func:`~repro.apps.driver.run_app` via ``observatory=``; the
    driver calls :meth:`begin` once the engine and cluster exist.  After
    the run, :meth:`report` produces the :class:`PerfReport` (phase
    attribution in the app's declared vocabulary) and :meth:`chrome_trace`
    the Perfetto timeline.
    """

    def __init__(self, categories=None, include_metrics: bool = True):
        self.tracer = Tracer(categories)
        self.registry = MetricsRegistry()
        self.include_metrics = include_metrics
        self.engine = None
        self.cluster = None

    def begin(self, engine, cluster) -> None:
        """Driver hook: attach the probe to a fresh run."""
        self.tracer.attach(engine)
        self.registry.attach(engine)
        self.engine = engine
        self.cluster = cluster

    def chrome_trace(self) -> list[dict]:
        """The run's Perfetto/Chrome-trace events (``ui.perfetto.dev``)."""
        return to_chrome_trace(self.tracer)

    def report(self, result) -> "PerfReport":
        """Build the full perf report for a finished run."""
        if self.engine is None or self.cluster is None:
            raise RuntimeError("Observatory.report() before the run (begin was never called)")
        from ..apps import spec_for

        spec = spec_for(result.config)
        t_end = self.engine.now
        t_warm = result.warmup_boundary
        path = critical_path(
            collect_segments(self.cluster, self.tracer, classify=spec.classify_op),
            t_start=0.0, t_end=t_end)
        return PerfReport(
            config=result.config.to_dict(),
            makespan=t_end,
            warmup_boundary=t_warm,
            time_per_iteration=result.time_per_iteration,
            overlap_s=result.overlap_s,
            gpu_utilization=result.gpu_utilization,
            resources=[r.to_dict() for r in resource_usage(self.cluster, t_warm, t_end)],
            phases=phase_breakdown(self.tracer, 0.0, t_end,
                                   phases=spec.phases, classify=spec.classify_op),
            iterations=per_iteration_phases(self.tracer, phases=spec.phases,
                                            classify=spec.classify_op),
            critical_path=path.to_dict(),
            counters=self.registry.scalar_totals(),
            metrics=self.registry.snapshot() if self.include_metrics else None,
        )


def collect_perf(config, validate: bool = False):
    """Run one config under a fresh :class:`Observatory`; returns
    ``(result, report)``.  (App import is lazy: ``repro.obs`` stays
    importable without the application stack.)"""
    from ..apps import run_app

    obs = Observatory()
    result = run_app(config, validate=validate, observatory=obs)
    return result, obs.report(result)


@dataclass
class PerfReport:
    """The serialized answer to "where did the time go" for one run."""

    config: Optional[dict]
    makespan: float
    warmup_boundary: float
    time_per_iteration: float
    overlap_s: float
    gpu_utilization: float
    resources: list = field(default_factory=list)
    phases: dict = field(default_factory=dict)
    iterations: list = field(default_factory=list)
    critical_path: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    metrics: Optional[dict] = None

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "schema": "repro.perf/1",
            "config": self.config,
            "makespan": self.makespan,
            "warmup_boundary": self.warmup_boundary,
            "time_per_iteration": self.time_per_iteration,
            "overlap_s": self.overlap_s,
            "gpu_utilization": self.gpu_utilization,
            "resources": self.resources,
            "phases": self.phases,
            "iterations": self.iterations,
            "critical_path": self.critical_path,
            "counters": self.counters,
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "PerfReport":
        return cls(
            config=d.get("config"),
            makespan=d["makespan"],
            warmup_boundary=d.get("warmup_boundary", 0.0),
            time_per_iteration=d["time_per_iteration"],
            overlap_s=d.get("overlap_s", 0.0),
            gpu_utilization=d.get("gpu_utilization", 0.0),
            resources=d.get("resources", []),
            phases=d.get("phases", {}),
            iterations=d.get("iterations", []),
            critical_path=d.get("critical_path", {}),
            counters=d.get("counters", {}),
            metrics=d.get("metrics"),
        )

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path) -> "PerfReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- comparison hooks --------------------------------------------------
    def scalar_metrics(self) -> dict[str, float]:
        """Time-like scalars (lower is better) for the regression gate."""
        return {
            "time_per_iteration": self.time_per_iteration,
            "makespan": self.makespan,
        }

    # -- rendering ---------------------------------------------------------
    def _phase_order(self) -> list:
        """The report's phases in the app's declared (pipeline) order.

        Fresh reports store phases in declared order already; JSON
        round-trips sort the keys, so look the order up again from the
        registry when the config names a registered app."""
        order = list(self.phases)
        app = (self.config or {}).get("app")
        if app:
            try:
                from ..apps import get_app

                declared = [p for p in get_app(app).phases if p in self.phases]
            except ValueError:
                declared = []
            order = declared + [p for p in order if p not in declared]
        return order

    def _resource_rollup(self) -> list[tuple[str, int, float, float]]:
        """(kind, count, mean util, max util) per resource kind."""
        by_kind: dict[str, list[float]] = {}
        for r in self.resources:
            by_kind.setdefault(r["kind"], []).append(r["utilization"])
        return [
            (kind, len(utils), sum(utils) / len(utils), max(utils))
            for kind, utils in sorted(by_kind.items())
        ]

    def render_text(self) -> str:
        lines = []
        cfg = self.config or {}
        if cfg:
            lines.append(
                f"perf report: {cfg.get('version', '?')} nodes={cfg.get('nodes', '?')} "
                f"grid={tuple(cfg.get('grid', ()))} odf={cfg.get('odf', '?')}")
        lines.append(f"  makespan          : {self.makespan * 1e3:12.3f} ms")
        lines.append(f"  time/iteration    : {self.time_per_iteration * 1e6:12.2f} us")
        lines.append(f"  overlap           : {self.overlap_s * 1e3:12.3f} ms")
        lines.append(f"  GPU utilization   : {self.gpu_utilization * 100:12.1f} %")
        lines.append("  resources (measured window):")
        for kind, count, mean, peak in self._resource_rollup():
            lines.append(f"    {kind:14s} x{count:<4d} mean {mean * 100:5.1f}%  "
                         f"max {peak * 100:5.1f}%")
        lines.append("  phase footprint (whole run):")
        for phase in self._phase_order():
            secs = self.phases.get(phase, 0.0)
            if secs > 0:
                lines.append(f"    {phase:8s} {secs * 1e3:10.3f} ms")
        if self.iterations:
            lines.append(f"  per-iteration attribution ({len(self.iterations)} iterations):")
            for entry in self.iterations:
                busiest = sorted(entry["phases"].items(), key=lambda kv: -kv[1])[:3]
                top = ", ".join(f"{p} {s * 1e3:.3f}ms" for p, s in busiest if s > 0)
                span = entry["t1"] - entry["t0"]
                lines.append(f"    iter {entry['iteration']:3d}: {span * 1e3:8.3f} ms  ({top})")
        cp = self.critical_path
        if cp:
            lines.append(f"  critical path: {cp['length_s'] * 1e3:.3f} ms "
                         f"({cp['n_segments']} segments, wait {cp['wait_s'] * 1e3:.3f} ms)")
            for cat, secs in cp.get("composition", {}).items():
                pct = 100.0 * secs / cp["length_s"] if cp["length_s"] > 0 else 0.0
                lines.append(f"    {cat:12s} {secs * 1e3:10.3f} ms  {pct:5.1f}%")
        if self.counters:
            lines.append("  counters:")
            for name, total in self.counters.items():
                lines.append(f"    {name:28s} {total:g}")
        return "\n".join(lines)

    def render_html(self) -> str:
        """A dependency-free single-file HTML report."""

        def bar(frac: float, color: str = "#4a7") -> str:
            pct = max(0.0, min(1.0, frac)) * 100.0
            return (f'<div style="background:#eee;width:160px;height:10px;'
                    f'display:inline-block"><div style="background:{color};'
                    f'width:{pct:.1f}%;height:10px"></div></div>')

        cfg = self.config or {}
        rows = []
        for kind, count, mean, peak in self._resource_rollup():
            rows.append(f"<tr><td>{kind}</td><td>{count}</td>"
                        f"<td>{mean * 100:.1f}% {bar(mean)}</td>"
                        f"<td>{peak * 100:.1f}%</td></tr>")
        phase_rows = []
        phase_total = sum(self.phases.values()) or 1.0
        for phase in self._phase_order():
            secs = self.phases.get(phase, 0.0)
            if secs > 0:
                phase_rows.append(f"<tr><td>{phase}</td><td>{secs * 1e3:.3f} ms</td>"
                                  f"<td>{bar(secs / phase_total, '#47a')}</td></tr>")
        cp = self.critical_path or {}
        cp_rows = []
        for cat, secs in cp.get("composition", {}).items():
            frac = secs / cp["length_s"] if cp.get("length_s") else 0.0
            cp_rows.append(f"<tr><td>{cat}</td><td>{secs * 1e3:.3f} ms</td>"
                           f"<td>{frac * 100:.1f}% {bar(frac, '#a47')}</td></tr>")
        return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>repro perf report</title>
<style>body{{font:14px sans-serif;margin:2em}}table{{border-collapse:collapse}}
td,th{{border:1px solid #ccc;padding:4px 8px;text-align:left}}</style></head>
<body>
<h1>Perf report</h1>
<p>{cfg.get('version', '?')} &middot; nodes={cfg.get('nodes', '?')} &middot;
grid={tuple(cfg.get('grid', ()))} &middot; odf={cfg.get('odf', '?')}</p>
<ul>
<li>makespan: {self.makespan * 1e3:.3f} ms</li>
<li>time/iteration: {self.time_per_iteration * 1e6:.2f} &micro;s</li>
<li>overlap: {self.overlap_s * 1e3:.3f} ms</li>
<li>GPU utilization: {self.gpu_utilization * 100:.1f}%</li>
</ul>
<h2>Resources</h2>
<table><tr><th>kind</th><th>count</th><th>mean util</th><th>max util</th></tr>
{''.join(rows)}</table>
<h2>Phase footprint</h2>
<table><tr><th>phase</th><th>time</th><th>share</th></tr>
{''.join(phase_rows)}</table>
<h2>Critical path ({cp.get('length_s', 0.0) * 1e3:.3f} ms,
{cp.get('n_segments', 0)} segments)</h2>
<table><tr><th>category</th><th>time</th><th>share</th></tr>
{''.join(cp_rows)}</table>
</body></html>
"""


# ---------------------------------------------------------------------------
# The regression gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Regression:
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        return (f"{self.metric}: {self.baseline:g} -> {self.current:g} "
                f"({(self.ratio - 1.0) * 100:+.1f}%)")


#: ``repro perf compare --format json`` schema identifier (pinned in tests;
#: bump the suffix on any breaking change to :meth:`Comparison.to_dict`).
COMPARE_SCHEMA = "repro.perf-compare/1"


@dataclass
class Comparison:
    """Outcome of one baseline/current comparison."""

    tolerance: float
    regressions: list[Regression] = field(default_factory=list)
    improvements: list[Regression] = field(default_factory=list)
    unchanged: int = 0
    #: Per-metric tolerance overrides that were in effect (metric → frac).
    overrides: dict = field(default_factory=dict)
    #: Critical-path blame line from the differential (set when both inputs
    #: are full perf reports and the gate tripped) — explains *why*.
    blame: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render_text(self) -> str:
        lines = [f"perf compare (tolerance {self.tolerance * 100:.1f}%): "
                 f"{len(self.regressions)} regression(s), "
                 f"{len(self.improvements)} improvement(s), "
                 f"{self.unchanged} within tolerance"]
        for metric, tol in sorted(self.overrides.items()):
            lines.append(f"  (tolerance override: {metric} at {tol * 100:.1f}%)")
        for reg in self.regressions:
            lines.append(f"  REGRESSION {reg}")
        for imp in self.improvements:
            lines.append(f"  improved   {imp}")
        if self.blame:
            lines.append(f"  blame: {self.blame}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Stable JSON shape for ``repro perf compare --format json``."""
        def rows(entries):
            return [
                {"metric": r.metric, "baseline": r.baseline,
                 "current": r.current, "ratio": r.ratio}
                for r in entries
            ]

        return {
            "schema": COMPARE_SCHEMA,
            "ok": self.ok,
            "tolerance": self.tolerance,
            "overrides": dict(sorted(self.overrides.items())),
            "regressions": rows(self.regressions),
            "improvements": rows(self.improvements),
            "unchanged": self.unchanged,
            "blame": self.blame,
        }


def extract_comparable(doc: dict) -> dict[str, float]:
    """Time-like (lower-is-better) scalars from a perf-gate input file.

    Understands two shapes:

    * a :class:`PerfReport` JSON (``schema: repro.perf/1`` or any dict with
      ``time_per_iteration``) — simulated, deterministic metrics;
    * a ``bench_meta.json`` trajectory — per-figure wall-clock, where each
      figure's newest history entry supplies ``<figure>.wall_s``, plus the
      engine microbenchmark's per-mix cost as
      ``<key>.us_per_event.<mix>`` (also lower-is-better, so an event-loop
      slowdown trips the same gate as a figure slowdown).
    """
    if "time_per_iteration" in doc:
        out = {"time_per_iteration": float(doc["time_per_iteration"])}
        if "makespan" in doc:
            out["makespan"] = float(doc["makespan"])
        return out
    out = {}
    for key, slot in doc.items():
        if not isinstance(slot, dict):
            continue
        entry = slot
        if "latest" in slot and isinstance(slot["latest"], dict):
            entry = slot["latest"]
        elif "history" in slot and slot["history"]:
            entry = slot["history"][-1]
        wall = entry.get("wall_s")
        if isinstance(wall, (int, float)):
            out[f"{key}.wall_s"] = float(wall)
        upe = entry.get("us_per_event")
        if isinstance(upe, dict):
            for mix, cost in upe.items():
                if isinstance(cost, (int, float)):
                    out[f"{key}.us_per_event.{mix}"] = float(cost)
    return out


def compare_perf(baseline: dict, current: dict, tolerance: float = 0.05,
                 overrides: Optional[dict] = None) -> Comparison:
    """Compare two perf-gate documents; a metric regresses when
    ``current > baseline * (1 + tol)`` (and improves symmetrically), where
    ``tol`` is the metric's entry in ``overrides`` when present, else
    ``tolerance``.  Only metrics present in *both* documents are compared.
    Overrides for metrics absent from the inputs are allowed (baselines
    vary across apps) but still validated to be >= 0."""
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    overrides = {str(k): float(v) for k, v in (overrides or {}).items()}
    for metric, tol in overrides.items():
        if tol < 0:
            raise ValueError(f"tolerance override for {metric} must be >= 0")
    base = extract_comparable(baseline)
    curr = extract_comparable(current)
    comparison = Comparison(tolerance=tolerance, overrides=overrides)
    for metric in sorted(set(base) & set(curr)):
        b, c = base[metric], curr[metric]
        tol = overrides.get(metric, tolerance)
        if c > b * (1.0 + tol) and c - b > 1e-12:
            comparison.regressions.append(Regression(metric, b, c))
        elif c < b * (1.0 - tol):
            comparison.improvements.append(Regression(metric, b, c))
        else:
            comparison.unchanged += 1
    return comparison


# ---------------------------------------------------------------------------
# Bench-meta trajectories
# ---------------------------------------------------------------------------


def append_bench_history(path, key: str, entry: dict, now=None, limit: int = 200) -> dict:
    """Append one timestamped entry to ``key``'s history in a
    ``bench_meta.json`` file (creating or migrating as needed) and return
    the updated document.

    Each slot holds ``{"latest": entry, "history": [oldest..newest]}`` so
    the file records a *trajectory* instead of only the last run; legacy
    flat entries become the first history item.  ``now`` (a datetime or
    ISO string) is stamped as ``entry["at"]`` when given — injected by the
    caller so this module stays clock-free.
    """
    path = Path(path)
    try:
        meta = json.loads(path.read_text())
        if not isinstance(meta, dict):
            meta = {}
    except (OSError, ValueError):
        meta = {}
    slot = meta.get(key)
    if isinstance(slot, dict) and isinstance(slot.get("history"), list):
        history = slot["history"]
    elif isinstance(slot, dict):
        history = [slot]  # legacy flat entry: keep it as the oldest point
    else:
        history = []
    entry = dict(entry)
    if now is not None:
        entry["at"] = now if isinstance(now, str) else now.isoformat(timespec="seconds")
    history.append(entry)
    history = history[-limit:]
    meta[key] = {"latest": entry, "history": history}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(meta, indent=2, sort_keys=True))
    return meta
