"""CUDA Graphs model.

A :class:`CudaGraph` is a DAG of GPU operations captured once and launched
repeatedly.  Benefits modeled (matching §III-D2 of the paper):

* One host-side launch (``graph_launch_cpu_s``) replaces one
  ``kernel_launch_cpu_s`` *per kernel* — the dominant saving when the CPU is
  busy issuing many fine-grained launches (high ODF).
* Device-side per-node overhead drops from ``kernel_launch_device_s`` to
  ``graph_node_device_s``.
* All intra-graph dependencies are known to the device, so independent nodes
  run concurrently without event bookkeeping.

Also modeled: the cost of *updating* graph node parameters
(:meth:`CudaGraph.update_cost`), which is why the paper's Jacobi3D keeps two
pre-built graphs with swapped input/output pointers and alternates between
them instead of updating one graph every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..sim import Engine, Event
from .gpu import GpuDevice, GpuOp, WorkModel

__all__ = ["GraphNode", "CudaGraph", "GraphExec"]


@dataclass(frozen=True)
class GraphNode:
    """One node of a captured graph: the work plus dependency indices."""

    work: WorkModel
    deps: tuple[int, ...] = ()
    name: str = ""


@dataclass
class CudaGraph:
    """A captured DAG of GPU work.

    Build explicitly with :meth:`add`, or capture from a recorded stream
    trace (see :meth:`from_sequence`).
    """

    nodes: list[GraphNode] = field(default_factory=list)

    def add(self, work: WorkModel, deps: Iterable[int] = (), name: str = "") -> int:
        """Append a node depending on node indices ``deps``; returns its index."""
        deps = tuple(deps)
        n = len(self.nodes)
        for d in deps:
            if not 0 <= d < n:
                raise ValueError(f"dependency {d} out of range for node {n}")
        self.nodes.append(GraphNode(work, deps, name or f"n{n}"))
        return n

    @classmethod
    def from_sequence(cls, works: Sequence[WorkModel], serial: bool = True) -> "CudaGraph":
        """Capture a linear sequence (each node depends on the previous)."""
        graph = cls()
        prev: Optional[int] = None
        for w in works:
            deps = (prev,) if (serial and prev is not None) else ()
            prev = graph.add(w, deps=deps)
        return graph

    def __len__(self) -> int:
        return len(self.nodes)

    def instantiate(self, device: GpuDevice) -> "GraphExec":
        """``cudaGraphInstantiate``: bind to a device for launching."""
        return GraphExec(self, device)

    def update_cost(self, device: GpuDevice, nodes_updated: Optional[int] = None) -> float:
        """CPU cost of ``cudaGraphExecKernelNodeSetParams`` on ``nodes_updated``
        nodes (all of them by default) — what per-iteration pointer swapping
        would cost if the app did not keep two alternating graphs."""
        n = len(self.nodes) if nodes_updated is None else nodes_updated
        # Each node update is roughly half a kernel launch of CPU work.
        return 0.5 * device.spec.kernel_launch_cpu_s * n


class GraphExec:
    """An instantiated, launchable graph.

    ``launch(priority)`` returns a sim :class:`Event` that triggers when
    every node has completed.  The *caller* is responsible for charging the
    host-side ``graph_launch_cpu_s`` to its PE (same convention as plain
    kernel launches).
    """

    def __init__(self, graph: CudaGraph, device: GpuDevice):
        if not graph.nodes:
            raise ValueError("cannot instantiate an empty graph")
        self.graph = graph
        self.device = device
        self.launches = 0

    @property
    def cpu_launch_cost(self) -> float:
        return self.device.spec.graph_launch_cpu_s

    def launch(self, priority: int = 0, after: Optional[Iterable[Event]] = None) -> Event:
        """Execute the whole DAG; returns the graph-completion event.

        Parameters
        ----------
        priority:
            Engine arbitration priority for every node (the launching
            stream's priority in CUDA terms).
        after:
            Optional events that must trigger before any node starts
            (models launching the graph into a stream behind prior work).
        """
        engine = self.device.engine
        self.launches += 1
        node_done: list[Event] = [engine.event() for _ in self.graph.nodes]
        gate = list(after or ())

        def run_node(idx: int):
            node = self.graph.nodes[idx]
            deps = [node_done[d] for d in node.deps] + gate
            if deps:
                yield engine.all_of(deps)
            op = GpuOp(engine, node.work, name=f"graph.{node.name}")
            op.in_graph_overhead = self.device.spec.graph_node_device_s
            yield from self.device._execute(op, priority)
            node_done[idx].succeed()

        for i in range(len(self.graph.nodes)):
            engine.process(run_node(i), name=f"{self.device.name}.graphnode{i}")
        return engine.all_of(node_done, name="graph.done")
