"""Interconnect topology: hop counts and wire latency.

Summit's fabric is a *non-blocking* fat tree, so contention upstream of the
injection port is negligible; topology only determines latency through the
hop count between nodes.  The model groups nodes hierarchically: a leaf
switch serves ``nodes_per_switch`` nodes; each extra level widens the group
by ``radix`` and adds two hops (up + down).
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import NicSpec, TopologySpec

__all__ = ["FatTree"]


@dataclass(frozen=True)
class FatTree:
    """Hop/latency calculator for a non-blocking fat tree.

    ``hops(a, b)`` is 0 for the same node, 2 within a leaf switch, and +2
    per additional tree level that must be climbed.
    """

    spec: TopologySpec
    radix: int = 18  # up-links fan-out per level above the leaves

    def group_size(self, level: int) -> int:
        """Number of nodes reachable without climbing above ``level``."""
        return self.spec.nodes_per_switch * (self.radix ** max(0, level - 1))

    def hops(self, node_a: int, node_b: int) -> int:
        if node_a == node_b:
            return 0
        for level in range(1, self.spec.levels + 1):
            size = self.group_size(level)
            if node_a // size == node_b // size:
                return 2 * level
        return 2 * self.spec.levels

    def latency(self, node_a: int, node_b: int, nic: NicSpec) -> float:
        """One-way wire latency between two nodes."""
        return nic.base_latency_s + self.hops(node_a, node_b) * nic.per_hop_latency_s

    def hops_matrix(self, n_nodes: int):
        """All-pairs :meth:`hops` as an ``(n_nodes, n_nodes)`` int array,
        computed vectorized (one comparison sweep per tree level)."""
        import numpy as np

        idx = np.arange(n_nodes)
        a, b = idx[:, None], idx[None, :]
        hops = np.full((n_nodes, n_nodes), 2 * self.spec.levels, dtype=np.int64)
        for level in range(self.spec.levels, 0, -1):
            size = self.group_size(level)
            hops[(a // size) == (b // size)] = 2 * level
        hops[a == b] = 0
        return hops

    def latency_matrix(self, n_nodes: int, nic: NicSpec) -> list[list[float]]:
        """All-pairs :meth:`latency` as nested Python lists.

        The arithmetic (`int64 * float64` then add) runs the same IEEE
        operations as the scalar path, so every entry is bit-identical to
        ``latency(a, b, nic)``; ``tolist()`` hands back plain floats so
        simulation times never carry numpy scalar types.
        """
        lat = nic.base_latency_s + self.hops_matrix(n_nodes) * nic.per_hop_latency_s
        return lat.tolist()
