"""The network: NIC ports, wire transfers, intra-node transport.

Transfer model (LogGP-flavoured cut-through):

* The sender's **injection port** and the receiver's **ejection port** are
  each a unit resource serializing concurrent messages; one transfer holds
  *both* while its bytes stream at ``injection_bandwidth``, so an
  uncontended transfer takes ``size/BW + latency(hops)`` — not the doubled
  store-and-forward time.
* Port arbitration honours priorities (the runtime gives halo messages a
  high priority, matching the paper's §III-A).
* Per-message *CPU* overheads (``NicSpec.overhead_s``) are charged by the
  communication layer to the sending/receiving PE, not here.

Intra-node messages bypass the NIC and use the node's shared internal
transport (``NodeSpec.intra_node_bandwidth``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim import Engine, Event, IntervalTracker, Resource, trace
from .specs import MachineSpec
from .topology import FatTree

__all__ = ["Message", "Network"]

_msg_ids = itertools.count()


@dataclass
class Message:
    """A message in flight between two PEs.

    ``payload`` carries arbitrary runtime data (entry-method invocations,
    raw numpy halo arrays in functional mode); its size for timing purposes
    is always the explicit ``size`` field.
    """

    src_pe: int
    dst_pe: int
    size: int
    tag: Any = None
    payload: Any = None
    priority: float = 0.0
    # Port-occupancy multiplier: > 1 models protocol inefficiency (e.g. the
    # chunk-synchronization gaps of UCX's pipelined host staging, which keep
    # the port from streaming at full rate).  Does not affect byte counters.
    wire_time_scale: float = 1.0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    sent_at: float = float("nan")
    delivered_at: float = float("nan")


class Network:
    """All NIC ports plus the fat-tree latency model for one cluster.

    Parameters
    ----------
    engine, spec, n_nodes, pes_per_node:
        Machine shape.  PE *global* index = ``node * pes_per_node + local``.
    """

    def __init__(self, engine: Engine, spec: MachineSpec, n_nodes: int, pes_per_node: int):
        self.engine = engine
        self.spec = spec
        self.n_nodes = n_nodes
        self.pes_per_node = pes_per_node
        self.tree = FatTree(spec.topology)
        nic = spec.node.nic
        self._bw = nic.injection_bandwidth
        self._intra_bw = spec.node.intra_node_bandwidth
        self._intra_lat = spec.node.intra_node_latency_s
        # What-if knob: dilates every in-flight window (serialization and
        # delivery latency, NIC and intra-node alike).  1.0 is bit-neutral.
        self._wire_scale = nic.wire_scale
        self.inject = [Resource(engine, name=f"n{i}.inject") for i in range(n_nodes)]
        self.eject = [Resource(engine, name=f"n{i}.eject") for i in range(n_nodes)]
        self.intra = [Resource(engine, name=f"n{i}.intra") for i in range(n_nodes)]
        self.inflight = IntervalTracker(engine, "net.inflight")
        # All-pairs wire latency, precomputed vectorized on first use and
        # stored as plain nested lists (two list indexes per lookup beats
        # re-walking the tree levels per message; plain floats keep numpy
        # scalar types out of simulation timestamps).
        self._lat_matrix: Optional[list[list[float]]] = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_sent = 0
        #: Optional observer with ``on_send(message)`` / ``on_deliver(message)``
        #: — the validation layer's hook for per-channel message conservation.
        self.monitor = None

    # -- helpers ------------------------------------------------------------
    def node_of_pe(self, pe: int) -> int:
        return pe // self.pes_per_node

    def wire_latency(self, src_node: int, dst_node: int) -> float:
        matrix = self._lat_matrix
        if matrix is None:
            matrix = self._lat_matrix = self.tree.latency_matrix(
                self.n_nodes, self.spec.node.nic)
        return matrix[src_node][dst_node]

    def uncontended_time(self, src_pe: int, dst_pe: int, size: int) -> float:
        """Pure-wire transfer time with idle ports (for tests/analysis)."""
        a, b = self.node_of_pe(src_pe), self.node_of_pe(dst_pe)
        if a == b:
            return (self._intra_lat + size / self._intra_bw) * self._wire_scale
        return (self.wire_latency(a, b) + size / self._bw) * self._wire_scale

    def uncontended_times(self, src_pes, dst_pes, sizes):
        """Vectorized :meth:`uncontended_time` over equal-length batches;
        returns a float64 array, each element bit-identical to the scalar
        path (same divisions and additions, element-wise)."""
        import numpy as np

        src = np.asarray(src_pes, dtype=np.int64) // self.pes_per_node
        dst = np.asarray(dst_pes, dtype=np.int64) // self.pes_per_node
        size = np.asarray(sizes, dtype=np.float64)
        matrix = self._lat_matrix
        if matrix is None:
            matrix = self._lat_matrix = self.tree.latency_matrix(
                self.n_nodes, self.spec.node.nic)
        wire = (np.asarray(matrix)[src, dst] + size / self._bw) * self._wire_scale
        intra = (self._intra_lat + size / self._intra_bw) * self._wire_scale
        return np.where(src == dst, intra, wire)

    # -- transfer ------------------------------------------------------------
    def transfer(self, message: Message) -> Event:
        """Move ``message`` across the machine; the returned event triggers
        at delivery (when the last byte reaches the destination node)."""
        done = Event(self.engine, name="net.deliver")
        self.engine.process(self._transfer_proc(message, done), name="net.xfer")
        return done

    def _transfer_proc(self, message: Message, done: Event):
        eng = self.engine
        src_node = self.node_of_pe(message.src_pe)
        dst_node = self.node_of_pe(message.dst_pe)
        message.sent_at = eng.now
        self.messages_sent += 1
        self.bytes_sent += message.size
        if eng.metrics is not None:
            route = "intra" if src_node == dst_node else "inter"
            eng.metrics.inc("net.messages", route=route)
            eng.metrics.inc("net.bytes", message.size, route=route)
        if self.monitor is not None:
            self.monitor.on_send(message)
        token = self.inflight.begin()
        if eng.tracer is not None:
            trace(eng, "net.send", f"pe{message.src_pe}", dst=message.dst_pe,
                  size=message.size, tag=message.tag)
        if src_node == dst_node:
            hold = self.intra[src_node].request(priority=message.priority)
            yield hold
            yield message.size * message.wire_time_scale / self._intra_bw * self._wire_scale
            self.intra[src_node].release(hold)
            yield self._intra_lat * self._wire_scale
        else:
            inj = self.inject[src_node].request(priority=message.priority)
            yield inj
            ej = self.eject[dst_node].request(priority=message.priority)
            yield ej
            yield message.size * message.wire_time_scale / self._bw * self._wire_scale
            self.inject[src_node].release(inj)
            self.eject[dst_node].release(ej)
            yield self.wire_latency(src_node, dst_node) * self._wire_scale
        message.delivered_at = eng.now
        self.messages_delivered += 1
        if self.monitor is not None:
            self.monitor.on_deliver(message)
        self.inflight.end(token)
        if eng.tracer is not None:
            trace(eng, "net.deliver", f"pe{message.dst_pe}", src=message.src_pe,
                  size=message.size, tag=message.tag, latency=eng.now - message.sent_at)
        done.succeed(message)
