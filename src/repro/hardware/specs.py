"""Hardware specifications and calibration constants.

Every quantitative knob of the performance model lives here, in SI units
(seconds, bytes, bytes/second).  The values are calibrated to the paper's
testbed, the Summit supercomputer (IBM POWER9 + 6×NVIDIA V100 per node,
dual-rail EDR InfiniBand fat tree), from public datasheets and the paper's
own observations (e.g. the 1 MB UCX device-pipeline threshold implied by the
9 MB-halo slowdown vs the 96 KB-halo speedup).

The specs are frozen dataclasses: a :class:`MachineSpec` fully determines a
simulated machine, so experiments are reproducible from their config alone.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Optional

__all__ = [
    "GpuSpec",
    "HostLinkSpec",
    "NicSpec",
    "TopologySpec",
    "UcxSpec",
    "NodeSpec",
    "MachineSpec",
    "KiB",
    "MiB",
    "GiB",
    "US",
    "MS",
]

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024
US = 1e-6  # microsecond, in seconds
MS = 1e-3  # millisecond, in seconds


@dataclass(frozen=True)
class GpuSpec:
    """One GPU device.

    Defaults model an NVIDIA Tesla V100 (SXM2, 16 GB):

    * ``mem_bandwidth``: effective HBM2 bandwidth for streaming stencil
      kernels (~87 % of the 900 GB/s peak).
    * ``flops``: double-precision peak.
    * ``kernel_launch_cpu_s``: host-side cost of ``cudaLaunchKernel`` (the
      launching core is busy for this long).
    * ``kernel_launch_device_s``: device-side gap before a launched kernel
      starts doing work.
    * ``graph_launch_cpu_s`` / ``graph_node_device_s``: CUDA Graph launch
      cost (one per launch) and the much-reduced per-node device overhead.
    * ``copy_engine_count``: independent DMA engines per direction.
    """

    name: str = "V100-SXM2-16GB"
    mem_bandwidth: float = 780e9
    flops: float = 7.8e12
    mem_capacity: int = 16 * GiB
    kernel_launch_cpu_s: float = 6.5 * US
    kernel_launch_device_s: float = 2.5 * US
    graph_launch_cpu_s: float = 5.5 * US  # cudaGraphLaunch beats one kernel launch
    graph_node_device_s: float = 0.6 * US
    copy_engine_count: int = 1
    max_concurrent_kernels: int = 1
    # -- what-if intervention knobs (docs/observability.md, obs/whatif.py) --
    # Each multiplies the *full* device-side duration (launch gap + work) of
    # the matching operations, so a trace-level projection that scales the
    # recorded interval has an exact machine-level counterpart.
    # ``op_scales``: ((op-name prefix, factor), ...) for compute kernels —
    # first match wins after stripping any "graph." prefix; "" matches all.
    op_scales: tuple = ()
    d2h_scale: float = 1.0
    h2d_scale: float = 1.0
    d2d_scale: float = 1.0

    def __post_init__(self):
        # Normalize after JSON round-trips (lists of lists -> tuple pairs)
        # so spec equality and the content-addressed cache key are stable.
        object.__setattr__(
            self, "op_scales",
            tuple((str(p), float(s)) for p, s in self.op_scales))
        for pair in self.op_scales:
            if pair[1] < 0:
                raise ValueError(f"op_scales factor must be >= 0, got {pair[1]}")
        for attr in ("d2h_scale", "h2d_scale", "d2d_scale"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")


@dataclass(frozen=True)
class HostLinkSpec:
    """CPU<->GPU link (NVLink 2.0 bricks on Summit: 50 GB/s per direction,
    of which ~45 GB/s is achievable for large copies)."""

    bandwidth: float = 45e9
    latency: float = 1.8 * US
    copy_setup_cpu_s: float = 1.2 * US  # cudaMemcpyAsync host-side cost


@dataclass(frozen=True)
class NicSpec:
    """Per-node network interface (dual-rail EDR InfiniBand on Summit).

    LogGP-flavoured: per-message CPU overhead ``o``, wire latency ``L``
    (plus per-hop), and bandwidth ``G``-equivalent via ``injection_bandwidth``
    shared by all PEs/GPUs on the node.
    """

    injection_bandwidth: float = 23e9
    overhead_s: float = 1.5 * US  # sender/receiver CPU overhead per message
    base_latency_s: float = 1.2 * US
    per_hop_latency_s: float = 0.35 * US
    rendezvous_rtt_s: float = 2.4 * US  # RTS/CTS handshake for rendezvous
    # What-if intervention knob (obs/whatif.py): multiplies the in-flight
    # window of every transfer — wire serialization *and* delivery latency,
    # on both the NIC and the intra-node transport — without touching the
    # per-message CPU overheads or the rendezvous handshake (those are
    # charged to PEs / appear as dependency waits, not network time).
    wire_scale: float = 1.0

    def __post_init__(self):
        if self.wire_scale < 0:
            raise ValueError("wire_scale must be >= 0")


@dataclass(frozen=True)
class TopologySpec:
    """Non-blocking fat tree: nodes per leaf switch and switch levels.

    Non-blocking means no bandwidth reduction upstream; distance only adds
    per-hop latency.
    """

    nodes_per_switch: int = 18
    levels: int = 3


@dataclass(frozen=True)
class UcxSpec:
    """UCX-like protocol engine for device (GPU) buffers.

    * ``<= eager_threshold``: eager through pre-registered bounce buffers.
    * ``<= device_pipeline_threshold``: rendezvous + GPUDirect RDMA straight
      from device memory.
    * ``> device_pipeline_threshold``: *pipelined host staging* — the message
      is chopped into ``pipeline_chunk_bytes`` chunks, each staged D2H through
      a bounded pool of host bounce buffers on an internal stream, sent,
      and un-staged H2D on the receiver.  This is the protocol switch the
      paper observed for 9 MB halos (Fig. 7a) that makes GPU-aware
      communication *slower* than application-level host staging.
    """

    eager_threshold: int = 8 * KiB
    device_pipeline_threshold: int = 1 * MiB
    pipeline_chunk_bytes: int = 512 * KiB
    staging_pool_bytes: int = 2 * MiB  # per device: max in-flight staged bytes
    per_chunk_overhead_s: float = 5.0 * US
    # Fraction of wire bandwidth the pipelined protocol actually achieves:
    # chunk-boundary synchronization keeps the port from streaming.  Hanford
    # et al. ("Challenges of GPU-aware communication in MPI") measured
    # ~8-9 GB/s pipelined device transfers vs ~21 GB/s host rendezvous on
    # this architecture class; 0.5 of the 23 GB/s port reproduces that.
    pipeline_wire_efficiency: float = 0.5
    # Intra-node pipelined staging (shared-memory bounce) has gentler chunk
    # gaps than the NIC path.
    pipeline_intra_efficiency: float = 0.65
    # Optional concurrency degradation: beyond `concurrency_free` concurrent
    # pipelined transfers per source device, chunk scheduling on the UCX
    # progress context degrades by `penalty` per extra transfer (capped).
    # Defaults to OFF (penalty 0): with it enabled the weak-scaling Fig. 7a
    # gap widens, but strong-scaling Charm-D would wrongly prefer ODF 1 —
    # the paper's own data keeps ODF 4 best there.  Exposed as an ablation
    # knob (see benchmarks/bench_ablations.py).
    pipeline_concurrency_free: int = 6
    pipeline_concurrency_penalty: float = 0.0
    pipeline_concurrency_cap: int = 16
    eager_overhead_s: float = 0.8 * US
    gpudirect_reg_overhead_s: float = 1.6 * US


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: PEs (CPU cores driving GPUs), GPUs, host links, NIC.

    In both the paper's MPI and Charm++ (non-SMP) setups exactly one process
    runs per GPU, so ``pes_per_node == gpus_per_node``.
    """

    gpus_per_node: int = 6
    gpu: GpuSpec = field(default_factory=GpuSpec)
    host_link: HostLinkSpec = field(default_factory=HostLinkSpec)
    nic: NicSpec = field(default_factory=NicSpec)
    intra_node_bandwidth: float = 40e9  # PE<->PE / GPU<->GPU on-node transport
    intra_node_latency_s: float = 0.9 * US

    @property
    def pes_per_node(self) -> int:
        return self.gpus_per_node


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine: node design, topology, protocol engine.

    Use :meth:`summit` for the paper's testbed; ``replace_...`` helpers make
    sensitivity studies (ablations) terse.
    """

    name: str = "generic"
    node: NodeSpec = field(default_factory=NodeSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)
    ucx: UcxSpec = field(default_factory=UcxSpec)
    max_nodes: Optional[int] = None

    @classmethod
    def summit(cls) -> "MachineSpec":
        """The paper's testbed: 4608 nodes, 6 V100s + dual-rail EDR each."""
        return cls(name="summit", max_nodes=4608)

    @classmethod
    def small_debug(cls) -> "MachineSpec":
        """A 2-GPU-per-node machine for fast functional tests."""
        return cls(name="debug", node=NodeSpec(gpus_per_node=2), max_nodes=64)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form (nested dicts of numbers/strings) of every spec
        field.  Used for worker dispatch and as part of the content-addressed
        result-cache key, so it must cover *all* calibration constants: any
        field change must change the dict."""
        d = asdict(self)
        # JSON has no tuples: normalize op_scales to lists so to_dict() output
        # equals its own JSON round-trip (golden entries compare by ==).
        gpu = d["node"]["gpu"]
        gpu["op_scales"] = [list(pair) for pair in gpu["op_scales"]]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "MachineSpec":
        """Inverse of :meth:`to_dict`."""
        node = d["node"]
        return cls(
            name=d["name"],
            node=NodeSpec(
                gpus_per_node=node["gpus_per_node"],
                gpu=GpuSpec(**node["gpu"]),
                host_link=HostLinkSpec(**node["host_link"]),
                nic=NicSpec(**node["nic"]),
                intra_node_bandwidth=node["intra_node_bandwidth"],
                intra_node_latency_s=node["intra_node_latency_s"],
            ),
            topology=TopologySpec(**d["topology"]),
            ucx=UcxSpec(**d["ucx"]),
            max_nodes=d["max_nodes"],
        )

    # -- ablation helpers ----------------------------------------------------
    def with_gpu(self, **kwargs) -> "MachineSpec":
        return replace(self, node=replace(self.node, gpu=replace(self.node.gpu, **kwargs)))

    def with_nic(self, **kwargs) -> "MachineSpec":
        return replace(self, node=replace(self.node, nic=replace(self.node.nic, **kwargs)))

    def with_ucx(self, **kwargs) -> "MachineSpec":
        return replace(self, ucx=replace(self.ucx, **kwargs))

    def with_node(self, **kwargs) -> "MachineSpec":
        return replace(self, node=replace(self.node, **kwargs))

    def validate_nodes(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        if self.max_nodes is not None and n_nodes > self.max_nodes:
            raise ValueError(f"{self.name} has only {self.max_nodes} nodes, asked for {n_nodes}")
