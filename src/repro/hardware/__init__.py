"""Hardware models: GPUs, CUDA graphs, NICs, topology, nodes, clusters.

This subpackage is the simulated stand-in for the paper's testbed (Summit):
see DESIGN.md §2 for the substitution rationale and §5 for calibration.
"""

from .cluster import PE, Cluster, Node
from .gpu import (
    COMPUTE,
    COPY_D2D,
    COPY_D2H,
    COPY_H2D,
    CopyWork,
    CudaEvent,
    CudaStream,
    GpuDevice,
    GpuOp,
    KernelWork,
    WorkModel,
)
from .graphs import CudaGraph, GraphExec, GraphNode
from .network import Message, Network
from .specs import (
    GiB,
    GpuSpec,
    HostLinkSpec,
    KiB,
    MachineSpec,
    MiB,
    MS,
    NicSpec,
    NodeSpec,
    TopologySpec,
    US,
    UcxSpec,
)
from .topology import FatTree

__all__ = [
    "PE",
    "Cluster",
    "Node",
    "COMPUTE",
    "COPY_D2D",
    "COPY_D2H",
    "COPY_H2D",
    "CopyWork",
    "CudaEvent",
    "CudaStream",
    "GpuDevice",
    "GpuOp",
    "KernelWork",
    "WorkModel",
    "CudaGraph",
    "GraphExec",
    "GraphNode",
    "Message",
    "Network",
    "FatTree",
    "GiB",
    "GpuSpec",
    "HostLinkSpec",
    "KiB",
    "MachineSpec",
    "MiB",
    "MS",
    "NicSpec",
    "NodeSpec",
    "TopologySpec",
    "US",
    "UcxSpec",
]
