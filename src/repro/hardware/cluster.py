"""Nodes, PEs and the whole simulated cluster.

A :class:`Cluster` instantiates, for ``n_nodes`` nodes of a
:class:`~repro.hardware.specs.MachineSpec`:

* one :class:`~repro.hardware.gpu.GpuDevice` per GPU,
* one :class:`PE` per CPU core driving a GPU (the paper runs one process
  per GPU in both MPI and non-SMP Charm++, so PEs and GPUs are 1:1),
* a shared :class:`~repro.hardware.network.Network`.

The PE object is deliberately thin: it is a *location* (indices, its GPU)
plus a unit :class:`~repro.sim.Resource` representing the CPU core, which
the runtime/MPI layers hold while executing entry methods, launching
kernels, or paying per-message overheads.
"""

from __future__ import annotations

from typing import Iterator

from ..sim import Engine, IntervalTracker, Resource
from .gpu import GpuDevice
from .network import Network
from .specs import MachineSpec

__all__ = ["PE", "Node", "Cluster"]


class PE:
    """One processing element: a CPU core with a dedicated GPU."""

    def __init__(self, engine: Engine, global_index: int, node_index: int,
                 local_index: int, gpu: GpuDevice):
        self.engine = engine
        self.index = global_index
        self.node_index = node_index
        self.local_index = local_index
        self.gpu = gpu
        self.name = f"pe{global_index}"
        self.core = Resource(engine, capacity=1, name=f"{self.name}.core")
        self.busy = IntervalTracker(engine, f"{self.name}.busy")
        #: Captive-but-idle windows: the core is held by a blocking call
        #: (e.g. MPI_Wait busy-polling) while the real work happens
        #: elsewhere.  Kept separate from ``busy`` so profilers attribute
        #: these windows to the activity that gates them (the GPU, the
        #: wire) instead of to CPU work — the distinction the what-if
        #: engine (repro.obs.whatif) relies on.
        self.blocked = IntervalTracker(engine, f"{self.name}.blocked")

    def occupy(self, duration: float, priority: float = 0.0):
        """Generator fragment: hold the core for ``duration`` seconds.

        Usage inside a process: ``yield from pe.occupy(cost)``.
        """
        req = self.core.request(priority=priority)
        yield req
        token = self.busy.begin()
        yield duration
        self.busy.end(token)
        self.core.release(req)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PE {self.index} (node {self.node_index}.{self.local_index})>"


class Node:
    """One compute node: its GPUs and PEs."""

    def __init__(self, engine: Engine, spec: MachineSpec, index: int, first_pe: int):
        self.index = index
        self.gpus = [
            GpuDevice(engine, spec.node.gpu, spec.node.host_link, name=f"n{index}.gpu{g}")
            for g in range(spec.node.gpus_per_node)
        ]
        self.pes = [
            PE(engine, first_pe + g, index, g, self.gpus[g])
            for g in range(spec.node.gpus_per_node)
        ]


class Cluster:
    """The simulated machine: ``n_nodes`` nodes plus the network."""

    def __init__(self, engine: Engine, spec: MachineSpec, n_nodes: int):
        spec.validate_nodes(n_nodes)
        self.engine = engine
        self.spec = spec
        self.n_nodes = n_nodes
        per = spec.node.pes_per_node
        self.nodes = [Node(engine, spec, i, i * per) for i in range(n_nodes)]
        self.network = Network(engine, spec, n_nodes, per)

    @property
    def n_pes(self) -> int:
        return self.n_nodes * self.spec.node.pes_per_node

    @property
    def n_gpus(self) -> int:
        return self.n_pes

    def pe(self, index: int) -> PE:
        per = self.spec.node.pes_per_node
        return self.nodes[index // per].pes[index % per]

    def gpu(self, pe_index: int) -> GpuDevice:
        return self.pe(pe_index).gpu

    def all_pes(self) -> Iterator[PE]:
        for node in self.nodes:
            yield from node.pes

    def total_gpu_busy_seconds(self) -> float:
        from .gpu import COMPUTE

        return sum(g.busy_seconds(COMPUTE) for n in self.nodes for g in n.gpus)
