"""GPU device model: streams, copy engines, kernels, CUDA events.

The model captures exactly the mechanisms the paper's optimizations exploit:

* **Asynchronous streams with priorities** — each stream is a FIFO of
  operations; operations from different streams compete for the device's
  engines, with lower `priority` values winning ties (CUDA's
  ``cudaStreamCreateWithPriority``).  A queued high-priority packing kernel
  therefore jumps ahead of other chares' queued update kernels — but never
  preempts a running one.
* **Separate copy engines** — D2H and H2D DMA engines are independent of the
  compute engine, so copies overlap with kernels *iff* they are issued on
  different streams (the paper's §III-C optimization).
* **CUDA events** — cross-stream dependencies (``cudaStreamWaitEvent``).
* **Launch overheads** — host-side launch cost is charged to the *calling
  PE* via :meth:`GpuDevice.cpu_launch_cost`; device-side launch gap is part
  of the operation duration.  These overheads are what kernel fusion and
  CUDA Graphs (see :mod:`repro.hardware.graphs`) attack.

Durations are computed from :class:`~repro.hardware.specs.GpuSpec` via
:class:`WorkModel` subclasses, keeping "what runs" separate from "how long
it takes".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim import Engine, Event, IntervalTracker, Resource, SimulationError, Store, trace
from .specs import GpuSpec, HostLinkSpec

__all__ = [
    "WorkModel",
    "KernelWork",
    "CopyWork",
    "GpuOp",
    "CudaEvent",
    "CudaStream",
    "GpuDevice",
    "COMPUTE",
    "COPY_D2H",
    "COPY_H2D",
    "COPY_D2D",
]

# Engine kinds on a device.
COMPUTE = "compute"
COPY_D2H = "copy_d2h"
COPY_H2D = "copy_h2d"
COPY_D2D = "copy_d2d"


class WorkModel:
    """How long an operation occupies its engine, given the device specs."""

    engine = COMPUTE

    def duration(self, gpu: GpuSpec, link: HostLinkSpec) -> float:  # pragma: no cover
        raise NotImplementedError

    def device_overhead(self, gpu: GpuSpec) -> float:
        """Device-side launch gap (amortized away inside CUDA graphs)."""
        return gpu.kernel_launch_device_s

    def cpu_launch_cost(self, gpu: GpuSpec, link: HostLinkSpec) -> float:
        """Host-side cost of issuing this op (charged to the calling PE)."""
        return gpu.kernel_launch_cpu_s


@dataclass(frozen=True)
class KernelWork(WorkModel):
    """A compute kernel; duration is the roofline max of its memory and
    flop demands, plus a fixed efficiency factor.

    Parameters
    ----------
    bytes_moved:
        Total DRAM traffic (reads + writes).
    flops:
        Floating-point operations.
    efficiency:
        Fraction of peak the kernel achieves (fused kernels with divergent
        warps use < 1).
    """

    bytes_moved: float
    flops: float = 0.0
    efficiency: float = 1.0

    engine = COMPUTE

    def __post_init__(self):
        if self.bytes_moved < 0 or self.flops < 0:
            raise ValueError("negative work")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")

    def duration(self, gpu: GpuSpec, link: HostLinkSpec) -> float:
        mem_t = self.bytes_moved / gpu.mem_bandwidth
        flop_t = self.flops / gpu.flops
        return max(mem_t, flop_t) / self.efficiency


@dataclass(frozen=True)
class CopyWork(WorkModel):
    """A DMA copy.  ``direction`` selects the engine; host-link bandwidth
    applies to D2H/H2D, device memory bandwidth (both a read and a write)
    to D2D."""

    size: int
    direction: str = COPY_D2H

    def __post_init__(self):
        if self.size < 0:
            raise ValueError("negative copy size")
        if self.direction not in (COPY_D2H, COPY_H2D, COPY_D2D):
            raise ValueError(f"bad copy direction {self.direction!r}")

    @property
    def engine(self) -> str:  # type: ignore[override]
        return self.direction

    def duration(self, gpu: GpuSpec, link: HostLinkSpec) -> float:
        if self.direction == COPY_D2D:
            return 2.0 * self.size / gpu.mem_bandwidth
        return link.latency + self.size / link.bandwidth

    def cpu_launch_cost(self, gpu: GpuSpec, link: HostLinkSpec) -> float:
        return link.copy_setup_cpu_s


_op_ids = itertools.count()


class GpuOp:
    """One operation enqueued on a stream.

    ``done`` triggers when the operation completes on the device.
    ``wait_events`` are extra dependencies (CUDA events from other streams).
    ``reads``/``writes`` are the logical buffers the op touches — pure
    declarations for the concurrency sanitizer (docs/sanitizer.md); the
    device model never reads them.
    """

    __slots__ = ("work", "name", "done", "wait_events", "op_id",
                 "in_graph_overhead", "reads", "writes")

    def __init__(
        self,
        engine: Engine,
        work: WorkModel,
        name: str = "",
        wait_events: Optional[Iterable[Event]] = None,
        reads: tuple = (),
        writes: tuple = (),
    ):
        self.work = work
        self.name = name or type(work).__name__
        self.done = Event(engine, self.name)
        self.wait_events = list(wait_events or ())
        self.op_id = next(_op_ids)
        self.in_graph_overhead: Optional[float] = None  # set when run via CUDA graph
        self.reads = tuple(reads)
        self.writes = tuple(writes)


class CudaEvent:
    """``cudaEventRecord`` equivalent: triggers when the stream reaches it
    (all prior ops in the stream complete)."""

    __slots__ = ("fired",)

    def __init__(self, engine: Engine, name: str = "cuda_event"):
        self.fired = engine.event(name=name)


class CudaStream:
    """A FIFO of GPU operations with a scheduling priority.

    Lower ``priority`` values are more urgent (matches
    ``cudaStreamCreateWithPriority`` where -1 is higher priority than 0; we
    simply use the raw number for engine arbitration).
    """

    def __init__(self, device: "GpuDevice", priority: int = 0, name: str = ""):
        self.device = device
        self.priority = priority
        self.name = name or f"{device.name}.stream"
        self._queue: Store = Store(device.engine, name=f"{self.name}.q")
        self._proc = device.engine.process(self._run(), name=f"{self.name}.proc")
        self.ops_issued = 0

    # -- public API ----------------------------------------------------------
    def enqueue(self, work: WorkModel, name: str = "", wait_events=None,
                reads: tuple = (), writes: tuple = ()) -> GpuOp:
        """Submit an operation; returns the op (``op.done`` = completion)."""
        op = GpuOp(self.device.engine, work, name=name, wait_events=wait_events,
                   reads=reads, writes=writes)
        san = self.device.engine.sanitizer
        if san is not None:
            san.on_op_enqueued(self, op)
        self._queue.put_nowait(op)
        self.ops_issued += 1
        return op

    def record_event(self, name: str = "") -> CudaEvent:
        """Record a CUDA event at the current tail of the stream."""
        ev = CudaEvent(self.device.engine, name=name or f"{self.name}.event")
        self._queue.put_nowait(ev)
        return ev

    def wait_event(self, event: CudaEvent) -> None:
        """Make all subsequently-enqueued ops wait for ``event``
        (``cudaStreamWaitEvent``)."""
        self._queue.put_nowait(_WaitMarker(event))

    def synchronize_event(self) -> Event:
        """A sim event that triggers when all currently-enqueued work done
        (``cudaStreamSynchronize`` as an awaitable, for HAPI-style use)."""
        return self.record_event().fired

    # -- stream executor -------------------------------------------------------
    def _run(self):
        eng = self.device.engine
        pending_waits: list[Event] = []
        while True:
            item = yield self._queue.get()
            cls = item.__class__
            if cls is not GpuOp:
                if isinstance(item, CudaEvent):
                    if eng.sanitizer is not None:
                        eng.sanitizer.on_event_record(self, item)
                    item.fired.succeed()
                    continue
                if isinstance(item, _WaitMarker):
                    pending_waits.append(item.event.fired)
                    continue
            op: GpuOp = item
            deps = ()
            if pending_waits or op.wait_events:
                deps = pending_waits + op.wait_events
                pending_waits = []
                yield eng.all_of(deps)
            if eng.sanitizer is not None:
                eng.sanitizer.on_op_dispatch(self, op, deps)
            yield from self.device._execute(op, self.priority)


class _WaitMarker:
    __slots__ = ("event",)

    def __init__(self, event: CudaEvent):
        self.event = event


class GpuDevice:
    """One GPU: engines, memory accounting, utilization trackers.

    Parameters
    ----------
    engine:
        The simulation engine.
    spec / link:
        Performance characteristics.
    name:
        E.g. ``"node3.gpu2"`` (appears in traces).
    """

    def __init__(self, engine: Engine, spec: GpuSpec, link: HostLinkSpec, name: str = "gpu"):
        self.engine = engine
        self.spec = spec
        self.link = link
        self.name = name
        self.engines: dict[str, Resource] = {
            COMPUTE: Resource(engine, capacity=spec.max_concurrent_kernels, name=f"{name}.compute"),
            COPY_D2H: Resource(engine, capacity=spec.copy_engine_count, name=f"{name}.d2h"),
            COPY_H2D: Resource(engine, capacity=spec.copy_engine_count, name=f"{name}.h2d"),
            COPY_D2D: Resource(engine, capacity=1, name=f"{name}.d2d"),
        }
        self.trackers: dict[str, IntervalTracker] = {
            kind: IntervalTracker(engine, f"{name}.{kind}") for kind in self.engines
        }
        self.mem_allocated = 0
        self._streams: list[CudaStream] = []
        # What-if duration scaling (specs.GpuSpec knobs), resolved once so
        # the neutral default costs a single boolean test in _execute.
        self._copy_scales = {
            COPY_D2H: spec.d2h_scale,
            COPY_H2D: spec.h2d_scale,
            COPY_D2D: spec.d2d_scale,
        }
        self._op_scales = spec.op_scales
        self._has_scaling = bool(spec.op_scales) or any(
            s != 1.0 for s in self._copy_scales.values())

    # -- streams ---------------------------------------------------------------
    def create_stream(self, priority: int = 0, name: str = "") -> CudaStream:
        stream = CudaStream(self, priority=priority, name=name or f"{self.name}.s{len(self._streams)}")
        self._streams.append(stream)
        return stream

    # -- memory accounting -------------------------------------------------------
    def malloc(self, size: int) -> None:
        """Track a device allocation; raises on out-of-memory."""
        if size < 0:
            raise ValueError("negative allocation")
        if self.mem_allocated + size > self.spec.mem_capacity:
            raise MemoryError(
                f"{self.name}: device OOM "
                f"({(self.mem_allocated + size) / 2**30:.2f} GiB > "
                f"{self.spec.mem_capacity / 2**30:.2f} GiB)"
            )
        self.mem_allocated += size

    def free(self, size: int) -> None:
        if size > self.mem_allocated:
            raise SimulationError(f"{self.name}: freeing more than allocated")
        self.mem_allocated -= size

    # -- cost helpers (paid by the calling PE, not the device) -------------------
    def cpu_launch_cost(self, work: WorkModel) -> float:
        return work.cpu_launch_cost(self.spec, self.link)

    # -- execution ----------------------------------------------------------------
    def _execute(self, op: GpuOp, priority: int):
        """Generator fragment: run ``op`` on its engine at ``priority``."""
        kind = op.work.engine
        resource = self.engines[kind]
        req = resource.request(priority=priority)
        yield req
        if op.in_graph_overhead is not None:
            overhead = op.in_graph_overhead
        else:
            overhead = op.work.device_overhead(self.spec)
        duration = overhead + op.work.duration(self.spec, self.link)
        if self._has_scaling:
            duration *= self._duration_scale(kind, op.name)
        token = self.trackers[kind].begin()
        if self.engine.tracer is not None:
            trace(
                self.engine,
                f"gpu.{kind}",
                self.name,
                op=op.name,
                start=self.engine.now,
                duration=duration,
            )
        yield duration
        self.trackers[kind].end(token)
        resource.release(req)
        if self.engine.sanitizer is not None:
            self.engine.sanitizer.on_op_done(op)
        op.done.succeed()

    def _duration_scale(self, kind: str, name: str) -> float:
        """The what-if factor for one op (see ``GpuSpec.op_scales``)."""
        if kind == COMPUTE:
            if name.startswith("graph."):
                name = name[len("graph."):]
            for prefix, scale in self._op_scales:
                if name.startswith(prefix):
                    return scale
            return 1.0
        return self._copy_scales[kind]

    # -- introspection --------------------------------------------------------------
    def busy_seconds(self, kind: str = COMPUTE) -> float:
        return self.trackers[kind].busy_seconds()

    def utilization(self, kind: str = COMPUTE, t0: float = 0.0, t1: Optional[float] = None) -> float:
        return self.trackers[kind].utilization(t0, t1)
