"""repro — GPU-aware asynchronous tasks on a simulated GPU cluster.

A from-scratch Python reproduction of Choi, Richards & Kale,
*Improving Scalability with GPU-Aware Asynchronous Tasks* (IPDPS Workshops
2022): a Charm++-like overdecomposed asynchronous task runtime with
GPU-aware communication, an MPI baseline, a discrete-event model of a
Summit-like GPU supercomputer, and the Jacobi3D proxy application used for
every figure in the paper's evaluation.

Quick start::

    from repro.apps import Jacobi3DConfig, run_jacobi3d

    result = run_jacobi3d(
        Jacobi3DConfig(version="charm-d", nodes=2, grid=(256, 256, 256), odf=4)
    )
    print(result.time_per_iteration)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record of each figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
