"""Configuration and result types shared by every stencil application.

:class:`StencilConfig` is the dataclass base every registered app's config
subclasses: the app sets its :attr:`~StencilConfig.APP` name and
:attr:`~StencilConfig.NDIM` (plus its default grid) and inherits the full
version/fusion/graphs/data-mode surface.  ``to_dict`` carries the ``app``
name, so the content-addressed result cache (:mod:`repro.exec.cache`) can
never alias two apps' runs, and the registry
(:mod:`repro.apps.registry`) can dispatch a plain dict back to the right
config class.

:class:`StencilResult` is shared by all stencil apps — the measured
quantities are app-agnostic, and ``config`` pins the producing app.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, ClassVar

import numpy as np

from ...hardware.specs import MachineSpec
from ...kernels.fusion import FusionStrategy
from ..appbase import AppResult

__all__ = ["StencilConfig", "StencilResult", "VERSIONS", "ALL_VERSIONS"]

#: The paper's four versions (§IV-A): MPI/Charm++ × host-staging/GPU-aware.
VERSIONS = ("mpi-h", "mpi-d", "charm-h", "charm-d")

#: All runnable frontends: the paper's four plus AMPI (virtualized MPI ranks
#: hosted on the Charm++ runtime; ``odf`` is the virtualization ratio).
#: The AMPI versions exist for the cross-backend differential validation
#: harness and the AMPI extension experiments, not for the paper's figures.
ALL_VERSIONS = VERSIONS + ("ampi-h", "ampi-d")

# Functional mode actually allocates and computes every block; keep it for
# test-scale grids unless explicitly overridden.
_FUNCTIONAL_CELL_LIMIT = 4_000_000


@dataclass(frozen=True)
class StencilConfig:
    """One stencil-app run.

    Subclasses declare the app identity (:attr:`APP`), dimensionality
    (:attr:`NDIM`) and the default ``grid``; everything else is shared.

    Parameters
    ----------
    version:
        ``"mpi-h"`` | ``"mpi-d"`` | ``"charm-h"`` | ``"charm-d"`` —
        plus ``"ampi-h"`` | ``"ampi-d"`` (virtualized MPI ranks on the
        Charm++ runtime; used by the differential validation harness).
    nodes:
        Node count (6 GPUs/PEs per node on Summit).
    grid:
        Global grid dimensions (cells), one entry per :attr:`NDIM` axis.
    odf:
        Overdecomposition factor — chares per PE (Charm++ versions) or
        virtual ranks per PE (AMPI versions); plain MPI is always one
        rank per GPU.
    iterations / warmup:
        Measured iterations and untimed warmup iterations (the paper uses
        100 + 10; the model reaches steady state after one iteration).
    fusion:
        Kernel-fusion strategy (``"A"``/``"B"``/``"C"``; charm-d only,
        following the paper).
    cuda_graphs:
        Capture each iteration's kernels as alternating CUDA graphs
        (charm-d only).
    legacy_sync:
        Reproduce the *pre-optimization* baseline of Fig. 6: two host-device
        syncs per iteration and a single stream for all transfers and
        (un)packing kernels.
    mpi_overlap:
        Manual interior/exterior overlap in the MPI versions (paper Fig. 1's
        ``overlap`` branch; an extension experiment).
    data_mode:
        ``"modeled"`` (sizes only — any scale) or ``"functional"`` (real
        NumPy blocks — validates numerics, test-scale grids only).
    machine:
        Hardware model; defaults to Summit.
    """

    #: Registry name of the app this config class belongs to.
    APP: ClassVar[str] = ""
    #: Dimensionality of the app's grid.
    NDIM: ClassVar[int] = 0

    version: str = "charm-d"
    nodes: int = 1
    grid: tuple = ()
    odf: int = 1
    iterations: int = 10
    warmup: int = 1
    fusion: Any = FusionStrategy.NONE
    cuda_graphs: bool = False
    legacy_sync: bool = False
    mpi_overlap: bool = False
    data_mode: str = "modeled"
    machine: MachineSpec = field(default_factory=MachineSpec.summit)
    allow_large_functional: bool = False

    def __post_init__(self):
        if not type(self).APP or type(self).NDIM < 1:
            raise TypeError(
                "StencilConfig is abstract: subclasses must set APP and NDIM "
                "(use a registered app's config class)"
            )
        if self.version not in ALL_VERSIONS:
            raise ValueError(f"unknown version {self.version!r}; expected one of {ALL_VERSIONS}")
        object.__setattr__(self, "fusion", FusionStrategy.parse(self.fusion))
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if len(self.grid) != type(self).NDIM or any(g < 1 for g in self.grid):
            raise ValueError(f"bad grid {self.grid}")
        if self.odf < 1:
            raise ValueError("odf must be >= 1")
        if self.is_mpi and self.odf != 1:
            raise ValueError("MPI versions run one rank per GPU (odf must be 1)")
        if self.iterations < 1 or self.warmup < 0:
            raise ValueError("need iterations >= 1 and warmup >= 0")
        if self.fusion is not FusionStrategy.NONE and self.version != "charm-d":
            raise ValueError("kernel fusion is evaluated only with charm-d (paper §III-D)")
        if self.cuda_graphs and self.version != "charm-d":
            raise ValueError("CUDA Graphs are evaluated only with charm-d (paper §III-D)")
        if self.mpi_overlap and not self.is_mpi:
            raise ValueError("mpi_overlap applies to MPI versions")
        if self.data_mode not in ("modeled", "functional"):
            raise ValueError(f"bad data_mode {self.data_mode!r}")
        if self.data_mode == "functional" and not self.allow_large_functional:
            cells = math.prod(self.grid)
            if cells > _FUNCTIONAL_CELL_LIMIT:
                raise ValueError(
                    f"functional mode with {cells} cells would allocate real arrays; "
                    "use modeled mode or set allow_large_functional=True"
                )

    # -- derived ---------------------------------------------------------------
    @property
    def app(self) -> str:
        """Registry name of this config's app."""
        return type(self).APP

    @property
    def ndim(self) -> int:
        return type(self).NDIM

    @property
    def is_mpi(self) -> bool:
        return self.version.startswith("mpi")

    @property
    def is_charm(self) -> bool:
        return self.version.startswith("charm")

    @property
    def is_ampi(self) -> bool:
        return self.version.startswith("ampi")

    @property
    def gpu_aware(self) -> bool:
        """Device-resident halos (CUDA-aware MPI / Channel API)."""
        return self.version.endswith("-d")

    @property
    def functional(self) -> bool:
        return self.data_mode == "functional"

    @property
    def total_iterations(self) -> int:
        return self.warmup + self.iterations

    def n_pes(self) -> int:
        return self.nodes * self.machine.node.pes_per_node

    def n_blocks(self) -> int:
        return self.n_pes() * (1 if self.is_mpi else self.odf)

    def with_(self, **kwargs) -> "StencilConfig":
        """A modified copy (sweep helper)."""
        return replace(self, **kwargs)

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form, stable across processes: only numbers, strings,
        bools and lists.  The dict fully determines the run (the simulator is
        deterministic), so it doubles as the content-addressed cache identity
        (:mod:`repro.exec.cache`) and the worker-dispatch payload
        (:mod:`repro.exec.runner`).  The ``app`` name is part of the dict,
        so two apps with coincidentally equal parameters never share a cache
        key."""
        return {
            "app": type(self).APP,
            "version": self.version,
            "nodes": self.nodes,
            "grid": list(self.grid),
            "odf": self.odf,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "fusion": self.fusion.value,
            "cuda_graphs": self.cuda_graphs,
            "legacy_sync": self.legacy_sync,
            "mpi_overlap": self.mpi_overlap,
            "data_mode": self.data_mode,
            "machine": self.machine.to_dict(),
            "allow_large_functional": self.allow_large_functional,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StencilConfig":
        """Inverse of :meth:`to_dict` (revalidates via ``__post_init__``).

        ``app`` (when present) must name *this* class's app — use
        :func:`repro.apps.registry.config_from_dict` to dispatch a dict of
        unknown provenance.  Dicts written before the app field existed are
        accepted as this app's.
        """
        d = dict(d)
        app = d.pop("app", cls.APP)
        if app != cls.APP:
            raise ValueError(
                f"config dict is for app {app!r}, not {cls.APP!r} "
                "(use repro.apps.registry.config_from_dict)"
            )
        d["grid"] = tuple(d["grid"])
        d["machine"] = MachineSpec.from_dict(d["machine"])
        return cls(**d)


@dataclass
class StencilResult(AppResult):
    """Measured outcome of one stencil-app run (shared across stencil apps;
    the producing app is pinned by ``config``).  The measured fields live on
    :class:`~repro.apps.appbase.AppResult`; this subclass adds grid
    assembly.  In functional mode ``blocks`` maps block index -> interior
    array and ``residuals`` holds per-iteration max-norm deltas."""

    def assemble_grid(self, geometry) -> np.ndarray:
        """Stitch functional-mode block interiors into the global interior."""
        if self.blocks is None:
            raise ValueError("assemble_grid requires a functional-mode run")
        out = np.empty(tuple(geometry.grid), dtype=np.float64)
        for index, interior in self.blocks.items():
            offset = geometry.block_offset(index)
            dims = geometry.block_dims(index)
            window = tuple(slice(o, o + d) for o, d in zip(offset, dims))
            out[window] = interior
        return out

    def assemble_state(self) -> np.ndarray:
        """App-agnostic assembly hook (differential matrix): the stitched
        global interior for this run's own geometry."""
        from .geometry import BlockGeometry

        return self.assemble_grid(
            BlockGeometry.auto(self.config.n_blocks(), self.config.grid)
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        cfg = self.config
        extras = []
        if cfg.is_charm:
            extras.append(f"odf={cfg.odf}")
        if cfg.fusion is not FusionStrategy.NONE:
            extras.append(f"fusion={cfg.fusion.value}")
        if cfg.cuda_graphs:
            extras.append("graphs")
        if cfg.legacy_sync:
            extras.append("legacy")
        tag = f" ({', '.join(extras)})" if extras else ""
        return (
            f"{cfg.version}{tag} nodes={cfg.nodes} grid={cfg.grid}: "
            f"{self.time_per_iteration * 1e3:.3f} ms/iter, "
            f"GPU util {self.gpu_utilization * 100:.0f}%"
        )
