"""The reusable halo-exchange stencil core.

Everything the Jacobi-style apps share, parameterized by dimensionality:

* :mod:`~repro.apps.stencil.geometry` — surface-minimizing N-D block
  decomposition (:class:`BlockGeometry`);
* :mod:`~repro.apps.stencil.config` — :class:`StencilConfig` /
  :class:`StencilResult`, the per-app config base with the ``app`` name in
  its serialized (and cache-key) form;
* :mod:`~repro.apps.stencil.context` — per-run state: block data, work
  models, metrics, residual history;
* :mod:`~repro.apps.stencil.charm_app` / :mod:`~repro.apps.stencil.mpi_app`
  / :mod:`~repro.apps.stencil.ampi_app` / :mod:`~repro.apps.stencil.
  rank_program` — the three runtime frontends (paper Figs. 1, 3, 5), all
  dimension-agnostic;
* :mod:`~repro.apps.stencil.phases` — the declared phase vocabulary and
  trace classifier the observability layer consumes.

An app built on this core is one small module: subclass
:class:`StencilConfig` (name, dimensionality, default grid), pick a
boundary condition, and register an :class:`~repro.apps.registry.AppSpec` —
see ``docs/apps.md``.
"""

from .ampi_app import make_ampi_rank_class
from .charm_app import make_block_class
from .config import ALL_VERSIONS, VERSIONS, StencilConfig, StencilResult
from .context import (
    BlockData,
    MetricsCollector,
    ResidualHistory,
    StencilContext,
    default_boundary,
)
from .geometry import BlockGeometry, factor_triples, factor_tuples, partition_dims
from .mpi_app import make_rank_class
from .phases import STENCIL_PHASES, STENCIL_PHASE_KERNELS, classify_stencil_op
from .rank_program import make_rank_program

__all__ = [
    "ALL_VERSIONS",
    "VERSIONS",
    "StencilConfig",
    "StencilResult",
    "StencilContext",
    "BlockData",
    "MetricsCollector",
    "ResidualHistory",
    "default_boundary",
    "BlockGeometry",
    "factor_triples",
    "factor_tuples",
    "partition_dims",
    "STENCIL_PHASES",
    "STENCIL_PHASE_KERNELS",
    "classify_stencil_op",
    "make_block_class",
    "make_rank_class",
    "make_ampi_rank_class",
    "make_rank_program",
]
