"""Shared per-run state: geometry, per-block data, timing collection.

Everything here is generic over the app's dimensionality: block indices and
faces come from :class:`~repro.apps.stencil.geometry.BlockGeometry`, and
interior slicing uses :func:`~repro.kernels.jacobi.interior_slice`.  The
boundary condition is the only app-supplied piece of physics — it defaults
by dimensionality to the canonical hot-face problems.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Optional

import numpy as np

from ...kernels import (
    alloc_block,
    apply_boundary,
    fused_all_work,
    fused_pack_work,
    fused_unpack_work,
    hot_edge_boundary,
    hot_top_boundary,
    interior_slice,
    jacobi_update,
    pack_face,
    pack_work,
    unpack_face,
    unpack_work,
    update_work,
    interior_work,
    exterior_work,
)
from .config import StencilConfig
from .geometry import BlockGeometry

__all__ = ["StencilContext", "BlockData", "MetricsCollector", "ResidualHistory",
           "default_boundary"]


def default_boundary(ndim: int) -> Callable[..., float]:
    """The canonical hot-face test problem for ``ndim`` dimensions."""
    return hot_top_boundary if ndim == 3 else hot_edge_boundary


class ResidualHistory:
    """Per-iteration residual of the Jacobi sweep (functional mode).

    Each block records the max-norm delta ``max |out - u|`` over its own
    interior cells for every iteration; :meth:`history` combines blocks by
    ``max``.  Because every global interior cell belongs to exactly one
    block and ``max`` is an exact selection (no rounding), the combined
    history is **bitwise identical** across decompositions, schedules and
    runtimes — which is exactly what the differential validation harness
    (:mod:`repro.validate.differential`) asserts.
    """

    def __init__(self, n_blocks: int, total_iterations: int):
        self.n_blocks = n_blocks
        self.total_iterations = total_iterations
        self._deltas: dict[int, dict] = {}  # iteration -> {block index: delta}

    def record(self, block_index, iteration: int, delta: float) -> None:
        per_block = self._deltas.setdefault(iteration, {})
        key = tuple(block_index)
        if key in per_block:
            raise RuntimeError(f"block {key} recorded iteration {iteration} twice")
        per_block[key] = delta

    def history(self) -> list[float]:
        """Combined per-iteration residuals; raises if any block is missing."""
        out = []
        for it in range(self.total_iterations):
            per_block = self._deltas.get(it, {})
            if len(per_block) != self.n_blocks:
                raise RuntimeError(
                    f"iteration {it}: only {len(per_block)}/{self.n_blocks} "
                    "blocks recorded a residual"
                )
            out.append(max(per_block.values()))
        return out


class MetricsCollector:
    """Gathers per-unit iteration completion times.

    ``warmup_boundary`` is the latest time at which any unit finished the
    last warmup iteration: the measured window is ``[boundary, end]``.
    """

    #: Steady-state tail: the per-unit period is taken over (up to) this many
    #: final iterations, so startup transients and cross-unit skew cancel.
    TAIL = 6

    def __init__(self, n_units: int, warmup: int):
        self.n_units = n_units
        self.warmup = warmup
        self.warmup_boundary = 0.0
        self.last_iteration: dict[Any, int] = {}
        self._tail_times: dict[Any, deque] = {}

    def on_event(self, name: str, unit, **data) -> None:
        if name != "iter_done":
            return
        it = data["iter"]
        now = data["now"]
        key = getattr(unit, "index", None) or getattr(unit, "rank", None)
        self.last_iteration[key] = it
        if it >= self.warmup:  # warmup iterations never enter the estimate
            tail = self._tail_times.get(key)
            if tail is None:
                tail = self._tail_times[key] = deque(maxlen=self.TAIL + 1)
            tail.append(now)
        if self.warmup > 0 and it == self.warmup - 1 and now > self.warmup_boundary:
            self.warmup_boundary = now

    def time_per_iteration(self, measured_iterations: int) -> float:
        """Steady-state iteration period.

        Each unit's period is measured over its own last ``TAIL``
        iterations (self-referencing timestamps, so cross-unit skew does not
        bias the estimate and startup transients are excluded).
        """
        periods = []
        for times in self._tail_times.values():
            if len(times) >= 2:
                periods.append((times[-1] - times[0]) / (len(times) - 1))
        if not periods:
            raise RuntimeError("need at least 2 iterations to estimate a period")
        # Mean over units: halo coupling locks every unit to the same
        # long-run rate, and the mean damps per-unit pipeline oscillation
        # that a max would amplify.
        return sum(periods) / len(periods)

    def check_complete(self, total_iterations: int) -> None:
        if len(self.last_iteration) != self.n_units:
            raise RuntimeError(
                f"only {len(self.last_iteration)}/{self.n_units} units reported progress"
            )
        lagging = {k: v for k, v in self.last_iteration.items() if v != total_iterations - 1}
        if lagging:
            raise RuntimeError(f"units stopped early: {lagging}")


class BlockData:
    """Everything one block needs: geometry, work models, functional arrays."""

    def __init__(self, ctx: "StencilContext", index: tuple):
        geo = ctx.geometry
        cfg = ctx.config
        self.index = tuple(index)
        self.dims = geo.block_dims(self.index)
        self.neighbors = geo.neighbors(self.index)  # face -> neighbour index
        self.face_cells = {f: geo.face_cells(self.index, f) for f in self.neighbors}
        self.face_bytes = {f: 8 * c for f, c in self.face_cells.items()}
        # Roofline work models.
        self.update = update_work(self.dims)
        self.packs = {f: pack_work(c) for f, c in self.face_cells.items()}
        self.unpacks = {f: unpack_work(c) for f, c in self.face_cells.items()}
        cells = list(self.face_cells.values())
        self.fused_pack = fused_pack_work(cells) if cells else None
        self.fused_unpack = fused_unpack_work(cells) if cells else None
        self.fused_all = fused_all_work(self.dims, cells)
        self.interior = interior_work(self.dims)
        self.exterior = exterior_work(self.dims)
        # Device memory: two block copies + send/recv halo buffers.
        vol = math.prod(self.dims)
        self.device_bytes = 2 * 8 * vol + 2 * sum(self.face_bytes.values())
        # Functional state.
        self._inner = interior_slice(len(self.dims))
        self._functional = cfg.functional
        self._residuals = ctx.residuals
        self._iteration = 0
        if self._functional:
            self.u = alloc_block(self.dims)
            apply_boundary(self.u, ctx.boundary, geo.grid,
                           offset=geo.block_offset(self.index))
            initial = ctx.initial_state.get(self.index) if ctx.initial_state else None
            if initial is not None:
                self.u[self._inner] = initial
            self.out = self.u.copy()
            self._halos: dict = {}
        else:
            self.u = self.out = None
            self._halos = {}

    # -- functional operations (no-ops in modeled mode) -------------------------
    def f_pack_all(self) -> None:
        if self._functional:
            for face in self.neighbors:
                self._halos[face] = pack_face(self.u, face)

    def f_halo(self, face) -> Optional[np.ndarray]:
        return self._halos.get(face) if self._functional else None

    def f_unpack(self, face, data) -> None:
        if self._functional and data is not None:
            unpack_face(self.u, face, data)

    def f_update(self) -> None:
        if self._functional:
            jacobi_update(self.u, self.out)
            if self._residuals is not None:
                delta = float(np.max(np.abs(
                    self.out[self._inner] - self.u[self._inner])))
                self._residuals.record(self.index, self._iteration, delta)
            self._iteration += 1
            self.u, self.out = self.out, self.u

    def f_interior(self) -> Optional[np.ndarray]:
        if not self._functional:
            return None
        return np.ascontiguousarray(self.u[self._inner])

    # -- checkpoint/restart support (PUP idiom) ------------------------------
    def snapshot(self) -> dict:
        """Serializable state for checkpointing (``pup``)."""
        if not self._functional:
            return {"device_bytes": self.device_bytes}
        return {"interior": self.f_interior()}

    def restore(self, state: dict) -> None:
        """Re-hydrate from a snapshot (``unpup``)."""
        interior = state.get("interior")
        if interior is not None and self._functional:
            if interior.shape != tuple(self.dims):
                raise ValueError(
                    f"snapshot shape {interior.shape} != block dims {self.dims}"
                )
            self.u[self._inner] = interior


class StencilContext:
    """One stencil run's immutable context, shared by all blocks.

    ``initial_state`` (optional, functional mode): block index -> interior
    array — used to continue from a checkpoint instead of the boundary-only
    initial condition.

    ``boundary`` (optional): the global boundary condition; defaults to the
    canonical hot-face problem for the config's dimensionality.
    """

    def __init__(self, config: StencilConfig, initial_state: Optional[dict] = None,
                 boundary: Optional[Callable[..., float]] = None):
        self.config = config
        self.geometry = BlockGeometry.auto(config.n_blocks(), config.grid)
        self.boundary = boundary if boundary is not None else default_boundary(config.ndim)
        self.initial_state = initial_state
        self.metrics = MetricsCollector(config.n_pes() if config.is_mpi
                                        else config.n_blocks(), config.warmup)
        self.residuals = (ResidualHistory(config.n_blocks(), config.total_iterations)
                          if config.functional else None)

    @property
    def shape(self) -> tuple:
        return self.geometry.shape

    def max_payload_bytes(self) -> int:
        """Largest single message payload (driver hook, app-agnostic): for
        stencils, the biggest halo face."""
        return self.geometry.max_face_bytes()

    def block_data(self, index) -> BlockData:
        return BlockData(self, index)
