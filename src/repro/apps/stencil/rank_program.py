"""The shared stencil rank program (paper Fig. 1).

Both the plain-MPI and the AMPI frontends run the *same* ``main`` loop —
that is AMPI's selling point and exactly what the differential validation
harness leans on.  This module factors the program into a mixin so the two
frontends differ only in *when* device setup runs:

* plain MPI (:mod:`.mpi_app`) binds ``pe``/``gpu`` at construction, so
  :meth:`RankProgram._setup_device` runs in ``init`` (preserving the
  historical event ordering, and with it every cached result);
* AMPI (:mod:`.ampi_app`) binds ``pe``/``gpu`` only when the hosting chare
  attaches, so setup runs at the top of ``main``.

Rank-to-block assignment is the row-major inverse of
:func:`~repro.runtime.mapping.linearize`, for any dimensionality.
"""

from __future__ import annotations

from ...comm.ucx import PRIORITY_COMM, PRIORITY_COMPUTE
from ...hardware.gpu import COPY_D2H, COPY_H2D, CopyWork
from ...kernels import opposite
from ...runtime.mapping import delinearize, linearize
from .context import StencilContext

__all__ = ["make_rank_program"]


def make_rank_program(ctx: StencilContext):
    """A mixin class implementing Fig. 1 against this run's context.

    Host classes (``MpiProcess``/``AmpiProcess`` subclasses) must call
    ``_bind_block`` before communication and ``_setup_device`` before the
    first kernel launch, then drive :meth:`RankProgram._main_body`.
    """

    shape = ctx.geometry.shape

    class RankProgram:
        app = ctx

        def _bind_block(self):
            self.index = delinearize(self.rank, shape)
            self.data = ctx.block_data(self.index)
            self.update_done = None

        def _setup_device(self):
            self.gpu.malloc(self.data.device_bytes)
            self.comm_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.comm"
            )
            self.d2h_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.d2h"
            )
            self.h2d_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.h2d"
            )
            self.update_stream = self.gpu.create_stream(
                priority=PRIORITY_COMPUTE, name=f"{self.gpu.name}.upd"
            )

        def _main_body(self):
            cfg = ctx.config
            d = self.data
            idx = self.index
            device = cfg.gpu_aware
            engine = self.world.engine
            for it in range(cfg.total_iterations):
                # Post all receives first (paper Fig. 1).
                recv_reqs = {}
                for face, nbr in d.neighbors.items():
                    nbr_rank = linearize(nbr, shape)
                    recv_reqs[face] = yield self.irecv(
                        nbr_rank, d.face_bytes[face], tag=(it, face), device=device
                    )
                # Pack halos (stream-dependent on the previous update), plus
                # explicit D2H staging for the host version.
                dep = [self.update_done] if self.update_done is not None else []
                ready = []
                for face in d.neighbors:
                    p = yield self.launch(
                        self.comm_stream, d.packs[face], name=f"pack{face}", wait=dep,
                        reads=[("int", idx)], writes=[("pack", idx, face)],
                    )
                    if device:
                        ready.append(p.done)
                    else:
                        c = yield self.launch(
                            self.d2h_stream,
                            CopyWork(d.face_bytes[face], COPY_D2H),
                            name=f"d2h{face}",
                            wait=[p.done],
                            reads=[("pack", idx, face)],
                        )
                        ready.append(c.done)
                d.f_pack_all()
                if ready:
                    # Blocking cudaStreamSynchronize before sending.
                    yield self.sync(engine.all_of(ready))
                send_reqs = []
                for face, nbr in d.neighbors.items():
                    nbr_rank = linearize(nbr, shape)
                    send_reqs.append((yield self.isend(
                        nbr_rank, d.face_bytes[face], tag=(it, opposite(face)),
                        device=device, payload=d.f_halo(face),
                    )))
                interior_op = None
                if cfg.mpi_overlap:
                    # Manual overlap: interior update is independent of halos.
                    interior_op = yield self.launch(
                        self.update_stream, d.interior, name="interior",
                        reads=[("int", idx)], writes=[("int", idx)],
                    )
                # Block in MPI_Waitall until every halo moved.
                yield self.waitall(list(recv_reqs.values()) + send_reqs)
                # Unpack (+ H2D staging for the host version).
                unpack_events = []
                for face, req in recv_reqs.items():
                    waits = []
                    if not device:
                        h = yield self.launch(
                            self.h2d_stream,
                            CopyWork(d.face_bytes[face], COPY_H2D),
                            name=f"h2d{face}",
                            writes=[("gstage", idx, face)],
                        )
                        waits = [h.done]
                    op = yield self.launch(
                        self.comm_stream, d.unpacks[face], name=f"unpack{face}",
                        wait=waits,
                        reads=[("gstage", idx, face)] if not device else (),
                        writes=[("ghost", idx, face)],
                    )
                    unpack_events.append(op.done)
                    d.f_unpack(face, req.data)
                if cfg.mpi_overlap:
                    upd = yield self.launch(
                        self.update_stream, d.exterior, name="exterior",
                        wait=unpack_events + [interior_op.done],
                        reads=[("ghost", idx, f) for f in d.neighbors] + [("int", idx)],
                        writes=[("int", idx)],
                    )
                else:
                    upd = yield self.launch(
                        self.update_stream, d.update, name="update", wait=unpack_events,
                        reads=[("ghost", idx, f) for f in d.neighbors] + [("int", idx)],
                        writes=[("int", idx)],
                    )
                self.update_done = upd.done
                d.f_update()
                # Typical MPI GPU app: block until the update finishes.
                yield self.sync(self.update_done)
                self.notify("iter_done", iter=it)
            self.notify("block_done")

    return RankProgram
