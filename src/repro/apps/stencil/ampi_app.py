"""AMPI stencil frontend: the *unchanged* MPI rank program on Charm++.

The whole point of AMPI (and of the paper's future-work remark this
extension models): the Fig. 1 program from :mod:`.rank_program` runs
verbatim, but every rank is a chare-hosted *virtual* rank —

* ``odf`` virtual ranks share each PE (``vranks = n_blocks``), so the
  decomposition matches a Charm++ run at the same ``odf``;
* ``waitall``/``sync`` suspend the chare instead of spinning the CPU, so
  other virtual ranks on the PE overlap automatically.

Used by the differential validation harness to check that the same
physics falls out of all three runtimes bit-for-bit.
"""

from __future__ import annotations

from ...ampi import AmpiProcess
from .context import StencilContext
from .rank_program import make_rank_program

__all__ = ["make_ampi_rank_class"]


def make_ampi_rank_class(ctx: StencilContext):
    """A fresh virtual-rank class bound to this run's context."""

    class JacobiAmpiRank(make_rank_program(ctx), AmpiProcess):
        def init(self):
            # pe/gpu are bound only when the hosting chare attaches —
            # device setup must wait for main().
            self._bind_block()

        def main(self, msg=None):
            self._setup_device()
            yield from self._main_body()

    return JacobiAmpiRank
