"""The stencil apps' per-iteration cost phases and trace classifier.

Apps declare their phase vocabulary in their :class:`~repro.apps.registry.
AppSpec`; the observability layer (:mod:`repro.obs.timeline`) is generic
and consumes whatever the app declares.  Every stencil app (Jacobi3D,
Jacobi2D, ...) shares this vocabulary because the halo-exchange pipeline —
produce halos, stage down, move, stage up, consume, update — is the same
regardless of dimensionality.
"""

from __future__ import annotations

__all__ = ["STENCIL_PHASES", "STENCIL_PHASE_KERNELS", "classify_stencil_op"]

#: The per-iteration cost phases of a halo-exchange iteration, in pipeline
#: order (paper Figs. 3-5): produce halos, stage them down, move them,
#: stage them up, consume them, update.
STENCIL_PHASES = ("pack", "d2h", "nic", "h2d", "unpack", "update", "other")

#: Inverse of :func:`classify_stencil_op` for compute kernels: the op-name
#: prefixes belonging to each compute phase (``AppSpec.phase_kernels``),
#: so the what-if engine can target e.g. ``pack=0`` as a machine knob.
STENCIL_PHASE_KERNELS = (
    ("pack", ("pack",)),
    ("unpack", ("unpack",)),
    ("update", ("update", "interior", "exterior", "fused")),
)


def classify_stencil_op(category: str, op_name: str) -> str:
    """Map one traced operation to its cost phase.

    GPU copy engines map directly (D2H/H2D); D2D copies are the transport
    leg of same-device IPC sends and count as ``nic``.  Compute-kernel
    names follow the stencil conventions (``pack*``, ``unpack*``,
    ``update`` / ``interior`` / ``exterior`` / ``fused*``), with the
    ``graph.`` prefix of CUDA-graph nodes stripped first.
    """
    if category.startswith("gpu.copy_d2h"):
        return "d2h"
    if category.startswith("gpu.copy_h2d"):
        return "h2d"
    if category.startswith("gpu.copy_d2d"):
        return "nic"
    if category.startswith("net."):
        return "nic"
    if category.startswith("gpu.compute"):
        name = op_name
        if name.startswith("graph."):
            name = name[len("graph."):]
        if name.startswith("pack"):
            return "pack"
        if name.startswith("unpack"):
            return "unpack"
        if name.startswith(("update", "interior", "exterior", "fused")):
            return "update"
        return "other"
    return "other"
