"""N-dimensional grid decomposition for the stencil core.

The paper decomposes the global grid "in a way that minimizes the aggregate
surface area, which is tied to communication volume" (§IV-A).
:func:`partition_dims` enumerates all factorizations of the part count into
one factor per axis and picks the one with minimal total exposed surface;
:class:`BlockGeometry` then answers every per-block question the apps need:
block dims (with remainders spread), neighbours, face sizes, offsets.

Everything is generic over the dimensionality of ``grid`` — the same code
drives the 3D (paper) and 2D (second registered workload) Jacobi apps.
:func:`factor_triples` remains as the historical 3D entry point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional

from ...kernels.jacobi import faces_for

__all__ = ["factor_tuples", "factor_triples", "partition_dims", "BlockGeometry"]


def factor_tuples(n: int, k: int) -> Iterator[tuple]:
    """All ordered ``k``-tuples of positive factors with product ``n``,
    lexicographic order."""
    if n < 1:
        raise ValueError("n must be positive")
    if k < 1:
        raise ValueError("k must be positive")
    if k == 1:
        yield (n,)
        return
    for a in range(1, n + 1):
        if n % a:
            continue
        for rest in factor_tuples(n // a, k - 1):
            yield (a,) + rest


def factor_triples(n: int) -> Iterator[tuple]:
    """All ordered triples ``(a, b, c)`` with ``a*b*c == n``."""
    return factor_tuples(n, 3)


@lru_cache(maxsize=1024)
def partition_dims(n_parts: int, grid: tuple) -> tuple:
    """The per-axis split of ``grid`` into ``n_parts`` blocks that minimizes
    total inter-block surface area (communication volume).

    Ties break toward the lexicographically smallest tuple for
    reproducibility.  Parts never exceed the grid cells on an axis.
    """
    ndim = len(grid)
    best: Optional[tuple] = None
    for parts in factor_tuples(n_parts, ndim):
        if any(p > g for p, g in zip(parts, grid)):
            continue
        # Internal surface: (p_a - 1) cut planes per axis, each the product
        # of the other axes' extents ((px-1)*gy*gz + ... in 3D).
        surface = 0
        for axis in range(ndim):
            plane = 1
            for a in range(ndim):
                if a != axis:
                    plane *= grid[a]
            surface += (parts[axis] - 1) * plane
        key = (surface, parts)
        if best is None or key < best:
            best = key
    if best is None:
        raise ValueError(f"cannot split grid {grid} into {n_parts} parts")
    return best[1]


def _axis_split(cells: int, parts: int) -> list[int]:
    """Split ``cells`` into ``parts`` sizes differing by at most one."""
    base, extra = divmod(cells, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


@dataclass(frozen=True)
class BlockGeometry:
    """Geometry of a ``parts``-way block decomposition of ``grid``."""

    grid: tuple
    parts: tuple

    @classmethod
    def auto(cls, n_parts: int, grid: tuple) -> "BlockGeometry":
        """Surface-minimizing decomposition into ``n_parts`` blocks."""
        return cls(tuple(grid), partition_dims(n_parts, tuple(grid)))

    def __post_init__(self):
        if len(self.grid) != len(self.parts) or not self.grid:
            raise ValueError(f"cannot split {self.grid} as {self.parts}")
        for g, p in zip(self.grid, self.parts):
            if p < 1 or g < p:
                raise ValueError(f"cannot split {self.grid} as {self.parts}")

    @property
    def ndim(self) -> int:
        return len(self.grid)

    @property
    def faces(self) -> tuple:
        """Canonical face order for this dimensionality."""
        return faces_for(self.ndim)

    @property
    def n_blocks(self) -> int:
        total = 1
        for p in self.parts:
            total *= p
        return total

    @property
    def shape(self) -> tuple:
        return self.parts

    def indices(self) -> Iterator[tuple]:
        yield from itertools.product(*(range(p) for p in self.parts))

    def block_dims(self, index: tuple) -> tuple:
        """Interior cell counts of one block (remainders spread low-first)."""
        return tuple(
            _axis_split(self.grid[a], self.parts[a])[index[a]]
            for a in range(self.ndim)
        )

    def block_offset(self, index: tuple) -> tuple:
        """Global coordinate of the block's ghost origin (cell ``(0,...,0)``
        of the ghosted local array), in global ghost-array coordinates."""
        out = []
        for a in range(self.ndim):
            sizes = _axis_split(self.grid[a], self.parts[a])
            out.append(sum(sizes[: index[a]]))
        return tuple(out)

    def neighbor(self, index: tuple, face) -> Optional[tuple]:
        """Neighbouring block index across ``face`` (None at domain edge)."""
        axis, side = face
        moved = list(index)
        moved[axis] += side
        if not 0 <= moved[axis] < self.parts[axis]:
            return None
        return tuple(moved)

    def neighbors(self, index: tuple) -> dict:
        """``{face: neighbor_index}`` for the faces that have neighbours."""
        out = {}
        for face in self.faces:
            n = self.neighbor(index, face)
            if n is not None:
                out[face] = n
        return out

    def face_cells(self, index: tuple, face) -> int:
        """Cells in the halo exchanged across ``face`` (cross-section size).

        Identical for both sides of the face: neighbours differ only along
        ``face``'s axis, and the cross-section axes split identically.
        """
        axis, _ = face
        dims = self.block_dims(index)
        area = 1
        for a in range(self.ndim):
            if a != axis:
                area *= dims[a]
        return area

    def max_face_bytes(self, bytes_per_cell: int = 8) -> int:
        """Largest halo message in the whole decomposition (protocol driver)."""
        best = 0
        for index in self.indices():
            for face in self.faces:
                if self.neighbor(index, face) is not None:
                    best = max(best, self.face_cells(index, face) * bytes_per_cell)
        return best

    def total_cells(self) -> int:
        total = 1
        for g in self.grid:
            total *= g
        return total
