"""MPI stencil frontend (paper Fig. 1), host-staging and CUDA-aware.

One rank per GPU.  The default flow is the non-overlapping variant the
paper evaluates: post receives, pack (+stage), **block** on the stream
sync, send, **block** in ``MPI_Waitall``, unpack, update, block again.

``mpi_overlap=True`` enables Fig. 1's manual-overlap branch as an
extension: the interior update is launched while halo exchanges are in
flight, and only the exterior update waits for them.

The loop itself lives in :mod:`.rank_program` — the identical program runs
under AMPI (:mod:`.ampi_app`), which is what the differential validation
harness compares against.
"""

from __future__ import annotations

from ...mpi import MpiProcess
from .context import StencilContext
from .rank_program import make_rank_program

__all__ = ["make_rank_class"]


def make_rank_class(ctx: StencilContext):
    """A fresh rank class bound to this run's context."""

    class JacobiRank(make_rank_program(ctx), MpiProcess):
        def init(self):
            # pe/gpu are bound at construction: device setup happens here,
            # preserving the historical event ordering (and cached results).
            self._bind_block()
            self._setup_device()

        def main(self, msg=None):
            yield from self._main_body()

    return JacobiRank
