"""Charm++ stencil frontend (paper Fig. 3 / Fig. 5), host-staging and
GPU-aware.

Each block is a chare.  The per-iteration SDAG flow (optimized baseline,
§III-C):

1. *Produce halos*: packing kernels on the high-priority comm stream,
   stream-dependent on the previous Jacobi update (no host sync);
   host-staging adds D2H copies on a dedicated high-priority stream.
2. *One host-device sync* (HAPI) before the halo exchange.
3. *Exchange*: ``recvHalo`` entry messages (host-staging) or Channel-API
   device sends/receives (GPU-aware), matched by iteration reference
   number.
4. *Consume*: unpacking (plus H2D for host-staging) as each halo arrives —
   overlapping with other chares' work — then the update kernel on the
   low-priority stream.

The ``legacy_sync`` flag reproduces the Fig. 6 "before optimizations"
baseline: a second host-device sync after the update and a single stream
for every copy and (un)packing kernel.

Kernel fusion (A/B/C) and CUDA Graphs follow §III-D and apply to the
GPU-aware version only, as in the paper.

The flow is dimension-agnostic: faces, neighbour sets and kernel costs all
come from the run's :class:`~repro.apps.stencil.context.StencilContext`, so
the same chare class drives Jacobi3D and Jacobi2D.
"""

from __future__ import annotations

from ...comm.ucx import PRIORITY_COMM, PRIORITY_COMPUTE
from ...hardware.gpu import COPY_D2H, COPY_H2D, CopyWork
from ...hardware.graphs import CudaGraph
from ...kernels import opposite
from ...runtime import Chare
from .context import StencilContext

__all__ = ["make_block_class"]


def make_block_class(ctx: StencilContext):
    """A fresh chare class bound to this run's context (no shared state
    between runs)."""

    class JacobiBlock(Chare):
        app = ctx

        def init(self):
            cfg = ctx.config
            self.data = ctx.block_data(self.index)
            self.gpu.malloc(self.data.device_bytes)
            self.init_streams()
            self.update_done = None

        def init_streams(self):
            """Create per-chare streams/graphs on the current GPU (also used
            after migration)."""
            cfg = ctx.config
            # Streams: communication work outranks the bulk update kernel.
            self.comm_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.comm{self.index}"
            )
            if cfg.legacy_sync:
                # Pre-optimization baseline: one stream for packs AND copies.
                self.d2h_stream = self.comm_stream
                self.h2d_stream = self.comm_stream
            else:
                self.d2h_stream = self.gpu.create_stream(
                    priority=PRIORITY_COMM, name=f"{self.gpu.name}.d2h{self.index}"
                )
                self.h2d_stream = self.gpu.create_stream(
                    priority=PRIORITY_COMM, name=f"{self.gpu.name}.h2d{self.index}"
                )
            self.update_stream = self.gpu.create_stream(
                priority=PRIORITY_COMPUTE, name=f"{self.gpu.name}.upd{self.index}"
            )
            self.graph_execs = self._build_graphs() if cfg.cuda_graphs else None

        # -- graphs -----------------------------------------------------------
        def _build_graphs(self):
            """Two alternating executable graphs (swapped in/out pointers, so
            no per-iteration node updates are needed — §III-D2)."""
            d = self.data
            fusion = ctx.config.fusion
            execs = []
            for _swap in range(2):
                g = CudaGraph()
                if fusion.unpacks_fused and d.fused_unpack is not None:
                    unpack_ids = [g.add(d.fused_unpack, name="unpack*")]
                else:
                    unpack_ids = [g.add(d.unpacks[f], name=f"unpack{f}") for f in d.neighbors]
                if fusion.all_in_one:
                    # Strategy C inside a graph degenerates to one node.
                    g = CudaGraph()
                    g.add(d.fused_all, name="fusedC")
                    execs.append(g.instantiate(self.gpu))
                    continue
                upd = g.add(d.update, deps=unpack_ids, name="update")
                if fusion.packs_fused and d.fused_pack is not None:
                    g.add(d.fused_pack, deps=[upd], name="pack*")
                else:
                    for f in d.neighbors:
                        g.add(d.packs[f], deps=[upd], name=f"pack{f}")
                execs.append(g.instantiate(self.gpu))
            return execs

        # -- adaptivity hooks (migration / checkpointing) ----------------------
        def on_migrate(self):
            """Re-create device-side state on the new GPU after migration."""
            self.gpu.malloc(self.data.device_bytes)
            self.init_streams()

        def pup(self):
            return self.data.snapshot()

        def unpup(self, state):
            self.data.restore(state)

        # -- entry point ---------------------------------------------------------
        def run(self, msg):
            if ctx.config.gpu_aware:
                yield from self._run_device()
            else:
                yield from self._run_host()

        # -- host-staging version (Charm-H) -----------------------------------------
        def _run_host(self):
            cfg = ctx.config
            d = self.data
            idx = self.index
            for it in range(cfg.total_iterations):
                dep = [self.update_done] if self.update_done is not None else []
                staged = []
                for face in d.neighbors:
                    p = yield self.launch(
                        self.comm_stream, d.packs[face], name=f"pack{face}", wait=dep,
                        reads=[("int", idx)], writes=[("pack", idx, face)],
                    )
                    c = yield self.launch(
                        self.d2h_stream,
                        CopyWork(d.face_bytes[face], COPY_D2H),
                        name=f"d2h{face}",
                        wait=[p.done],
                        reads=[("pack", idx, face)],
                    )
                    staged.append(c.done)
                d.f_pack_all()
                if staged:
                    # The single host-device sync before the halo exchange.
                    yield self.wait_all(staged)
                for face, nbr in d.neighbors.items():
                    self.send(
                        nbr, "recvHalo", ref=it, data_bytes=d.face_bytes[face],
                        payload=(opposite(face), d.f_halo(face)),
                    )
                unpack_events = []
                for _ in range(len(d.neighbors)):
                    m = yield self.when("recvHalo", ref=it)
                    face, halo = m.payload
                    h = yield self.launch(
                        self.h2d_stream,
                        CopyWork(d.face_bytes[face], COPY_H2D),
                        name=f"h2d{face}",
                        writes=[("gstage", idx, face)],
                    )
                    u = yield self.launch(
                        self.comm_stream, d.unpacks[face], name=f"unpack{face}",
                        wait=[h.done],
                        reads=[("gstage", idx, face)],
                        writes=[("ghost", idx, face)],
                    )
                    unpack_events.append(u.done)
                    d.f_unpack(face, halo)
                upd = yield self.launch(
                    self.update_stream, d.update, name="update", wait=unpack_events,
                    reads=[("ghost", idx, f) for f in d.neighbors] + [("int", idx)],
                    writes=[("int", idx)],
                )
                self.update_done = upd.done
                d.f_update()
                if cfg.legacy_sync:
                    # The redundant second sync the optimization removed.
                    yield self.wait(self.update_done)
                self.notify_when(self.update_done, "iter_done", iter=it)
            yield self.wait(self.update_done)
            self.notify("block_done")

        # -- GPU-aware version (Charm-D, Channel API) ----------------------------------
        def _run_device(self):
            cfg = ctx.config
            d = self.data
            idx = self.index
            fusion = cfg.fusion
            n_nbrs = len(d.neighbors)
            for it in range(cfg.total_iterations):
                # 1. ensure halos present in device send buffers
                if cfg.cuda_graphs:
                    if it == 0:
                        yield from self._initial_packs()
                    else:
                        yield self.wait(self.update_done)  # graph packed them
                elif fusion.all_in_one:
                    if it == 0:
                        yield from self._initial_packs()
                    else:
                        yield self.wait(self.update_done)  # fused kernel packed them
                else:
                    dep = [self.update_done] if self.update_done is not None else []
                    events = []
                    if fusion.packs_fused and d.fused_pack is not None:
                        op = yield self.launch(
                            self.comm_stream, d.fused_pack, name="pack*", wait=dep,
                            reads=[("int", idx)],
                            writes=[("pack", idx, f) for f in d.neighbors],
                        )
                        events.append(op.done)
                    else:
                        for face in d.neighbors:
                            op = yield self.launch(
                                self.comm_stream, d.packs[face], name=f"pack{face}",
                                wait=dep,
                                reads=[("int", idx)],
                                writes=[("pack", idx, face)],
                            )
                            events.append(op.done)
                    if events:
                        yield self.wait_all(events)
                d.f_pack_all()
                # 2. two-sided device exchange
                for face, nbr in d.neighbors.items():
                    ch = self.channel_to(nbr)
                    ch.send(d.face_bytes[face], mailbox="ch_evt", ref=it,
                            payload=d.f_halo(face), note=("sent", face))
                    ch.recv(d.face_bytes[face], mailbox="ch_evt", ref=it,
                            note=("recv", face))
                # 3. all 2x callbacks (Fig. 5); unpack as receives arrive
                unpack_events = []
                for _ in range(2 * n_nbrs):
                    m = yield self.when("ch_evt", ref=it)
                    (kind, face), halo = m.payload
                    if kind != "recv":
                        continue
                    d.f_unpack(face, halo)
                    if not cfg.cuda_graphs and not fusion.unpacks_fused:
                        op = yield self.launch(
                            self.comm_stream, d.unpacks[face], name=f"unpack{face}",
                            writes=[("ghost", idx, face)],
                        )
                        unpack_events.append(op.done)
                # 4. update (+ fused / graph variants)
                if cfg.cuda_graphs:
                    self.update_done = yield self.launch_graph(
                        self.graph_execs[it % 2], priority=PRIORITY_COMPUTE
                    )
                elif fusion.all_in_one:
                    op = yield self.launch(
                        self.update_stream, d.fused_all, name="fusedC",
                        reads=[("int", idx)],
                        writes=[("int", idx)] + [("pack", idx, f) for f in d.neighbors],
                    )
                    self.update_done = op.done
                else:
                    if fusion.unpacks_fused and n_nbrs and d.fused_unpack is not None:
                        op = yield self.launch(
                            self.comm_stream, d.fused_unpack, name="unpack*",
                            writes=[("ghost", idx, f) for f in d.neighbors],
                        )
                        unpack_events = [op.done]
                    upd = yield self.launch(
                        self.update_stream, d.update, name="update", wait=unpack_events,
                        reads=[("ghost", idx, f) for f in d.neighbors] + [("int", idx)],
                        writes=[("int", idx)],
                    )
                    self.update_done = upd.done
                d.f_update()
                self.notify_when(self.update_done, "iter_done", iter=it)
            yield self.wait(self.update_done)
            self.notify("block_done")

        def _initial_packs(self):
            """Iteration-0 halo production for fused/graph modes."""
            d = self.data
            if not d.neighbors:
                return
            if d.fused_pack is not None:
                op = yield self.launch(
                    self.comm_stream, d.fused_pack, name="pack0*",
                    reads=[("int", self.index)],
                    writes=[("pack", self.index, f) for f in d.neighbors],
                )
                yield self.wait(op.done)

    return JacobiBlock
