"""Backward-compatible entry point for grid decomposition.

The decomposition machinery is dimension-generic and lives in
:mod:`repro.apps.stencil.geometry`; this module keeps the historical
import path alive.
"""

from __future__ import annotations

from .stencil.geometry import (
    BlockGeometry,
    factor_triples,
    factor_tuples,
    partition_dims,
)

__all__ = ["factor_triples", "factor_tuples", "partition_dims", "BlockGeometry"]
