"""3D grid decomposition.

The paper decomposes the global grid "in a way that minimizes the aggregate
surface area, which is tied to communication volume" (§IV-A).
:func:`partition_dims` enumerates all factorizations of the part count into
``(px, py, pz)`` and picks the one with minimal total exposed surface;
:class:`BlockGeometry` then answers every per-block question the apps need:
block dims (with remainders spread), neighbours, face sizes, offsets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional

from ..kernels.jacobi import FACES, opposite

__all__ = ["factor_triples", "partition_dims", "BlockGeometry"]


def factor_triples(n: int) -> Iterator[tuple[int, int, int]]:
    """All ordered triples ``(a, b, c)`` with ``a*b*c == n``."""
    if n < 1:
        raise ValueError("n must be positive")
    for a in range(1, n + 1):
        if n % a:
            continue
        m = n // a
        for b in range(1, m + 1):
            if m % b:
                continue
            yield (a, b, m // b)


@lru_cache(maxsize=1024)
def partition_dims(n_parts: int, grid: tuple[int, int, int]) -> tuple[int, int, int]:
    """The ``(px, py, pz)`` split of ``grid`` into ``n_parts`` blocks that
    minimizes total inter-block surface area (communication volume).

    Ties break toward the lexicographically smallest triple for
    reproducibility.  Parts never exceed the grid cells on an axis.
    """
    gx, gy, gz = grid
    best: Optional[tuple[float, tuple[int, int, int]]] = None
    for px, py, pz in factor_triples(n_parts):
        if px > gx or py > gy or pz > gz:
            continue
        bx, by, bz = gx / px, gy / py, gz / pz
        # Internal surface: (px-1) cut planes of gy*gz cells each, etc.
        surface = (px - 1) * gy * gz + (py - 1) * gx * gz + (pz - 1) * gx * gy
        key = (surface, (px, py, pz))
        if best is None or key < best:
            best = key
    if best is None:
        raise ValueError(f"cannot split grid {grid} into {n_parts} parts")
    return best[1]


def _axis_split(cells: int, parts: int) -> list[int]:
    """Split ``cells`` into ``parts`` sizes differing by at most one."""
    base, extra = divmod(cells, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


@dataclass(frozen=True)
class BlockGeometry:
    """Geometry of a ``parts``-way block decomposition of ``grid``."""

    grid: tuple[int, int, int]
    parts: tuple[int, int, int]

    @classmethod
    def auto(cls, n_parts: int, grid: tuple[int, int, int]) -> "BlockGeometry":
        """Surface-minimizing decomposition into ``n_parts`` blocks."""
        return cls(tuple(grid), partition_dims(n_parts, tuple(grid)))

    def __post_init__(self):
        for g, p in zip(self.grid, self.parts):
            if p < 1 or g < p:
                raise ValueError(f"cannot split {self.grid} as {self.parts}")

    @property
    def n_blocks(self) -> int:
        px, py, pz = self.parts
        return px * py * pz

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.parts

    def indices(self) -> Iterator[tuple[int, int, int]]:
        yield from itertools.product(*(range(p) for p in self.parts))

    def block_dims(self, index: tuple[int, int, int]) -> tuple[int, int, int]:
        """Interior cell counts of one block (remainders spread low-first)."""
        return tuple(
            _axis_split(self.grid[a], self.parts[a])[index[a]] for a in range(3)
        )  # type: ignore[return-value]

    def block_offset(self, index: tuple[int, int, int]) -> tuple[int, int, int]:
        """Global coordinate of the block's ghost origin (cell (0,0,0) of
        the ghosted local array), in global ghost-array coordinates."""
        out = []
        for a in range(3):
            sizes = _axis_split(self.grid[a], self.parts[a])
            out.append(sum(sizes[: index[a]]))
        return tuple(out)  # type: ignore[return-value]

    def neighbor(self, index: tuple[int, int, int], face) -> Optional[tuple[int, int, int]]:
        """Neighbouring block index across ``face`` (None at domain edge)."""
        axis, side = face
        moved = list(index)
        moved[axis] += side
        if not 0 <= moved[axis] < self.parts[axis]:
            return None
        return tuple(moved)  # type: ignore[return-value]

    def neighbors(self, index: tuple[int, int, int]) -> dict:
        """``{face: neighbor_index}`` for the faces that have neighbours."""
        out = {}
        for face in FACES:
            n = self.neighbor(index, face)
            if n is not None:
                out[face] = n
        return out

    def face_cells(self, index: tuple[int, int, int], face) -> int:
        """Cells in the halo exchanged across ``face`` (cross-section area).

        Identical for both sides of the face: neighbours differ only along
        ``face``'s axis, and the cross-section axes split identically.
        """
        axis, _ = face
        dims = self.block_dims(index)
        area = 1
        for a in range(3):
            if a != axis:
                area *= dims[a]
        return area

    def max_face_bytes(self, bytes_per_cell: int = 8) -> int:
        """Largest halo message in the whole decomposition (protocol driver)."""
        best = 0
        for index in self.indices():
            for face in FACES:
                if self.neighbor(index, face) is not None:
                    best = max(best, self.face_cells(index, face) * bytes_per_cell)
        return best

    def total_cells(self) -> int:
        gx, gy, gz = self.grid
        return gx * gy * gz
