"""AMPI allreduce frontend: the *unchanged* MPI rank program on Charm++,
with ``odf`` virtual ranks per PE.  Virtual ranks blocked in a chunk wait
suspend, letting co-located ranks drive their own rounds — latency hiding
for the collective without touching the program."""

from __future__ import annotations

from ...ampi import AmpiProcess
from .context import AllreduceContext
from .rank_program import make_allreduce_rank_program

__all__ = ["make_allreduce_ampi_rank_class"]


def make_allreduce_ampi_rank_class(ctx: AllreduceContext):
    """A fresh virtual-rank class bound to this run's context."""

    class AllreduceAmpiRank(make_allreduce_rank_program(ctx), AmpiProcess):
        def init(self):
            # pe/gpu are bound only when the hosting chare attaches —
            # device setup must wait for main().
            self._bind_unit()

        def main(self, msg=None):
            self._setup_device()
            yield from self._main_body()

    return AllreduceAmpiRank
