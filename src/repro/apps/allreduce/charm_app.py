"""Charm++ allreduce frontend: one chare per unit replaying the shared
round schedule.

Each round posts all of its chunk receives first, then issues sends (each
gated only on the local fold kernel that produced the outgoing chunk), then
folds arriving chunks with per-chunk kernels — so chunk ``c+1``'s transfer
rides under chunk ``c``'s fold, which is the whole point of the pipelined
variant.  charm-h stages every chunk through host memory (D2H before the
send, H2D before the fold); charm-d moves device-resident chunks over the
Channel API with ``("r"/"s", iter, round, chunk)`` references, posting
receives in the sender's production order so per-pair FIFO matching holds.
"""

from __future__ import annotations

from ...comm.ucx import PRIORITY_COMM, PRIORITY_COMPUTE
from ...hardware.gpu import COPY_D2H, COPY_H2D, CopyWork
from ...runtime import Chare
from .context import AllreduceContext

__all__ = ["make_allreduce_block_class"]


def make_allreduce_block_class(ctx: AllreduceContext):
    """A fresh chare class bound to this run's context."""

    class AllreduceUnit(Chare):
        app = ctx

        def init(self):
            self.u = self.index[0]
            self.data = ctx.unit_data(self.u)
            # Every (segment, chunk) slot of this unit's vector that the
            # round schedule touches — the init kernel (re)writes them all.
            self.vec_keys = sorted({
                ("vec", self.u, seg, c)
                for step in ctx.round_steps
                for lst in (step.sends.get(self.u, ()),
                            step.recvs.get(self.u, ()))
                for _peer, seg, c, _lo, _hi in lst
            })
            self.iter_trigger = None
            self.gpu.malloc(ctx.unit_device_bytes(self.u))
            self.red_stream = self.gpu.create_stream(
                priority=PRIORITY_COMPUTE, name=f"{self.gpu.name}.red{self.index}"
            )
            self.d2h_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.d2h{self.index}"
            )
            self.h2d_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.h2d{self.index}"
            )

        def _finish_iter(self, engine, t, iter_events):
            """Notify ``iter_done`` once iterations 0..t have fully drained
            (chained trigger: fold kernels of iteration t can complete after
            iteration t+1 was issued, and the metrics collector needs
            per-unit notifications monotone in ``t``)."""
            self.data.f_finish_iter(t)
            if self.iter_trigger is not None:
                iter_events = [self.iter_trigger, *iter_events]
            if iter_events:
                trigger = engine.all_of(iter_events)
                self.notify_when(trigger, "iter_done", iter=t)
                self.iter_trigger = trigger
            else:
                self.notify("iter_done", iter=t)

        def run(self, msg):
            if ctx.config.gpu_aware:
                yield from self._run_device()
            else:
                yield from self._run_host()

        # -- host-staging version (charm-h) --------------------------------
        def _run_host(self):
            engine = self.runtime.engine
            for t in range(ctx.config.total_iterations):
                self.data.f_begin_iter(t)
                init = yield self.launch(self.red_stream, ctx.init_work(),
                                         name="init", writes=self.vec_keys)
                seg_ready = {}  # (seg, chunk) -> last kernel writing it
                iter_events = [init.done]
                for ridx, step in enumerate(ctx.round_steps):
                    for dest, seg, c, lo, hi in step.sends.get(self.u, ()):
                        dep = seg_ready.get((seg, c), init.done)
                        cop = yield self.launch(
                            self.d2h_stream,
                            CopyWork(8 * (hi - lo), COPY_D2H),
                            name=f"d2h.{ridx}.{c}",
                            wait=[dep],
                            reads=[("vec", self.u, seg, c)],
                        )
                        yield self.wait(cop.done)
                        self.send((dest,), "recvChunk", ref=(t, ridx, c),
                                  data_bytes=8 * (hi - lo),
                                  payload=self.data.f_chunk_payload(lo, hi))
                    for src, seg, c, lo, hi in step.recvs.get(self.u, ()):
                        m = yield self.when("recvChunk", ref=(t, ridx, c))
                        h = yield self.launch(
                            self.h2d_stream,
                            CopyWork(8 * (hi - lo), COPY_H2D),
                            name=f"h2d.{ridx}.{c}",
                        )
                        waits = [h.done, seg_ready.get((seg, c), init.done)]
                        op = yield self.launch(
                            self.red_stream, ctx.chunk_work(step.kind, lo, hi),
                            name=ctx.kernel_name(step, c), wait=waits,
                            reads=[("vec", self.u, seg, c)],
                            writes=[("vec", self.u, seg, c)],
                        )
                        self.data.f_apply(step.kind, lo, hi, m.payload)
                        seg_ready[(seg, c)] = op.done
                        iter_events.append(op.done)
                self._finish_iter(engine, t, iter_events)
            if self.iter_trigger is not None:
                yield self.wait(self.iter_trigger)
            self.notify("block_done")

        # -- GPU-aware version (charm-d, Channel API) ----------------------
        def _run_device(self):
            engine = self.runtime.engine
            for t in range(ctx.config.total_iterations):
                self.data.f_begin_iter(t)
                init = yield self.launch(self.red_stream, ctx.init_work(),
                                         name="init", writes=self.vec_keys)
                seg_ready = {}
                iter_events = [init.done]
                pending_sends = []
                for ridx, step in enumerate(ctx.round_steps):
                    for src, seg, c, lo, hi in step.recvs.get(self.u, ()):
                        ch = self.channel_to((src,))
                        ch.recv(8 * (hi - lo), mailbox="ch_evt",
                                ref=("r", t, ridx, c), note=("recv", c))
                    for dest, seg, c, lo, hi in step.sends.get(self.u, ()):
                        # cudaStreamSynchronize on the kernel that produced
                        # the outgoing chunk, then a device-resident send.
                        yield self.wait(seg_ready.get((seg, c), init.done))
                        ch = self.channel_to((dest,))
                        ch.send(8 * (hi - lo), mailbox="ch_evt",
                                ref=("s", t, ridx, c),
                                payload=self.data.f_chunk_payload(lo, hi),
                                note=("sent", c))
                        pending_sends.append(("s", t, ridx, c))
                    for src, seg, c, lo, hi in step.recvs.get(self.u, ()):
                        m = yield self.when("ch_evt", ref=("r", t, ridx, c))
                        _note, payload = m.payload
                        waits = [seg_ready.get((seg, c), init.done)]
                        op = yield self.launch(
                            self.red_stream, ctx.chunk_work(step.kind, lo, hi),
                            name=ctx.kernel_name(step, c), wait=waits,
                            reads=[("vec", self.u, seg, c)],
                            writes=[("vec", self.u, seg, c)],
                        )
                        self.data.f_apply(step.kind, lo, hi, payload)
                        seg_ready[(seg, c)] = op.done
                        iter_events.append(op.done)
                # Consume every send-completion deposit before the next
                # iteration reuses the (iter, round, chunk) reference space.
                for ref in pending_sends:
                    yield self.when("ch_evt", ref=ref)
                self._finish_iter(engine, t, iter_events)
            if self.iter_trigger is not None:
                yield self.wait(self.iter_trigger)
            self.notify("block_done")

    return AllreduceUnit
