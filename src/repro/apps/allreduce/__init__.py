"""Ring/tree allreduce collectives over the simulated network.

The fourth registered workload: not a stencil, not a task DAG, but the
communication pattern that dominates data-parallel training and many
solvers.  Ring (bandwidth-optimal reduce-scatter + allgather) and binomial
tree (latency-optimal) algorithms replay the same round schedule from
:mod:`.context` across all six frontends, with pipelined double-buffered
chunking (``chunks > 1``) overlapping chunk transfers with per-chunk fold
kernels.  Functional mode reduces *integer-valued* float64 vectors, so
ring, tree, chunked and serial reductions are all bit-identical (see
:class:`.context.AllreduceData`) and the differential matrix can compare
algorithms against each other, not just frontends.
"""

from ...hardware.specs import MachineSpec
from ..registry import AppSpec, register
from .ampi_app import make_allreduce_ampi_rank_class
from .charm_app import make_allreduce_block_class
from .config import AllreduceConfig, AllreduceResult
from .context import AllreduceContext, AllreduceData, reference_allreduce
from .mpi_app import make_allreduce_rank_class
from .phases import ALLREDUCE_PHASES, ALLREDUCE_PHASE_KERNELS, classify_allreduce_op

__all__ = [
    "ALLREDUCE_PHASES",
    "AllreduceConfig",
    "AllreduceContext",
    "AllreduceData",
    "AllreduceResult",
    "SPEC",
    "classify_allreduce_op",
    "reference_allreduce",
]


def _differential_base() -> AllreduceConfig:
    """A functional-mode reduction small enough to materialize every unit's
    vector, big enough that segments and chunks are all non-empty."""
    return AllreduceConfig(
        version="charm-d",
        nodes=1,
        odf=1,
        elements=512,
        algorithm="ring",
        chunks=2,
        iterations=3,
        warmup=1,
        data_mode="functional",
        machine=MachineSpec.small_debug(),
    )


def _differential_cases(base: AllreduceConfig, quick: bool) -> list:
    """Allreduce's own matrix.  The reduced vector is the sum over *units*,
    so every case must hold the unit count fixed — all cases run odf=1 and
    the interesting axes are algorithm and chunk count instead (exact
    integer arithmetic makes ring ≡ tree ≡ chunked bitwise)."""
    base = base.with_(version="charm-d", odf=1)
    cases = [
        ("charm-d", base),
        ("charm-h", base.with_(version="charm-h")),
        ("ampi-d", base.with_(version="ampi-d")),
        ("ampi-h", base.with_(version="ampi-h")),
        ("mpi-d", base.with_(version="mpi-d")),
        ("mpi-h", base.with_(version="mpi-h")),
    ]
    if not quick:
        cases += [
            ("charm-d tree", base.with_(algorithm="tree")),
            ("charm-d ring chunks=4", base.with_(algorithm="ring", chunks=4)),
            ("charm-d tree chunks=4", base.with_(algorithm="tree", chunks=4)),
            ("mpi-d tree", base.with_(version="mpi-d", algorithm="tree")),
            ("charm-d ring chunks=1", base.with_(chunks=1)),
        ]
    return cases


def _golden_configs() -> dict:
    """The canonical allreduce configs pinned under ``tests/golden/``."""
    base = AllreduceConfig(
        nodes=1, elements=1 << 14, iterations=3, warmup=1,
        machine=MachineSpec.small_debug(),
    )
    return {
        "allreduce-charm-d-ring": base.with_(
            version="charm-d", algorithm="ring", chunks=2),
        "allreduce-mpi-h-tree": base.with_(
            version="mpi-h", algorithm="tree", chunks=1),
    }


SPEC = register(AppSpec(
    name="allreduce",
    description="ring/tree allreduce collective with pipelined chunking",
    config_cls=AllreduceConfig,
    result_cls=AllreduceResult,
    make_context=AllreduceContext,
    make_block_class=make_allreduce_block_class,
    make_rank_class=make_allreduce_rank_class,
    make_ampi_rank_class=make_allreduce_ampi_rank_class,
    phases=ALLREDUCE_PHASES,
    classify_op=classify_allreduce_op,
    phase_kernels=ALLREDUCE_PHASE_KERNELS,
    differential_base=_differential_base,
    golden_configs=_golden_configs,
    differential_cases=_differential_cases,
))
