"""The shared allreduce rank program (plain MPI and AMPI).

The same round schedule as the Charm++ frontend, MPI-style: every chunk
receive of a round is posted nonblocking up front, outgoing chunks are
sent with ``isend`` after a stream sync on the fold kernel that produced
them (plus D2H staging for the host versions), and arriving chunks are
claimed in order with blocking ``wait`` and folded by per-chunk kernels.
Deadlock-freedom is by induction over rounds: a round's sends depend only
on local kernels fed by *earlier* rounds, never on this round's receives.
"""

from __future__ import annotations

from ...comm.ucx import PRIORITY_COMM, PRIORITY_COMPUTE
from ...hardware.gpu import COPY_D2H, COPY_H2D, CopyWork
from .context import AllreduceContext

__all__ = ["make_allreduce_rank_program"]


def make_allreduce_rank_program(ctx: AllreduceContext):
    """A mixin class implementing the allreduce rounds against this run's
    context.  Host classes must call ``_bind_unit`` before communication and
    ``_setup_device`` before the first launch, then drive ``_main_body``."""

    class AllreduceRankProgram:
        app = ctx

        def _bind_unit(self):
            self.u = self.rank
            self.index = (self.rank,)
            self.data = ctx.unit_data(self.u)
            # Every (segment, chunk) slot of this unit's vector that the
            # round schedule touches — the init kernel (re)writes them all.
            self.vec_keys = sorted({
                ("vec", self.u, seg, c)
                for step in ctx.round_steps
                for lst in (step.sends.get(self.u, ()),
                            step.recvs.get(self.u, ()))
                for _peer, seg, c, _lo, _hi in lst
            })

        def _setup_device(self):
            self.gpu.malloc(ctx.unit_device_bytes(self.u))
            self.red_stream = self.gpu.create_stream(
                priority=PRIORITY_COMPUTE, name=f"{self.gpu.name}.red"
            )
            self.d2h_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.d2h"
            )
            self.h2d_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.h2d"
            )

        def _main_body(self):
            device = ctx.config.gpu_aware
            engine = self.world.engine
            for t in range(ctx.config.total_iterations):
                self.data.f_begin_iter(t)
                init = yield self.launch(self.red_stream, ctx.init_work(),
                                         name="init", writes=self.vec_keys)
                seg_ready = {}  # (seg, chunk) -> last kernel writing it
                iter_events = [init.done]
                send_reqs = []
                for ridx, step in enumerate(ctx.round_steps):
                    recv_reqs = []
                    for src, seg, c, lo, hi in step.recvs.get(self.u, ()):
                        req = yield self.irecv(
                            src, 8 * (hi - lo), tag=(t, ridx, c), device=device
                        )
                        recv_reqs.append((seg, c, lo, hi, req))
                    for dest, seg, c, lo, hi in step.sends.get(self.u, ()):
                        dep = seg_ready.get((seg, c), init.done)
                        if device:
                            # cudaStreamSynchronize, then CUDA-aware send.
                            yield self.sync(dep)
                        else:
                            cop = yield self.launch(
                                self.d2h_stream,
                                CopyWork(8 * (hi - lo), COPY_D2H),
                                name=f"d2h.{ridx}.{c}",
                                wait=[dep],
                                reads=[("vec", self.u, seg, c)],
                            )
                            yield self.sync(cop.done)
                        send_reqs.append((yield self.isend(
                            dest, 8 * (hi - lo), tag=(t, ridx, c),
                            device=device,
                            payload=self.data.f_chunk_payload(lo, hi),
                        )))
                    for seg, c, lo, hi, req in recv_reqs:
                        yield self.wait(req)
                        waits = [seg_ready.get((seg, c), init.done)]
                        if not device:
                            h = yield self.launch(
                                self.h2d_stream,
                                CopyWork(8 * (hi - lo), COPY_H2D),
                                name=f"h2d.{ridx}.{c}",
                            )
                            waits.append(h.done)
                        op = yield self.launch(
                            self.red_stream,
                            ctx.chunk_work(step.kind, lo, hi),
                            name=ctx.kernel_name(step, c), wait=waits,
                            reads=[("vec", self.u, seg, c)],
                            writes=[("vec", self.u, seg, c)],
                        )
                        self.data.f_apply(step.kind, lo, hi, req.data)
                        seg_ready[(seg, c)] = op.done
                        iter_events.append(op.done)
                if send_reqs:
                    yield self.waitall(send_reqs)
                if iter_events:
                    # Typical MPI collective: block until the folds drain.
                    yield self.sync(engine.all_of(iter_events))
                self.data.f_finish_iter(t)
                self.notify("iter_done", iter=t)
            self.notify("block_done")

    return AllreduceRankProgram
