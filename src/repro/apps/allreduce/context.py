"""Shared communication schedule for the allreduce frontends.

Both algorithms compile to the same plan shape: an ordered list of
:class:`RoundStep`\\ s, each giving every unit its sends and receives as
``(peer, seg, chunk, lo, hi)`` element ranges plus what to do with arriving
data (``add`` for reduction rounds, ``copy`` for distribution rounds).
The charm/MPI/AMPI frontends replay this plan verbatim; they differ only
in transport and host/device staging — the axis the differential matrix
isolates.

* **ring** — bandwidth-optimal: a reduce-scatter pass (``U-1`` steps, each
  unit forwards one vector segment to its right neighbour and folds the
  segment arriving from the left into its accumulator) followed by an
  allgather pass circulating the completed segments.
* **tree** — latency-optimal binomial: recursive-doubling reduce to unit
  0, then the mirrored broadcast.  Handles non-power-of-two unit counts.

``chunks`` splits every transfer into that many pipeline chunks with their
own messages and per-chunk reduction kernels, so chunk ``c+1``'s transfer
overlaps chunk ``c``'s fold — the classic double-buffered pipeline;
``chunks=1`` degenerates to the single-stage version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...hardware.gpu import KernelWork
from ..appbase import FallbackMetrics
from ..stencil.context import ResidualHistory
from .config import AllreduceConfig

__all__ = ["AllreduceContext", "AllreduceData", "RoundStep"]


@dataclass(frozen=True)
class RoundStep:
    """One communication round of the schedule.

    ``sends[u]`` / ``recvs[u]``: tuples of ``(peer, seg, c, lo, hi)`` in
    transfer order (ascending chunk) — ``[lo, hi)`` is the element range.
    ``kind`` says how a receiver folds an arriving chunk: ``add`` (local
    reduction) or ``copy`` (overwrite with the completed values).
    """

    phase: str  # "rs" | "ag" | "tr" | "tb"
    label: int  # ring step index or tree mask
    kind: str  # "add" | "copy"
    sends: dict
    recvs: dict


def _split(lo: int, hi: int, parts: int) -> list:
    """Deterministic even split of ``[lo, hi)`` into ``parts`` ranges."""
    n = hi - lo
    return [(lo + n * p // parts, lo + n * (p + 1) // parts)
            for p in range(parts)]


class AllreduceContext:
    """One allreduce run's immutable context, shared by all units."""

    def __init__(self, config: AllreduceConfig, initial_state: Optional[dict] = None):
        if initial_state is not None:
            raise ValueError("allreduce does not support checkpoint restart")
        self.config = config
        u_count = config.n_blocks()
        self.n_units = u_count
        self.segments = _split(0, config.elements, u_count)
        if config.algorithm == "ring":
            self.round_steps = self._ring_rounds()
        else:
            self.round_steps = self._tree_rounds()
        self.metrics = FallbackMetrics(u_count, warmup=config.warmup)
        self.residuals = (ResidualHistory(u_count, config.total_iterations)
                          if config.functional else None)

    # -- schedules ---------------------------------------------------------
    def _chunks_of(self, seg: int, lo: int, hi: int) -> list:
        return [(seg, c, clo, chi)
                for c, (clo, chi) in enumerate(_split(lo, hi, self.config.chunks))]

    def _ring_rounds(self) -> list:
        u_count = self.n_units
        steps = []
        for phase, kind in (("rs", "add"), ("ag", "copy")):
            for s in range(u_count - 1):
                sends: dict = {}
                recvs: dict = {}
                for u in range(u_count):
                    # Reduce-scatter circulates partial sums right; the
                    # allgather pass then circulates the finished segments.
                    out_seg = (u - s if phase == "rs" else u + 1 - s) % u_count
                    in_seg = (out_seg - 1) % u_count
                    right, left = (u + 1) % u_count, (u - 1) % u_count
                    sends[u] = tuple((right, *ch)
                                     for ch in self._chunks_of(out_seg, *self.segments[out_seg]))
                    recvs[u] = tuple((left, *ch)
                                     for ch in self._chunks_of(in_seg, *self.segments[in_seg]))
                steps.append(RoundStep(phase=phase, label=s, kind=kind,
                                       sends=sends, recvs=recvs))
        return steps

    def _tree_rounds(self) -> list:
        u_count = self.n_units
        chunks = self._chunks_of(0, 0, self.config.elements)
        masks = []
        mask = 1
        while mask < u_count:
            masks.append(mask)
            mask <<= 1

        def pairs(mask: int) -> list:
            """(child, parent) pairs active at this mask round."""
            return [(u, u - mask) for u in range(u_count)
                    if u % (2 * mask) == mask]

        steps = []
        for mask in masks:  # reduce: children fold into parents, up to 0
            sends = {child: tuple((parent, *ch) for ch in chunks)
                     for child, parent in pairs(mask)}
            recvs = {parent: tuple((child, *ch) for ch in chunks)
                     for child, parent in pairs(mask)}
            steps.append(RoundStep(phase="tr", label=mask, kind="add",
                                   sends=sends, recvs=recvs))
        for mask in reversed(masks):  # broadcast: mirror image
            sends = {parent: tuple((child, *ch) for ch in chunks)
                     for child, parent in pairs(mask)}
            recvs = {child: tuple((parent, *ch) for ch in chunks)
                     for child, parent in pairs(mask)}
            steps.append(RoundStep(phase="tb", label=mask, kind="copy",
                                   sends=sends, recvs=recvs))
        return steps

    # -- work models -------------------------------------------------------
    def init_work(self) -> KernelWork:
        """Materializing the iteration's input vector on device (in a real
        workload: the gradient/update computation feeding the collective).
        Every round-0 send and first fold of a slice depends on it — it is
        also the only work a single-unit allreduce performs."""
        return KernelWork(2.0 * self.config.vector_bytes(),
                          float(self.config.elements))

    def chunk_work(self, kind: str, lo: int, hi: int) -> KernelWork:
        """Roofline model of folding one arriving chunk: ``add`` streams two
        operands and writes one (1 flop/element); ``copy`` streams in/out."""
        nbytes = 8.0 * (hi - lo)
        if kind == "add":
            return KernelWork(3.0 * nbytes, float(hi - lo))
        return KernelWork(2.0 * nbytes, 0.0)

    def kernel_name(self, step: RoundStep, c: int) -> str:
        return f"{step.phase}.{step.label}.{c}"

    # -- driver hooks ------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return (self.n_units,)

    def max_payload_bytes(self) -> int:
        """Largest single message payload: the biggest pipeline chunk."""
        largest = 0
        for step in self.round_steps:
            for entries in step.sends.values():
                for _, _, _, lo, hi in entries:
                    largest = max(largest, 8 * (hi - lo))
        return largest

    def unit_data(self, u: int) -> "AllreduceData":
        return AllreduceData(self, u)

    def unit_device_bytes(self, u: int) -> int:
        """Double-buffered vector plus chunk staging."""
        return 2 * self.config.vector_bytes() + 2 * self.max_payload_bytes()


class AllreduceData:
    """One unit's vector state and functional mirror.

    The per-unit contribution is an *integer-valued* float64 vector (drawn
    once from a seeded generator), and iteration ``t`` reduces ``x_u + t``.
    Integer sums of this magnitude are exact in float64 in **any**
    association order, so ring, tree, chunked and serial reductions all
    produce bit-identical results — the property the differential matrix
    and the hypothesis suite assert.

    In modeled mode every ``f_*`` method is a no-op returning ``None``.
    """

    def __init__(self, ctx: AllreduceContext, u: int):
        self.ctx = ctx
        self.u = u
        self.functional = ctx.config.functional
        self.acc = None
        if self.functional:
            rng = np.random.default_rng((ctx.config.seed, u))
            self.base = rng.integers(-8, 9, ctx.config.elements).astype(np.float64)
        else:
            self.base = None

    def f_begin_iter(self, t: int) -> None:
        if self.functional:
            self.acc = self.base + float(t)

    def f_chunk_payload(self, lo: int, hi: int):
        if not self.functional:
            return None
        return self.acc[lo:hi].copy()

    def f_apply(self, kind: str, lo: int, hi: int, payload) -> None:
        if not self.functional:
            return
        if kind == "add":
            self.acc[lo:hi] += payload
        else:
            self.acc[lo:hi] = payload

    def f_finish_iter(self, t: int) -> None:
        """Record the iteration residual: the max magnitude of the reduced
        vector — exact, identical on every unit, and decomposition-free."""
        if not self.functional:
            return
        peak = float(np.max(np.abs(self.acc))) if self.acc.size else 0.0
        self.ctx.residuals.record((self.u,), t, peak)

    def f_interior(self) -> np.ndarray:
        """Driver hook: this unit's final reduced vector."""
        return self.acc.copy() if self.functional else None


def reference_allreduce(config: AllreduceConfig, t: int) -> np.ndarray:
    """Serial reference: the sum of every unit's iteration-``t`` vector, in
    unit order (any order gives the same bits; see :class:`AllreduceData`)."""
    total = np.zeros(config.elements, dtype=np.float64)
    for u in range(config.n_blocks()):
        rng = np.random.default_rng((config.seed, u))
        total += rng.integers(-8, 9, config.elements).astype(np.float64) + float(t)
    return total
