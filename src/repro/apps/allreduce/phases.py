"""Phase classification for allreduce timelines."""

from __future__ import annotations

__all__ = ["ALLREDUCE_PHASES", "ALLREDUCE_PHASE_KERNELS",
           "classify_allreduce_op"]

#: Phase vocabulary for timeline/criticality analysis: the two halves of
#: the collective (reduction rounds vs. distribution rounds), chunk
#: staging copies, and the wire.
ALLREDUCE_PHASES = ("init", "reduce-scatter", "allgather", "chunk", "nic",
                    "other")

#: Inverse of :func:`classify_allreduce_op` for compute kernels
#: (``AppSpec.phase_kernels``): op-name prefixes per compute phase.
ALLREDUCE_PHASE_KERNELS = (
    ("init", ("init",)),
    ("reduce-scatter", ("rs.", "tr.")),
    ("allgather", ("ag.", "tb.")),
)


def classify_allreduce_op(category: str, op_name: str) -> str:
    """Map a traced op to its allreduce phase.

    Reduction kernels (``rs.*`` ring reduce-scatter, ``tr.*`` tree reduce)
    count as ``reduce-scatter``; distribution kernels (``ag.*`` ring
    allgather, ``tb.*`` tree broadcast) as ``allgather``; the per-iteration
    input materialization as ``init``; host staging copies as ``chunk``;
    D2D copies are the transport leg of same-device sends (``nic``).
    """
    if category in ("gpu.copy_d2h", "gpu.copy_h2d"):
        return "chunk"
    if category == "gpu.copy_d2d" or category.startswith("net."):
        return "nic"
    if category == "gpu.compute":
        name = op_name[6:] if op_name.startswith("graph.") else op_name
        if name.startswith("init"):
            return "init"
        if name.startswith(("rs.", "tr.")):
            return "reduce-scatter"
        if name.startswith(("ag.", "tb.")):
            return "allgather"
    return "other"
