"""Allreduce app config and result."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..appbase import AppResult, BaseAppConfig

__all__ = ["AllreduceConfig", "AllreduceResult"]

ALGORITHMS = ("ring", "tree")

#: Functional mode materializes every unit's full vector; cap the order so
#: a typo cannot allocate gigabytes.
_FUNCTIONAL_ELEMENT_LIMIT = 1 << 22


@dataclass(frozen=True)
class AllreduceConfig(BaseAppConfig):
    """One allreduce benchmark run.

    ``elements`` is the vector length (float64); every iteration performs
    one full allreduce of that vector.  ``algorithm`` picks ring
    (bandwidth-optimal reduce-scatter + allgather) or binomial tree
    (latency-optimal); ``chunks`` splits each transfer for pipelined
    double-buffered overlap of communication with the local reduction
    kernels — ``chunks=1`` is the unpipelined single-stage baseline.

    The stencil axes that are meaningless for a collective (grid, fusion
    strategy, CUDA graphs) simply do not exist on this config, so the
    differential matrix and sweeps never enumerate them.
    """

    APP = "allreduce"

    elements: int = 1 << 16
    algorithm: str = "ring"
    chunks: int = 1
    iterations: int = 4
    warmup: int = 1
    seed: int = 1234

    def __post_init__(self):
        self._validate_common()
        if self.elements < 0:
            raise ValueError("elements must be >= 0")
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS}")
        if self.chunks < 1:
            raise ValueError("chunks must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.functional and self.elements > _FUNCTIONAL_ELEMENT_LIMIT:
            raise ValueError(
                f"functional mode caps elements at {_FUNCTIONAL_ELEMENT_LIMIT}")

    def vector_bytes(self) -> int:
        return 8 * self.elements


@dataclass
class AllreduceResult(AppResult):
    """An :class:`~repro.apps.appbase.AppResult` whose functional state is
    every unit's final reduced vector — identical everywhere by definition
    of allreduce, and checked to be so."""

    def assemble_state(self) -> np.ndarray:
        """The reduced vector, after verifying every unit holds the *same*
        bits (an allreduce whose replicas disagree is broken even if one
        replica happens to match the reference)."""
        if self.blocks is None:
            raise ValueError("assemble_state() needs a functional-mode result")
        vectors = [self.blocks[key] for key in sorted(self.blocks)]
        first = vectors[0]
        for v in vectors[1:]:
            if v.shape != first.shape or v.tobytes() != first.tobytes():
                raise AssertionError(
                    "allreduce replicas disagree: units hold different vectors")
        return first.copy()
