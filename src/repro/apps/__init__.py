"""Applications built on the runtime: Jacobi3D and its decomposition."""

from .decomposition import BlockGeometry, factor_triples, partition_dims
from .jacobi3d import (
    VERSIONS,
    AppContext,
    BlockData,
    Jacobi3DConfig,
    Jacobi3DResult,
    run_jacobi3d,
)

__all__ = [
    "BlockGeometry",
    "factor_triples",
    "partition_dims",
    "VERSIONS",
    "AppContext",
    "BlockData",
    "Jacobi3DConfig",
    "Jacobi3DResult",
    "run_jacobi3d",
]
