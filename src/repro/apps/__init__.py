"""Applications built on the runtime.

The app framework has three pieces:

* :mod:`~repro.apps.registry` — the :class:`AppSpec` protocol and the
  process-wide registry.  Everything downstream (cache, runner, CLI,
  differential matrix, golden store, observatory) dispatches on the
  stable ``app`` name carried in every config dict.
* :mod:`~repro.apps.stencil` — the reusable halo-exchange/stencil core:
  dimension-generic geometry, config, context, and the charm/mpi/ampi
  frontends with fusion strategies and the CUDA-graphs path.
* The registered workloads: :mod:`~repro.apps.jacobi3d` (the paper's
  7-point 3D proxy app), :mod:`~repro.apps.jacobi2d` (a 5-point 2D
  stencil proving the abstraction), :mod:`~repro.apps.cholesky` (a tiled
  Cholesky factorization exercising dependency-driven task DAGs), and
  :mod:`~repro.apps.allreduce` (ring/tree allreduce collectives over the
  simulated network).

Importing this package registers all apps.
"""

from . import registry as registry  # noqa: F401  (import order matters)
from .allreduce import AllreduceConfig, AllreduceResult
from .cholesky import CholeskyConfig, CholeskyResult
from .driver import run_app
from .jacobi2d import Jacobi2DConfig, Jacobi2DResult
from .jacobi3d import (
    ALL_VERSIONS,
    VERSIONS,
    AppContext,
    BlockData,
    Jacobi3DConfig,
    Jacobi3DResult,
    run_jacobi3d,
)
from .registry import (
    AppSpec,
    app_names,
    config_from_dict,
    get_app,
    result_from_dict,
    spec_for,
)
from .stencil import (
    BlockGeometry,
    StencilConfig,
    StencilResult,
    factor_triples,
    factor_tuples,
    partition_dims,
)

__all__ = [
    "AppSpec",
    "app_names",
    "get_app",
    "spec_for",
    "config_from_dict",
    "result_from_dict",
    "run_app",
    "StencilConfig",
    "StencilResult",
    "BlockGeometry",
    "factor_triples",
    "factor_tuples",
    "partition_dims",
    "VERSIONS",
    "ALL_VERSIONS",
    "AppContext",
    "BlockData",
    "Jacobi3DConfig",
    "Jacobi3DResult",
    "Jacobi2DConfig",
    "Jacobi2DResult",
    "CholeskyConfig",
    "CholeskyResult",
    "AllreduceConfig",
    "AllreduceResult",
    "run_jacobi3d",
]
