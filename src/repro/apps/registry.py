"""The application registry: one :class:`AppSpec` per registered workload.

The runtime mechanisms under study (overdecomposition, GPU-aware channels,
kernel fusion, CUDA graphs) are app-agnostic; an :class:`AppSpec` is the
complete contract an application signs to plug into every layer of the
harness:

* the **exec layer** builds cache keys from ``config_cls.to_dict()`` (which
  carries the app name) and revives cached results via
  :func:`result_from_dict`;
* the **generic driver** (:func:`repro.apps.driver.run_app`) uses
  ``make_context`` and the three frontend factories;
* the **observability layer** consumes the app-declared ``phases`` and
  ``classify_op`` instead of a hardcoded phase tuple;
* the **validation layer** runs ``differential_base`` through the
  cross-runtime matrix and pins ``golden_configs`` to trace digests.

Apps self-register at import time (``repro.apps`` imports every bundled
app package), so the registry is always populated once :mod:`repro.apps`
is loaded.  See ``docs/apps.md`` for the authoring guide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "AppSpec",
    "app_names",
    "config_from_dict",
    "get_app",
    "register",
    "result_from_dict",
    "spec_for",
]


@dataclass(frozen=True)
class AppSpec:
    """Everything the harness needs to know about one application."""

    #: Registry name (the ``--app`` value and the ``app`` field of config
    #: dicts); must equal ``config_cls.APP``.
    name: str
    #: One-line human description (``repro apps``).
    description: str
    #: The app's :class:`~repro.apps.stencil.config.StencilConfig` subclass.
    config_cls: type
    #: The app's result class (``from_dict`` revives cache entries).
    result_cls: type
    #: ``(config, initial_state=None) -> context`` for the frontends below.
    make_context: Callable
    #: ``ctx -> Chare subclass`` (Charm++ frontend).
    make_block_class: Callable
    #: ``ctx -> MpiProcess subclass`` (plain-MPI frontend).
    make_rank_class: Callable
    #: ``ctx -> AmpiProcess subclass`` (AMPI frontend).
    make_ampi_rank_class: Callable
    #: Declared cost-phase vocabulary, in display order.
    phases: tuple
    #: ``(category, op_name) -> phase`` trace classifier.
    classify_op: Callable
    #: ``() -> config``: the functional-mode base the differential matrix
    #: mutates across runtimes/fusion/graphs.
    differential_base: Callable
    #: ``() -> {name: config}``: canonical configs pinned in the golden store.
    golden_configs: Callable
    #: Optional ``(base, quick) -> [(label, config), ...]``: the app's own
    #: differential matrix.  ``None`` selects the stencil-shaped default
    #: (:func:`repro.validate.differential.default_matrix`) — apps without
    #: fusion/graphs axes, or whose numerics constrain which axes may vary
    #: (an allreduce sum depends on the contributor count), declare their
    #: own cases here.
    differential_cases: Optional[Callable] = None
    #: ``((phase, (op-name prefix, ...)), ...)`` pairs mapping each
    #: *compute* phase to the kernel-name prefixes that belong to it — the
    #: inverse of ``classify_op`` restricted to ``gpu.compute``, declared
    #: so the what-if engine (:mod:`repro.obs.whatif`) can turn "scale
    #: phase X" into the equivalent :class:`~repro.hardware.specs.GpuSpec`
    #: ``op_scales`` machine intervention.  Copy/network phases need no
    #: entry (they map to the d2h/h2d/d2d/wire scale knobs instead).
    phase_kernels: tuple = ()

    def __post_init__(self):
        if self.name != getattr(self.config_cls, "APP", None):
            raise ValueError(
                f"AppSpec {self.name!r} does not match its config class "
                f"(config_cls.APP == {getattr(self.config_cls, 'APP', None)!r})"
            )


_REGISTRY: dict[str, AppSpec] = {}

#: The app assumed for config dicts written before the ``app`` field existed.
DEFAULT_APP = "jacobi3d"


def register(spec: AppSpec) -> AppSpec:
    """Register ``spec`` (idempotent for the identical spec; a different
    spec under an existing name is an error)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(f"app {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def app_names() -> list[str]:
    """All registered app names, sorted."""
    return sorted(_REGISTRY)


def get_app(name: str) -> AppSpec:
    """The spec registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown app {name!r}; registered apps: {', '.join(app_names()) or 'none'}"
        ) from None


def spec_for(config) -> AppSpec:
    """The spec owning ``config`` (via its class's ``APP`` name)."""
    app = getattr(type(config), "APP", "")
    if not app:
        raise TypeError(f"{type(config).__name__} does not belong to a registered app")
    return get_app(app)


def config_from_dict(d: dict) -> object:
    """Revive a config dict produced by any registered app's ``to_dict``
    (dicts written before the ``app`` field existed read as
    :data:`DEFAULT_APP`).

    Raises :class:`KeyError` naming the unknown app and listing the
    registered names when the dict's ``app`` field matches no registered
    application (a stale cache entry, a typo in a hand-written dict, or an
    app package that was not imported)."""
    name = d.get("app", DEFAULT_APP)
    if name not in _REGISTRY:
        raise KeyError(
            f"config dict names unknown app {name!r}; registered apps: "
            f"{', '.join(app_names()) or 'none'}"
        )
    return _REGISTRY[name].config_cls.from_dict(d)


def result_from_dict(d: dict, expected: Optional[AppSpec] = None) -> object:
    """Revive a result dict produced by any registered app's ``to_dict``.
    ``expected`` (optional) asserts the dict belongs to that app."""
    spec = get_app(d.get("config", {}).get("app", DEFAULT_APP))
    if expected is not None and spec.name != expected.name:
        raise ValueError(f"result is for app {spec.name!r}, expected {expected.name!r}")
    return spec.result_cls.from_dict(d)
