"""Declared cost-phase vocabulary for the Cholesky app.

The observability layer consumes an app-declared phase tuple and trace
classifier instead of a hardcoded stencil vocabulary; for a task-DAG app
the natural decomposition is by task kind: ``factor`` (POTRF),
``panel`` (the TRSM panel solves) and ``update`` (the SYRK/GEMM Schur
updates), plus the usual transport phases.
"""

from __future__ import annotations

__all__ = ["CHOLESKY_PHASES", "CHOLESKY_PHASE_KERNELS", "classify_cholesky_op"]

CHOLESKY_PHASES = ("factor", "panel", "update", "d2h", "nic", "h2d", "other")

#: Inverse of :func:`classify_cholesky_op` for compute kernels
#: (``AppSpec.phase_kernels``): op-name prefixes per compute phase.
CHOLESKY_PHASE_KERNELS = (
    ("factor", ("potrf.",)),
    ("panel", ("trsm.",)),
    ("update", ("syrk.", "gemm.")),
)


def classify_cholesky_op(category: str, op_name: str) -> str:
    """Map one trace record to a phase (same contract as the stencil
    classifier: ``(category, op name) -> phase``)."""
    if category == "gpu.copy_d2h":
        return "d2h"
    if category == "gpu.copy_h2d":
        return "h2d"
    if category == "gpu.copy_d2d" or category.startswith("net."):
        return "nic"
    if category == "gpu.compute":
        name = op_name[6:] if op_name.startswith("graph.") else op_name
        if name.startswith("potrf."):
            return "factor"
        if name.startswith("trsm."):
            return "panel"
        if name.startswith(("syrk.", "gemm.")):
            return "update"
    return "other"
