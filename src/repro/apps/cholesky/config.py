"""Config and result types for the tiled Cholesky task-DAG app."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..appbase import AppResult, BaseAppConfig

__all__ = ["CholeskyConfig", "CholeskyResult"]

# Functional mode allocates the full matrix plus per-unit tiles; keep it
# for test-scale problems.
_FUNCTIONAL_ORDER_LIMIT = 2048


@dataclass(frozen=True)
class CholeskyConfig(BaseAppConfig):
    """One tiled-Cholesky run.

    The matrix is ``(tiles * tile)``-square, decomposed into a lower
    triangle of ``tile``-square tiles owned round-robin by the
    participating units.  One "iteration" is one elimination step ``k``
    (POTRF + its TRSM panel + the trailing Schur updates), so
    ``iterations == tiles`` and there is no warmup — the DAG runs once.

    ``seed`` fixes the functional-mode input matrix (see
    :func:`~repro.apps.cholesky.ops.generate_spd`).
    """

    APP = "cholesky"

    tiles: int = 8
    tile: int = 64
    seed: int = 1234

    def __post_init__(self):
        self._validate_common()
        if self.tiles < 1:
            raise ValueError("tiles must be >= 1")
        if self.tile < 1:
            raise ValueError("tile must be >= 1")
        if self.functional and self.tiles * self.tile > _FUNCTIONAL_ORDER_LIMIT:
            raise ValueError(
                f"functional mode with a {self.tiles * self.tile}-square matrix "
                "would allocate real arrays; use modeled mode or a smaller problem"
            )

    @property
    def n(self) -> int:
        """Matrix order."""
        return self.tiles * self.tile

    @property
    def iterations(self) -> int:
        """One measured 'iteration' per elimination step."""
        return self.tiles

    @property
    def warmup(self) -> int:
        """A factorization runs once; there is nothing to warm up."""
        return 0

    def tile_bytes(self) -> int:
        return 8 * self.tile * self.tile


@dataclass
class CholeskyResult(AppResult):
    """Measured outcome of one tiled-Cholesky run.  In functional mode
    ``blocks`` maps unit key -> ``{(i, j): tile}`` (that unit's owned
    tiles of the computed factor) and ``residuals`` holds the
    per-elimination-step exact update magnitudes."""

    def assemble_state(self) -> np.ndarray:
        """The assembled lower-triangular factor (differential/bitwise
        comparison target; matches ``np.linalg.cholesky`` of the input)."""
        if self.blocks is None:
            raise ValueError("assemble_state requires a functional-mode run")
        cfg = self.config
        b = cfg.tile
        out = np.zeros((cfg.n, cfg.n), dtype=np.float64)
        for owned in self.blocks.values():
            for (i, j), data in owned.items():
                out[i * b:(i + 1) * b, j * b:(j + 1) * b] = (
                    np.tril(data) if i == j else data
                )
        return out
