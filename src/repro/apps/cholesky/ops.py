"""Exact-arithmetic tile operations for the tiled Cholesky app.

The differential harness and the DAG property suite demand **bitwise**
agreement across frontends, overdecomposition factors, the tiled-serial
reference and ``numpy.linalg.cholesky`` — for a floating-point
factorization whose task DAG legitimately reorders work.  The trick is to
make every intermediate quantity exactly representable, so *any* correct
summation/elimination order produces the same bits:

* the input is manufactured as ``A = L0 @ L0.T`` where ``L0`` has small
  integer strictly-lower entries and power-of-two diagonal entries;
* every partial sum and product during factorization is then an integer of
  tiny magnitude (exact in float64), every square root is of a perfect
  square (1, 4 or 16 — exact), and every division is by a power of two
  (exact);
* hence the computed factor is exactly ``L0`` — independent of operation
  order, blocking, or which rank ran which task.

The one subtlety is TRSM: ``np.linalg.solve`` would LU-pivot and divide by
non-power-of-two pivots, destroying exactness, so :func:`trsm_tile` is a
plain forward substitution dividing only by the (power-of-two) diagonal.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "generate_spd",
    "potrf_tile",
    "trsm_tile",
    "syrk_update",
    "gemm_update",
    "reference_cholesky_tiles",
]


def generate_spd(n: int, seed: int) -> tuple:
    """``(A, L0)``: an SPD matrix with an exactly-representable factor.

    ``L0`` has strictly-lower integer entries in [-3, 3] and diagonal
    entries drawn from {1, 2, 4} (powers of two).  Entry magnitudes in
    ``A`` are bounded by ``9 n + 16`` — far inside float64's exact-integer
    range for any simulable size.
    """
    rng = np.random.default_rng(seed)
    lower = rng.integers(-3, 4, size=(n, n)).astype(np.float64)
    l0 = np.tril(lower, k=-1)
    diag = np.asarray([1.0, 2.0, 4.0])[rng.integers(0, 3, size=n)]
    np.fill_diagonal(l0, diag)
    a = l0 @ l0.T
    return a, l0


def potrf_tile(a: np.ndarray) -> np.ndarray:
    """Unblocked right-looking Cholesky of one tile (lower factor)."""
    a = np.tril(a).copy()
    b = a.shape[0]
    for j in range(b):
        a[j, j] = np.sqrt(a[j, j] - np.dot(a[j, :j], a[j, :j]))
        if j + 1 < b:
            a[j + 1:, j] = (a[j + 1:, j] - a[j + 1:, :j] @ a[j, :j]) / a[j, j]
    return a


def trsm_tile(l_kk: np.ndarray, b_tile: np.ndarray) -> np.ndarray:
    """Solve ``X @ l_kk.T == b_tile`` by forward substitution (no pivoting:
    divisions hit only the power-of-two diagonal, keeping results exact)."""
    x = b_tile.astype(np.float64).copy()
    n = l_kk.shape[0]
    for j in range(n):
        x[:, j] = (x[:, j] - x[:, :j] @ l_kk[j, :j]) / l_kk[j, j]
    return x


def syrk_update(c: np.ndarray, l_jk: np.ndarray) -> np.ndarray:
    """Diagonal-tile Schur update ``C - L_jk @ L_jk.T`` (lower part)."""
    return c - l_jk @ l_jk.T


def gemm_update(c: np.ndarray, l_ik: np.ndarray, l_jk: np.ndarray) -> np.ndarray:
    """Off-diagonal Schur update ``C - L_ik @ L_jk.T``."""
    return c - l_ik @ l_jk.T


def reference_cholesky_tiles(a: np.ndarray, tiles: int, tile: int) -> dict:
    """Serial tiled right-looking factorization: ``{(i, j): tile}`` for the
    lower triangle.  The sequential oracle the distributed frontends must
    match bitwise."""

    def view(i, j):
        return a[i * tile:(i + 1) * tile, j * tile:(j + 1) * tile]

    a = a.copy()
    out = {}
    for k in range(tiles):
        out[(k, k)] = potrf_tile(view(k, k))
        for i in range(k + 1, tiles):
            out[(i, k)] = trsm_tile(out[(k, k)], view(i, k))
        for j in range(k + 1, tiles):
            view(j, j)[:] = syrk_update(view(j, j), out[(j, k)])
            for i in range(j + 1, tiles):
                view(i, j)[:] = gemm_update(view(i, j), out[(i, k)], out[(j, k)])
    return out
