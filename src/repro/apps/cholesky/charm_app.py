"""Charm++ Cholesky frontend: one chare per unit, tasks gated by the
:class:`~repro.runtime.taskspace.TaskSpace` ledger.

Each chare walks its slice of the per-step plan in the canonical global
task order (so local data dependencies are satisfied by generator order)
and launches every task's kernel with ``wait_events`` built from the
TaskSpace completion events of *local* dependencies — panel tasks
(POTRF/TRSM) run on a high-priority stream, Schur updates on a
low-priority stream, so cross-stream ordering is carried entirely by the
declared DAG, not by serializing the generator.

Remote dependencies travel as factor tiles: ``recvTile`` entry messages
with D2H/H2D staging (charm-h) or Channel-API device transfers matched by
``("r", step, row)`` references (charm-d).  A unit posts all of a step's
channel receives before touching its tasks, and every channel deposit is
consumed by an exact-reference ``when`` — no polling, no skipped
mailboxes.
"""

from __future__ import annotations

from ...comm.ucx import PRIORITY_COMM, PRIORITY_COMPUTE
from ...hardware.gpu import COPY_D2H, COPY_H2D, CopyWork
from ...runtime import Chare
from .context import CholeskyContext, tile_accesses

__all__ = ["make_cholesky_block_class"]


def make_cholesky_block_class(ctx: CholeskyContext):
    """A fresh chare class bound to this run's context."""

    tile_bytes = ctx.config.tile_bytes()

    class CholeskyUnit(Chare):
        app = ctx

        def init(self):
            self.u = self.index[0]
            self.data = ctx.unit_data(self.u)
            self.iter_trigger = None
            self.gpu.malloc(ctx.unit_device_bytes(self.u))
            self.panel_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.panel{self.index}"
            )
            self.update_stream = self.gpu.create_stream(
                priority=PRIORITY_COMPUTE, name=f"{self.gpu.name}.upd{self.index}"
            )
            self.d2h_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.d2h{self.index}"
            )
            self.h2d_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.h2d{self.index}"
            )

        def _stream(self, info):
            return self.panel_stream if info.stream == "panel" else self.update_stream

        def _finish_step(self, engine, k, step_events):
            """Notify ``iter_done`` once steps 0..k have all completed.

            Chaining the previous step's trigger keeps per-unit iter_done
            notifications monotone in ``k`` even though step k's kernels can
            drain after step k+1's were issued (the whole point of running
            the DAG asynchronously)."""
            self.data.f_finish_step(k)
            if self.iter_trigger is not None:
                step_events = [self.iter_trigger, *step_events]
            if step_events:
                trigger = engine.all_of(step_events)
                self.notify_when(trigger, "iter_done", iter=k)
                self.iter_trigger = trigger
            else:
                self.notify("iter_done", iter=k)

        def run(self, msg):
            if ctx.config.gpu_aware:
                yield from self._run_device()
            else:
                yield from self._run_host()

        # -- host-staging version (charm-h) --------------------------------
        def _run_host(self):
            engine = self.runtime.engine
            for plan in ctx.plan:
                k = plan.step
                my_tasks = plan.tasks.get(self.u, ())
                remote = {a: src for a, src in plan.recvs.get(self.u, ())}
                send_plan = {a: dests for a, dests in plan.sends.get(self.u, ())}
                arrived = {}  # a -> H2D completion event
                step_events = []
                for info in my_tasks:
                    waits = [ctx.tasks.completion(d) for d in info.local_deps]
                    for a in info.reads:
                        if a not in remote:
                            continue  # local factor: covered by local_deps
                        if a not in arrived:
                            m = yield self.when("recvTile", ref=(k, a))
                            self.data.f_store_factor(k, a, m.payload)
                            h = yield self.launch(
                                self.h2d_stream,
                                CopyWork(tile_bytes, COPY_H2D),
                                name=f"h2d.{a}.{k}",
                                writes=[("stage", self.u, k, a)],
                            )
                            arrived[a] = h.done
                        waits.append(arrived[a])
                    rd, wr = tile_accesses(info)
                    op = yield self.launch(
                        self._stream(info), info.work, name=info.name, wait=waits,
                        reads=rd, writes=wr,
                    )
                    ctx.tasks.attach(info.key, op.done, engine)
                    self.data.f_run_task(info)
                    step_events.append(op.done)
                    if info.kind in ("potrf", "trsm"):
                        a = info.i if info.kind == "trsm" else info.step
                        dests = send_plan.get(a)
                        if dests:
                            c = yield self.launch(
                                self.d2h_stream,
                                CopyWork(tile_bytes, COPY_D2H),
                                name=f"d2h.{a}.{k}",
                                wait=[op.done],
                                reads=[("tile", a, k)],
                            )
                            yield self.wait(c.done)
                            payload = self.data.f_factor_payload(a, k)
                            for dest in dests:
                                self.send((dest,), "recvTile", ref=(k, a),
                                          data_bytes=tile_bytes, payload=payload)
                self._finish_step(engine, k, step_events)
            if self.iter_trigger is not None:
                yield self.wait(self.iter_trigger)
            self.notify("block_done")

        # -- GPU-aware version (charm-d, Channel API) ----------------------
        def _run_device(self):
            engine = self.runtime.engine
            for plan in ctx.plan:
                k = plan.step
                my_tasks = plan.tasks.get(self.u, ())
                remote = {a: src for a, src in plan.recvs.get(self.u, ())}
                send_plan = {a: dests for a, dests in plan.sends.get(self.u, ())}
                # Post every factor-tile receive for this step up front
                # (per-pair FIFO order: ascending row == production order).
                for a, src in plan.recvs.get(self.u, ()):
                    ch = self.channel_to((src,))
                    ch.recv(tile_bytes, mailbox="ch_evt", ref=("r", k, a),
                            note=("recv", a))
                pending_sends = []
                arrived = {}
                step_events = []
                for info in my_tasks:
                    waits = [ctx.tasks.completion(d) for d in info.local_deps]
                    for a in info.reads:
                        if a not in remote or a in arrived:
                            continue
                        m = yield self.when("ch_evt", ref=("r", k, a))
                        _note, payload = m.payload
                        self.data.f_store_factor(k, a, payload)
                        arrived[a] = True
                    rd, wr = tile_accesses(info)
                    op = yield self.launch(
                        self._stream(info), info.work, name=info.name, wait=waits,
                        reads=rd, writes=wr,
                    )
                    ctx.tasks.attach(info.key, op.done, engine)
                    self.data.f_run_task(info)
                    step_events.append(op.done)
                    if info.kind in ("potrf", "trsm"):
                        a = info.i if info.kind == "trsm" else info.step
                        dests = send_plan.get(a)
                        if dests:
                            # One device sync, then device-resident sends.
                            yield self.wait(op.done)
                            payload = self.data.f_factor_payload(a, k)
                            for dest in dests:
                                ch = self.channel_to((dest,))
                                ch.send(tile_bytes, mailbox="ch_evt",
                                        ref=("s", k, a, dest), payload=payload,
                                        note=("sent", a))
                                pending_sends.append(("s", k, a, dest))
                # Consume every send-completion deposit before leaving the
                # step (Channel-API contract: no dangling mailboxes).
                for ref in pending_sends:
                    yield self.when("ch_evt", ref=ref)
                self._finish_step(engine, k, step_events)
            if self.iter_trigger is not None:
                yield self.wait(self.iter_trigger)
            self.notify("block_done")

    return CholeskyUnit
