"""Plain-MPI Cholesky frontend: one rank per GPU, the shared rank program
from :mod:`.rank_program` with device setup at construction time."""

from __future__ import annotations

from ...mpi import MpiProcess
from .context import CholeskyContext
from .rank_program import make_cholesky_rank_program

__all__ = ["make_cholesky_rank_class"]


def make_cholesky_rank_class(ctx: CholeskyContext):
    """A fresh rank class bound to this run's context."""

    class CholeskyRank(make_cholesky_rank_program(ctx), MpiProcess):
        def init(self):
            # pe/gpu are bound at construction: device setup happens here.
            self._bind_unit()
            self._setup_device()

        def main(self, msg=None):
            yield from self._main_body()

    return CholeskyRank
