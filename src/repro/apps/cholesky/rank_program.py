"""The shared Cholesky rank program (plain MPI and AMPI).

The same step loop as the Charm++ frontend — canonical task order, kernels
gated on local TaskSpace completion events — expressed MPI-style: all of a
step's factor-tile receives are posted first (nonblocking), each remote
tile is claimed with a blocking ``wait`` exactly when the first consuming
task needs it, and produced panel tiles go out as ``isend`` immediately
after a stream sync on the producing kernel (plus D2H staging for the host
versions).  Deadlock-freedom is by induction over the canonical global
task order: every task's remote inputs are produced by strictly earlier
tasks whose sends are posted before their producer's generator can block
again.

As with the stencil apps, the plain-MPI and AMPI frontends run this
*identical* program; they differ only in when device setup runs.
"""

from __future__ import annotations

from ...comm.ucx import PRIORITY_COMM, PRIORITY_COMPUTE
from ...hardware.gpu import COPY_D2H, COPY_H2D, CopyWork
from .context import CholeskyContext, tile_accesses

__all__ = ["make_cholesky_rank_program"]


def make_cholesky_rank_program(ctx: CholeskyContext):
    """A mixin class implementing the Cholesky step loop against this run's
    context.  Host classes must call ``_bind_unit`` before communication and
    ``_setup_device`` before the first launch, then drive ``_main_body``."""

    tile_bytes = ctx.config.tile_bytes()

    class CholeskyRankProgram:
        app = ctx

        def _bind_unit(self):
            self.u = self.rank
            self.index = (self.rank,)
            self.data = ctx.unit_data(self.u)

        def _setup_device(self):
            self.gpu.malloc(ctx.unit_device_bytes(self.u))
            self.panel_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.panel"
            )
            self.update_stream = self.gpu.create_stream(
                priority=PRIORITY_COMPUTE, name=f"{self.gpu.name}.upd"
            )
            self.d2h_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.d2h"
            )
            self.h2d_stream = self.gpu.create_stream(
                priority=PRIORITY_COMM, name=f"{self.gpu.name}.h2d"
            )

        def _stream(self, info):
            return self.panel_stream if info.stream == "panel" else self.update_stream

        def _main_body(self):
            device = ctx.config.gpu_aware
            engine = self.world.engine
            for plan in ctx.plan:
                k = plan.step
                my_tasks = plan.tasks.get(self.u, ())
                send_plan = {a: dests for a, dests in plan.sends.get(self.u, ())}
                # Post all of this step's receives first.
                recv_reqs = {}
                for a, src in plan.recvs.get(self.u, ()):
                    recv_reqs[a] = yield self.irecv(
                        src, tile_bytes, tag=(k, a), device=device
                    )
                send_reqs = []
                arrived = {}  # a -> extra wait event (H2D copy) or None
                step_events = []
                for info in my_tasks:
                    waits = [ctx.tasks.completion(d) for d in info.local_deps]
                    for a in info.reads:
                        if a not in recv_reqs:
                            continue  # local factor: covered by local_deps
                        if a not in arrived:
                            yield self.wait(recv_reqs[a])
                            self.data.f_store_factor(k, a, recv_reqs[a].data)
                            if device:
                                arrived[a] = None
                            else:
                                h = yield self.launch(
                                    self.h2d_stream,
                                    CopyWork(tile_bytes, COPY_H2D),
                                    name=f"h2d.{a}.{k}",
                                    writes=[("stage", self.u, k, a)],
                                )
                                arrived[a] = h.done
                        if arrived[a] is not None:
                            waits.append(arrived[a])
                    rd, wr = tile_accesses(info)
                    op = yield self.launch(
                        self._stream(info), info.work, name=info.name, wait=waits,
                        reads=rd, writes=wr,
                    )
                    ctx.tasks.attach(info.key, op.done, engine)
                    self.data.f_run_task(info)
                    step_events.append(op.done)
                    if info.kind in ("potrf", "trsm"):
                        a = info.i if info.kind == "trsm" else info.step
                        dests = send_plan.get(a)
                        if dests:
                            if device:
                                # cudaStreamSynchronize, then CUDA-aware sends.
                                yield self.sync(op.done)
                            else:
                                c = yield self.launch(
                                    self.d2h_stream,
                                    CopyWork(tile_bytes, COPY_D2H),
                                    name=f"d2h.{a}.{k}",
                                    wait=[op.done],
                                    reads=[("tile", a, k)],
                                )
                                yield self.sync(c.done)
                            payload = self.data.f_factor_payload(a, k)
                            for dest in dests:
                                send_reqs.append((yield self.isend(
                                    dest, tile_bytes, tag=(k, a),
                                    device=device, payload=payload,
                                )))
                if send_reqs:
                    yield self.waitall(send_reqs)
                if step_events:
                    # Typical MPI GPU app: block until the step's kernels end.
                    yield self.sync(engine.all_of(step_events))
                self.data.f_finish_step(k)
                self.notify("iter_done", iter=k)
            self.notify("block_done")

    return CholeskyRankProgram
