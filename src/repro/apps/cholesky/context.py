"""Shared planning context for the tiled Cholesky frontends.

All scheduling-relevant structure — tile ownership, the per-step task
lists with their dependency/read sets, and the per-step message plan — is
computed *once* here, deterministically, and read by every frontend.  The
charm/MPI/AMPI frontends therefore execute the exact same DAG in the exact
same per-unit order; they differ only in transport (mailbox entry methods
vs. Channel API vs. isend/irecv) and staging (host vs. device), which is
precisely the axis the differential matrix isolates.

Decomposition: the lower triangle of ``tiles``-square tiles is assigned
round-robin (row-major tile order) over the participating units — the
standard 1-D cyclic distribution that gives every unit work in early *and*
late elimination steps.  Step ``k`` of the factorization is the app's
"iteration": POTRF(k) on the diagonal owner, TRSM(i,k) down the panel,
then SYRK/GEMM Schur updates on the trailing submatrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...hardware.gpu import KernelWork
from ...runtime.taskspace import TaskSpace
from ..appbase import FallbackMetrics
from ..stencil.context import ResidualHistory
from .config import CholeskyConfig
from .ops import gemm_update, generate_spd, potrf_tile, syrk_update, trsm_tile

__all__ = ["CholeskyContext", "CholeskyData", "TaskInfo", "StepPlan"]


def upd_key(i: int, j: int, k: int) -> tuple:
    """Task key of the step-``k`` Schur update writing tile ``(i, j)``."""
    return ("syrk", j, k) if i == j else ("gemm", i, j, k)


def factor_producer(a: int, k: int) -> tuple:
    """Task key producing factor tile ``(a, k)`` at step ``k``."""
    return ("potrf", k) if a == k else ("trsm", a, k)


def tile_accesses(info: "TaskInfo") -> tuple:
    """``(reads, writes)`` buffer keys for one task's kernel, derived from
    the task *kind* (the mathematical ground truth — deliberately not from
    ``info.reads``/``local_deps``, which fault injectors mutate).

    Buffer ``("tile", i, j)`` is matrix tile ``(i, j)``; a consumed factor
    tile is the same buffer whether it lives locally or arrived by message
    — the sanitizer's happens-before tracking orders the accesses.
    """
    i, j, k = info.i, info.j, info.step
    if info.kind == "potrf":
        return (("tile", k, k),), (("tile", k, k),)
    if info.kind == "trsm":
        return (("tile", i, k), ("tile", k, k)), (("tile", i, k),)
    if info.kind == "syrk":
        return (("tile", j, j), ("tile", j, k)), (("tile", j, j),)
    return (("tile", i, j), ("tile", i, k), ("tile", j, k)), (("tile", i, j),)


@dataclass(frozen=True)
class TaskInfo:
    """One task instance, fully resolved against the ownership map."""

    key: tuple
    kind: str  # potrf | trsm | syrk | gemm
    i: int
    j: int
    step: int
    name: str
    stream: str  # "panel" | "update"
    reads: tuple  # factor rows ``a`` consumed (the tiles (a, step))
    local_deps: tuple  # dependency keys executed by this same unit
    work: KernelWork


@dataclass(frozen=True)
class StepPlan:
    """Everything every unit does at one elimination step.

    ``tasks[u]``: that unit's tasks in the canonical global order.
    ``recvs[u]``: ``[(a, src_unit)]`` factor tiles arriving, ascending ``a``.
    ``sends[u]``: ``[(a, (dest_unit, ...))]`` factor tiles produced here and
    needed elsewhere, ascending ``a`` (which is also production order).
    """

    step: int
    tasks: dict
    recvs: dict
    sends: dict


class CholeskyContext:
    """One Cholesky run's immutable context, shared by all units."""

    def __init__(self, config: CholeskyConfig, initial_state: Optional[dict] = None):
        if initial_state is not None:
            raise ValueError("cholesky does not support checkpoint restart")
        self.config = config
        t = config.tiles
        u_count = config.n_blocks()
        self.n_units = u_count
        # Row-major lower-triangle tile order; round-robin (1-D cyclic) owners.
        self.tile_list = [(i, j) for i in range(t) for j in range(i + 1)]
        self.owner = {tl: seq % u_count for seq, tl in enumerate(self.tile_list)}
        self.unit_tiles = {u: [] for u in range(u_count)}
        for tl in self.tile_list:
            self.unit_tiles[self.owner[tl]].append(tl)
        self.tasks = TaskSpace(name="cholesky")
        self.plan = [self._plan_step(k) for k in range(t)]
        self.metrics = FallbackMetrics(u_count, warmup=0)
        self.residuals = (ResidualHistory(u_count, t) if config.functional else None)
        if config.functional:
            self.matrix, self.expected_factor = generate_spd(config.n, config.seed)
        else:
            self.matrix = self.expected_factor = None

    # -- planning ----------------------------------------------------------
    def _step_task_keys(self, k: int) -> list:
        """The step's tasks in canonical global (topological) order."""
        t = self.config.tiles
        keys = [("potrf", k)]
        keys += [("trsm", i, k) for i in range(k + 1, t)]
        keys += [upd_key(i, j, k) for i in range(k + 1, t) for j in range(k + 1, i + 1)]
        return keys

    def _task_info(self, key: tuple) -> TaskInfo:
        b = self.config.tile
        tb = float(b) * b * 8.0
        flops = float(b) ** 3
        kind = key[0]
        if kind == "potrf":
            k = key[1]
            i = j = k
            name, stream = f"potrf.{k}", "panel"
            reads, deps = (), ([upd_key(k, k, k - 1)] if k else [])
            work = KernelWork(2 * tb, flops / 3)
        elif kind == "trsm":
            _, i, k = key
            j = k
            name, stream = f"trsm.{i}.{k}", "panel"
            reads = (k,)
            deps = [("potrf", k)] + ([upd_key(i, k, k - 1)] if k else [])
            work = KernelWork(3 * tb, flops)
        elif kind == "syrk":
            _, j, k = key
            i = j
            name, stream = f"syrk.{j}.{k}", "update"
            reads = (j,)
            deps = [("trsm", j, k)] + ([upd_key(j, j, k - 1)] if k else [])
            work = KernelWork(3 * tb, flops)
        else:  # gemm
            _, i, j, k = key
            name, stream = f"gemm.{i}.{j}.{k}", "update"
            reads = (i, j)
            deps = [("trsm", i, k), ("trsm", j, k)]
            deps += [upd_key(i, j, k - 1)] if k else []
            work = KernelWork(4 * tb, 2 * flops)
        me = self.owner[(i, j)]
        local = tuple(d for d in deps if self._task_unit(d) == me)
        self.tasks.declare(key, deps=deps, unit=me)
        return TaskInfo(key=key, kind=kind, i=i, j=j, step=key[-1], name=name,
                        stream=stream, reads=tuple(reads), local_deps=local,
                        work=work)

    def _task_unit(self, key: tuple) -> int:
        kind = key[0]
        if kind == "potrf":
            return self.owner[(key[1], key[1])]
        if kind == "trsm":
            return self.owner[(key[1], key[2])]
        if kind == "syrk":
            return self.owner[(key[1], key[1])]
        return self.owner[(key[1], key[2])]

    def _readers(self, a: int, k: int) -> list:
        """Units consuming factor tile ``(a, k)`` at step ``k``, sorted."""
        t = self.config.tiles
        if a == k:
            units = {self.owner[(i, k)] for i in range(k + 1, t)}
        else:
            units = {self.owner[(a, j)] for j in range(k + 1, a + 1)}
            units |= {self.owner[(i, a)] for i in range(a, t)}
        return sorted(units)

    def _plan_step(self, k: int) -> StepPlan:
        t = self.config.tiles
        tasks: dict = {}
        for key in self._step_task_keys(k):
            info = self._task_info(key)
            tasks.setdefault(self._task_unit(key), []).append(info)
        recvs: dict = {}
        sends: dict = {}
        for a in range(k, t):
            producer = self._task_unit(factor_producer(a, k))
            dests = [r for r in self._readers(a, k) if r != producer]
            if dests:
                sends.setdefault(producer, []).append((a, tuple(dests)))
                for r in dests:
                    recvs.setdefault(r, []).append((a, producer))
        return StepPlan(step=k, tasks=tasks, recvs=recvs, sends=sends)

    # -- driver hooks ------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return (self.n_units,)

    def max_payload_bytes(self) -> int:
        """Largest single message payload: one factor tile."""
        return self.config.tile_bytes()

    def unit_data(self, u: int) -> "CholeskyData":
        return CholeskyData(self, u)

    def unit_device_bytes(self, u: int) -> int:
        """Owned tiles plus a small working set of received factor tiles."""
        return self.config.tile_bytes() * (len(self.unit_tiles[u]) + 2)


class CholeskyData:
    """One unit's tile storage and functional mirror.

    In modeled mode every ``f_*`` method is a no-op returning ``None`` —
    exactly the stencil :class:`~repro.apps.stencil.context.BlockData`
    convention, so the frontends call them unconditionally.
    """

    def __init__(self, ctx: CholeskyContext, u: int):
        self.ctx = ctx
        self.u = u
        self.owned = list(ctx.unit_tiles[u])
        self.functional = ctx.config.functional
        self.tiles = {}
        self._received = {}
        self._step_delta = 0.0
        if self.functional:
            b = ctx.config.tile
            for (i, j) in self.owned:
                self.tiles[(i, j)] = ctx.matrix[
                    i * b:(i + 1) * b, j * b:(j + 1) * b].copy()

    # -- functional task bodies -------------------------------------------
    def _bump(self, old: np.ndarray, new: np.ndarray) -> None:
        delta = float(np.max(np.abs(new - old))) if new.size else 0.0
        if delta > self._step_delta:
            self._step_delta = delta

    def f_run_task(self, info: TaskInfo) -> None:
        """Execute the task's numerics against the local tile store."""
        if not self.functional:
            return
        i, j, k = info.i, info.j, info.step
        if info.kind == "potrf":
            old = self.tiles[(k, k)]
            self.tiles[(k, k)] = potrf_tile(old)
        elif info.kind == "trsm":
            old = self.tiles[(i, k)]
            self.tiles[(i, k)] = trsm_tile(self.f_factor(k, k), old)
        elif info.kind == "syrk":
            old = self.tiles[(j, j)]
            self.tiles[(j, j)] = syrk_update(old, self.f_factor(j, k))
        else:
            old = self.tiles[(i, j)]
            self.tiles[(i, j)] = gemm_update(
                old, self.f_factor(i, k), self.f_factor(j, k))
        self._bump(old, self.tiles[(i, j)])

    def f_factor(self, a: int, k: int):
        """Factor tile ``(a, k)`` — owned locally or received this step."""
        if not self.functional:
            return None
        if (a, k) in self.tiles:
            return self.tiles[(a, k)]
        return self._received[(k, a)]

    def f_factor_payload(self, a: int, k: int):
        """Copy of a locally-produced factor tile, for sending."""
        if not self.functional:
            return None
        return self.tiles[(a, k)].copy()

    def f_store_factor(self, k: int, a: int, data) -> None:
        if not self.functional:
            return
        self._received[(k, a)] = data

    def f_finish_step(self, k: int) -> None:
        """Record this unit's step residual (0.0 when the unit had no
        tasks) and drop factor tiles received for the finished step."""
        if not self.functional:
            return
        self.ctx.residuals.record((self.u,), k, self._step_delta)
        self._step_delta = 0.0
        self._received = {}

    def f_interior(self) -> dict:
        """Driver hook: this unit's final owned tiles."""
        return {tl: arr.copy() for tl, arr in self.tiles.items()}
