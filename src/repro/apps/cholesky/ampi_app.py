"""AMPI Cholesky frontend: the *unchanged* MPI rank program on Charm++,
with ``odf`` virtual ranks per PE.  Overdecomposition is exactly what a
task-DAG workload wants: panel-critical ranks suspend in ``wait`` and
other virtual ranks on the PE fill the gap with trailing updates."""

from __future__ import annotations

from ...ampi import AmpiProcess
from .context import CholeskyContext
from .rank_program import make_cholesky_rank_program

__all__ = ["make_cholesky_ampi_rank_class"]


def make_cholesky_ampi_rank_class(ctx: CholeskyContext):
    """A fresh virtual-rank class bound to this run's context."""

    class CholeskyAmpiRank(make_cholesky_rank_program(ctx), AmpiProcess):
        def init(self):
            # pe/gpu are bound only when the hosting chare attaches —
            # device setup must wait for main().
            self._bind_unit()

        def main(self, msg=None):
            self._setup_device()
            yield from self._main_body()

    return CholeskyAmpiRank
