"""Tiled right-looking Cholesky factorization as a task DAG.

The third registered workload, and the first *non-stencil* one: instead
of a fixed halo-exchange pattern, each elimination step spawns
POTRF/TRSM/SYRK/GEMM tile tasks whose dependencies are declared in a
:class:`~repro.runtime.taskspace.TaskSpace` ledger and enforced through
kernel-completion events — the dependency-driven workload class that
motivates overdecomposition in the first place.  Charm++, AMPI and plain
MPI frontends execute the identical DAG; functional mode validates the
assembled factor bitwise against ``numpy.linalg.cholesky`` (see
:mod:`.ops` for why bitwise equality is attainable at all).
"""

from ...hardware.specs import MachineSpec
from ..registry import AppSpec, register
from .ampi_app import make_cholesky_ampi_rank_class
from .charm_app import make_cholesky_block_class
from .config import CholeskyConfig, CholeskyResult
from .context import CholeskyContext, CholeskyData
from .mpi_app import make_cholesky_rank_class
from .ops import generate_spd, reference_cholesky_tiles
from .phases import CHOLESKY_PHASES, CHOLESKY_PHASE_KERNELS, classify_cholesky_op

__all__ = [
    "CHOLESKY_PHASES",
    "CholeskyConfig",
    "CholeskyContext",
    "CholeskyData",
    "CholeskyResult",
    "SPEC",
    "classify_cholesky_op",
    "generate_spd",
    "reference_cholesky_tiles",
]


def _differential_base() -> CholeskyConfig:
    """A functional-mode factorization small enough to run the full matrix
    in seconds, with enough tiles that every task kind and remote
    dependency shape occurs."""
    return CholeskyConfig(
        version="charm-d",
        nodes=1,
        tiles=5,
        tile=8,
        odf=2,
        data_mode="functional",
        machine=MachineSpec.small_debug(),
    )


def _differential_cases(base: CholeskyConfig, quick: bool) -> list:
    """Cholesky's own matrix: the six runtimes, plus (full mode) ODF
    variants — the factor and residuals are decomposition-independent, so
    unlike the collectives app the overdecomposition axis *can* vary."""
    base = base.with_(version="charm-d")
    cases = [
        ("charm-d", base),
        ("charm-h", base.with_(version="charm-h")),
        ("ampi-d", base.with_(version="ampi-d")),
        ("ampi-h", base.with_(version="ampi-h")),
        ("mpi-d", base.with_(version="mpi-d", odf=1)),
        ("mpi-h", base.with_(version="mpi-h", odf=1)),
    ]
    if not quick:
        cases += [
            ("charm-d odf=1", base.with_(odf=1)),
            ("charm-d odf=4", base.with_(odf=4)),
            ("ampi-d odf=4", base.with_(version="ampi-d", odf=4)),
        ]
    return cases


def _golden_configs() -> dict:
    """The canonical Cholesky configs pinned under ``tests/golden/``."""
    base = CholeskyConfig(
        nodes=1, tiles=4, tile=32, machine=MachineSpec.small_debug(),
    )
    return {
        "cholesky-charm-d": base.with_(version="charm-d", odf=2),
        "cholesky-mpi-h": base.with_(version="mpi-h", odf=1),
    }


SPEC = register(AppSpec(
    name="cholesky",
    description="tiled Cholesky factorization — dependency-driven task DAG",
    config_cls=CholeskyConfig,
    result_cls=CholeskyResult,
    make_context=CholeskyContext,
    make_block_class=make_cholesky_block_class,
    make_rank_class=make_cholesky_rank_class,
    make_ampi_rank_class=make_cholesky_ampi_rank_class,
    phases=CHOLESKY_PHASES,
    classify_op=classify_cholesky_op,
    phase_kernels=CHOLESKY_PHASE_KERNELS,
    differential_base=_differential_base,
    golden_configs=_golden_configs,
    differential_cases=_differential_cases,
))
