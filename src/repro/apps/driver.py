"""The generic application driver: run any registered app end to end.

:func:`run_app` owns everything that is *not* app-specific — engine,
cluster, tracer/observatory attachment, invariant checking, metrics
collection, and result assembly.  The app supplies only its config class,
context factory and frontend block/rank classes, all looked up through its
:class:`~repro.apps.registry.AppSpec`.
"""

from __future__ import annotations

from typing import Optional

from ..ampi import AmpiWorld
from ..hardware import COMPUTE, Cluster
from ..mpi import MpiWorld
from ..obs.timeline import compute_comm_overlap
from ..runtime import CharmRuntime
from ..sim import Engine, Tracer, trace
from ..validate.invariants import InvariantChecker
from .registry import spec_for

__all__ = ["run_app"]


def run_app(
    config,
    tracer: Optional[Tracer] = None,
    initial_state: Optional[dict] = None,
    validate: bool = False,
    observatory=None,
    context_out: Optional[list] = None,
    sanitize=False,
    context_hook=None,
):
    """Simulate one run of ``config``'s app; returns measurements (and, in
    functional mode, every block's final interior).

    ``initial_state`` (functional mode): block index -> interior array, to
    continue from a checkpoint/restart instead of the cold initial
    condition.  The decomposition depends only on the total block count, so
    a checkpoint taken on N nodes restarts cleanly on M nodes whenever
    ``n_blocks`` matches (overdecomposition absorbs the difference).

    ``validate=True`` attaches an :class:`~repro.validate.InvariantChecker`
    for the whole run and raises :class:`~repro.validate.InvariantError`
    if any simulation invariant is breached.  Monitors are pure observers:
    the event schedule (and therefore every result) is unchanged.

    ``sanitize`` attaches a happens-before concurrency
    :class:`~repro.sanitize.Sanitizer` (another pure observer — see
    docs/sanitizer.md).  ``True`` creates one and raises
    :class:`~repro.sanitize.SanitizerError` on findings; passing a
    ``Sanitizer`` instance attaches it and leaves the findings for the
    caller to inspect (what ``repro sanitize`` does).

    ``observatory`` (an :class:`~repro.obs.Observatory`) attaches a tracer
    *and* a metrics registry for perf reporting; pass either it or a bare
    ``tracer``, not both.

    ``context_out`` (a list): receives the app context right after
    construction, so post-run audits can read app-side ledgers — the DAG
    property suite inspects the Cholesky
    :class:`~repro.runtime.taskspace.TaskSpace` journal through this hook.

    ``context_hook`` (callable): invoked with the context before any
    frontend is built — the seam the sanitizer's fault injectors use to
    deliberately corrupt a plan (e.g. drop a declared DAG edge) and prove
    the detectors fire.
    """
    spec = spec_for(config)
    if observatory is not None and tracer is not None:
        raise ValueError("pass either tracer= or observatory=, not both")
    engine = Engine()
    if tracer is not None:
        tracer.attach(engine)
    cluster = Cluster(engine, config.machine, config.nodes)
    if observatory is not None:
        observatory.begin(engine, cluster)
    checker = None
    if validate:
        checker = InvariantChecker().attach(engine)
        checker.watch_cluster(cluster)
    sanitizer = None
    if sanitize:
        from ..sanitize import Sanitizer

        sanitizer = sanitize if isinstance(sanitize, Sanitizer) else Sanitizer()
        sanitizer.attach(engine)
    ctx = spec.make_context(config, initial_state=initial_state)
    if context_out is not None:
        context_out.append(ctx)
    if context_hook is not None:
        context_hook(ctx)
    metrics = ctx.metrics

    def observer(name, unit, **data):
        metrics.on_event(name, unit, now=engine.now, **data)
        if name == "iter_done" and engine.tracer is not None:
            key = getattr(unit, "index", None) or getattr(unit, "rank", None)
            trace(engine, "app.iter_done", str(key), iter=data["iter"])

    blocks = None
    if config.is_charm:
        runtime = CharmRuntime(cluster)
        runtime.observe(observer)
        if checker is not None:
            checker.watch_ucx(runtime.ucx)
            checker.watch_runtime(runtime)
        if sanitizer is not None:
            sanitizer.watch_runtime(runtime)
        array = runtime.create_array(
            spec.make_block_class(ctx), shape=ctx.shape, mapping="block", name=spec.name
        )
        array.broadcast("run")
        runtime.run()
        ucx = runtime.ucx
        if config.functional:
            blocks = {idx: ch.data.f_interior() for idx, ch in array.elements.items()}
    elif config.is_ampi:
        world = AmpiWorld(cluster, vranks=config.n_blocks())
        world.observe(observer)
        if checker is not None:
            checker.watch_ucx(world.runtime.ucx)
            checker.watch_runtime(world.runtime)
        if sanitizer is not None:
            sanitizer.watch_runtime(world.runtime)
        ranks = world.launch(spec.make_ampi_rank_class(ctx))
        world.run()
        ucx = world.runtime.ucx
        if config.functional:
            blocks = {r.index: r.data.f_interior() for r in ranks}
    else:
        world = MpiWorld(cluster)
        world.observe(observer)
        if checker is not None:
            checker.watch_ucx(world.ucx)
        ranks = world.launch(spec.make_rank_class(ctx))
        world.run()
        ucx = world.ucx
        if config.functional:
            blocks = {r.index: r.data.f_interior() for r in ranks}

    metrics.check_complete(config.total_iterations)
    if checker is not None:
        checker.finish()
    if sanitizer is not None:
        sanitizer.finish(raise_on_findings=sanitize is True)
    t_end = engine.now
    t_warm = metrics.warmup_boundary
    measured = t_end - t_warm
    if measured <= 0:
        raise RuntimeError("measured window is empty; increase iterations")
    per_iteration = metrics.time_per_iteration(config.iterations)

    # All busy/overlap accounting is windowed to the measured (post-warmup)
    # interval so warmup iterations do not inflate utilization.
    gpu_busy = sum(
        gpu.trackers[COMPUTE].busy_seconds(t_warm, t_end)
        for node in cluster.nodes
        for gpu in node.gpus
    )
    overlap = compute_comm_overlap(cluster)
    window = measured * cluster.n_gpus
    pe_busy = sum(pe.busy.busy_seconds(t_warm, t_end) for pe in cluster.all_pes())

    return spec.result_cls(
        config=config,
        total_time=t_end,
        warmup_boundary=t_warm,
        time_per_iteration=per_iteration,
        gpu_busy_s=gpu_busy,
        gpu_utilization=min(1.0, gpu_busy / window) if window > 0 else 0.0,
        pe_busy_s=pe_busy,
        messages_sent=cluster.network.messages_sent,
        bytes_sent=cluster.network.bytes_sent,
        protocol_counts=dict(ucx.protocol_counts),
        overlap_s=overlap,
        max_halo_bytes=ctx.max_payload_bytes(),
        blocks=blocks,
        residuals=ctx.residuals.history() if config.functional else None,
    )
