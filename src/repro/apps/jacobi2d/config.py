"""Configuration and result types for the Jacobi2D workload.

Jacobi2D is the second registered application: a 5-point stencil on a 2D
grid, run through the *same* charm/mpi/ampi frontends, fusion strategies
and CUDA-graphs path as Jacobi3D — it exists to prove the app framework is
real (and it exercises the stencil core at a different dimensionality, a
different neighbour count, and different surface-to-volume ratios).

The default grid matches Jacobi3D's default cell count per node order of
magnitude; functional mode follows the same cell limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..stencil.config import ALL_VERSIONS, VERSIONS, StencilConfig, StencilResult

__all__ = ["Jacobi2DConfig", "Jacobi2DResult", "VERSIONS", "ALL_VERSIONS"]


@dataclass(frozen=True)
class Jacobi2DConfig(StencilConfig):
    """One Jacobi2D run (see :class:`~repro.apps.stencil.config.
    StencilConfig` for the full parameter reference)."""

    APP: ClassVar[str] = "jacobi2d"
    NDIM: ClassVar[int] = 2

    grid: tuple = (1536, 1536)


#: Jacobi2D results are plain stencil results (the config pins the app).
Jacobi2DResult = StencilResult
