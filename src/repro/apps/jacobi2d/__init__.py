"""Jacobi2D: a 5-point 2D stencil on the shared stencil core.

The second registered workload — it reuses the charm/mpi/ampi frontends,
fusion strategies A/B/C, CUDA graphs, the legacy-sync baseline and the
functional/modeled data modes verbatim from :mod:`repro.apps.stencil`;
only the dimensionality (and with it the neighbour set: 4 faces instead
of 6) and the boundary condition (the hot-edge problem) differ.
"""

from ...hardware.specs import MachineSpec
from ..registry import AppSpec, register
from ..stencil import (
    STENCIL_PHASES,
    STENCIL_PHASE_KERNELS,
    StencilContext,
    StencilResult,
    classify_stencil_op,
    make_ampi_rank_class,
    make_block_class,
    make_rank_class,
)
from .config import ALL_VERSIONS, VERSIONS, Jacobi2DConfig, Jacobi2DResult

__all__ = [
    "VERSIONS",
    "ALL_VERSIONS",
    "Jacobi2DConfig",
    "Jacobi2DResult",
    "SPEC",
]


def _differential_base() -> Jacobi2DConfig:
    """A functional-mode 2D problem small enough to run the full matrix in
    seconds, large enough that every block has interior cells and real
    halo traffic on all four edges."""
    return Jacobi2DConfig(
        version="charm-d",
        nodes=1,
        grid=(16, 16),
        odf=2,
        iterations=4,
        warmup=1,
        data_mode="functional",
        machine=MachineSpec.small_debug(),
    )


def _golden_configs() -> dict:
    """The canonical 2D configs pinned under ``tests/golden/<name>.json``."""
    base = Jacobi2DConfig(
        nodes=1, grid=(48, 48), odf=2, iterations=4, warmup=1,
        machine=MachineSpec.small_debug(),
    )
    return {
        "jacobi2d-charm-d": base.with_(version="charm-d"),
        "jacobi2d-mpi-h": base.with_(version="mpi-h", odf=1),
    }


SPEC = register(AppSpec(
    name="jacobi2d",
    description="5-point 2D Jacobi stencil — proves the app framework",
    config_cls=Jacobi2DConfig,
    result_cls=StencilResult,
    make_context=StencilContext,
    make_block_class=make_block_class,
    make_rank_class=make_rank_class,
    make_ampi_rank_class=make_ampi_rank_class,
    phases=STENCIL_PHASES,
    classify_op=classify_stencil_op,
    phase_kernels=STENCIL_PHASE_KERNELS,
    differential_base=_differential_base,
    golden_configs=_golden_configs,
))
