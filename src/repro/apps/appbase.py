"""Shared config/result machinery for non-stencil applications.

The stencil family grew its own config/result base first
(:mod:`repro.apps.stencil.config`); this module factors the app-agnostic
half of that contract so task-DAG and collective apps (cholesky,
allreduce) can plug into the same driver, cache, differential matrix and
golden store without inheriting stencil-only axes (grid, fusion, CUDA
graphs, legacy sync).

* :class:`BaseAppConfig` — the minimal config surface the generic driver
  (:func:`repro.apps.driver.run_app`) and the exec layer rely on:
  version/nodes/odf/data_mode/machine plus the derived predicates and the
  ``to_dict``/``from_dict``/cache-key conventions.
* :class:`AppResult` — the measured outcome every app run produces; the
  driver constructs it field-by-field, so its field list *is* the driver
  contract.  :class:`~repro.apps.stencil.config.StencilResult` subclasses
  it (adding grid assembly), as do the cholesky/allreduce results.
* :class:`FallbackMetrics` — a :class:`~repro.apps.stencil.context.
  MetricsCollector` whose period estimate degrades gracefully for runs
  with a single measured step (e.g. a one-tile Cholesky factorization).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, ClassVar, Optional

from ..hardware.specs import MachineSpec

__all__ = ["ALL_VERSIONS", "AppResult", "BaseAppConfig", "FallbackMetrics"]

#: Same runnable-frontend vocabulary as the stencil apps (paper's four
#: versions plus the AMPI extension pair).
ALL_VERSIONS = ("mpi-h", "mpi-d", "charm-h", "charm-d", "ampi-h", "ampi-d")


@dataclass(frozen=True)
class BaseAppConfig:
    """Config base for non-stencil apps.

    Subclasses declare :attr:`APP`, append their own axes, and call
    :meth:`_validate_common` from ``__post_init__``.  ``iterations`` and
    ``warmup`` are *not* fields here — iterative apps add them as fields,
    DAG apps derive them (Cholesky's step count is its tile count).
    """

    #: Registry name of the app this config class belongs to.
    APP: ClassVar[str] = ""

    version: str = "charm-d"
    nodes: int = 1
    odf: int = 1
    data_mode: str = "modeled"
    machine: MachineSpec = None  # type: ignore[assignment]

    def _validate_common(self) -> None:
        if not type(self).APP:
            raise TypeError("BaseAppConfig is abstract: subclasses must set APP")
        if self.machine is None:
            object.__setattr__(self, "machine", MachineSpec.summit())
        if self.version not in ALL_VERSIONS:
            raise ValueError(
                f"unknown version {self.version!r}; expected one of {ALL_VERSIONS}")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.odf < 1:
            raise ValueError("odf must be >= 1")
        if self.is_mpi and self.odf != 1:
            raise ValueError("MPI versions run one rank per GPU (odf must be 1)")
        if self.data_mode not in ("modeled", "functional"):
            raise ValueError(f"bad data_mode {self.data_mode!r}")

    # -- derived (same vocabulary as StencilConfig) -------------------------
    @property
    def app(self) -> str:
        """Registry name of this config's app."""
        return type(self).APP

    @property
    def is_mpi(self) -> bool:
        return self.version.startswith("mpi")

    @property
    def is_charm(self) -> bool:
        return self.version.startswith("charm")

    @property
    def is_ampi(self) -> bool:
        return self.version.startswith("ampi")

    @property
    def gpu_aware(self) -> bool:
        """Device-resident payloads (CUDA-aware MPI / Channel API)."""
        return self.version.endswith("-d")

    @property
    def functional(self) -> bool:
        return self.data_mode == "functional"

    @property
    def total_iterations(self) -> int:
        return self.warmup + self.iterations

    def n_pes(self) -> int:
        return self.nodes * self.machine.node.pes_per_node

    def n_blocks(self) -> int:
        """Participating units: one per PE for MPI, ``odf`` per PE for the
        overdecomposed runtimes."""
        return self.n_pes() * (1 if self.is_mpi else self.odf)

    def with_(self, **kwargs) -> "BaseAppConfig":
        """A modified copy (sweep/matrix helper)."""
        return replace(self, **kwargs)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form; the ``app`` name leads so the content-addressed
        cache (:mod:`repro.exec.cache`) never aliases two apps' runs."""
        out = {"app": type(self).APP}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = value.to_dict() if f.name == "machine" else value
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "BaseAppConfig":
        """Inverse of :meth:`to_dict` (revalidates via ``__post_init__``).
        ``app`` (when present) must name *this* class's app — use
        :func:`repro.apps.registry.config_from_dict` to dispatch a dict of
        unknown provenance."""
        d = dict(d)
        app = d.pop("app", cls.APP)
        if app != cls.APP:
            raise ValueError(
                f"config dict is for app {app!r}, not {cls.APP!r} "
                "(use repro.apps.registry.config_from_dict)"
            )
        if isinstance(d.get("machine"), dict):
            d["machine"] = MachineSpec.from_dict(d["machine"])
        return cls(**d)


@dataclass
class AppResult:
    """Measured outcome of one app run.

    The generic driver constructs this field-by-field, so every registered
    app's result class is this dataclass (or a subclass adding app-specific
    assembly helpers).  ``max_halo_bytes`` is the largest single message
    payload of the run — named after the stencil apps' halos for cache/golden
    continuity, but any app's dominant payload (a Cholesky tile, an
    allreduce chunk) lands in the same field.
    """

    config: Any
    total_time: float
    warmup_boundary: float
    time_per_iteration: float
    gpu_busy_s: float
    gpu_utilization: float
    pe_busy_s: float
    messages_sent: int
    bytes_sent: int
    protocol_counts: dict
    overlap_s: float
    max_halo_bytes: int
    blocks: Optional[dict] = None  # functional mode: unit index -> final data
    residuals: Optional[list] = None  # functional mode: per-iteration exact combiner

    def assemble_state(self):
        """Stitch functional-mode per-unit data into one comparable global
        array (the differential matrix compares this bitwise across
        frontends).  Subclasses implement the app-specific assembly."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement assemble_state()")

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form for cache persistence.  Functional-mode results
        carry NumPy data and are deliberately not serializable (they are
        also the one case where re-running is the point)."""
        if self.blocks is not None:
            raise ValueError("functional-mode results (with blocks) are not serializable")
        return {
            "config": self.config.to_dict(),
            "total_time": self.total_time,
            "warmup_boundary": self.warmup_boundary,
            "time_per_iteration": self.time_per_iteration,
            "gpu_busy_s": self.gpu_busy_s,
            "gpu_utilization": self.gpu_utilization,
            "pe_busy_s": self.pe_busy_s,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "protocol_counts": {p.value: c for p, c in self.protocol_counts.items()},
            "overlap_s": self.overlap_s,
            "max_halo_bytes": self.max_halo_bytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AppResult":
        """Inverse of :meth:`to_dict`.  Floats round-trip exactly through
        JSON (``repr`` round-trip), so a cached result is bit-identical to
        the run that produced it.  The embedded config dict is dispatched to
        the right app's config class via the registry."""
        from ..comm.protocols import Protocol
        from .registry import config_from_dict

        return cls(
            config=config_from_dict(d["config"]),
            total_time=d["total_time"],
            warmup_boundary=d["warmup_boundary"],
            time_per_iteration=d["time_per_iteration"],
            gpu_busy_s=d["gpu_busy_s"],
            gpu_utilization=d["gpu_utilization"],
            pe_busy_s=d["pe_busy_s"],
            messages_sent=d["messages_sent"],
            bytes_sent=d["bytes_sent"],
            protocol_counts={Protocol(k): v for k, v in d["protocol_counts"].items()},
            overlap_s=d["overlap_s"],
            max_halo_bytes=d["max_halo_bytes"],
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        cfg = self.config
        odf = f" (odf={cfg.odf})" if not cfg.is_mpi else ""
        return (
            f"{cfg.app} {cfg.version}{odf} nodes={cfg.nodes}: "
            f"{self.time_per_iteration * 1e3:.3f} ms/iter, "
            f"GPU util {self.gpu_utilization * 100:.0f}%"
        )


_FALLBACK_METRICS = None


def _make_fallback_metrics():
    """Deferred import: the stencil config imports this module, so building
    the subclass at load time would close an import cycle through
    ``stencil.context``."""
    from .stencil.context import MetricsCollector

    class FallbackMetrics(MetricsCollector):
        """A :class:`MetricsCollector` that degrades gracefully when no unit
        records two post-warmup completions (a one-step run, e.g. a
        single-tile Cholesky): the period falls back to the whole measured
        window divided by the measured step count."""

        def time_per_iteration(self, measured_iterations: int) -> float:
            try:
                return super().time_per_iteration(measured_iterations)
            except RuntimeError:
                finishes = [t[-1] for t in self._tail_times.values() if t]
                if not finishes:
                    raise
                window = max(finishes) - self.warmup_boundary
                return window / max(1, measured_iterations)

    return FallbackMetrics


def __getattr__(name):  # PEP 562: lazy FallbackMetrics (import-cycle break)
    global _FALLBACK_METRICS
    if name == "FallbackMetrics":
        if _FALLBACK_METRICS is None:
            _FALLBACK_METRICS = _make_fallback_metrics()
        return _FALLBACK_METRICS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
