"""Backward-compatible entry point for the shared rank program
(:mod:`repro.apps.stencil.rank_program`)."""

from __future__ import annotations

from ..stencil.rank_program import make_rank_program

__all__ = ["make_rank_program"]
