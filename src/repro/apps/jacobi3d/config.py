"""Configuration and result types for the Jacobi3D proxy application.

Jacobi3D is the paper's workload: a 7-point stencil on a 3D grid.  All of
the configuration surface (versions, ODF, fusion, CUDA graphs, data modes)
lives in the shared :class:`~repro.apps.stencil.config.StencilConfig`; this
module only pins the app identity and the paper's default grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from ..stencil.config import ALL_VERSIONS, VERSIONS, StencilConfig, StencilResult

__all__ = ["Jacobi3DConfig", "Jacobi3DResult", "VERSIONS", "ALL_VERSIONS"]


@dataclass(frozen=True)
class Jacobi3DConfig(StencilConfig):
    """One Jacobi3D run (see :class:`~repro.apps.stencil.config.
    StencilConfig` for the full parameter reference)."""

    APP: ClassVar[str] = "jacobi3d"
    NDIM: ClassVar[int] = 3

    grid: tuple = (192, 192, 192)


#: Jacobi3D results are plain stencil results (the config pins the app).
Jacobi3DResult = StencilResult
