"""Backward-compatible Jacobi3D driver entry point.

The run loop is app-agnostic and lives in :func:`repro.apps.driver.run_app`
(which also resolved the historical circular import: the generic driver
imports :mod:`repro.validate.invariants` at module level, and the
``validate`` package's differential layer is loaded lazily through PEP 562
so the cycle never forms).  ``run_jacobi3d`` survives as the established
name — it accepts any registered app's config, exactly like ``run_app``.
"""

from __future__ import annotations

from ..driver import run_app as run_jacobi3d

__all__ = ["run_jacobi3d"]
