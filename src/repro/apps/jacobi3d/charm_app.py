"""Backward-compatible entry point for the Charm++ stencil frontend.

The chare class is dimension-generic and lives in
:mod:`repro.apps.stencil.charm_app`; Jacobi3D uses it unchanged.
"""

from __future__ import annotations

from ..stencil.charm_app import make_block_class

__all__ = ["make_block_class"]
