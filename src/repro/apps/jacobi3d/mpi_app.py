"""Backward-compatible entry point for the MPI stencil frontend
(:mod:`repro.apps.stencil.mpi_app`)."""

from __future__ import annotations

from ..stencil.mpi_app import make_rank_class

__all__ = ["make_rank_class"]
