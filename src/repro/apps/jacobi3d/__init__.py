"""Jacobi3D: the paper's proxy application, in four versions.

* ``mpi-h`` — MPI with application-level host staging
* ``mpi-d`` — CUDA-aware MPI
* ``charm-h`` — Charm++ with host staging (+ automatic overlap via ODF)
* ``charm-d`` — Charm++ with GPU-aware communication (Channel API)

plus kernel-fusion strategies A/B/C, CUDA Graphs, the legacy
pre-optimization baseline of Fig. 6, and two extensions: a manual-overlap
MPI branch and AMPI frontends (``ampi-h``/``ampi-d``) running the
unchanged MPI rank program as virtualized ranks on the Charm++ runtime.
"""

from .ampi_app import make_ampi_rank_class
from .charm_app import make_block_class
from .config import ALL_VERSIONS, VERSIONS, Jacobi3DConfig, Jacobi3DResult
from .context import AppContext, BlockData, MetricsCollector, ResidualHistory
from .driver import run_jacobi3d
from .mpi_app import make_rank_class
from .rank_program import make_rank_program

__all__ = [
    "make_block_class",
    "VERSIONS",
    "ALL_VERSIONS",
    "Jacobi3DConfig",
    "Jacobi3DResult",
    "AppContext",
    "BlockData",
    "MetricsCollector",
    "ResidualHistory",
    "run_jacobi3d",
    "make_rank_class",
    "make_ampi_rank_class",
    "make_rank_program",
]
