"""Jacobi3D: the paper's proxy application, in four versions.

* ``mpi-h`` — MPI with application-level host staging
* ``mpi-d`` — CUDA-aware MPI
* ``charm-h`` — Charm++ with host staging (+ automatic overlap via ODF)
* ``charm-d`` — Charm++ with GPU-aware communication (Channel API)

plus kernel-fusion strategies A/B/C, CUDA Graphs, the legacy
pre-optimization baseline of Fig. 6, and two extensions: a manual-overlap
MPI branch and AMPI frontends (``ampi-h``/``ampi-d``) running the
unchanged MPI rank program as virtualized ranks on the Charm++ runtime.

The mechanics all live in the shared stencil core
(:mod:`repro.apps.stencil`); this package pins the 3D app identity and
registers its :class:`~repro.apps.registry.AppSpec`.
"""

from ...hardware.specs import MachineSpec
from ..registry import AppSpec, register
from ..stencil import (
    STENCIL_PHASES,
    STENCIL_PHASE_KERNELS,
    StencilContext,
    StencilResult,
    classify_stencil_op,
    make_ampi_rank_class,
    make_block_class,
    make_rank_class,
    make_rank_program,
)
from .config import ALL_VERSIONS, VERSIONS, Jacobi3DConfig, Jacobi3DResult
from .context import AppContext, BlockData, MetricsCollector, ResidualHistory
from .driver import run_jacobi3d

__all__ = [
    "make_block_class",
    "VERSIONS",
    "ALL_VERSIONS",
    "Jacobi3DConfig",
    "Jacobi3DResult",
    "AppContext",
    "BlockData",
    "MetricsCollector",
    "ResidualHistory",
    "run_jacobi3d",
    "make_rank_class",
    "make_ampi_rank_class",
    "make_rank_program",
    "SPEC",
]


def _differential_base() -> Jacobi3DConfig:
    """A functional-mode problem small enough to run the full matrix in
    seconds, large enough that every block has interior cells and real
    halo traffic on all six faces."""
    return Jacobi3DConfig(
        version="charm-d",
        nodes=1,
        grid=(16, 16, 16),
        odf=2,
        iterations=4,
        warmup=1,
        data_mode="functional",
        machine=MachineSpec.small_debug(),
    )


def _golden_configs() -> dict:
    """The canonical configs pinned under ``tests/golden/<name>.json``."""
    base = Jacobi3DConfig(
        nodes=1, grid=(48, 48, 48), odf=2, iterations=4, warmup=1,
        machine=MachineSpec.small_debug(),
    )
    return {
        "charm-d": base.with_(version="charm-d"),
        "charm-h": base.with_(version="charm-h"),
        "ampi-d": base.with_(version="ampi-d"),
        "mpi-d": base.with_(version="mpi-d", odf=1),
        "mpi-h": base.with_(version="mpi-h", odf=1),
        "charm-d-fusion-b": base.with_(version="charm-d", fusion="B"),
        "charm-d-graphs": base.with_(version="charm-d", cuda_graphs=True),
        "charm-d-legacy": base.with_(version="charm-d", legacy_sync=True),
    }


SPEC = register(AppSpec(
    name="jacobi3d",
    description="7-point 3D Jacobi stencil — the paper's proxy app",
    config_cls=Jacobi3DConfig,
    result_cls=StencilResult,
    make_context=StencilContext,
    make_block_class=make_block_class,
    make_rank_class=make_rank_class,
    make_ampi_rank_class=make_ampi_rank_class,
    phases=STENCIL_PHASES,
    classify_op=classify_stencil_op,
    phase_kernels=STENCIL_PHASE_KERNELS,
    differential_base=_differential_base,
    golden_configs=_golden_configs,
))
