"""Jacobi3D: the paper's proxy application, in four versions.

* ``mpi-h`` — MPI with application-level host staging
* ``mpi-d`` — CUDA-aware MPI
* ``charm-h`` — Charm++ with host staging (+ automatic overlap via ODF)
* ``charm-d`` — Charm++ with GPU-aware communication (Channel API)

plus kernel-fusion strategies A/B/C, CUDA Graphs, the legacy
pre-optimization baseline of Fig. 6, and a manual-overlap MPI extension.
"""

from .charm_app import make_block_class
from .config import VERSIONS, Jacobi3DConfig, Jacobi3DResult
from .context import AppContext, BlockData, MetricsCollector
from .driver import run_jacobi3d
from .mpi_app import make_rank_class

__all__ = [
    "make_block_class",
    "VERSIONS",
    "Jacobi3DConfig",
    "Jacobi3DResult",
    "AppContext",
    "BlockData",
    "MetricsCollector",
    "run_jacobi3d",
    "make_rank_class",
]
