"""Backward-compatible entry point for the AMPI stencil frontend
(:mod:`repro.apps.stencil.ampi_app`)."""

from __future__ import annotations

from ..stencil.ampi_app import make_ampi_rank_class

__all__ = ["make_ampi_rank_class"]
