"""Backward-compatible names for the Jacobi3D per-run state.

The implementation lives in the dimension-generic stencil core
(:mod:`repro.apps.stencil.context`); :class:`AppContext` is the historical
Jacobi3D name for :class:`~repro.apps.stencil.context.StencilContext` (the
default boundary for a 3D config is the canonical hot-top problem, exactly
as before).
"""

from __future__ import annotations

from ..stencil.context import (
    BlockData,
    MetricsCollector,
    ResidualHistory,
    StencilContext as AppContext,
)

__all__ = ["AppContext", "BlockData", "MetricsCollector", "ResidualHistory"]
