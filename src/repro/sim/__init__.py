"""Discrete-event simulation kernel (the substrate for all of :mod:`repro`).

Public surface:

* :class:`Engine`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`AllOf`, :class:`AnyOf` — the event loop and process model.
* :class:`Store`, :class:`FilterStore`, :class:`PriorityStore`,
  :class:`Resource`, :class:`TokenPool` — queueing primitives.
* :class:`Tracer`, :class:`IntervalTracker` — instrumentation.
* :class:`RandomStreams` — reproducible named RNG streams.
"""

from .engine import AllOf, AnyOf, Engine, Event, Process, Timeout
from .errors import (
    EventAlreadyTriggered,
    Interrupt,
    ProcessCrashed,
    SimulationError,
    StopEngine,
)
from .resources import FilterStore, PriorityStore, Request, Resource, Store, TokenPool
from .rng import RandomStreams
from .tracing import (IntervalTracker, Tracer, TraceRecord, merge_intervals, overlap_seconds, to_chrome_trace, trace)

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "EventAlreadyTriggered",
    "Interrupt",
    "ProcessCrashed",
    "SimulationError",
    "StopEngine",
    "FilterStore",
    "PriorityStore",
    "Request",
    "Resource",
    "Store",
    "TokenPool",
    "RandomStreams",
    "IntervalTracker",
    "Tracer",
    "TraceRecord",
    "merge_intervals",
    "overlap_seconds",
    "to_chrome_trace",
    "trace",
]
