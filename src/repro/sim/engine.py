"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES in the style of SimPy, written
from scratch for this reproduction.  Simulated entities are *processes*:
plain Python generators that ``yield`` events (timeouts, other events,
other processes, or ``AllOf``/``AnyOf`` combinations) and are resumed by the
:class:`Engine` when those events trigger.

Determinism rules
-----------------
* The event heap orders by ``(time, priority, sequence)``; the sequence
  number breaks ties in scheduling order, so two runs of the same program
  interleave identically.
* All randomness must come from :mod:`repro.sim.rng` named streams.

Example
-------
>>> eng = Engine()
>>> log = []
>>> def proc(name, delay):
...     yield eng.timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.process(proc("a", 2.0)); _ = eng.process(proc("b", 1.0))
>>> eng.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import EventAlreadyTriggered, ProcessCrashed, SimulationError, StopEngine

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]

# Event lifecycle states.
PENDING = 0  # not yet succeeded/failed
TRIGGERED = 1  # succeeded/failed, callbacks scheduled but not yet run
PROCESSED = 2  # callbacks have run

# Scheduling priorities: lower runs first at equal times.  URGENT is used for
# internal bookkeeping (e.g. condition evaluation) so user-visible ordering
# stays intuitive.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, and becomes *processed* once its
    callbacks have executed at the trigger time.
    """

    __slots__ = ("engine", "callbacks", "_value", "_state", "_ok", "name")

    #: Class-level flags read by the run loop instead of ``isinstance``
    #: checks (one monomorphic attribute load per event).  ``_crashable``
    #: marks events whose unwatched failure must abort the run
    #: (:class:`Process`); ``_poolable`` marks engine-recycled events that
    #: must never be retained past their trigger time (see
    #: :meth:`Engine.pause`).
    _crashable = False
    _poolable = False

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._state = PENDING
        self._ok = True
        self.name = name

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (or the failure exception)."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._state = TRIGGERED
        self._ok = True
        self._value = value
        engine = self.engine
        _heappush(engine._heap, (engine.now, priority, engine._seq, self))
        engine._seq += 1
        if engine.metrics is not None:
            engine.metrics.inc("sim.events.scheduled")
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; ``exc`` is thrown into waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._state != PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._state = TRIGGERED
        self._ok = False
        self._value = exc
        self.engine._push(0.0, priority, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event has already been processed the callback fires
        immediately (at the current simulation time).
        """
        if self._state == PROCESSED:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}[self._state]
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state} at t={self.engine.now:g}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Flattened Event.__init__ + Engine._push: one constructor frame
        # instead of three on a path taken once per timeout.
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._state = TRIGGERED
        self._ok = True
        self.name = name
        self.delay = delay
        _heappush(engine._heap, (engine.now + delay, NORMAL, engine._seq, self))
        engine._seq += 1
        if engine.metrics is not None:
            engine.metrics.inc("sim.events.scheduled")


class _PooledEvent(Event):
    """A recyclable pre-triggered delay, reused through the engine's
    free-list (see :meth:`Engine.pause`).  Never constructed by user code
    and never safe to retain after it fires: the run loop resets and
    recycles the object as soon as its callbacks have run.

    ``_waiter`` is the single-waiter fast lane used by the bare-number
    yield in :meth:`Process._resume` — one slot store instead of a
    callbacks-list append, one call instead of a list iteration.  A pooled
    event may carry a ``_waiter``, ``callbacks``, or both (fired in that
    order, matching registration order: the waiter is only ever installed
    at creation time)."""

    __slots__ = ("_waiter",)

    _poolable = True

    def __init__(self, engine: "Engine", name: str = ""):
        super().__init__(engine, name=name)
        self._waiter = None

    def _process(self) -> None:
        self._state = PROCESSED
        waiter, self._waiter = self._waiter, None
        if waiter is not None:
            waiter(self)
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for fn in callbacks:
                fn(self)


class _ConditionBase(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_n_done")

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str = ""):
        super().__init__(engine, name=name)
        self.events = tuple(events)
        for ev in self.events:
            if ev.engine is not engine:
                raise SimulationError("cannot mix events from different engines")
            if ev._poolable:
                # A condition reads child values when *it* triggers, which
                # can be after the child was recycled — reject outright.
                raise SimulationError(
                    "conditions cannot wait on pooled pause() events")
        self._n_done = 0
        if not self.events:
            self.succeed(self._result())
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _result(self) -> list[Any]:
        return [ev.value for ev in self.events if ev.processed and ev.ok]

    def _on_child(self, ev: Event) -> None:
        if self._state != PENDING:
            return
        if not ev.ok:
            self.fail(ev.value, priority=URGENT)
            return
        self._n_done += 1
        if self._check():
            self.succeed(self._result(), priority=URGENT)

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_ConditionBase):
    """Triggers once *all* child events have triggered.

    The value is the list of child values in child order.
    """

    __slots__ = ()

    def _result(self) -> list[Any]:
        return [ev.value for ev in self.events]

    def _check(self) -> bool:
        return self._n_done == len(self.events)


class AnyOf(_ConditionBase):
    """Triggers once *any* child event has triggered.

    The value is the list of values of children processed so far.
    """

    __slots__ = ()

    def _check(self) -> bool:
        return self._n_done >= 1


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulated activity wrapping a generator.

    The process is itself an :class:`Event` that triggers with the
    generator's return value when it finishes (or fails with its unhandled
    exception).
    """

    __slots__ = ("_generator", "_send", "_throw", "_waiting_on", "_resume_cb")

    _crashable = True

    def __init__(self, engine: "Engine", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {type(generator).__name__}")
        super().__init__(engine, name=name or getattr(generator, "__name__", ""))
        self._generator = generator
        # Bound methods cached once: _resume runs once per wakeup and the
        # attribute chain through the generator is measurable there.
        self._send = generator.send
        self._throw = generator.throw
        # One bound method for the process's whole life: _resume re-registers
        # itself on every yielded event, and `self._resume` builds a fresh
        # bound object each time it is evaluated.
        self._resume_cb = self._resume
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time via an immediately-triggered event.
        start = Event(engine, name="<start>")
        start._state = TRIGGERED
        start._ok = True
        engine._push(0.0, NORMAL, start)
        start.add_callback(self._resume_cb)
        self._waiting_on = start

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        from .errors import Interrupt

        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is not None:
            target = self._waiting_on
            if target._poolable and target._waiter is self._resume_cb:
                target._waiter = None  # defuse the pending bare-yield tick
            elif self._resume_cb in target.callbacks:
                target.callbacks.remove(self._resume_cb)
        wake = Event(self.engine, name="<interrupt>")
        wake._state = TRIGGERED
        wake._ok = False
        wake._value = Interrupt(cause)
        self.engine._push(0.0, URGENT, wake)
        wake.add_callback(self._resume_cb)
        self._waiting_on = wake

    def _resume(self, trigger: Event) -> None:
        if self._state != PENDING:  # stale wakeup after the process finished
            return
        self._waiting_on = None
        engine = self.engine
        engine._active_process = self
        try:
            if trigger._ok:
                target = self._send(trigger._value)
            else:
                target = self._throw(trigger._value)
        except StopIteration as stop:
            engine._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate as failure
            engine._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        engine._active_process = None
        # Monomorphic accept: the dominant yields are bare delays, pooled
        # pauses and fresh Events; fall back to isinstance otherwise.
        cls = target.__class__
        if cls is float or cls is int:
            # `yield delay` — shorthand for `yield engine.pause(delay)`,
            # scheduled identically (one push, one sequence number) but
            # with the pause inlined: no constructor, no dispatch checks.
            if target < 0:
                self._generator.close()
                self.fail(SimulationError(f"cannot schedule into the past (delay={target})"))
                return
            pool = engine._event_pool
            ev = pool.pop() if pool else _PooledEvent(engine, name="<pause>")
            ev._state = TRIGGERED
            ev._waiter = self._resume_cb
            _heappush(engine._heap, (engine.now + target, NORMAL, engine._seq, ev))
            engine._seq += 1
            if engine.metrics is not None:
                engine.metrics.inc("sim.events.scheduled")
            self._waiting_on = ev
            return
        if cls is not _PooledEvent and cls is not Event and not isinstance(target, Event):
            crash = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
            self._generator.close()
            self.fail(crash)
            return
        if target.engine is not engine:
            self._generator.close()
            self.fail(SimulationError("yielded event belongs to a different engine"))
            return
        self._waiting_on = target
        if target._state != PROCESSED:
            target.callbacks.append(self._resume_cb)
        else:  # already-processed target: resume immediately (add_callback semantics)
            self._resume(target)


class Engine:
    """The simulation clock and event loop.

    Attributes
    ----------
    now:
        Current simulation time (seconds by convention throughout
        :mod:`repro`).
    """

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.tracer = None  # set by sim.tracing.Tracer.attach()
        self.metrics = None  # set by obs.metrics.MetricsRegistry.attach()
        self.sanitizer = None  # set by sanitize.Sanitizer.attach()
        self._monitors: list[Callable[[float, Event], None]] = []
        #: Events processed over the engine's lifetime (plain int: the
        #: events/sec numerator for ``benchmarks/bench_engine.py``).
        self.events_executed = 0
        #: Free-list of recycled :class:`_PooledEvent` objects (see
        #: :meth:`pause`); the run loop returns fired pooled events here.
        self._event_pool: list[_PooledEvent] = []

    # -- monitoring --------------------------------------------------------
    def add_monitor(self, fn: Callable[[float, "Event"], None]) -> None:
        """Register ``fn(time, event)`` to observe every processed event.

        Monitors fire after an event is popped from the heap and before its
        callbacks run — the hook the validation layer's invariant checker
        uses to audit time monotonicity without touching the hot path
        (a single list check when no monitor is attached).
        """
        self._monitors.append(fn)

    def remove_monitor(self, fn: Callable[[float, "Event"], None]) -> None:
        self._monitors.remove(fn)

    # -- event construction ------------------------------------------------
    def event(self, name: str = "") -> Event:
        """A fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """An event triggering ``delay`` after now."""
        return Timeout(self, delay, value=value, name=name)

    def pause(self, delay: float, value: Any = None) -> Event:
        """A pooled, pre-triggered delay — :meth:`timeout` for the hot
        create-yield-discard pattern, without a fresh allocation per call.

        Schedules identically to a timeout (one push at ``NORMAL``
        priority, one sequence number), so swapping ``timeout`` for
        ``pause`` never changes the event schedule.  The returned object
        is recycled by the run loop the moment its callbacks finish.

        Contract: wait on it immediately (``yield`` it or
        ``add_callback``) and never retain a reference past its trigger
        time.  Conditions (:class:`AllOf`/:class:`AnyOf`) reject pooled
        events because they read child values after the child fires.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
        else:
            event = _PooledEvent(self, name="<pause>")
        event._state = TRIGGERED
        event._value = value
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        _heappush(self._heap, (self.now + delay, NORMAL, self._seq, event))
        self._seq += 1
        if self.metrics is not None:
            self.metrics.inc("sim.events.scheduled")
        return event

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event], name: str = "") -> AllOf:
        """An event triggering when all of ``events`` have triggered."""
        return AllOf(self, events, name=name)

    def any_of(self, events: Iterable[Event], name: str = "") -> AnyOf:
        """An event triggering when any of ``events`` has triggered."""
        return AnyOf(self, events, name=name)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling --------------------------------------------------------
    def _push(self, delay: float, priority: int, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))
        self._seq += 1
        if self.metrics is not None:
            self.metrics.inc("sim.events.scheduled")

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one scheduled event."""
        time, _prio, _seq, event = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event heap corrupted: time went backwards")
        self.now = time
        self.events_executed += 1
        if self._monitors:
            for monitor in self._monitors:
                monitor(time, event)
        if self.metrics is not None:
            self.metrics.inc("sim.events.executed")
        event._process()
        if event._poolable:
            self._recycle(event)

    def _recycle(self, event: Event) -> None:
        """Return a fired pooled event to the free-list (state reset so
        :meth:`pause` can hand it out again)."""
        event._value = None
        event._ok = True
        self._event_pool.append(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        Parameters
        ----------
        until:
            Stop (with ``now = until``) before processing events scheduled
            after this time.
        max_events:
            Safety valve: raise :class:`SimulationError` once exactly
            ``max_events`` events have been processed and more remain
            (catches accidental infinite event loops in tests).  A program
            that finishes in exactly ``max_events`` events does not raise.
            Same semantics as in :meth:`run_until_complete`.

        Raises
        ------
        ProcessCrashed
            If any process dies with an unhandled exception and nobody is
            waiting on it.

        Notes
        -----
        This is the simulator's innermost loop: locals are hoisted, the
        event-processing protocol (``Event._process`` plus the crash
        check) is inlined, and the bound-free dispatch path (no ``until``,
        no ``max_events``) skips the per-event bound checks entirely.
        When no monitor and no metrics registry is attached at entry, a
        bare variant with zero observer checks runs instead — attach
        observers before calling ``run``; observers attached mid-run (from
        a callback) are only guaranteed to be seen if at least one was
        already attached at entry.
        """
        heap = self._heap
        pop = heapq.heappop
        pool = self._event_pool
        monitors = self._monitors
        metrics = self.metrics
        count = 0
        try:
            if until is None and max_events is None and not monitors and metrics is None:
                # Bare fast-dispatch kernel: no bounds, no observers.  The
                # pop count falls out of arithmetic (pops = starting heap
                # size + pushes − leftovers), so the loop body carries no
                # counter either.
                start_len = len(heap)
                seq0 = self._seq
                try:
                    while heap:
                        time, _prio, _seq, event = pop(heap)
                        self.now = time
                        # Inlined Event._process(): swap-before-iterate
                        # keeps interrupt-during-dispatch semantics.
                        event._state = PROCESSED
                        if event._poolable:
                            # Pooled events have no outside watchers by
                            # contract, so nothing appends to `callbacks`
                            # while it runs — the list object itself is
                            # recycled with the event.  (`_ok` can never
                            # go False on a pooled event: `fail` refuses
                            # non-pending events.)
                            waiter = event._waiter
                            if waiter is not None:
                                event._waiter = None
                                waiter(event)
                            callbacks = event.callbacks
                            if callbacks:
                                for fn in callbacks:
                                    fn(event)
                                del callbacks[:]
                            event._value = None
                            pool.append(event)
                        else:
                            callbacks = event.callbacks
                            if callbacks:
                                event.callbacks = []
                                for fn in callbacks:
                                    fn(event)
                            elif event._crashable and not event._ok:
                                self._raise_crash(event)
                finally:
                    count = start_len + (self._seq - seq0) - len(heap)
            elif until is None and max_events is None:
                # Fast-dispatch kernel with observers attached.
                while heap:
                    time, _prio, _seq, event = pop(heap)
                    count += 1
                    self.now = time
                    if monitors:
                        for monitor in monitors:
                            monitor(time, event)
                    if metrics is not None:
                        metrics.inc("sim.events.executed")
                    event._state = PROCESSED
                    if event._poolable:
                        waiter = event._waiter
                        if waiter is not None:
                            event._waiter = None
                            waiter(event)
                        callbacks = event.callbacks
                        if callbacks:
                            for fn in callbacks:
                                fn(event)
                            del callbacks[:]
                        event._value = None
                        event._ok = True
                        pool.append(event)
                    else:
                        callbacks = event.callbacks
                        if callbacks:
                            event.callbacks = []
                            for fn in callbacks:
                                fn(event)
                        elif event._crashable and not event._ok:
                            self._raise_crash(event)
            else:
                while heap:
                    if until is not None and heap[0][0] > until:
                        self.now = until
                        return
                    if max_events is not None and count >= max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
                    time, _prio, _seq, event = pop(heap)
                    count += 1
                    self.now = time
                    if monitors:
                        for monitor in monitors:
                            monitor(time, event)
                    if metrics is not None:
                        metrics.inc("sim.events.executed")
                    event._state = PROCESSED
                    if event._poolable:
                        # Pooled events have no outside watchers by contract,
                        # so nothing appends to `callbacks` while it runs —
                        # the list object itself is recycled with the event.
                        waiter = event._waiter
                        if waiter is not None:
                            event._waiter = None
                            waiter(event)
                        callbacks = event.callbacks
                        if callbacks:
                            for fn in callbacks:
                                fn(event)
                            del callbacks[:]
                        event._value = None
                        event._ok = True
                        pool.append(event)
                    else:
                        callbacks = event.callbacks
                        if callbacks:
                            event.callbacks = []
                            for fn in callbacks:
                                fn(event)
                        elif event._crashable and not event._ok:
                            self._raise_crash(event)
        except StopEngine:
            return
        finally:
            self.events_executed += count
        if until is not None and until > self.now:
            self.now = until

    def run_until_complete(self, *events: Event, max_events: Optional[int] = None) -> list[Any]:
        """Run until every event in ``events`` has triggered; return values.

        Raises :class:`ProcessCrashed` if a watched process failed, and
        :class:`SimulationError` once exactly ``max_events`` events have
        been processed with the awaited events still pending (same
        semantics as :meth:`run`).
        """
        done = self.all_of(events)
        heap = self._heap
        pop = heapq.heappop
        count = 0
        try:
            while not done.triggered and heap:
                if max_events is not None and count >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} in run_until_complete")
                time, _prio, _seq, event = pop(heap)
                count += 1
                self.now = time
                if self._monitors:
                    for monitor in self._monitors:
                        monitor(time, event)
                if self.metrics is not None:
                    self.metrics.inc("sim.events.executed")
                event._process()
                if event._poolable:
                    self._recycle(event)
        finally:
            self.events_executed += count
        if not done.triggered:
            raise SimulationError("event heap drained before awaited events triggered (deadlock?)")
        if not done.ok:
            self._raise_crash_value(done.value)
        return done.value

    def stop(self) -> None:
        """Stop :meth:`run` at the current time (from inside a callback)."""
        raise StopEngine()

    @staticmethod
    def _raise_crash(process: Process) -> None:
        exc = process.value
        raise ProcessCrashed(f"process {process.name!r} crashed: {exc!r}") from exc

    @staticmethod
    def _raise_crash_value(exc: BaseException) -> None:
        raise ProcessCrashed(f"awaited event failed: {exc!r}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self.now:g} pending={len(self._heap)}>"
