"""Queueing primitives built on the DES kernel.

Three families:

* :class:`Store` / :class:`FilterStore` / :class:`PriorityStore` — producer/
  consumer message queues (used for scheduler message queues, NIC inboxes).
* :class:`Resource` — a counted resource with priority-ordered waiters (used
  for GPU engines, NIC links, staging-buffer pools).
* :class:`TokenPool` — a refillable quantity pool (used for bounded staging
  buffer bytes in the pipelined host-staging protocol).

All waiters are served deterministically: ties broken by request order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from .engine import Engine, Event
from .errors import SimulationError

__all__ = [
    "Store",
    "FilterStore",
    "PriorityStore",
    "Resource",
    "Request",
    "TokenPool",
]


class Store:
    """Unbounded (by default) FIFO store of items.

    ``put(item)`` returns an event that triggers when the item is accepted
    (immediately unless ``capacity`` is bounded and full).  ``get()`` returns
    an event that triggers with the next item.
    """

    #: Subclasses whose getters carry extra matching state (``FilterStore``)
    #: set this False to disable the direct producer→consumer fast path.
    _simple = True

    def __init__(self, engine: Engine, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        # Event labels, precomputed once: get/put run per message on the
        # scheduler hot path and must not pay an f-string each call.
        self._get_name = f"{name}.get"
        self._put_name = f"{name}.put"

    def __len__(self) -> int:
        return len(self.items)

    # -- operations ---------------------------------------------------------
    def put(self, item: Any) -> Event:
        ev = Event(self.engine, name=self._put_name)
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def put_nowait(self, item: Any) -> None:
        """Deposit ``item`` without creating a put event (hot-path helper).

        Raises if the store is at capacity — callers use this only on
        unbounded stores (message queues, stream op queues).
        """
        items = self.items
        if len(items) >= self.capacity:
            raise SimulationError(f"put_nowait on full store {self.name!r}")
        # Fast path: no queued putters means _dispatch reduces to "hand the
        # item to the first waiting getter, or shelve it".  (Simple stores
        # never hold items and getters simultaneously, so handing the fresh
        # item over directly serves the same getter with the same value.)
        if self._simple and not self._putters:
            if self._getters and not items:
                self._getters.popleft().succeed(item)
            else:
                self._store_item(item)
            return
        self._store_item(item)
        self._dispatch()

    def get(self) -> Event:
        ev = Event(self.engine, name=self._get_name)
        if self._simple and not self._putters:
            if self.items:
                ev.succeed(self._pop_item())
            else:
                self._getters.append(ev)
            return ev
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Optional[Any]:
        """Pop an item immediately if one is available, else ``None``.

        Only valid when no getters are queued (callers that mix ``get`` and
        ``try_get`` on one store would otherwise jump the queue).
        """
        self._admit_putters()
        if self.items and not self._getters:
            return self._pop_item()
        return None

    # -- internals ----------------------------------------------------------
    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            ev, item = self._putters.popleft()
            self._store_item(item)
            ev.succeed()

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _pop_item(self) -> Any:
        return self.items.pop(0)

    def _dispatch(self) -> None:
        self._admit_putters()
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self._pop_item())
            self._admit_putters()


class FilterStore(Store):
    """A store whose ``get`` may carry a predicate.

    Getters are served in arrival order, but a getter whose predicate
    matches no current item does not block later getters (this mirrors
    SimPy's FilterStore and is what message-matching needs).
    """

    _simple = False

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:  # type: ignore[override]
        ev = Event(self.engine, name=self._get_name)
        self._getters.append((ev, predicate))  # type: ignore[arg-type]
        self._dispatch()
        return ev

    def _dispatch(self) -> None:  # type: ignore[override]
        self._admit_putters()
        served = True
        while served and self.items:
            served = False
            for entry in list(self._getters):
                getter, predicate = entry
                found_idx = None
                for i, item in enumerate(self.items):
                    if predicate is None or predicate(item):
                        found_idx = i
                        break
                if found_idx is not None:
                    item = self.items.pop(found_idx)
                    self._getters.remove(entry)
                    getter.succeed(item)
                    self._admit_putters()
                    served = True


class PriorityStore(Store):
    """A store that yields items lowest-priority-value first.

    ``put`` accepts any item; priority is taken from ``priority(item)`` given
    at construction (default: the item itself must be orderable).  FIFO among
    equal priorities.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: float = float("inf"),
        name: str = "",
        priority: Optional[Callable[[Any], Any]] = None,
    ):
        super().__init__(engine, capacity=capacity, name=name)
        self._prio_fn = priority or (lambda item: item)
        self._counter = 0
        self.items: list[tuple[Any, int, Any]] = []  # (prio, seq, item) heap

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self.items, (self._prio_fn(item), self._counter, item))
        self._counter += 1

    def _pop_item(self) -> Any:
        return heapq.heappop(self.items)[2]

    def peek_priority(self) -> Any:
        """Priority of the head item (raises if empty)."""
        if not self.items:
            raise SimulationError("peek on empty PriorityStore")
        return self.items[0][0]


class Request(Event):
    """A pending claim on a :class:`Resource`; release with ``resource.release``."""

    __slots__ = ("resource", "priority", "amount")

    def __init__(self, resource: "Resource", priority: float, amount: int):
        super().__init__(resource.engine, name=resource._request_name)
        self.resource = resource
        self.priority = priority
        self.amount = amount


class Resource:
    """A counted resource with priority-ordered waiters.

    ``request(priority=...)`` returns a :class:`Request` event that triggers
    when the claim is granted.  Lower priority values are served first;
    equal priorities FIFO.  ``amount`` lets one request claim several units
    (all-or-nothing).
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._request_name = f"{name}.request"
        self.in_use = 0
        self._waiters: list[tuple[float, int, Request]] = []
        self._counter = 0
        self.users: list[Request] = []
        #: Optional observer with ``on_grant(resource, amount)`` /
        #: ``on_release(resource, amount)`` — used by the validation layer to
        #: independently audit capacity conservation.  ``None`` costs one
        #: attribute check per grant.
        self.monitor = None

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self, priority: float = 0.0, amount: int = 1) -> Request:
        if amount < 1 or amount > self.capacity:
            raise ValueError(f"invalid request amount {amount} for capacity {self.capacity}")
        req = Request(self, priority, amount)
        heapq.heappush(self._waiters, (priority, self._counter, req))
        self._counter += 1
        self._grant()
        return req

    def release(self, request: Request) -> None:
        if request not in self.users:
            raise SimulationError(f"release of non-held request on {self.name!r}")
        self.users.remove(request)
        self.in_use -= request.amount
        if self.monitor is not None:
            self.monitor.on_release(self, request.amount)
        self._grant()

    def _grant(self) -> None:
        while self._waiters:
            priority, _seq, req = self._waiters[0]
            if req.amount > self.capacity - self.in_use:
                break
            heapq.heappop(self._waiters)
            self.in_use += req.amount
            self.users.append(req)
            if self.monitor is not None:
                self.monitor.on_grant(self, req.amount)
            req.succeed(req)

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request."""
        for i, (_p, _s, req) in enumerate(self._waiters):
            if req is request:
                del self._waiters[i]
                heapq.heapify(self._waiters)
                return
        raise SimulationError("cancel of unknown or already-granted request")


class TokenPool:
    """A pool of ``capacity`` fungible tokens (e.g. staging-buffer bytes).

    ``acquire(n)`` triggers when ``n`` tokens are available; ``release(n)``
    returns tokens.  Waiters are FIFO (no priorities) and all-or-nothing.
    """

    def __init__(self, engine: Engine, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.level = capacity
        self.name = name
        self._waiters: deque[tuple[Event, int]] = deque()
        self._acquire_name = f"{name}.acquire"

    def acquire(self, n: int = 1) -> Event:
        if n < 1 or n > self.capacity:
            raise ValueError(f"cannot acquire {n} of {self.capacity} tokens")
        ev = Event(self.engine, name=self._acquire_name)
        self._waiters.append((ev, n))
        self._grant()
        return ev

    def release(self, n: int = 1) -> None:
        if self.level + n > self.capacity:
            raise SimulationError(f"token pool {self.name!r} over-released")
        self.level += n
        self._grant()

    def _grant(self) -> None:
        while self._waiters and self._waiters[0][1] <= self.level:
            ev, n = self._waiters.popleft()
            self.level -= n
            ev.succeed(n)
