"""Execution tracing and utilization accounting.

The tracer is the stand-in for Nsight Systems in the paper's methodology:
tests and analysis use it to *prove* that overlap happens (GPU busy while
messages are in flight), to measure per-resource utilization, and to debug
schedules.

Tracing is opt-in and costs nothing when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .engine import Engine

__all__ = ["TraceRecord", "Tracer", "IntervalTracker", "overlap_seconds", "to_chrome_trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulation time of the event.
    category:
        Dotted namespace, e.g. ``"gpu.kernel"``, ``"nic.send"``,
        ``"sched.message"``.
    actor:
        The emitting component's name (``"node3.gpu2"``).
    data:
        Free-form payload dictionary.
    """

    time: float
    category: str
    actor: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceRecord` entries from instrumented components.

    Parameters
    ----------
    categories:
        If given, only records whose category starts with one of these
        prefixes are kept.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None):
        self.records: list[TraceRecord] = []
        self._prefixes = tuple(categories) if categories else None
        self.enabled = True
        self._engine: Optional[Engine] = None

    def attach(self, engine: Engine) -> "Tracer":
        """Register as ``engine.tracer`` and record against its clock.

        Idempotent: re-attaching to the same engine is a no-op, and
        attaching to a different engine detaches from the old one first, so
        repeated runs never leave stale cross-references behind.
        """
        if self._engine is engine:
            return self
        if self._engine is not None:
            self.detach()
        self._engine = engine
        engine.tracer = self
        return self

    def detach(self) -> None:
        """Unregister from the current engine (no-op when unattached)."""
        if self._engine is not None:
            if getattr(self._engine, "tracer", None) is self:
                self._engine.tracer = None
            self._engine = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def emit(self, category: str, actor: str, **data: Any) -> None:
        if not self.enabled:
            return
        if self._prefixes is not None and not category.startswith(self._prefixes):
            return
        assert self._engine is not None, "Tracer.emit before attach()"
        self.records.append(TraceRecord(self._engine.now, category, actor, data))

    # -- queries -------------------------------------------------------------
    def select(
        self,
        category: Optional[str] = None,
        actor: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Records filtered by category prefix / actor / arbitrary predicate."""
        out = []
        for rec in self.records:
            if category is not None and not rec.category.startswith(category):
                continue
            if actor is not None and rec.actor != actor:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def clear(self) -> None:
        self.records.clear()


def trace(engine: Engine, category: str, actor: str, **data: Any) -> None:
    """Emit a record if a tracer is attached to ``engine`` (no-op otherwise)."""
    tracer = engine.tracer
    if tracer is not None:
        tracer.emit(category, actor, **data)


class IntervalTracker:
    """Tracks busy intervals of one resource for utilization/overlap math.

    Call :meth:`begin` / :meth:`end` around each busy span.  Overlapping
    spans are allowed (e.g. several concurrent copies on a shared link); the
    tracker keeps raw spans and computes their union lazily.
    """

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self.spans: list[tuple[float, float]] = []
        self._open: list[float] = []

    def begin(self) -> int:
        """Open a busy span; returns a token for :meth:`end`."""
        self._open.append(self.engine.now)
        return len(self._open) - 1

    def end(self, token: int) -> None:
        start = self._open[token]
        if start is None:
            raise ValueError("span already closed")
        self._open[token] = None  # type: ignore[call-overload]
        self.spans.append((start, self.engine.now))

    def busy_union(self) -> list[tuple[float, float]]:
        """Merged busy intervals, sorted."""
        return merge_intervals(self.spans)

    def busy_seconds(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        """Total busy time within the window ``[t0, t1]``."""
        if t1 is None:
            t1 = self.engine.now
        total = 0.0
        for a, b in self.busy_union():
            lo, hi = max(a, t0), min(b, t1)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        """Busy fraction of the window (0 when window is empty)."""
        if t1 is None:
            t1 = self.engine.now
        window = t1 - t0
        if window <= 0:
            return 0.0
        return self.busy_seconds(t0, t1) / window


def to_chrome_trace(tracer: Tracer) -> list[dict]:
    """Convert trace records to Chrome-trace (``chrome://tracing`` /
    Perfetto) events — the reproduction's stand-in for an Nsight timeline.

    Records carrying a ``duration`` in their payload become complete ("X")
    slices; everything else becomes an instant ("i") event.  Times are
    emitted in microseconds as the format requires.  Write the returned
    list as JSON and load it in ``ui.perfetto.dev``.
    """
    events = []
    for rec in tracer.records:
        base = {
            "name": str(rec.data.get("op", rec.category)),
            "cat": rec.category,
            "pid": rec.actor.split(".")[0] if "." in rec.actor else rec.actor,
            "tid": rec.actor,
            "ts": rec.time * 1e6,
            "args": {k: v for k, v in rec.data.items() if isinstance(v, (int, float, str))},
        }
        duration = rec.data.get("duration")
        if duration is not None:
            base["ph"] = "X"
            base["dur"] = float(duration) * 1e6
        else:
            base["ph"] = "i"
            base["s"] = "t"
        events.append(base)
    return events


def merge_intervals(spans: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping ``(start, end)`` intervals."""
    ordered = sorted((a, b) for a, b in spans if b > a)
    merged: list[tuple[float, float]] = []
    for a, b in ordered:
        if merged and a <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return merged


def overlap_seconds(
    spans_a: Iterable[tuple[float, float]], spans_b: Iterable[tuple[float, float]]
) -> float:
    """Total time during which both interval sets are simultaneously busy.

    This is the quantitative definition of computation-communication overlap
    used by the integration tests: ``spans_a`` = GPU compute busy intervals,
    ``spans_b`` = in-flight message intervals.
    """
    a_list = merge_intervals(spans_a)
    b_list = merge_intervals(spans_b)
    total = 0.0
    i = j = 0
    while i < len(a_list) and j < len(b_list):
        lo = max(a_list[i][0], b_list[j][0])
        hi = min(a_list[i][1], b_list[j][1])
        if hi > lo:
            total += hi - lo
        if a_list[i][1] < b_list[j][1]:
            i += 1
        else:
            j += 1
    return total
