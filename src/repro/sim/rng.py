"""Deterministic named random streams.

All stochastic noise in the performance model (e.g. small jitter on
overheads) must come from here so that:

* two runs with the same seed are bit-identical, regardless of the order in
  which components were constructed, and
* changing one component's draws does not perturb another's (each named
  stream is independent).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, reproducible :class:`numpy.random.Generator` s.

    Each distinct ``name`` yields a generator seeded by a stable hash of
    ``(seed, name)``.  Repeated calls with the same name return the same
    generator object.

    Example
    -------
    >>> rs = RandomStreams(seed=7)
    >>> a = rs.stream("nic.jitter"); b = rs.stream("gpu.jitter")
    >>> a is rs.stream("nic.jitter")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def uniform_jitter(self, name: str, magnitude: float) -> float:
        """One draw in ``[0, magnitude)`` from the named stream.

        With ``magnitude == 0`` no draw is consumed (fully deterministic
        configurations never touch the RNG at all).
        """
        if magnitude <= 0.0:
            return 0.0
        return float(self.stream(name).uniform(0.0, magnitude))
