"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class EventAlreadyTriggered(SimulationError):
    """Raised when an event is succeeded or failed more than once."""


class ProcessCrashed(SimulationError):
    """Raised out of :meth:`Engine.run` when a process dies with an
    unhandled exception.

    The original exception is available as ``__cause__``.
    """


class Interrupt(SimulationError):
    """Thrown into a process by :meth:`Process.interrupt`.

    Parameters
    ----------
    cause:
        Arbitrary object describing why the process was interrupted.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class StopEngine(SimulationError):
    """Raised internally to end :meth:`Engine.run` early."""
