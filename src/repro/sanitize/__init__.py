"""Happens-before concurrency sanitizer (docs/sanitizer.md).

Public surface:

* :class:`Sanitizer` / :class:`SanitizerError` / :class:`Diagnostic` —
  the vector-clock happens-before engine (:mod:`repro.sanitize.sanitizer`);
* :mod:`repro.sanitize.faults` — fault injectors proving the detectors
  fire (dropped DAG dependency, skipped wait);
* :func:`sanitize_matrix` / :func:`render_matrix` — the canonical
  all-apps × all-frontends runs behind ``repro sanitize``.

Imports are lazy (PEP 562) so ``repro.sanitize`` stays cheap to name from
the CLI without pulling the whole app stack.
"""

from __future__ import annotations

__all__ = [
    "Diagnostic",
    "Sanitizer",
    "SanitizerError",
    "declared_dep_pairs",
    "drop_cholesky_dep",
    "drop_wait",
    "render_matrix",
    "sanitize_matrix",
]

_LAZY = {
    "Diagnostic": ("repro.sanitize.sanitizer", "Diagnostic"),
    "Sanitizer": ("repro.sanitize.sanitizer", "Sanitizer"),
    "SanitizerError": ("repro.sanitize.sanitizer", "SanitizerError"),
    "declared_dep_pairs": ("repro.sanitize.faults", "declared_dep_pairs"),
    "drop_cholesky_dep": ("repro.sanitize.faults", "drop_cholesky_dep"),
    "drop_wait": ("repro.sanitize.faults", "drop_wait"),
    "render_matrix": ("repro.sanitize.driver", "render_matrix"),
    "sanitize_matrix": ("repro.sanitize.driver", "sanitize_matrix"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
