"""Happens-before concurrency sanitizer for simulation runs.

The :class:`Sanitizer` is a *pure observer* in the same mold as
:class:`~repro.validate.invariants.InvariantChecker`: it attaches to an
:class:`~repro.sim.Engine` and keeps its own books via small hooks at the
points where ordering is established — stream dispatch, launch issue,
frame wakeups, mailbox consumption, UCX transfer posting and TaskSpace
attachment.  The event schedule (and therefore every simulated result and
trace digest) is unchanged whether or not a sanitizer is attached.

Model
-----
Every *lane* (a CUDA stream, a chare, an MPI rank) carries a vector clock:
``{lane_id: tick}``.  Only streams tick — once per dispatched op; chares
and ranks are carrier lanes whose clocks advance purely by joining the
clocks of events they wait on and messages they consume.  An access ``a``
happens-before an access ``b`` iff ``b``'s clock covers ``a``'s epoch:
``b.clock[a.lane] >= a.tick``.

Kernels and copies *declare* the logical buffers they read and write
(``launch(..., reads=..., writes=...)``).  Per buffer the sanitizer keeps
the last write epoch and the read epochs since (the FastTrack scheme):

* a read racing the last write, or a write racing the last write or any
  read since, is reported as a **race**;
* when both the access and the buffer's last writer are attached
  :class:`~repro.runtime.taskspace.TaskSpace` tasks and the writer is not
  in the reader's declared transitive dependency closure, the undeclared
  edge is reported as a **missing-dependency** — this fires even when
  stream FIFO order happens to mask the race on this schedule, which is
  exactly the case bitwise-identity tests cannot catch.

At :meth:`Sanitizer.finish` the wait-for graph over still-pending GPU ops
is searched for cycles (**deadlock-cycle**, replacing the opaque
quiescence failure), and never-consumed mailbox deposits and
never-completed transfers are reported.

See docs/sanitizer.md for the full model and how apps declare accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Engine, SimulationError

__all__ = ["Diagnostic", "SanitizerError", "Sanitizer"]


@dataclass(frozen=True)
class Diagnostic:
    """One sanitizer finding."""

    time: float
    kind: str  # race | missing-dependency | deadlock-cycle | dangling-mailbox | pending-transfer | pending-gpu-op
    actor: str
    detail: str

    def __str__(self) -> str:
        return f"[t={self.time:.9f}] {self.kind} @ {self.actor}: {self.detail}"


class SanitizerError(SimulationError):
    """Raised by :meth:`Sanitizer.finish` when findings were recorded."""

    def __init__(self, findings: list[Diagnostic]):
        self.findings = findings
        lines = "\n".join(f"  {d}" for d in findings[:20])
        extra = f"\n  ... and {len(findings) - 20} more" if len(findings) > 20 else ""
        super().__init__(f"{len(findings)} sanitizer finding(s):\n{lines}{extra}")


def _merge(into: dict, other: dict) -> None:
    for lane, tick in other.items():
        if tick > into.get(lane, 0):
            into[lane] = tick


class _BufferState:
    __slots__ = ("last_write", "reads")

    def __init__(self):
        self.last_write = None  # (lane, tick, op name, task key or None)
        self.reads = {}         # lane -> (tick, op name, task key or None)


class Sanitizer:
    """Attachable happens-before auditor for one simulation run.

    Typical wiring (what ``run_app(..., sanitize=True)`` does)::

        san = Sanitizer().attach(engine)
        san.watch_runtime(runtime)          # charm/ampi only
        ...  # run the simulation
        san.finish()                        # raises SanitizerError on findings
    """

    def __init__(self, max_findings: int = 200):
        self.engine: Optional[Engine] = None
        self.findings: list[Diagnostic] = []
        self.max_findings = max_findings
        # Lanes: id(object) -> small int; strong refs keep ids stable.
        self._lane_of: dict[int, int] = {}
        self._lane_label: dict[int, str] = {}
        self._lane_obj: dict[int, object] = {}
        self._clock: dict[int, dict] = {}     # lane -> vector clock
        self._tick: dict[int, int] = {}       # lane -> last tick (streams only)
        # Event causality: id(event) -> clock, or a lazy resolver.
        self._event_clock: dict[int, dict] = {}
        self._resolver: dict[int, object] = {}
        self._keep: dict[int, object] = {}
        # Launch-issue snapshots: id(op) -> issuing lane's clock at issue.
        self._issue_clock: dict[int, dict] = {}
        # Access ledger.
        self._buffers: dict = {}
        self._seen_pairs: set = set()
        self._closure_cache: dict = {}
        # TaskSpace attachments: id(done event) -> (space, key).
        self._task_of_event: dict[int, tuple] = {}
        # Deadlock bookkeeping over GPU ops.
        self._ops: dict[int, object] = {}     # id(op) -> op (all enqueued)
        self._op_stream: dict[int, str] = {}
        self._fifo_prev: dict[int, int] = {}
        self._stream_tail: dict[int, int] = {}
        self._done_ops: set = set()
        self._event_producer: dict[int, int] = {}  # id(op.done) -> id(op)
        # Posted transfers: id(handle) -> handle / posting clock snapshot.
        self._transfers: dict[int, object] = {}
        self._post_clock: dict[int, dict] = {}
        self._runtime = None
        self._finished = False
        self.ops_checked = 0
        self.accesses_checked = 0

    # -- wiring -------------------------------------------------------------
    def attach(self, engine: Engine) -> "Sanitizer":
        """Observe ``engine``; the engine gains a ``sanitizer`` attribute
        that the instrumented call sites consult."""
        if engine.sanitizer is not None:
            raise SimulationError("engine already has a sanitizer attached")
        self.engine = engine
        engine.sanitizer = self
        return self

    def watch_runtime(self, runtime) -> None:
        """Remember the Charm runtime for the finish-time mailbox scan."""
        self._runtime = runtime

    # -- lanes and clocks ---------------------------------------------------
    def _lane(self, obj) -> int:
        lane = self._lane_of.get(id(obj))
        if lane is None:
            lane = len(self._lane_of) + 1
            self._lane_of[id(obj)] = lane
            self._lane_obj[lane] = obj
            self._lane_label[lane] = self._label(obj)
            self._clock[lane] = {}
            self._tick[lane] = 0
        return lane

    @staticmethod
    def _label(obj) -> str:
        name = getattr(obj, "name", None)
        if isinstance(name, str) and name:
            return name
        rank = getattr(obj, "rank", None)
        if isinstance(rank, int):
            return f"rank{rank}"
        return repr(obj)

    def clock_of(self, event) -> dict:
        """The vector clock carried by ``event``; ``{}`` (no ordering
        knowledge — always sound) for events the sanitizer never saw."""
        clock = self._event_clock.get(id(event))
        if clock is not None:
            return clock
        resolver = self._resolver.pop(id(event), None)
        if resolver is not None:
            clock = resolver()
            self._event_clock[id(event)] = clock
            return clock
        children = getattr(event, "events", None)
        if children is not None:  # AllOf / AnyOf conditions
            clock = {}
            complete = True
            for child in children:
                if getattr(child, "processed", False):
                    _merge(clock, self.clock_of(child))
                else:
                    complete = False
            if complete:
                self._event_clock[id(event)] = clock
                self._keep[id(event)] = event
            return clock
        return {}

    def register_event(self, event, clock: dict) -> None:
        self._event_clock[id(event)] = clock
        self._keep[id(event)] = event

    def snapshot(self, owner) -> dict:
        """Copy of ``owner``'s current lane clock."""
        return dict(self._clock[self._lane(owner)])

    # -- hooks: GPU streams -------------------------------------------------
    def on_op_enqueued(self, stream, op) -> None:
        oid = id(op)
        self._ops[oid] = op
        self._op_stream[oid] = stream.name
        tail = self._stream_tail.get(id(stream))
        if tail is not None:
            self._fifo_prev[oid] = tail
        self._stream_tail[id(stream)] = oid
        self._keep[id(stream)] = stream
        self._event_producer[id(op.done)] = oid

    def on_op_dispatch(self, stream, op, deps) -> None:
        lane = self._lane(stream)
        clock = dict(self._clock[lane])
        issue = self._issue_clock.pop(id(op), None)
        if issue:
            _merge(clock, issue)
        for dep in deps:
            _merge(clock, self.clock_of(dep))
        tick = self._tick[lane] + 1
        self._tick[lane] = tick
        clock[lane] = tick
        self._clock[lane] = clock
        self.register_event(op.done, clock)
        self.ops_checked += 1
        if op.reads or op.writes:
            task = self._task_of_event.get(id(op.done))
            for buf in op.reads:
                self._access(buf, "r", lane, tick, op.name, task, clock)
            for buf in op.writes:
                self._access(buf, "w", lane, tick, op.name, task, clock)

    def on_op_done(self, op) -> None:
        self._done_ops.add(id(op))

    def on_event_record(self, stream, cuda_event) -> None:
        """A CudaEvent recorded into a stream carries the stream's clock."""
        self.register_event(cuda_event.fired, dict(self._clock[self._lane(stream)]))

    # -- hooks: runtime lanes (chares / ranks) ------------------------------
    def on_launch_issue(self, owner, op) -> None:
        self._issue_clock[id(op)] = dict(self._clock[self._lane(owner)])

    def on_wake(self, owner, event) -> None:
        lane = self._lane(owner)
        _merge(self._clock[lane], self.clock_of(event))

    def on_msg_deposit(self, msg, owner=None, event=None, clock=None) -> None:
        """Record the causal clock a mailbox deposit carries: the sender's
        lane clock (entry-method sends), a completion event's clock
        (channel / GPU-messaging deposits), or an explicit snapshot."""
        if clock is None:
            if event is not None:
                clock = self.clock_of(event)
            elif owner is not None:
                clock = dict(self._clock[self._lane(owner)])
            else:
                clock = {}
        self._event_clock[id(msg)] = clock
        self._keep[id(msg)] = msg

    def on_msg_consume(self, owner, msg) -> None:
        lane = self._lane(owner)
        clock = self._event_clock.get(id(msg))
        if clock:
            _merge(self._clock[lane], clock)

    def on_transfer_posted(self, handle, owner, snapshot=None) -> None:
        post_clock = dict(self._clock[self._lane(owner)]) if snapshot is None \
            else dict(snapshot)
        self._transfers[id(handle)] = handle
        self._post_clock[id(handle)] = post_clock

        def resolve(h=handle, mine=post_clock):
            # Completion covers both endpoints' posting points.  Resolving
            # against the peer's *posting snapshot* (not its resolved done
            # clock) keeps the two resolvers independent of query order.
            clock = dict(mine)
            peer = h.peer
            if peer is not None:
                peer_clock = self._post_clock.get(id(peer))
                if peer_clock:
                    _merge(clock, peer_clock)
            return clock

        self._resolver[id(handle.done)] = resolve
        self._keep[id(handle)] = handle

    def on_task_attach(self, space, key, done_event) -> None:
        self._task_of_event[id(done_event)] = (space, key)
        self._keep[id(done_event)] = done_event

    # -- the access ledger --------------------------------------------------
    def _access(self, buf, mode, lane, tick, name, task, clock) -> None:
        self.accesses_checked += 1
        state = self._buffers.get(buf)
        if state is None:
            state = self._buffers[buf] = _BufferState()
        last = state.last_write
        if last is not None:
            if clock.get(last[0], 0) < last[1]:
                self._race(buf, mode, name, task, last)
            self._check_declared_dep(buf, name, task, last)
        if mode == "w":
            for rlane, (rtick, rname, rtask) in state.reads.items():
                if clock.get(rlane, 0) < rtick:
                    self._race(buf, "w", name, task, (rlane, rtick, rname, rtask),
                               prior_mode="read")
            state.reads = {}
            state.last_write = (lane, tick, name, task)
        else:
            state.reads[lane] = (tick, name, task)

    def _race(self, buf, mode, name, task, prior, prior_mode="write") -> None:
        pair = ("race", buf, prior[2], name)
        if pair in self._seen_pairs:
            return
        self._seen_pairs.add(pair)
        verb = "write" if mode == "w" else "read"
        who = f" (task {task[1]!r})" if task is not None else ""
        pwho = f" (task {prior[3][1]!r})" if prior[3] is not None else ""
        self._record(
            "race", self._lane_label[prior[0]],
            f"buffer {buf!r}: {verb} '{name}'{who} has no happens-before "
            f"edge to {prior_mode} '{prior[2]}'{pwho} on lane "
            f"'{self._lane_label[prior[0]]}'",
        )

    def _check_declared_dep(self, buf, name, task, last) -> None:
        if task is None:
            return
        wtask = last[3]
        if wtask is None or wtask[0] is not task[0] or wtask[1] == task[1]:
            return
        if wtask[1] in self._dep_closure(task[0], task[1]):
            return
        pair = ("missing-dep", task[1], wtask[1])
        if pair in self._seen_pairs:
            return
        self._seen_pairs.add(pair)
        self._record(
            "missing-dependency", f"task {task[1]!r}",
            f"buffer {buf!r}: op '{name}' consumes data last written by task "
            f"{wtask[1]!r} (op '{last[2]}'), which is not in its declared "
            f"dependency closure — declare {wtask[1]!r} as a dep of {task[1]!r}",
        )

    def _dep_closure(self, space, key) -> frozenset:
        cache_key = (id(space), key)
        closure = self._closure_cache.get(cache_key)
        if closure is None:
            seen: set = set()
            stack = list(space.declared_deps(key))
            while stack:
                dep = stack.pop()
                if dep in seen:
                    continue
                seen.add(dep)
                stack.extend(space.declared_deps(dep))
            closure = frozenset(seen)
            self._closure_cache[cache_key] = closure
        return closure

    # -- finish-time checks -------------------------------------------------
    def finish(self, raise_on_findings: bool = True) -> "Sanitizer":
        """Run the end-of-run deadlock/leak scans; optionally raise."""
        if self._finished:
            raise SimulationError("Sanitizer.finish called twice")
        self._finished = True
        self._scan_pending_ops()
        self._scan_mailboxes()
        self._scan_transfers()
        if raise_on_findings and self.findings:
            raise SanitizerError(self.findings)
        return self

    def _pending_ops(self) -> list:
        return [oid for oid in self._ops if oid not in self._done_ops]

    def _wait_edges(self, oid: int) -> list:
        """Pending ops this op is waiting on (direct or via conditions),
        plus its undone FIFO predecessor."""
        edges = []

        def producers(event):
            producer = self._event_producer.get(id(event))
            if producer is not None:
                if producer not in self._done_ops:
                    edges.append(producer)
                return
            for child in getattr(event, "events", ()):
                producers(child)

        for event in self._ops[oid].wait_events:
            producers(event)
        prev = self._fifo_prev.get(oid)
        if prev is not None and prev not in self._done_ops:
            edges.append(prev)
        return edges

    def _scan_pending_ops(self) -> None:
        pending = self._pending_ops()
        if not pending:
            return
        graph = {oid: self._wait_edges(oid) for oid in pending}
        cycles = self._find_cycles(graph)
        for cycle in cycles:
            names = [self._ops[oid].name or f"op@{self._op_stream[oid]}"
                     for oid in cycle]
            self._record(
                "deadlock-cycle", self._op_stream[cycle[0]],
                "wait-for cycle: " + " -> ".join(names + [names[0]]),
            )
        in_cycle = {oid for cycle in cycles for oid in cycle}
        for oid in pending:
            if oid in in_cycle:
                continue
            op = self._ops[oid]
            self._record(
                "pending-gpu-op", self._op_stream[oid],
                f"op '{op.name}' never completed (enqueued but its "
                f"dependencies never fired)",
            )

    @staticmethod
    def _find_cycles(graph: dict) -> list:
        """Distinct cycles in the wait-for graph (one per SCC entered)."""
        cycles = []
        color = {}  # 0 in-progress, 1 done
        for root in graph:
            if root in color:
                continue
            stack = [(root, iter(graph.get(root, ())))]
            path = [root]
            on_path = {root}
            color[root] = 0
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt in on_path:
                        cycles.append(path[path.index(nxt):])
                        continue
                    if nxt in color:
                        continue
                    color[nxt] = 0
                    stack.append((nxt, iter(graph.get(nxt, ()))))
                    path.append(nxt)
                    on_path.add(nxt)
                    advanced = True
                    break
                if not advanced:
                    color[node] = 1
                    stack.pop()
                    path.pop()
                    on_path.discard(node)
        return cycles

    def _scan_mailboxes(self) -> None:
        runtime = self._runtime
        if runtime is None:
            return
        for array in runtime._arrays.values():
            for chare in array.elements.values():
                for mailbox, box in chare._mailboxes.items():
                    for msg in box:
                        self._record(
                            "dangling-mailbox", repr(chare),
                            f"deposit into mailbox '{mailbox}' "
                            f"(ref={msg.ref!r}) was never consumed by a "
                            f"when() — dropped completion or missing receive",
                        )

    def _scan_transfers(self) -> None:
        for handle in self._transfers.values():
            if not handle.done.triggered:
                self._record(
                    "pending-transfer", f"pe{handle.src_pe}->pe{handle.dst_pe}",
                    f"{handle.kind} tag={handle.tag!r} posted but never "
                    f"completed",
                )

    # -- deadlock explanation (for runtime quiescence failures) -------------
    def explain_deadlock(self) -> str:
        """Cycle/pending summary appended to runtime deadlock errors."""
        pending = self._pending_ops()
        if not pending:
            return ""
        graph = {oid: self._wait_edges(oid) for oid in pending}
        cycles = self._find_cycles(graph)
        lines = []
        for cycle in cycles:
            names = [self._ops[oid].name or f"op@{self._op_stream[oid]}"
                     for oid in cycle]
            lines.append("wait-for cycle: " + " -> ".join(names + [names[0]]))
        if not lines:
            names = [self._ops[oid].name or self._op_stream[oid]
                     for oid in pending[:5]]
            lines.append(f"{len(pending)} GPU op(s) pending, first: {names}")
        return "\n".join(f"  sanitizer: {line}" for line in lines)

    # -- reporting ----------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.findings

    def report(self) -> str:
        head = (
            f"sanitizer: {self.ops_checked} ops, "
            f"{self.accesses_checked} accesses, "
            f"{len(self._buffers)} buffers, "
            f"{len(self._transfers)} transfers"
        )
        if not self.findings:
            return f"{head} — OK"
        lines = "\n".join(f"  {d}" for d in self.findings)
        return f"{head} — {len(self.findings)} FINDING(S)\n{lines}"

    def _record(self, kind: str, actor: str, detail: str) -> None:
        if len(self.findings) >= self.max_findings:
            return
        now = self.engine.now if self.engine is not None else float("nan")
        self.findings.append(Diagnostic(now, kind, actor, detail))
