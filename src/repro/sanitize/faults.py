"""Fault injectors: deliberately break ordering so the sanitizer's
detectors can be proven live.

Each injector models a *plausible authoring mistake*, not random
corruption:

* :func:`drop_cholesky_dep` — the author forgot to declare one edge of the
  Cholesky task DAG.  The declaration disappears from the TaskSpace ledger
  AND from the gating that the frontends derive from it (``local_deps``
  for same-unit edges, the ``reads`` arrival gate for cross-unit edges) —
  exactly what writing the wrong dependency list produces.
* :func:`drop_wait` — the author forgot one ``wait_events`` edge on a
  kernel launch (e.g. unpacking a halo without waiting for its H2D copy).

Injectors mutate only app-side plan/ledger state or monkeypatch the
enqueue path inside a context manager; the simulator core is untouched.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager

__all__ = ["declared_dep_pairs", "drop_cholesky_dep", "drop_wait"]


def declared_dep_pairs(ctx) -> list:
    """Every ``(task_key, dep_key)`` edge declared in ``ctx``'s TaskSpace,
    declaration order — the enumeration domain for the deletion property
    test."""
    return [(rec.key, dep) for rec in ctx.tasks.journal() for dep in rec.deps]


def _factor_row(dep_key) -> int:
    """The factor row a dependency's output tile lives in: ``("potrf", k)``
    produces tile ``(k, k)`` (row k), ``("trsm", a, k)`` produces
    ``(a, k)`` (row a)."""
    return dep_key[1]


def drop_cholesky_dep(ctx, task_key, dep_key) -> tuple:
    """Remove the declared edge ``dep_key -> task_key`` from a built
    :class:`~repro.apps.cholesky.context.CholeskyContext`, as if the author
    had never written it.

    Three coupled mutations, mirroring how the frontends consume the plan:

    1. the TaskSpace record loses the dep (so the sanitizer's declared
       closure no longer contains it — the ground truth being checked);
    2. the task's ``local_deps`` loses it (no ``wait_events`` gating);
    3. for a cross-unit dep (always a factor task), the task's ``reads``
       row is dropped, so the consumer no longer waits for the tile's
       arrival either.

    Returns ``(task_key, dep_key)`` for assertion messages.
    """
    task_key, dep_key = tuple(task_key), tuple(dep_key)
    rec = ctx.tasks.record(task_key)
    if dep_key not in rec.deps:
        raise ValueError(f"{dep_key} is not a declared dep of {task_key}")
    rec.deps = tuple(d for d in rec.deps if d != dep_key)
    remote = ctx._task_unit(dep_key) != ctx._task_unit(task_key)
    for plan in ctx.plan:
        for unit, infos in plan.tasks.items():
            for i, info in enumerate(infos):
                if info.key != task_key:
                    continue
                changes = {}
                if dep_key in info.local_deps:
                    changes["local_deps"] = tuple(
                        d for d in info.local_deps if d != dep_key)
                if remote and dep_key[0] in ("potrf", "trsm"):
                    row = _factor_row(dep_key)
                    if row in info.reads:
                        changes["reads"] = tuple(
                            a for a in info.reads if a != row)
                if changes:
                    infos[i] = dataclasses.replace(info, **changes)
    return (task_key, dep_key)


@contextmanager
def drop_wait(match: str, count: int = 1):
    """Strip the ``wait_events`` of the first ``count`` stream ops whose
    name contains ``match`` — the forgotten-event-dependence bug (e.g. a
    halo unpack kernel launched without waiting for its H2D copy).

    Yields a dict with the remaining ``"left"`` count so tests can assert
    the injection actually happened.
    """
    from ..hardware.gpu import CudaStream

    original = CudaStream.enqueue
    state = {"left": count, "dropped": 0}

    def patched(self, work, name="", wait_events=None, reads=(), writes=()):
        if state["left"] and wait_events and match in name:
            state["left"] -= 1
            state["dropped"] += 1
            wait_events = None
        return original(self, work, name=name, wait_events=wait_events,
                        reads=reads, writes=writes)

    CudaStream.enqueue = patched
    try:
        yield state
    finally:
        CudaStream.enqueue = original
