"""Canonical sanitizer runs for the CLI (``repro sanitize``).

One small-but-representative configuration per registered app, executed
under every frontend with a :class:`~repro.sanitize.Sanitizer` attached.
The expectation is *zero findings everywhere* — the apps self-host clean —
so the command doubles as the regression gate CI runs (``repro sanitize
--strict``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["SanitizeCase", "sanitize_matrix", "render_matrix"]

# Small shapes: enough blocks per PE to exercise overdecomposition and
# cross-unit messaging, small enough to keep the whole matrix quick.
_SMALL_CONFIGS = {
    "jacobi3d": dict(nodes=2, odf=2, grid=(48, 48, 48), iterations=3, warmup=1),
    "jacobi2d": dict(nodes=2, odf=2, grid=(96, 96), iterations=3, warmup=1),
    "cholesky": dict(nodes=2, odf=2, tiles=5, tile=32),
    "allreduce": dict(nodes=2, odf=2, elements=4096, iterations=2, warmup=1),
}


@dataclasses.dataclass
class SanitizeCase:
    """Outcome of one sanitized run."""

    app: str
    version: str
    sanitizer: object  # the finished Sanitizer

    @property
    def ok(self) -> bool:
        return self.sanitizer.ok

    def describe(self) -> str:
        s = self.sanitizer
        status = "clean" if s.ok else f"{len(s.findings)} FINDING(S)"
        return (f"{self.app:10s} {self.version:8s} "
                f"{s.ops_checked:6d} ops {s.accesses_checked:6d} accesses "
                f"— {status}")


def sanitize_matrix(app: Optional[str] = None, progress=None) -> list:
    """Run the canonical config of every (or one) registered app under all
    frontends with the sanitizer attached; returns a list of
    :class:`SanitizeCase` (never raises on findings — callers decide)."""
    from ..apps import ALL_VERSIONS, app_names, get_app, run_app
    from .sanitizer import Sanitizer

    apps = [app] if app else sorted(
        app_names(), key=lambda name: (name != "jacobi3d", name))
    cases = []
    for name in apps:
        spec = get_app(name)
        fields = {f.name for f in dataclasses.fields(spec.config_cls)}
        base = {k: v for k, v in _SMALL_CONFIGS.get(name, {}).items()
                if k in fields}
        for version in ALL_VERSIONS:
            kwargs = dict(base)
            if version.startswith("mpi"):
                kwargs.pop("odf", None)  # plain MPI: one rank per GPU
            config = spec.config_cls(version=version, **kwargs)
            sanitizer = Sanitizer()
            run_app(config, sanitize=sanitizer)
            case = SanitizeCase(name, version, sanitizer)
            cases.append(case)
            if progress is not None:
                progress(case.describe())
    return cases


def render_matrix(cases: list) -> str:
    """Summary table plus every finding of the failing cases."""
    lines = [case.describe() for case in cases]
    bad = [case for case in cases if not case.ok]
    for case in bad:
        lines.append("")
        lines.append(f"-- {case.app} {case.version} --")
        lines.extend(f"  {d}" for d in case.sanitizer.findings)
    total = len(cases)
    lines.append("")
    if bad:
        lines.append(f"sanitize: {len(bad)}/{total} case(s) with findings")
    else:
        lines.append(f"sanitize: all {total} case(s) clean")
    return "\n".join(lines)
