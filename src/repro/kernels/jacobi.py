"""Functional Jacobi numerics (NumPy, vectorized).

A block is stored with one ghost layer on every side: interior shape
``(nx, ny, nz)`` inside an array of shape ``(nx+2, ny+2, nz+2)``.  The
update is the classic 6-point Jacobi relaxation for Laplace's equation:

    u'[i,j,k] = (u[i±1,j,k] + u[i,j±1,k] + u[i,j,k±1]) / 6

All face/pack/unpack helpers use the same face naming as the performance
model: a face is ``(axis, side)`` with ``axis`` in {0,1,2} and ``side`` in
{-1,+1}.

Determinism note: the sum is evaluated in a fixed operand order, so a
distributed run (any decomposition, any message timing) produces grids
*bit-identical* to the serial reference — the integration tests rely on
this to prove the runtime exchanges the right bytes at the right
iterations.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

__all__ = [
    "FACES",
    "opposite",
    "alloc_block",
    "jacobi_update",
    "pack_face",
    "unpack_face",
    "face_shape",
    "residual",
]

# (axis, side): side -1 is the low-coordinate face, +1 the high one.
FACES: tuple[tuple[int, int], ...] = ((0, -1), (0, 1), (1, -1), (1, 1), (2, -1), (2, 1))


def opposite(face: tuple[int, int]) -> tuple[int, int]:
    """The matching face on the neighbouring block."""
    axis, side = face
    return (axis, -side)


def alloc_block(interior_shape: Iterable[int], fill: float = 0.0) -> np.ndarray:
    """A float64 block with ghost layers, initialized to ``fill``."""
    shape = tuple(int(s) + 2 for s in interior_shape)
    if any(s < 3 for s in shape):
        raise ValueError(f"interior must be at least 1 cell per axis, got {interior_shape}")
    return np.full(shape, fill, dtype=np.float64)


def jacobi_update(u: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """One Jacobi sweep over the interior; ghosts are read, never written.

    Returns ``out`` (allocated if omitted).  Fixed evaluation order keeps
    results bit-identical across decompositions.
    """
    if out is None:
        out = np.empty_like(u)
        out[...] = u
    acc = u[:-2, 1:-1, 1:-1].copy()
    acc += u[2:, 1:-1, 1:-1]
    acc += u[1:-1, :-2, 1:-1]
    acc += u[1:-1, 2:, 1:-1]
    acc += u[1:-1, 1:-1, :-2]
    acc += u[1:-1, 1:-1, 2:]
    acc *= 1.0 / 6.0
    out[1:-1, 1:-1, 1:-1] = acc
    return out


def _face_slices(u_shape: tuple[int, ...], face: tuple[int, int], ghost: bool):
    """Index tuple selecting the face layer (ghost or first-interior)."""
    axis, side = face
    if axis not in (0, 1, 2) or side not in (-1, 1):
        raise ValueError(f"bad face {face}")
    idx: list = [slice(1, -1)] * 3
    if ghost:
        idx[axis] = 0 if side < 0 else u_shape[axis] - 1
    else:
        idx[axis] = 1 if side < 0 else u_shape[axis] - 2
    return tuple(idx)


def pack_face(u: np.ndarray, face: tuple[int, int]) -> np.ndarray:
    """Copy the first interior layer adjacent to ``face`` (the halo to send)."""
    return np.ascontiguousarray(u[_face_slices(u.shape, face, ghost=False)])


def unpack_face(u: np.ndarray, face: tuple[int, int], data: np.ndarray) -> None:
    """Write received halo ``data`` into the ghost layer at ``face``."""
    target = u[_face_slices(u.shape, face, ghost=True)]
    if target.shape != data.shape:
        raise ValueError(f"halo shape {data.shape} != ghost {target.shape} for face {face}")
    target[...] = data


def face_shape(interior_shape: Iterable[int], face: tuple[int, int]) -> tuple[int, int]:
    """Interior cross-section of a face (the halo message shape)."""
    axis, _ = face
    dims = [int(s) for s in interior_shape]
    del dims[axis]
    return tuple(dims)  # type: ignore[return-value]


def residual(u: np.ndarray) -> float:
    """Max-norm Jacobi residual of the interior (0 when converged)."""
    nxt = jacobi_update(u)
    return float(np.max(np.abs(nxt[1:-1, 1:-1, 1:-1] - u[1:-1, 1:-1, 1:-1])))
