"""Functional Jacobi numerics (NumPy, vectorized), dimension-generic.

A block is stored with one ghost layer on every side: interior shape
``(n1, ..., nd)`` inside an array of shape ``(n1+2, ..., nd+2)``.  The
update is the classic ``2d``-point Jacobi relaxation for Laplace's
equation — in 3D:

    u'[i,j,k] = (u[i±1,j,k] + u[i,j±1,k] + u[i,j,k±1]) / 6

and in 2D the 5-point analogue with a ``/ 4`` average.  Dimensionality is
inferred from the arrays themselves, so the same helpers serve every
registered stencil app (:mod:`repro.apps.stencil`).

All face/pack/unpack helpers use the same face naming as the performance
model: a face is ``(axis, side)`` with ``axis`` in ``range(ndim)`` and
``side`` in {-1,+1}; :func:`faces_for` enumerates them in the canonical
order (:data:`FACES` is the 3D instance).

Determinism note: the sum is evaluated in a fixed operand order (axis 0
low face, axis 0 high face, axis 1 low, ...), so a distributed run (any
decomposition, any message timing) produces grids *bit-identical* to the
serial reference — the integration tests rely on this to prove the runtime
exchanges the right bytes at the right iterations.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional

import numpy as np

__all__ = [
    "FACES",
    "faces_for",
    "opposite",
    "alloc_block",
    "interior_slice",
    "jacobi_update",
    "pack_face",
    "unpack_face",
    "face_shape",
    "residual",
]


@lru_cache(maxsize=None)
def faces_for(ndim: int) -> tuple[tuple[int, int], ...]:
    """The canonical face order for ``ndim`` dimensions: axis-major, low
    side before high side."""
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    return tuple((axis, side) for axis in range(ndim) for side in (-1, 1))


# (axis, side): side -1 is the low-coordinate face, +1 the high one.
FACES: tuple[tuple[int, int], ...] = faces_for(3)


def opposite(face: tuple[int, int]) -> tuple[int, int]:
    """The matching face on the neighbouring block."""
    axis, side = face
    return (axis, -side)


def alloc_block(interior_shape: Iterable[int], fill: float = 0.0) -> np.ndarray:
    """A float64 block with ghost layers, initialized to ``fill``."""
    shape = tuple(int(s) + 2 for s in interior_shape)
    if any(s < 3 for s in shape):
        raise ValueError(f"interior must be at least 1 cell per axis, got {interior_shape}")
    return np.full(shape, fill, dtype=np.float64)


def interior_slice(ndim: int) -> tuple:
    """Index tuple selecting the interior of a ghosted block."""
    return (slice(1, -1),) * ndim


def jacobi_update(u: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """One Jacobi sweep over the interior; ghosts are read, never written.

    Returns ``out`` (allocated if omitted).  Fixed evaluation order —
    axis 0 low, axis 0 high, axis 1 low, ... — keeps results bit-identical
    across decompositions and dimensionalities.
    """
    if out is None:
        out = np.empty_like(u)
        out[...] = u
    ndim = u.ndim
    inner = interior_slice(ndim)

    def shifted(axis: int, side: int):
        idx = list(inner)
        idx[axis] = slice(None, -2) if side < 0 else slice(2, None)
        return u[tuple(idx)]

    acc = shifted(0, -1).copy()
    acc += shifted(0, 1)
    for axis in range(1, ndim):
        acc += shifted(axis, -1)
        acc += shifted(axis, 1)
    acc *= 1.0 / (2 * ndim)
    out[inner] = acc
    return out


def _face_slices(u_shape: tuple[int, ...], face: tuple[int, int], ghost: bool):
    """Index tuple selecting the face layer (ghost or first-interior)."""
    ndim = len(u_shape)
    axis, side = face
    if not 0 <= axis < ndim or side not in (-1, 1):
        raise ValueError(f"bad face {face}")
    idx: list = [slice(1, -1)] * ndim
    if ghost:
        idx[axis] = 0 if side < 0 else u_shape[axis] - 1
    else:
        idx[axis] = 1 if side < 0 else u_shape[axis] - 2
    return tuple(idx)


def pack_face(u: np.ndarray, face: tuple[int, int]) -> np.ndarray:
    """Copy the first interior layer adjacent to ``face`` (the halo to send)."""
    return np.ascontiguousarray(u[_face_slices(u.shape, face, ghost=False)])


def unpack_face(u: np.ndarray, face: tuple[int, int], data: np.ndarray) -> None:
    """Write received halo ``data`` into the ghost layer at ``face``."""
    target = u[_face_slices(u.shape, face, ghost=True)]
    if target.shape != data.shape:
        raise ValueError(f"halo shape {data.shape} != ghost {target.shape} for face {face}")
    target[...] = data


def face_shape(interior_shape: Iterable[int], face: tuple[int, int]) -> tuple:
    """Interior cross-section of a face (the halo message shape)."""
    axis, _ = face
    dims = [int(s) for s in interior_shape]
    del dims[axis]
    return tuple(dims)


def residual(u: np.ndarray) -> float:
    """Max-norm Jacobi residual of the interior (0 when converged)."""
    inner = interior_slice(u.ndim)
    nxt = jacobi_update(u)
    return float(np.max(np.abs(nxt[inner] - u[inner])))
