"""Validation helpers: serial reference solver and analytic checks.

Dimension-generic: :func:`apply_boundary` and :func:`reference_solve` infer
the dimensionality from ``global_shape``, so the same machinery drives both
the 3D and the 2D stencil apps.  Boundary functions receive one global
ghost-array coordinate per axis plus the global shape.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .jacobi import alloc_block, faces_for, interior_slice, jacobi_update

__all__ = [
    "hot_top_boundary",
    "hot_edge_boundary",
    "apply_boundary",
    "reference_solve",
    "max_principle_holds",
]


def hot_top_boundary(x: int, y: int, z: int, shape: tuple[int, int, int]) -> float:
    """The canonical 3D test problem: u = 1 on the global +x ghost face, 0
    on the other five.  Arguments are *global ghost-array* coordinates."""
    return 1.0 if x == shape[0] + 1 else 0.0


def hot_edge_boundary(x: int, y: int, shape: tuple[int, int]) -> float:
    """The canonical 2D test problem: u = 1 on the global +x ghost edge, 0
    on the other three.  Arguments are *global ghost-array* coordinates."""
    return 1.0 if x == shape[0] + 1 else 0.0


BoundaryFn = Callable[..., float]


def apply_boundary(u: np.ndarray, boundary: BoundaryFn, global_shape: tuple,
                   offset: Optional[tuple] = None) -> None:
    """Fill the ghost layers of ``u`` that lie on the *global* domain
    boundary using ``boundary``; interior-facing ghosts are left alone.

    ``offset`` is the global coordinate of this block's all-zeros ghost
    cell, so the same function initializes both the serial reference grid
    and every distributed block consistently.
    """
    ndim = len(global_shape)
    if offset is None:
        offset = (0,) * ndim
    for axis, side in faces_for(ndim):
        layer_global = 0 if side < 0 else global_shape[axis] + 1
        layer_local = layer_global - offset[axis]
        if not 0 <= layer_local < u.shape[axis]:
            continue  # this block does not touch that global face
        idx: list = [slice(None)] * ndim
        idx[axis] = layer_local
        view = u[tuple(idx)]
        coords = np.meshgrid(
            *[np.arange(u.shape[a]) + offset[a] for a in range(ndim) if a != axis],
            indexing="ij",
        )
        full = []
        ci = iter(coords)
        for a in range(ndim):
            full.append(np.full(view.shape, layer_global) if a == axis else next(ci))
        vals = np.vectorize(lambda *cs: boundary(*cs, global_shape))(*full)
        view[...] = vals


def reference_solve(global_shape: tuple, iterations: int,
                    boundary: Optional[BoundaryFn] = None) -> np.ndarray:
    """Serial Jacobi on the whole grid — ground truth for distributed runs.
    The default boundary is the canonical hot-face problem for the grid's
    dimensionality."""
    if boundary is None:
        boundary = hot_top_boundary if len(global_shape) == 3 else hot_edge_boundary
    u = alloc_block(global_shape)
    apply_boundary(u, boundary, global_shape)
    out = u.copy()
    for _ in range(iterations):
        jacobi_update(u, out)
        u, out = out, u
    return u


def max_principle_holds(u: np.ndarray) -> bool:
    """Discrete maximum principle: interior values stay within the range of
    the boundary data — a cheap invariant for property tests."""
    interior = u[interior_slice(u.ndim)]
    boundary_vals = []
    for axis in range(u.ndim):
        for layer in (0, -1):
            idx: list = [slice(None)] * u.ndim
            idx[axis] = layer
            boundary_vals.append(u[tuple(idx)].ravel())
    vals = np.concatenate(boundary_vals)
    lo, hi = vals.min(), vals.max()
    eps = 1e-12
    return bool(interior.min() >= lo - eps and interior.max() <= hi + eps)
