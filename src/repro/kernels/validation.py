"""Validation helpers: serial reference solver and analytic checks."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .jacobi import alloc_block, jacobi_update

__all__ = [
    "hot_top_boundary",
    "apply_boundary",
    "reference_solve",
    "max_principle_holds",
]


def hot_top_boundary(x: int, y: int, z: int, shape: tuple[int, int, int]) -> float:
    """The canonical test problem: u = 1 on the global +x ghost face, 0 on
    the other five.  Arguments are *global ghost-array* coordinates."""
    return 1.0 if x == shape[0] + 1 else 0.0


BoundaryFn = Callable[[int, int, int, tuple], float]


def apply_boundary(u: np.ndarray, boundary: BoundaryFn, global_shape: tuple,
                   offset: tuple = (0, 0, 0)) -> None:
    """Fill the ghost layers of ``u`` that lie on the *global* domain
    boundary using ``boundary``; interior-facing ghosts are left alone.

    ``offset`` is the global coordinate of this block's (0,0,0) ghost cell,
    so the same function initializes both the serial reference grid and
    every distributed block consistently.
    """
    gx, gy, gz = global_shape
    for axis, side in ((0, -1), (0, 1), (1, -1), (1, 1), (2, -1), (2, 1)):
        layer_global = 0 if side < 0 else global_shape[axis] + 1
        layer_local = layer_global - offset[axis]
        if not 0 <= layer_local < u.shape[axis]:
            continue  # this block does not touch that global face
        idx: list = [slice(None)] * 3
        idx[axis] = layer_local
        view = u[tuple(idx)]
        coords = np.meshgrid(
            *[np.arange(u.shape[a]) + offset[a] for a in range(3) if a != axis],
            indexing="ij",
        )
        full = []
        ci = iter(coords)
        for a in range(3):
            full.append(np.full(view.shape, layer_global) if a == axis else next(ci))
        vals = np.vectorize(lambda X, Y, Z: boundary(X, Y, Z, global_shape))(*full)
        view[...] = vals


def reference_solve(global_shape: tuple, iterations: int,
                    boundary: BoundaryFn = hot_top_boundary) -> np.ndarray:
    """Serial Jacobi on the whole grid — ground truth for distributed runs."""
    u = alloc_block(global_shape)
    apply_boundary(u, boundary, global_shape)
    out = u.copy()
    for _ in range(iterations):
        jacobi_update(u, out)
        u, out = out, u
    return u


def max_principle_holds(u: np.ndarray) -> bool:
    """Discrete maximum principle: interior values stay within the range of
    the boundary data — a cheap invariant for property tests."""
    interior = u[1:-1, 1:-1, 1:-1]
    boundary_vals = np.concatenate([
        u[0, :, :].ravel(), u[-1, :, :].ravel(),
        u[:, 0, :].ravel(), u[:, -1, :].ravel(),
        u[:, :, 0].ravel(), u[:, :, -1].ravel(),
    ])
    lo, hi = boundary_vals.min(), boundary_vals.max()
    eps = 1e-12
    return bool(interior.min() >= lo - eps and interior.max() <= hi + eps)
