"""Roofline work models for the stencil apps' GPU kernels.

Translates block geometry into :class:`~repro.hardware.gpu.KernelWork`
instances.  Dimensionality comes from the ``dims`` sequences themselves,
so the same builders serve Jacobi3D and Jacobi2D (the ``2*ndim``-point
stencil runs ``2*ndim`` flops per cell).  All kernels here are
memory-bound on a V100 (the 7-point stencil runs ~6 flops per 16 bytes of
traffic, far below the ~69 flops/double-read the FP64 roofline would
need).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..hardware.gpu import KernelWork

__all__ = [
    "DOUBLE",
    "update_work",
    "pack_work",
    "unpack_work",
    "fused_pack_work",
    "fused_unpack_work",
    "fused_all_work",
    "interior_work",
    "exterior_work",
]

DOUBLE = 8  # bytes per grid element

# Fused (un)packing kernels size their thread grid as the *maximum* face
# size, with each thread walking all faces (paper §III-D1).  That layout
# avoids the warp divergence of the sum-of-sizes variant but still retains
# some divergence versus dedicated per-face kernels:
FUSED_PACK_EFFICIENCY = 0.82
# The all-in-one kernel (strategy C) mixes stencil and copy access patterns:
FUSED_ALL_EFFICIENCY = 0.88


def _volume(dims: Sequence[int]) -> int:
    v = 1
    for d in dims:
        v *= int(d)
    return v


def _surface(dims: Sequence[int]) -> int:
    """Total exposed boundary of a block: two faces per axis, each the
    product of the other dims (perimeter in 2D, surface area in 3D)."""
    sizes = [int(d) for d in dims]
    total = 0
    for axis in range(len(sizes)):
        face = 1
        for a, d in enumerate(sizes):
            if a != axis:
                face *= d
        total += 2 * face
    return total


# Boundary cells get no stencil reuse (their neighbour loads miss cache), so
# achieved bandwidth falls as blocks shrink — this is what eventually turns
# the overdecomposition curve back up at high ODF.
STENCIL_SURFACE_PENALTY = 4.0


def stencil_efficiency(dims: Sequence[int], beta: float = STENCIL_SURFACE_PENALTY) -> float:
    """Fraction of streaming bandwidth a stencil achieves on this block."""
    vol = _volume(dims)
    return vol / (vol + beta * _surface(dims))


def _stencil_flops(dims: Sequence[int]) -> int:
    """Flops per cell of the ``2*ndim``-point Jacobi sweep: ``2*ndim - 1``
    adds plus one multiply (6 in 3D, 4 in 2D)."""
    return 2 * len(dims)


def update_work(dims: Sequence[int]) -> KernelWork:
    """The Jacobi sweep: read the input block once (neighbours hit cache),
    write the output block once; ``2*ndim`` flops per cell."""
    vol = _volume(dims)
    return KernelWork(bytes_moved=2 * DOUBLE * vol, flops=_stencil_flops(dims) * vol,
                      efficiency=stencil_efficiency(dims))


def pack_work(face_cells: int) -> KernelWork:
    """Copy one face into a contiguous halo buffer (read + write)."""
    return KernelWork(bytes_moved=2 * DOUBLE * int(face_cells))


def unpack_work(face_cells: int) -> KernelWork:
    """Copy one received halo into the ghost layer (read + write)."""
    return KernelWork(bytes_moved=2 * DOUBLE * int(face_cells))


def fused_pack_work(face_cells: Iterable[int]) -> KernelWork:
    """Strategy A/B: all packing in one kernel — one launch, same bytes,
    slightly lower efficiency from the max-threads/loop-over-faces layout."""
    total = sum(int(c) for c in face_cells)
    return KernelWork(bytes_moved=2 * DOUBLE * total, efficiency=FUSED_PACK_EFFICIENCY)


def fused_unpack_work(face_cells: Iterable[int]) -> KernelWork:
    """Strategy B: all unpacking fused (launchable only after *all* halos
    arrive — the concurrency cost of fusing, §III-D1)."""
    total = sum(int(c) for c in face_cells)
    return KernelWork(bytes_moved=2 * DOUBLE * total, efficiency=FUSED_PACK_EFFICIENCY)


def fused_all_work(dims: Sequence[int], face_cells: Iterable[int]) -> KernelWork:
    """Strategy C: unpack + update + pack as one kernel — a single launch
    per iteration."""
    vol = _volume(dims)
    halo = sum(int(c) for c in face_cells)
    return KernelWork(
        bytes_moved=2 * DOUBLE * (vol + 2 * halo),
        flops=_stencil_flops(dims) * vol,
        efficiency=FUSED_ALL_EFFICIENCY * stencil_efficiency(dims),
    )


def interior_work(dims: Sequence[int]) -> KernelWork:
    """Manual-overlap variant: update cells not touching any ghost layer."""
    inner = [max(0, int(d) - 2) for d in dims]
    vol = _volume(inner)
    return KernelWork(bytes_moved=max(1, 2 * DOUBLE * vol),
                      flops=_stencil_flops(dims) * vol)


def exterior_work(dims: Sequence[int]) -> KernelWork:
    """Manual-overlap variant: the shell of cells adjacent to ghosts."""
    vol = _volume(dims) - _volume([max(0, int(d) - 2) for d in dims])
    return KernelWork(bytes_moved=max(1, 2 * DOUBLE * vol),
                      flops=_stencil_flops(dims) * vol)
