"""Kernel-fusion strategies (paper §III-D1).

=========  =====================================================  ==========
strategy   fused kernels                                          launches /
                                                                  iteration*
=========  =====================================================  ==========
NONE       —                                                      13
A          the 6 packing kernels → 1                              8
B          packing → 1 and unpacking → 1 (two kernels)            3
C          unpacking + update + packing → 1 kernel                1
=========  =====================================================  ==========

(*for an interior block with 6 neighbours, excluding copies.)

Fusing unpacking (B, C) trades concurrency for launches: the fused kernel
can only start once *all* halos have arrived, whereas unfused unpacking
streams in as each halo lands.  The paper (and our reproduction) evaluates
fusion only together with GPU-aware communication.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["FusionStrategy", "kernel_launches_per_iteration"]


class FusionStrategy(Enum):
    """Which kernels are fused (paper's Baseline/A/B/C)."""

    NONE = "none"
    A = "A"  # packing fused
    B = "B"  # packing fused + unpacking fused
    C = "C"  # one kernel: unpack + update + pack

    @classmethod
    def parse(cls, value) -> "FusionStrategy":
        if isinstance(value, cls):
            return value
        if value is None:
            return cls.NONE
        try:
            return cls(str(value))
        except ValueError:
            names = [m.value for m in cls]
            raise ValueError(f"unknown fusion strategy {value!r}; expected one of {names}")

    @property
    def packs_fused(self) -> bool:
        return self is not FusionStrategy.NONE

    @property
    def unpacks_fused(self) -> bool:
        return self in (FusionStrategy.B, FusionStrategy.C)

    @property
    def all_in_one(self) -> bool:
        return self is FusionStrategy.C


def kernel_launches_per_iteration(strategy: FusionStrategy, n_neighbors: int) -> int:
    """Kernel launches per steady-state iteration for one block."""
    if strategy is FusionStrategy.C:
        return 1
    if strategy is FusionStrategy.B:
        return 3  # fused unpack, update, fused pack
    if strategy is FusionStrategy.A:
        return n_neighbors + 2  # per-face unpacks + update + fused pack
    return 2 * n_neighbors + 1
