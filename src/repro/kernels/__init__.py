"""Stencil numerics and GPU work models (dimension-generic).

* :mod:`repro.kernels.jacobi` — functional NumPy stencil, pack/unpack.
* :mod:`repro.kernels.costs` — roofline :class:`KernelWork` builders.
* :mod:`repro.kernels.fusion` — the paper's fusion strategies A/B/C.
* :mod:`repro.kernels.validation` — serial reference solver, invariants.
"""

from .costs import (
    stencil_efficiency,
    DOUBLE,
    exterior_work,
    fused_all_work,
    fused_pack_work,
    fused_unpack_work,
    interior_work,
    pack_work,
    unpack_work,
    update_work,
)
from .fusion import FusionStrategy, kernel_launches_per_iteration
from .jacobi import (
    FACES,
    alloc_block,
    face_shape,
    faces_for,
    interior_slice,
    jacobi_update,
    opposite,
    pack_face,
    residual,
    unpack_face,
)
from .validation import (
    apply_boundary,
    hot_edge_boundary,
    hot_top_boundary,
    max_principle_holds,
    reference_solve,
)

__all__ = [
    "DOUBLE",
    "exterior_work",
    "fused_all_work",
    "fused_pack_work",
    "fused_unpack_work",
    "interior_work",
    "pack_work",
    "unpack_work",
    "update_work",
    "stencil_efficiency",
    "FusionStrategy",
    "kernel_launches_per_iteration",
    "FACES",
    "alloc_block",
    "face_shape",
    "faces_for",
    "interior_slice",
    "jacobi_update",
    "opposite",
    "pack_face",
    "residual",
    "unpack_face",
    "apply_boundary",
    "hot_edge_boundary",
    "hot_top_boundary",
    "max_principle_holds",
    "reference_solve",
]
