"""Communication layer: UCX-like protocols over the simulated network.

:class:`UcxContext` provides matched two-sided transfers used by both the
MPI model and the Charm++ Channel API; :func:`select_protocol` implements
the size/location-based protocol choice responsible for the paper's
Fig. 7a/7b behaviour differences.
"""

from .protocols import Protocol, select_protocol
from .ucx import PRIORITY_COMM, PRIORITY_COMPUTE, TransferHandle, UcxContext

__all__ = [
    "Protocol",
    "select_protocol",
    "PRIORITY_COMM",
    "PRIORITY_COMPUTE",
    "TransferHandle",
    "UcxContext",
]
